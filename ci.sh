#!/bin/sh
# The single CI gate. Everything a change must pass, in the order that
# fails fastest; run locally before pushing — CI runs exactly this file.
#
# All cargo invocations are --offline: the workspace is hermetic (the
# criterion and proptest stand-ins live in third_party/) and CI machines
# are not assumed to reach crates.io.
set -eu

say() { printf '\n== %s ==\n' "$1"; }

say "rustfmt (check only)"
cargo fmt --all -- --check

say "clippy, warnings are errors"
cargo clippy --offline --workspace --all-targets -- -D warnings

say "aon-audit static analysis"
cargo run --offline -q -p aon-audit

say "tests (debug: assertions + counter invariants active)"
cargo test --offline --workspace -q

say "release build (tier-1)"
# --workspace so member-crate binaries (perf, aon-serve) exist for the
# smoke gates below even on a fresh checkout; the root package alone
# would only produce the facade's own bins.
cargo build --offline --release --workspace

say "perf harness smoke (quick windows, JSON validity)"
# No thresholds yet — the gate is that the harness runs end-to-end and
# emits structurally valid JSON (python stdlib is the only parser CI
# machines are guaranteed to have).
AON_CELL_CACHE=0 ./target/release/perf --quick /tmp/BENCH_sim_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/BENCH_sim_smoke.json") as f:
    report = json.load(f)
for key in ("cells", "cells_per_second", "simulated_cycles_per_wall_second"):
    assert key in report, f"BENCH_sim.json missing {key!r}"
assert report["cells"] > 0
print(f"perf smoke ok: {report['cells']} cells")
EOF

say "live server smoke (loadgen over loopback, zero protocol errors, /metrics agreement)"
# Stands up the real TCP server in-process, drives it closed-loop for
# ~2s, and scrapes GET /metrics from the still-running server; the binary
# itself exits 1 on any failed request, server-side protocol error, or
# scrape/client count mismatch. The python check then independently
# re-parses the scraped Prometheus text and cross-checks it against the
# JSON report, and asserts the extended snapshot fields are present.
./target/release/loadgen --duration 2 --out /tmp/BENCH_live_smoke.json \
    --scrape-metrics /tmp/BENCH_live_metrics.prom >/dev/null
python3 - <<'EOF'
import json, re
with open("/tmp/BENCH_live_smoke.json") as f:
    report = json.load(f)
assert report["requests_failed"] == 0, f"live failures: {report['errors']}"
assert report["requests_per_sec"] > 0
assert report["latency_us"]["p50"] > 0 and report["latency_us"]["p99"] > 0
assert report["server"]["protocol_errors"] == 0
for key in ("queue_depth_hwm", "rejected_closed", "admin_requests"):
    assert key in report["server"], f"server section missing {key!r}"
assert report["stages"], "stage breakdown must be non-empty with observability on"

# Independent cross-check: the live /metrics scrape must agree exactly
# with the load generator's client-side counts.
processed = 0
with open("/tmp/BENCH_live_metrics.prom") as f:
    for line in f:
        m = re.match(r'aon_requests_total\{[^}]*outcome="(ok|rejected)"[^}]*\} (\d+)', line)
        if m:
            processed += int(m.group(2))
assert processed == report["requests_ok"], (
    f"/metrics says {processed} processed, loadgen counted {report['requests_ok']}")
stage_cells = {(c["use_case"], c["stage"]) for c in report["stages"]}
assert ("CBR", "parse") in stage_cells and ("SV", "validate") in stage_cells, stage_cells
print(f"live smoke ok: {report['requests_per_sec']:.0f} req/s, "
      f"p99 {report['latency_us']['p99']:.0f}us, "
      f"/metrics agrees on {processed} requests, {len(report['stages'])} stage cells")
EOF

say "fast-scan smoke (fast path must beat scalar on the 5 KB corpus message)"
# Ordering-only gate: best-of-rounds wall time of the fast parse path
# (SWAR lazy parse + compiled automata) vs the scalar engines, for CBR and
# SV. No absolute thresholds — exits 1 only if fast is not faster.
./target/release/fastscan_smoke

say "overload smoke (open-loop sweep, goodput must not collapse)"
# Two-point open-loop sweep: an unloaded one-shot baseline (0.5x measured
# capacity) and a 3x-capacity overload window. The binary itself exits 1
# when hot goodput falls below 80% of the baseline, on any wrong-status
# response, or on any server-side protocol error — graceful degradation,
# not collapse, is the gate.
./target/release/loadgen --overload-smoke --duration 1 \
    --out /tmp/BENCH_overload_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/BENCH_overload_smoke.json") as f:
    report = json.load(f)
ov = report["overload"]
assert ov["capacity_per_sec"] > 0
assert len(ov["points"]) == 2, ov["points"]
base, hot = ov["points"]
assert hot["wrong_status"] == 0 and base["wrong_status"] == 0
assert base["goodput_per_sec"] > 0
ratio = hot["goodput_per_sec"] / base["goodput_per_sec"]
print(f"overload smoke ok: capacity {ov['capacity_per_sec']:.0f} req/s, "
      f"{base['multiplier']}x goodput {base['goodput_per_sec']:.0f}/s, "
      f"{hot['multiplier']}x goodput {hot['goodput_per_sec']:.0f}/s "
      f"(retention {ratio:.2f}, shed {hot['shed']})")
EOF

say "trace smoke (tail-sampler retention, complete span trees, admin reads free)"
# Mixed load against an FR-only server with tracing on: the binary exits
# 1 unless every governor-shed request's span tree is retained in
# /trace.jsonl (dropped_keep == 0 — the 100%-tail-retention proof),
# every retained tree is structurally complete, and reading the dump
# moved no request total (server count == client count exactly).
./target/release/loadgen --trace-smoke --duration 2 \
    --out /tmp/BENCH_trace_smoke.json >/dev/null

say "profile smoke (worker-state profiler, Little's law, exemplar linkage)"
# Two gates. First the sampler's cost: an A/B closed loop (observability
# on both times, profiler off vs on) whose p50 delta must stay under the
# 2% budget — with a 25us absolute floor so scheduler noise on tiny
# medians cannot fail the build spuriously.
./target/release/loadgen --profile-overhead --duration 1 \
    --out /tmp/BENCH_profile_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/BENCH_profile_smoke.json") as f:
    report = json.load(f)
po = report["profile_overhead"]
off, on = po["p50_us_profile_off"], po["p50_us_profile_on"]
assert off > 0 and on > 0, po
assert po["delta_pct"] < 2.0 or (on - off) < 25.0, (
    f"profiler overhead budget blown: p50 {off:.1f}us -> {on:.1f}us "
    f"({po['delta_pct']:+.2f}%)")
print(f"profiler overhead ok: p50 {off:.1f}us -> {on:.1f}us ({po['delta_pct']:+.2f}%)")
EOF
# Then the plane itself: self-driven load, Little's-law agreement within
# 15% (request plane vs state plane), and at least one latency exemplar
# resolving to a retained trace — the binary exits 1 on either breach.
./target/release/profile-report --self-drive --check \
    --folded-out /tmp/profile_smoke.folded >/dev/null
python3 - <<'EOF'
import re
with open("/tmp/profile_smoke.folded") as f:
    lines = f.read().splitlines()
assert lines, "folded dump must be non-empty after load"
for line in lines:
    assert re.fullmatch(r'[^;]+;[a-z_]+ \d+', line), f"bad folded line: {line!r}"
states = {line.split(";")[1].split(" ")[0] for line in lines}
assert "write" in states, f"served load must show write samples: {states}"
print(f"profile smoke ok: {len(lines)} folded cells, states {sorted(states)}")
EOF

say "hw smoke (hardware-counter plane, probe-and-degrade)"
# Runs the closed loop with per-worker perf counter groups requested.
# On hosts without PMU access (most CI containers) the backend degrades
# to noop and this is a clean skip recorded in the report; on a host
# with a live PMU, zero attributed events is a failure.
./target/release/hw-report --duration 1 --out /tmp/BENCH_hw_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/BENCH_hw_smoke.json") as f:
    report = json.load(f)
hw = report["hw"]
assert hw["backend"] in ("perf_event", "noop"), hw
if hw["backend"] == "perf_event":
    assert hw["rows"], "live perf backend must attribute events"
    for row in hw["rows"]:
        assert row["instructions"] > 0 and row["cycles"] > 0, row
    print(f"hw smoke ok: live backend, {len(hw['rows'])} use-case rows, "
          f"FR cpi {hw['rows'][0]['cpi']:.2f}")
else:
    print(f"hw smoke ok: noop backend ({hw['reason']}) — degrade path exercised")
EOF

say "BENCH_history regression gate (same-host records fail the build)"
# Compares the live smoke against the most recent record in
# BENCH_history/. Records carry a host fingerprint (CPU model + count):
# when the recorded host matches this one, a >10% req/s drop or a >10%
# p99 rise fails the build; on a different host (or a legacy record with
# no fingerprint) the comparison is advisory only, since absolute figures
# do not transfer across machines.
python3 - <<'EOF'
import glob, json, os, sys

def host_fingerprint():
    model = ""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {"cpu_model": model, "cpus": os.cpu_count() or 0}

hist = sorted(glob.glob("BENCH_history/pr*.json"))
if not hist:
    print("no BENCH_history records yet — skipped")
    sys.exit(0)
with open(hist[-1]) as f:
    rec = json.load(f)
with open("/tmp/BENCH_live_smoke.json") as f:
    cur = json.load(f)
ref = rec["smoke_reference"]
now_rps = cur["requests_per_sec"]
now_p99 = cur["latency_us"]["p99"]
ref_rps = ref["requests_per_sec"]
ref_p99 = ref.get("latency_p99_us")
fp = host_fingerprint()
same_host = rec.get("host") == fp and rec.get("host") is not None
print(f"{hist[-1]}: recorded {ref_rps:.0f} req/s"
      + (f", p99 {ref_p99:.0f}us" if ref_p99 else "")
      + f"; current {now_rps:.0f} req/s, p99 {now_p99:.0f}us"
      + ("" if same_host else " (different/unknown host — advisory only)"))
failures = []
if now_rps < ref_rps * 0.9:
    failures.append(f"req/s regressed >10%: {now_rps:.0f} < 0.9 * {ref_rps:.0f}")
if ref_p99 is not None and now_p99 > ref_p99 * 1.1:
    failures.append(f"p99 regressed >10%: {now_p99:.0f}us > 1.1 * {ref_p99:.0f}us")
if failures:
    for f_ in failures:
        print(("FAIL: " if same_host else "warning (host differs): ") + f_)
    if same_host:
        sys.exit(1)
else:
    print("within 10% of recorded reference — ok")
EOF

if [ -n "${BENCH_SNAPSHOT:-}" ]; then
    say "BENCH_history snapshot (${BENCH_SNAPSHOT})"
    # Writes BENCH_history/${BENCH_SNAPSHOT}.json (e.g. BENCH_SNAPSHOT=pr9)
    # from this run's smoke artifacts, stamped with the host fingerprint
    # so future runs of the regression gate above can tell whether the
    # comparison is apples-to-apples. Every PR should ship one.
    python3 - <<'EOF'
import datetime, json, os

def host_fingerprint():
    model = ""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {"cpu_model": model, "cpus": os.cpu_count() or 0}

name = os.environ["BENCH_SNAPSHOT"]
with open("/tmp/BENCH_live_smoke.json") as f:
    cur = json.load(f)
with open("/tmp/BENCH_overload_smoke.json") as f:
    ov = json.load(f)["overload"]
snap = {
    "pr": int(name.removeprefix("pr")) if name.removeprefix("pr").isdigit() else name,
    "date": datetime.date.today().isoformat(),
    "host": host_fingerprint(),
    "smoke_reference": {
        "command": "loadgen --duration 2 (default mixed use cases, observability on)",
        "requests_per_sec": round(cur["requests_per_sec"]),
        "latency_p99_us": round(cur["latency_us"]["p99"]),
        "latency_p999_us": round(cur["latency_us"]["p999"]),
        "parse_mode": "fast",
    },
    "overload_smoke": ov,
}
path = f"BENCH_history/{name}.json"
with open(path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
EOF
fi

if [ "${CI_CONCURRENCY:-0}" = "1" ]; then
    say "schedule-stress harness (extended rounds, seeds printed for replay)"
    # The seeded barrier-released permutation tests over the accept queue
    # and the metrics registry; 16 rounds run in the default test gate
    # above, this stage turns the crank much harder.
    AON_STRESS_ROUNDS=256 cargo test --offline -q -p aon-audit --test schedule_stress \
        -- --nocapture

    say "miri (aon-obs)"
    # Miri needs the nightly component; offline dev containers cannot
    # fetch it, so probe and skip with a notice rather than fail — the
    # GitHub nightly job runs this for real.
    if cargo +nightly miri --version >/dev/null 2>&1; then
        cargo +nightly miri test -p aon-obs -q
    else
        echo "miri unavailable — skipped (install: rustup component add --toolchain nightly miri)"
    fi

    say "ThreadSanitizer (obs + net test subset, nightly)"
    # TSan needs -Zbuild-std (rust-src) and instruments the whole test
    # binary; probe the toolchain pieces and degrade with a notice.
    if rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
        if RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test --offline -q \
            -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
            -p aon-obs -p aon-net --lib 2>/dev/null; then
            echo "tsan clean"
        else
            echo "tsan build unavailable offline — skipped (needs build-std deps from crates.io)"
        fi
    else
        echo "nightly rust-src unavailable — skipped (install: rustup component add --toolchain nightly rust-src)"
    fi
fi

say "all gates passed"
