#!/bin/sh
# The single CI gate. Everything a change must pass, in the order that
# fails fastest; run locally before pushing — CI runs exactly this file.
#
# All cargo invocations are --offline: the workspace is hermetic (the
# criterion and proptest stand-ins live in third_party/) and CI machines
# are not assumed to reach crates.io.
set -eu

say() { printf '\n== %s ==\n' "$1"; }

say "rustfmt (check only)"
cargo fmt --all -- --check

say "clippy, warnings are errors"
cargo clippy --offline --workspace --all-targets -- -D warnings

say "aon-audit static analysis"
cargo run --offline -q -p aon-audit

say "tests (debug: assertions + counter invariants active)"
cargo test --offline --workspace -q

say "release build (tier-1)"
cargo build --offline --release

say "perf harness smoke (quick windows, JSON validity)"
# No thresholds yet — the gate is that the harness runs end-to-end and
# emits structurally valid JSON (python stdlib is the only parser CI
# machines are guaranteed to have).
AON_CELL_CACHE=0 ./target/release/perf --quick /tmp/BENCH_sim_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/BENCH_sim_smoke.json") as f:
    report = json.load(f)
for key in ("cells", "cells_per_second", "simulated_cycles_per_wall_second"):
    assert key in report, f"BENCH_sim.json missing {key!r}"
assert report["cells"] > 0
print(f"perf smoke ok: {report['cells']} cells")
EOF

say "live server smoke (loadgen over loopback, zero protocol errors)"
# Stands up the real TCP server in-process and drives it closed-loop for
# ~2s; the binary itself exits 1 on any failed request or server-side
# protocol error, and the JSON must carry nonzero throughput/latency.
./target/release/loadgen --duration 2 --out /tmp/BENCH_live_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/BENCH_live_smoke.json") as f:
    report = json.load(f)
assert report["requests_failed"] == 0, f"live failures: {report['errors']}"
assert report["requests_per_sec"] > 0
assert report["latency_us"]["p50"] > 0 and report["latency_us"]["p99"] > 0
assert report["server"]["protocol_errors"] == 0
print(f"live smoke ok: {report['requests_per_sec']:.0f} req/s, "
      f"p99 {report['latency_us']['p99']:.0f}us")
EOF

say "all gates passed"
