#!/bin/sh
# The single CI gate. Everything a change must pass, in the order that
# fails fastest; run locally before pushing — CI runs exactly this file.
#
# All cargo invocations are --offline: the workspace is hermetic (the
# criterion and proptest stand-ins live in third_party/) and CI machines
# are not assumed to reach crates.io.
set -eu

say() { printf '\n== %s ==\n' "$1"; }

say "rustfmt (check only)"
cargo fmt --all -- --check

say "clippy, warnings are errors"
cargo clippy --offline --workspace --all-targets -- -D warnings

say "aon-audit static analysis"
cargo run --offline -q -p aon-audit

say "tests (debug: assertions + counter invariants active)"
cargo test --offline --workspace -q

say "release build (tier-1)"
cargo build --offline --release

say "all gates passed"
