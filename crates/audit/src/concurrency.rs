//! Concurrency-soundness passes: the sync-role registry, the
//! atomics-discipline check, and the lock-discipline check.
//!
//! The live measurement plane (crates/obs, crates/serve, the accept
//! queue, the memo caches) is all relaxed-atomic counters and short
//! critical sections; one wrong `Ordering::Relaxed` on a flag edge would
//! silently skew every table the server publishes. These passes make the
//! discipline machine-checked:
//!
//! 1. **sync-role registry** — every `Atomic*` / `Mutex` / `RwLock` /
//!    `Condvar` / `OnceLock` *declaration* (struct field, static, or
//!    local binding) must carry a role marker:
//!
//!    ```text
//!    // audit:role(counter): monotonic; scraped Relaxed, exact at join
//!    pub accepted: AtomicU64,
//!    ```
//!
//!    The marker names one of [`ROLES`] and states the invariant after
//!    the colon. The analyzer inventories every site and fails on an
//!    undeclared primitive, an unknown role, or an empty invariant.
//!
//! 2. **atomics-discipline** — each `Ordering::` use site is resolved to
//!    the declared role of its receiver (same-file field/static/local
//!    names, or the enclosing `impl` type for tuple-field access like
//!    `self.0`) and checked against the role's allowed orderings:
//!    data-plane roles (`counter`, `gauge`, `hwm`, `seqgen`) may only be
//!    `Relaxed` — anything stronger is over-synchronization; `flag` edges
//!    must publish with `Release` and observe with `Acquire` (or
//!    stronger); `SeqCst` in a hot-path file is flagged even where the
//!    role would allow it. Lock-based roles (`queue`, `lock`, `once`)
//!    admit no atomic orderings at all. Violations are waivable with
//!    `audit:allow(ordering): <happens-before argument>`.
//!
//! 3. **lock-discipline** — in `crates/serve` and `crates/net`, no mutex
//!    guard may be live across a blocking I/O call ([`BLOCKING_CALLS`]).
//!    `Condvar::wait`/`wait_timeout` are exempt (releasing the lock is
//!    their contract). Waivable with `audit:allow(lock): <reason>`.

use crate::lex::{find_tok, line_tokens, FileSpans, Tok, TokKind};
use crate::{Finding, Scrubbed};
use std::path::Path;

/// Sync primitive type names the registry pass inventories.
pub const SYNC_PRIMITIVES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "Mutex",
    "RwLock",
    "Condvar",
    "OnceLock",
    "Once",
];

/// The machine-readable roles a sync primitive may declare, and what each
/// promises:
///
/// * `counter` — monotonic event count; `Relaxed` everywhere, totals are
///   exact once writers quiesce.
/// * `gauge` — last-write-wins level; `Relaxed`, approximate by design.
/// * `hwm` — high-water mark maintained with `fetch_max`; `Relaxed`.
/// * `seqgen` — unique-ticket dispenser via `fetch_add`; `Relaxed` (only
///   uniqueness is needed, never ordering against other memory).
/// * `flag` — a cross-thread edge (shutdown, enable); stores must be
///   `Release`+, loads `Acquire`+, so writes before the store are visible
///   after the load.
/// * `queue` — a `Mutex`/`Condvar` hand-off structure; the lock provides
///   all ordering, so no atomic orderings may appear on it.
/// * `lock` — a plain mutual-exclusion `Mutex`/`RwLock`; same rule.
/// * `once` — init-once cell (`OnceLock`/`Once`); its own API synchronizes.
pub const ROLES: &[&str] = &["counter", "gauge", "hwm", "flag", "seqgen", "queue", "lock", "once"];

/// Files where `SeqCst` is treated as over-synchronization even on roles
/// that would otherwise allow it: the per-request data path, where a full
/// fence per counter bump is measurable and never needed.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/net/src/acceptq.rs",
    "crates/obs/src/flight.rs",
    "crates/obs/src/metric.rs",
    "crates/obs/src/stage.rs",
    "crates/serve/src/server.rs",
];

/// Atomic read-modify-write / load / store method names whose `Ordering`
/// arguments the discipline pass checks.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Calls that block (I/O, sleeps, joins) and therefore may not run while
/// a lock guard is live. `Condvar::wait`/`wait_timeout` are deliberately
/// absent: they release the lock while blocked.
pub const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "join",
    "read_exact",
    "read_frame",
    "read_to_end",
    "recv",
    "sleep",
    "write_all",
];

/// Path prefixes where the lock-discipline pass is enforced (the live
/// serving path, where a blocked worker holding the accept-queue or
/// registry lock would stall every peer).
pub const LOCK_ENFORCED_PREFIXES: &[&str] = &["crates/serve/src/", "crates/net/src/"];

/// One inventoried sync-primitive declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncSite {
    /// Workspace-relative path.
    pub file: std::path::PathBuf,
    /// 1-based declaration line.
    pub line: usize,
    /// Primitive type name(s) on the declaration (`"OnceLock+Mutex"` for
    /// nested declarations on one line).
    pub primitive: String,
    /// Declared name (field, static, local, or tuple-struct type).
    pub name: String,
    /// Declared role, when the marker parsed (`None` only alongside a
    /// finding).
    pub role: Option<String>,
}

/// Parse `audit:role(<role>): <invariant>` out of one comment-channel
/// line. Only plain `//` comments count (doc comments describe the
/// syntax; they must not declare roles). Returns `(role, invariant)`.
pub fn role_marker(comment_line: &str) -> Option<(String, String)> {
    let t = comment_line.trim_start();
    if !t.starts_with("//") || t.starts_with("///") || t.starts_with("//!") {
        return None;
    }
    let at = comment_line.find("audit:role(")?;
    let rest = &comment_line[at + "audit:role(".len()..];
    let close = rest.find(')')?;
    let role = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let invariant = after.strip_prefix(':').map(str::trim).unwrap_or("").to_string();
    Some((role, invariant))
}

/// The role marker governing line `idx`: on the same line, or on the
/// nearest line above after skipping attribute lines (`#[...]`), doc
/// comments, and plain comment lines (markers often span several `//`
/// lines) — the walk stops at the first code or fully blank line, so a
/// marker never binds across an intervening declaration or paragraph
/// break.
fn find_role(s: &Scrubbed, idx: usize) -> Option<(String, String)> {
    if let Some(m) = role_marker(&s.comments[idx]) {
        return Some(m);
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        if let Some(m) = role_marker(&s.comments[j]) {
            return Some(m);
        }
        let code = s.lines[j].trim();
        let comment = s.comments[j].trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        let is_comment_only = code.is_empty() && !comment.is_empty();
        if is_attr || is_comment_only {
            continue;
        }
        return None;
    }
    None
}

/// How a primitive-bearing line declares its primitive, if it does.
enum DeclKind {
    Static,
    Local,
    TupleStruct,
    Field,
}

/// Classify one line: is it a *declaration* of a sync primitive (static,
/// local binding, tuple struct, or struct field), or a mere mention
/// (constructor call in an initializer, function signature, import)?
fn classify_decl(toks: &[Tok], idx: usize, spans: &FileSpans) -> Option<(DeclKind, String)> {
    let prim_at = toks.iter().position(|t| SYNC_PRIMITIVES.contains(&t.text.as_str()))?;
    if toks.first().map(|t| t.is("use")) == Some(true) {
        return None;
    }
    // A `fn` before the primitive means it appears in a signature
    // (return type or parameter), which declares nothing.
    if find_tok(toks, "fn").is_some_and(|f| f < prim_at) {
        return None;
    }
    if let Some(at) = find_tok(toks, "static").filter(|&at| at < prim_at) {
        let name = ident_after(toks, at)?;
        return Some((DeclKind::Static, name));
    }
    if let Some(at) = find_tok(toks, "let").filter(|&at| at < prim_at) {
        let name = binding_name(&toks[at + 1..])?;
        return Some((DeclKind::Local, name));
    }
    if let Some(at) = find_tok(toks, "struct").filter(|&at| at < prim_at) {
        let name = ident_after(toks, at)?;
        return Some((DeclKind::TupleStruct, name));
    }
    if spans.struct_of[idx].is_some() {
        let name = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && !matches!(t.text.as_str(), "pub" | "crate"))?
            .text
            .clone();
        return Some((DeclKind::Field, name));
    }
    None
}

/// First identifier token after position `at`.
fn ident_after(toks: &[Tok], at: usize) -> Option<String> {
    toks[at + 1..].iter().find(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
}

/// The bound name in a `let` pattern, skipping `mut` and destructuring
/// wrappers (`Ok(`, `Some(`).
fn binding_name(toks: &[Tok]) -> Option<String> {
    toks.iter()
        .find(|t| {
            t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "Ok" | "Some" | "ref")
        })
        .map(|t| t.text.clone())
}

/// Pass 1: inventory sync-primitive declarations and enforce role
/// markers. Returns the inventory plus findings for undeclared or
/// mis-declared primitives.
pub fn check_sync_roles(
    rel_path: &Path,
    s: &Scrubbed,
    spans: &FileSpans,
) -> (Vec<SyncSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for (idx, code) in s.lines.iter().enumerate() {
        if s.in_test[idx] || !SYNC_PRIMITIVES.iter().any(|p| code.contains(p)) {
            continue;
        }
        let toks = line_tokens(code);
        let Some((_kind, name)) = classify_decl(&toks, idx, spans) else { continue };
        let mut prims: Vec<&str> = toks
            .iter()
            .filter(|t| SYNC_PRIMITIVES.contains(&t.text.as_str()))
            .map(|t| t.text.as_str())
            .collect();
        // Keep first occurrences only: a static's constructor repeats the
        // type name (`static X: AtomicU64 = AtomicU64::new(0)`).
        let mut seen: Vec<&str> = Vec::new();
        prims.retain(|p| {
            let fresh = !seen.contains(p);
            if fresh {
                seen.push(p);
            }
            fresh
        });
        let primitive = prims.join("+");
        let mut site = SyncSite {
            file: rel_path.to_path_buf(),
            line: idx + 1,
            primitive: primitive.clone(),
            name: name.clone(),
            role: None,
        };
        match find_role(s, idx) {
            None => findings.push(Finding {
                file: rel_path.to_path_buf(),
                line: idx + 1,
                rule: "sync-role",
                message: format!(
                    "sync primitive `{name}: {primitive}` has no role marker; declare it \
                     with `// audit:role(<{roles}>): <invariant>`",
                    roles = ROLES.join("|"),
                ),
            }),
            Some((role, invariant)) if !ROLES.contains(&role.as_str()) => {
                findings.push(Finding {
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    rule: "sync-role",
                    message: format!(
                        "unknown sync role `{role}` on `{name}` (known: {}); invariant: \
                         {invariant:?}",
                        ROLES.join(", ")
                    ),
                });
            }
            Some((role, invariant)) if invariant.is_empty() => {
                findings.push(Finding {
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    rule: "sync-role",
                    message: format!(
                        "role marker on `{name}` states no invariant; write \
                         `// audit:role({role}): <why this ordering is sound>`"
                    ),
                });
            }
            Some((role, _)) => site.role = Some(role),
        }
        sites.push(site);
    }
    (sites, findings)
}

/// The operation class an atomic method belongs to, for per-role rules.
enum OpClass {
    Load,
    Store,
    Rmw,
}

fn op_class(op: &str) -> OpClass {
    match op {
        "load" => OpClass::Load,
        "store" => OpClass::Store,
        _ => OpClass::Rmw,
    }
}

/// Orderings a role permits for one operation class.
fn allowed_orderings(role: &str, class: &OpClass) -> &'static [&'static str] {
    match role {
        "counter" | "gauge" | "hwm" | "seqgen" => &["Relaxed"],
        "flag" => match class {
            OpClass::Load => &["Acquire", "SeqCst"],
            OpClass::Store => &["Release", "SeqCst"],
            OpClass::Rmw => &["AcqRel", "SeqCst"],
        },
        // Lock-based roles synchronize through the lock; no atomic
        // orderings belong on them at all.
        _ => &[],
    }
}

/// Walk back from the `.` that precedes an atomic op to the receiver
/// identifier: `stats.accepted.fetch_add` → `accepted`;
/// `self.buckets[i].load` → `buckets`; `self.0.load` → the tuple-field
/// sentinel (resolved via the enclosing impl); `ENABLED.store` →
/// `ENABLED`.
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    let mut i = dot;
    // Skip one balanced `[...]` index expression.
    if i > 0 && toks[i - 1].text == "]" {
        let mut depth = 0i32;
        while i > 0 {
            i -= 1;
            match toks[i].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let prev = toks.get(i.checked_sub(1)?)?;
    match prev.kind {
        TokKind::Ident => Some(prev.text.clone()),
        TokKind::Number => Some(prev.text.clone()), // tuple-field index
        TokKind::Punct => None,
    }
}

/// True if rule-`ordering` waivers cover line `idx`.
fn ordering_waived(s: &Scrubbed, idx: usize) -> bool {
    crate::has_waiver(&s.comments[idx], "ordering")
        || (idx > 0 && crate::has_waiver(&s.comments[idx - 1], "ordering"))
}

/// Pass 2: atomics-discipline. Every `Ordering::` use site is resolved
/// to its receiver's declared role and checked against that role's
/// allowed orderings; `SeqCst` on a hot-path file is flagged regardless.
pub fn check_atomics_discipline(
    rel_path: &Path,
    s: &Scrubbed,
    spans: &FileSpans,
    sites: &[SyncSite],
) -> Vec<Finding> {
    let rel_str = rel_path.to_string_lossy().replace('\\', "/");
    let hot_path = HOT_PATH_FILES.contains(&rel_str.as_str());
    let role_of = |name: &str| -> Option<&str> {
        sites.iter().find(|site| site.name == name).and_then(|site| site.role.as_deref())
    };
    let mut out = Vec::new();
    for (idx, code) in s.lines.iter().enumerate() {
        if s.in_test[idx] || !code.contains("Ordering") {
            continue;
        }
        let toks = line_tokens(code);
        let orderings: Vec<&str> = toks
            .windows(3)
            .filter(|w| w[0].is("Ordering") && w[1].text == "::")
            .map(|w| w[2].text.as_str())
            .collect();
        if orderings.is_empty() {
            continue;
        }
        let op_at = toks.iter().enumerate().position(|(i, t)| {
            ATOMIC_OPS.contains(&t.text.as_str()) && i > 0 && toks[i - 1].text == "."
        });
        let Some(op_at) = op_at else { continue };
        let op = toks[op_at].text.clone();
        let class = op_class(&op);
        let waived = ordering_waived(s, idx);

        let recv = receiver_name(&toks, op_at - 1);
        let role = match &recv {
            Some(r) if r.chars().all(|c| c.is_ascii_digit()) => {
                // Tuple-field access: the enclosing impl's type carries
                // the role (e.g. `self.0` inside `impl Counter`).
                spans.impl_of[idx].as_deref().and_then(role_of)
            }
            Some(r) => role_of(r).or_else(|| spans.impl_of[idx].as_deref().and_then(role_of)),
            None => None,
        };
        let Some(role) = role else {
            if !waived {
                out.push(Finding {
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    rule: "atomics",
                    message: format!(
                        "atomic `{op}` on `{}` which has no declared sync role; add an \
                         `audit:role` marker at its declaration (or waive with \
                         `// audit:allow(ordering): reason`)",
                        recv.as_deref().unwrap_or("<unresolved receiver>")
                    ),
                });
            }
            continue;
        };
        let allowed = allowed_orderings(role, &class);
        for ord in &orderings {
            if !allowed.contains(ord) && !waived {
                out.push(Finding {
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    rule: "atomics",
                    message: if allowed.is_empty() {
                        format!(
                            "role `{role}` is lock-based; atomic `{op}({ord})` does not \
                             belong on it"
                        )
                    } else {
                        format!(
                            "role `{role}` allows {{{}}} for `{op}`, found `{ord}` \
                             (waive with `// audit:allow(ordering): <happens-before \
                             argument>`)",
                            allowed.join(", ")
                        )
                    },
                });
            } else if *ord == "SeqCst" && hot_path && !waived {
                out.push(Finding {
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    rule: "atomics",
                    message: format!(
                        "`SeqCst` on the hot path (`{op}` on role `{role}`): a full fence \
                         per operation is over-synchronization here; use \
                         Acquire/Release or waive with a reason"
                    ),
                });
            }
        }
    }
    out
}

/// Pass 3: lock-discipline. Track `let guard = ....lock()` bindings by
/// brace depth and flag any [`BLOCKING_CALLS`] call while a guard is
/// live; `drop(guard)` or scope exit retires the guard.
pub fn check_lock_discipline(rel_path: &Path, s: &Scrubbed) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // Live guards: (name, depth the binding's block sits at).
    let mut guards: Vec<(String, i64)> = Vec::new();
    for (idx, code) in s.lines.iter().enumerate() {
        let toks = line_tokens(code);
        if !s.in_test[idx] && !guards.is_empty() {
            for (i, t) in toks.iter().enumerate() {
                let is_call = BLOCKING_CALLS.contains(&t.text.as_str())
                    && toks.get(i + 1).map(|n| n.text == "(") == Some(true)
                    // `.lock()` chained before the call on the same line
                    // is the binding itself, handled below.
                    && !t.is("lock");
                if is_call {
                    let waived = crate::has_waiver(&s.comments[idx], "lock")
                        || (idx > 0 && crate::has_waiver(&s.comments[idx - 1], "lock"));
                    if !waived {
                        out.push(Finding {
                            file: rel_path.to_path_buf(),
                            line: idx + 1,
                            rule: "lock",
                            message: format!(
                                "blocking call `{}` while lock guard `{}` is live; drop \
                                 the guard first (or waive with `// audit:allow(lock): \
                                 reason`)",
                                t.text,
                                guards.last().map(|(n, _)| n.as_str()).unwrap_or("?"),
                            ),
                        });
                    }
                }
            }
        }
        // `drop(guard)` retires a guard mid-scope.
        for w in toks.windows(3) {
            if w[0].is("drop") && w[1].text == "(" {
                guards.retain(|(n, _)| *n != w[2].text);
            }
        }
        // New guard binding: `let [mut] name = ... .lock() ...`.
        if !s.in_test[idx] {
            let has_lock_call =
                toks.windows(3).any(|w| w[0].text == "." && w[1].is("lock") && w[2].text == "(");
            if has_lock_call {
                if let Some(at) = find_tok(&toks, "let") {
                    if let Some(name) = binding_name(&toks[at + 1..]) {
                        guards.push((name, depth));
                    }
                }
                // An unbound `.lock()` expression (e.g. `x.lock().y = v;`)
                // is a temporary guard dropped at the semicolon; nothing
                // to track.
            }
        }
        for t in &toks {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|(_, d)| depth >= *d);
    }
    out
}

/// True if the concurrency passes run on this workspace-relative path:
/// production sources only — `tests/`, `benches/`, and vendored
/// `third_party/` stand-ins are exempt.
pub fn concurrency_enforced(rel_path: &str) -> bool {
    !rel_path.starts_with("third_party/")
        && !rel_path.split('/').any(|seg| seg == "tests" || seg == "benches")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub;

    fn run_roles(src: &str) -> (Vec<SyncSite>, Vec<Finding>) {
        let s = scrub(src);
        let spans = FileSpans::new(&s.lines);
        check_sync_roles(Path::new("crates/x/src/lib.rs"), &s, &spans)
    }

    fn run_atomics(src: &str, path: &str) -> Vec<Finding> {
        let s = scrub(src);
        let spans = FileSpans::new(&s.lines);
        let (sites, role_findings) = check_sync_roles(Path::new(path), &s, &spans);
        assert!(role_findings.is_empty(), "fixture must declare roles: {role_findings:?}");
        check_atomics_discipline(Path::new(path), &s, &spans, &sites)
    }

    #[test]
    fn undeclared_primitive_fails_and_declared_is_inventoried() {
        let src = "pub struct S {\n    pub hits: AtomicU64,\n    // audit:role(counter): monotonic; exact at join\n    pub misses: AtomicU64,\n}\n";
        let (sites, findings) = run_roles(src);
        assert_eq!(sites.len(), 2);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].rule, "sync-role");
        assert_eq!(sites[1].role.as_deref(), Some("counter"));
        assert_eq!(sites[1].name, "misses");
    }

    #[test]
    fn role_marker_may_sit_above_docs_and_attributes() {
        let src = "// audit:role(counter): delta cell; Relaxed adds only\n/// Documented.\n#[derive(Debug)]\npub struct Counter(AtomicU64);\n";
        let (sites, findings) = run_roles(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(sites[0].name, "Counter");
        assert_eq!(sites[0].role.as_deref(), Some("counter"));
    }

    #[test]
    fn unknown_role_and_empty_invariant_are_findings() {
        let bad_role = "// audit:role(blob): whatever\nstatic X: AtomicU64 = AtomicU64::new(0);\n";
        let (_, findings) = run_roles(bad_role);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown sync role"));
        let no_inv = "// audit:role(counter)\nstatic Y: AtomicU64 = AtomicU64::new(0);\n";
        let (_, findings) = run_roles(no_inv);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no invariant"));
    }

    #[test]
    fn constructor_mentions_and_signatures_are_not_declarations() {
        let src = "impl S {\n    fn new() -> S {\n        S { hits: AtomicU64::new(0) }\n    }\n}\nfn cache() -> &'static Mutex<u64> {\n    unimplemented!()\n}\n";
        let (sites, findings) = run_roles(src);
        assert!(sites.is_empty(), "{sites:?}");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn doc_comment_mentioning_the_marker_declares_nothing() {
        let src = "/// Use `// audit:role(counter): ...` markers.\npub struct S {\n    pub hits: AtomicU64,\n}\n";
        let (_, findings) = run_roles(src);
        assert_eq!(findings.len(), 1, "doc text must not satisfy the role requirement");
    }

    #[test]
    fn counter_role_permits_relaxed_and_flags_stronger() {
        let ok = "pub struct S {\n    // audit:role(counter): monotonic\n    pub hits: AtomicU64,\n}\nimpl S {\n    fn bump(&self) {\n        self.hits.fetch_add(1, Ordering::Relaxed);\n    }\n}\n";
        assert!(run_atomics(ok, "crates/x/src/lib.rs").is_empty());
        let over = ok.replace("Ordering::Relaxed", "Ordering::AcqRel");
        let got = run_atomics(&over, "crates/x/src/lib.rs");
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("allows {Relaxed}"), "{}", got[0].message);
    }

    #[test]
    fn flag_role_requires_release_store_and_acquire_load() {
        let src = "pub struct S {\n    // audit:role(flag): shutdown edge; Release publishes, Acquire observes\n    pub stop: AtomicBool,\n}\nimpl S {\n    fn run(&self) {\n        self.stop.store(true, Ordering::Relaxed);\n        let _ = self.stop.load(Ordering::Relaxed);\n        self.stop.store(true, Ordering::Release);\n        let _ = self.stop.load(Ordering::Acquire);\n    }\n}\n";
        let got = run_atomics(src, "crates/x/src/lib.rs");
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!((got[0].line, got[1].line), (7, 8));
    }

    #[test]
    fn tuple_field_access_resolves_via_enclosing_impl() {
        let src = "// audit:role(gauge): level; Relaxed\npub struct Gauge(AtomicU64);\nimpl Gauge {\n    fn set(&self, v: u64) {\n        self.0.store(v, Ordering::Relaxed);\n    }\n}\n";
        assert!(run_atomics(src, "crates/x/src/lib.rs").is_empty());
        let over = src.replace("Ordering::Relaxed", "Ordering::SeqCst");
        assert_eq!(run_atomics(&over, "crates/x/src/lib.rs").len(), 1);
    }

    #[test]
    fn seqcst_on_hot_path_is_flagged_and_waivable() {
        let src = "pub struct S {\n    // audit:role(flag): stop edge\n    pub stop: AtomicBool,\n}\nimpl S {\n    fn stop(&self) {\n        self.stop.store(true, Ordering::SeqCst);\n    }\n}\n";
        let hot = run_atomics(src, "crates/serve/src/server.rs");
        assert_eq!(hot.len(), 1);
        assert!(hot[0].message.contains("hot path"), "{}", hot[0].message);
        let cold = run_atomics(src, "crates/core/src/other.rs");
        assert!(cold.is_empty(), "SeqCst on a flag off the hot path is allowed");
        let waived = src.replace(
            "self.stop.store(true, Ordering::SeqCst);",
            "// audit:allow(ordering): drop path, not hot\n        self.stop.store(true, Ordering::SeqCst);",
        );
        assert!(run_atomics(&waived, "crates/serve/src/server.rs").is_empty());
    }

    #[test]
    fn lock_based_roles_reject_atomic_orderings() {
        let src = "pub struct Q {\n    // audit:role(queue): mutex orders everything\n    pub state: Mutex<u64>,\n}\nimpl Q {\n    fn bad(&self) {\n        self.state.load(Ordering::Relaxed);\n    }\n}\n";
        let got = run_atomics(src, "crates/x/src/lib.rs");
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("lock-based"), "{}", got[0].message);
    }

    #[test]
    fn ordering_on_undeclared_receiver_is_a_finding() {
        let src =
            "fn f(x: &std::sync::atomic::AtomicU64) {\n    x.store(1, Ordering::Relaxed);\n}\n";
        let s = scrub(src);
        let spans = FileSpans::new(&s.lines);
        let got = check_atomics_discipline(Path::new("crates/x/src/lib.rs"), &s, &spans, &[]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("no declared sync role"));
    }

    fn run_lock(src: &str) -> Vec<Finding> {
        let s = scrub(src);
        check_lock_discipline(Path::new("crates/serve/src/x.rs"), &s)
    }

    #[test]
    fn blocking_call_under_guard_is_flagged() {
        let src = "fn f(m: &Mutex<u64>, s: &mut TcpStream) {\n    let g = m.lock().expect(\"p\");\n    write_all(s, b\"x\");\n}\n";
        let got = run_lock(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
        assert!(got[0].message.contains("`write_all` while lock guard `g`"), "{}", got[0].message);
    }

    #[test]
    fn dropping_the_guard_or_leaving_scope_ends_enforcement() {
        let dropped = "fn f(m: &Mutex<u64>, s: &mut TcpStream) {\n    let g = m.lock().expect(\"p\");\n    drop(g);\n    write_all(s, b\"x\");\n}\n";
        assert!(run_lock(dropped).is_empty());
        let scoped = "fn f(m: &Mutex<u64>, s: &mut TcpStream) {\n    {\n        let g = m.lock().expect(\"p\");\n        let _ = *g;\n    }\n    write_all(s, b\"x\");\n}\n";
        assert!(run_lock(scoped).is_empty());
    }

    #[test]
    fn condvar_wait_is_allowed_and_waiver_works() {
        let wait = "fn f(m: &Mutex<u64>, cv: &Condvar) {\n    let g = m.lock().expect(\"p\");\n    let _g = cv.wait_timeout(g, d).expect(\"p\");\n}\n";
        assert!(run_lock(wait).is_empty(), "condvar wait releases the lock");
        let waived = "fn f(m: &Mutex<u64>) {\n    let g = m.lock().expect(\"p\");\n    // audit:allow(lock): startup only, single-threaded\n    std::thread::sleep(d);\n}\n";
        assert!(run_lock(waived).is_empty());
    }

    #[test]
    fn enforcement_scope_exempts_tests_and_third_party() {
        assert!(concurrency_enforced("crates/serve/src/server.rs"));
        assert!(!concurrency_enforced("crates/net/tests/stress.rs"));
        assert!(!concurrency_enforced("third_party/proptest/src/lib.rs"));
    }
}
