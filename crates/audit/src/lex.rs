//! A lightweight Rust tokenizer for the audit passes.
//!
//! The analyzer never needs full parsing — every rule it enforces is a
//! pattern over identifiers and punctuation — but it does need tokens
//! rather than substrings, so `as_of` never matches `as`, `Mutex` in a
//! doc string never registers, and `self.0.load(...)` can be walked
//! backwards to a receiver. Tokenization runs over the *scrubbed* code
//! channel (see [`crate::scrub`]), which has already blanked comments,
//! strings, and char literals, so the token stream is code and only code.
//!
//! [`FileSpans`] adds the two pieces of cheap structure the concurrency
//! passes need on top of a flat token stream: for every line, the name of
//! the enclosing `struct` declaration body (to tell a field declaration
//! from a struct-literal initializer) and of the enclosing `impl` block
//! (to resolve `self.0` on a tuple struct to its type's declared role).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `static`, `AtomicU64`, `fetch_add`).
    Ident,
    /// Integer literal (tuple-field indices like the `0` in `self.0`).
    Number,
    /// Punctuation; multi-char operators `::`, `->`, `=>` stay together.
    Punct,
}

/// One token on one line of scrubbed code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token text.
    pub text: String,
    /// Classification.
    pub kind: TokKind,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
}

/// Tokenize one line of scrubbed code.
pub fn line_tokens(code: &str) -> Vec<Tok> {
    let b: Vec<char> = code.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Tok { text: b[start..i].iter().collect(), kind: TokKind::Ident });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Tok { text: b[start..i].iter().collect(), kind: TokKind::Number });
        } else {
            let two: String = b[i..(i + 2).min(b.len())].iter().collect();
            if two == "::" || two == "->" || two == "=>" {
                toks.push(Tok { text: two, kind: TokKind::Punct });
                i += 2;
            } else {
                toks.push(Tok { text: c.to_string(), kind: TokKind::Punct });
                i += 1;
            }
        }
    }
    toks
}

/// Index of the first token with this text, if any.
pub fn find_tok(toks: &[Tok], text: &str) -> Option<usize> {
    toks.iter().position(|t| t.text == text)
}

/// Per-line structural context for a whole file.
#[derive(Debug)]
pub struct FileSpans {
    /// For each line: the name of the `struct` whose declaration braces
    /// enclose it, if any.
    pub struct_of: Vec<Option<String>>,
    /// For each line: the self type of the `impl` block enclosing it.
    pub impl_of: Vec<Option<String>>,
}

/// What kind of named block an open brace belongs to.
enum BlockKind {
    Struct,
    Impl,
    Other,
}

/// A block header seen but whose `{` has not arrived yet.
struct Pending {
    kind: BlockKind,
    name: String,
}

impl FileSpans {
    /// Compute spans by walking the scrubbed code lines with brace
    /// tracking. Only `struct` and `impl` blocks are named; everything
    /// else (fns, matches, loops) pushes an anonymous frame so nesting
    /// stays balanced.
    pub fn new(code_lines: &[String]) -> FileSpans {
        let n = code_lines.len();
        let mut struct_of: Vec<Option<String>> = vec![None; n];
        let mut impl_of: Vec<Option<String>> = vec![None; n];
        // Stack of (kind, name) per open brace.
        let mut stack: Vec<(BlockKind, String)> = Vec::new();
        let mut pending: Option<Pending> = None;

        for (idx, line) in code_lines.iter().enumerate() {
            // The line inherits the context that is open when it starts.
            struct_of[idx] = innermost(&stack, |k| matches!(k, BlockKind::Struct));
            impl_of[idx] = innermost(&stack, |k| matches!(k, BlockKind::Impl));

            let toks = line_tokens(line);
            let mut i = 0;
            while i < toks.len() {
                let t = &toks[i];
                if t.is("struct") {
                    if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                        pending =
                            Some(Pending { kind: BlockKind::Struct, name: name.text.clone() });
                    }
                } else if t.is("impl") {
                    if let Some(name) = impl_target(&toks[i + 1..]) {
                        pending = Some(Pending { kind: BlockKind::Impl, name });
                    }
                } else if t.text == "{" {
                    match pending.take() {
                        Some(p) => stack.push((p.kind, p.name)),
                        None => stack.push((BlockKind::Other, String::new())),
                    }
                    // A brace opening mid-line puts the rest of this line
                    // inside the block; field declarations on the header
                    // line itself do not occur in rustfmt'd code.
                } else if t.text == "}" {
                    stack.pop();
                } else if t.text == ";" {
                    // `struct Name(...);` or `struct Name;` — a tuple or
                    // unit struct has no brace block.
                    pending = None;
                }
                i += 1;
            }
        }
        FileSpans { struct_of, impl_of }
    }
}

/// The innermost named frame matching `want`, if any.
fn innermost(stack: &[(BlockKind, String)], want: impl Fn(&BlockKind) -> bool) -> Option<String> {
    stack.iter().rev().find(|(k, _)| want(k)).map(|(_, n)| n.clone())
}

/// The self-type name of an `impl` header: skip one balanced `<...>`
/// generic-parameter list if present, take the first identifier, and if a
/// `for` follows before the block opens, take the identifier after `for`
/// instead (trait impls name the implementing type).
fn impl_target(toks: &[Tok]) -> Option<String> {
    let mut i = 0;
    if toks.get(i).map(|t| t.text == "<") == Some(true) {
        let mut depth = 0i32;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut name = None;
    let mut saw_for = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.text == "{" {
            break;
        }
        if t.is("for") {
            saw_for = true;
            name = None;
        } else if t.kind == TokKind::Ident && name.is_none() {
            name = Some(t.text.clone());
        } else if saw_for && t.text == "::" {
            // `impl Trait for mod::Type` — keep scanning so the last
            // path segment wins.
            name = None;
        }
        i += 1;
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_split_idents_numbers_and_multichar_puncts() {
        let toks = line_tokens("self.0.load(Ordering::Relaxed) -> u64");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["self", ".", "0", ".", "load", "(", "Ordering", "::", "Relaxed", ")", "->", "u64"]
        );
        assert_eq!(toks[2].kind, TokKind::Number);
        assert_eq!(toks[7].kind, TokKind::Punct);
    }

    #[test]
    fn spans_name_struct_bodies_and_impl_blocks() {
        let src = "pub struct Stats {\n    pub hits: AtomicU64,\n}\nimpl Stats {\n    fn get(&self) {}\n}\nimpl<T> Queue<T> {\n    fn pop(&self) {}\n}\nimpl std::fmt::Display for Stats {\n    fn fmt(&self) {}\n}\n";
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let spans = FileSpans::new(&lines);
        assert_eq!(spans.struct_of[1].as_deref(), Some("Stats"));
        assert_eq!(spans.struct_of[4], None, "impl bodies are not struct bodies");
        assert_eq!(spans.impl_of[4].as_deref(), Some("Stats"));
        assert_eq!(spans.impl_of[7].as_deref(), Some("Queue"), "generics are skipped");
        assert_eq!(spans.impl_of[10].as_deref(), Some("Stats"), "trait impls name the self type");
    }

    #[test]
    fn tuple_structs_do_not_open_a_span() {
        let src = "pub struct Counter(AtomicU64);\nfn f() {\n    let x = 1;\n}\n";
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let spans = FileSpans::new(&lines);
        assert!(spans.struct_of.iter().all(Option::is_none));
    }
}
