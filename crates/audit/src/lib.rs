//! Workspace lint pass for the AON reproduction.
//!
//! `cargo run -p aon-audit` walks the workspace sources and enforces four
//! rules that `rustc`/`clippy` either cannot express precisely or that we
//! want enforced with our own scoping:
//!
//! 1. **casts** — no raw `as` numeric casts in counter/metric arithmetic
//!    (the files listed in [`CAST_ENFORCED_FILES`]). Counter math must use
//!    `From`/`try_from` or a checked helper so a 32-bit truncation can
//!    never silently corrupt a paper table. Elsewhere `as` is merely
//!    counted and reported as information.
//! 2. **unwrap** — no `.unwrap()` / `panic!` outside `#[cfg(test)]` mods,
//!    `tests/` directories, benches, and `crates/bench/src/bin` (the
//!    figure-generating CLIs, where aborting on bad input is the intended
//!    behaviour). Library code must propagate or `expect` with context.
//! 3. **lint-gate** — every workspace crate opts into the shared lint
//!    table (`[lints] workspace = true`, with the workspace defining
//!    `unsafe_code = "forbid"` and `missing_docs = "warn"`), or carries
//!    the equivalent `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]`
//!    attributes in its crate root.
//! 4. **docs** — every `pub` item in the metric-definition files
//!    ([`DOC_ENFORCED_FILES`]) has a doc comment, including struct fields:
//!    these names become column headers in reproduced paper tables.
//!
//! On top of these, the [`concurrency`] module adds three passes over the
//! same scrubbed source (backed by the [`lex`] tokenizer): a **sync-role
//! registry** (every `Atomic*`/`Mutex`/`Condvar`/... declaration carries
//! an `audit:role(...)` marker), **atomics-discipline** (per-role allowed
//! `Ordering`s, with `SeqCst` flagged on hot-path files), and
//! **lock-discipline** (no guard held across blocking I/O in the serving
//! crates). See the module docs for the role taxonomy and marker syntax.
//!
//! The total number of waiver lines in the workspace is pinned by a
//! budget file ([`WAIVER_BUDGET_FILE`]): the CLI fails when the actual
//! count differs from the budget in either direction, so adding *or*
//! retiring a waiver forces a visible budget bump in the same diff.
//!
//! A violation can be waived with a marker comment on the same line or on
//! the line directly above:
//!
//! ```text
//! let x = ticks as f64; // audit:allow(cast): bounded by BATCH above
//! ```
//!
//! The marker names the rule (`cast`, `unwrap`, `panic`) and should carry
//! a justification after the colon. Waivers are counted and listed in the
//! summary so they stay visible; markers inside string literals waive
//! nothing.

pub mod concurrency;
pub mod lex;

use std::fmt;
use std::path::{Path, PathBuf};

/// Files where rule 1 (no raw `as` casts) is enforced rather than
/// informational: all counter/metric arithmetic lives here.
pub const CAST_ENFORCED_FILES: &[&str] = &[
    "crates/bench/src/perf.rs",
    "crates/core/src/cellcache.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/report.rs",
    "crates/hw/src/counters.rs",
    "crates/obs/src/flight.rs",
    "crates/obs/src/hwcounters.rs",
    "crates/obs/src/latency.rs",
    "crates/obs/src/metric.rs",
    "crates/obs/src/profiler.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/reqtrace.rs",
    "crates/obs/src/scrape.rs",
    "crates/obs/src/stage.rs",
    "crates/serve/src/governor.rs",
    "crates/serve/src/loadgen.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/obs.rs",
    "crates/sim/src/counters.rs",
    "crates/sim/src/stats.rs",
    "crates/xml/src/scan.rs",
    "crates/xml/src/schema/automaton.rs",
    "crates/xml/src/xpath/compile.rs",
];

/// Files where rule 4 (doc comment on every `pub` item) is enforced.
pub const DOC_ENFORCED_FILES: &[&str] = &[
    "crates/core/src/metrics.rs",
    "crates/hw/src/counters.rs",
    "crates/obs/src/metric.rs",
    "crates/obs/src/reqtrace.rs",
    "crates/sim/src/counters.rs",
    "crates/xml/src/scan.rs",
    "crates/xml/src/schema/automaton.rs",
    "crates/xml/src/xpath/compile.rs",
];

/// Directory names under which rule 2 (unwrap/panic) is not enforced, in
/// any position of the path (integration tests and bench targets).
const UNWRAP_EXEMPT_DIRS: &[&str] = &["tests", "benches"];

/// Path prefixes under which rule 2 is not enforced (the figure CLIs).
const UNWRAP_EXEMPT_PREFIXES: &[&str] = &["crates/bench/src/bin/"];

/// True if rule 2 skips this workspace-relative path entirely.
fn unwrap_exempt(rel_path: &str) -> bool {
    rel_path.split('/').any(|seg| UNWRAP_EXEMPT_DIRS.contains(&seg))
        || UNWRAP_EXEMPT_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Short rule name (`casts`, `unwrap`, `lint-gate`, `docs`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    /// `file:line: rule: message` — the shape editors and CI understand.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Source text with comments/strings blanked out and test-module spans
/// marked, so the rules can pattern-match without false positives.
#[derive(Debug)]
pub struct Scrubbed {
    /// Code-only text per line (same line count as the input; string and
    /// comment interiors replaced by spaces).
    pub lines: Vec<String>,
    /// Comment-only text per line (for waiver-marker lookup; string
    /// interiors are blanked here too, so a marker quoted in a string
    /// never registers).
    pub comments: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` module.
    pub in_test: Vec<bool>,
}

/// Blank out comments and string/char literals, then mark `#[cfg(test)]`
/// module spans by brace tracking.
pub fn scrub(source: &str) -> Scrubbed {
    let (code, cmt) = blank_non_code(source);
    let lines: Vec<String> = code.lines().map(str::to_string).collect();
    let comments: Vec<String> = cmt.lines().map(str::to_string).collect();
    let in_test = mark_test_spans(&lines);
    Scrubbed { lines, comments, in_test }
}

/// Character classification for [`blank_non_code`]'s output channels.
#[derive(Clone, Copy, PartialEq)]
enum Chan {
    /// Live code: kept in the code view, blanked in the comment view.
    Code,
    /// Comment interior: kept in the comment view, blanked in the code view.
    Comment,
    /// String/char literal interior: blanked in both views.
    Literal,
}

/// Split the source into a code view and a comment view with identical
/// line structure: each character lands verbatim in its own channel and as
/// a space in the other; literal interiors are spaces in both. Handles
/// `//`, nested `/* */`, `"…"` with escapes, raw strings `r"…"`/`r#"…"#`,
/// and char literals (while leaving lifetimes like `'a` alone).
fn blank_non_code(source: &str) -> (String, String) {
    let b: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut cmt = String::with_capacity(source.len());
    let mut push = |c: char, chan: Chan| {
        if c == '\n' {
            code.push('\n');
            cmt.push('\n');
        } else {
            code.push(if chan == Chan::Code { c } else { ' ' });
            cmt.push(if chan == Chan::Comment { c } else { ' ' });
        }
    };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    push(b[i], Chan::Comment);
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                push('/', Chan::Comment);
                push('*', Chan::Comment);
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        push('/', Chan::Comment);
                        push('*', Chan::Comment);
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        push('*', Chan::Comment);
                        push('/', Chan::Comment);
                        i += 2;
                    } else {
                        push(b[i], Chan::Comment);
                        i += 1;
                    }
                }
            }
            '"' => {
                push('"', Chan::Code);
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        push(' ', Chan::Literal);
                        if let Some(&next) = b.get(i + 1) {
                            push(next, Chan::Literal);
                        }
                        i += 2;
                    } else if b[i] == '"' {
                        push('"', Chan::Code);
                        i += 1;
                        break;
                    } else {
                        push(b[i], Chan::Literal);
                        i += 1;
                    }
                }
            }
            'r' if matches!(b.get(i + 1), Some(&'"') | Some(&'#')) => {
                // Raw string: r"…" or r#"…"# (any number of #).
                let mut hashes = 0;
                let mut j = i + 1;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    for _ in i..=j {
                        push(' ', Chan::Literal);
                    }
                    i = j + 1;
                    // Scan for `"` followed by `hashes` #s.
                    'raw: while i < b.len() {
                        if b[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0;
                            while seen < hashes && b.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                for _ in i..k {
                                    push(' ', Chan::Literal);
                                }
                                i = k;
                                break 'raw;
                            }
                        }
                        push(b[i], Chan::Literal);
                        i += 1;
                    }
                } else {
                    push('r', Chan::Code);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // chars (`'x'`, `'\n'`, `'\u{1F600}'`); a lifetime never
                // has a closing quote before a non-ident char.
                let close = (i + 1..b.len().min(i + 12)).find(|&j| b[j] == '\'');
                let is_literal = match close {
                    Some(j) if j == i + 1 => false, // `''` can't be a char
                    Some(j) => b[i + 1] == '\\' || j == i + 2,
                    None => false,
                };
                if let (true, Some(j)) = (is_literal, close) {
                    for _ in i..=j {
                        push(' ', Chan::Literal);
                    }
                    i = j + 1;
                } else {
                    push('\'', Chan::Code);
                    i += 1;
                }
            }
            _ => {
                push(c, Chan::Code);
                i += 1;
            }
        }
    }
    (code, cmt)
}

/// Mark the line span of every `#[cfg(test)] mod … { … }` block.
fn mark_test_spans(code_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        if code_lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the opening brace of the item that follows, then the
            // matching close, counting braces across lines.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < code_lines.len() {
                in_test[j] = true;
                for ch in code_lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// True if the line's comment text carries an `audit:allow(<rule>)`
/// waiver marker. Only comment text is consulted, so a marker quoted in a
/// string literal (e.g. this tool's own diagnostic messages) waives
/// nothing.
pub fn has_waiver(comment_line: &str, rule: &str) -> bool {
    if !is_waiver_comment(comment_line) {
        return false;
    }
    comment_line.find("audit:allow(").is_some_and(|at| {
        comment_line[at + "audit:allow(".len()..].starts_with(&format!("{rule})"))
    })
}

/// A waiver must sit in a plain `//` comment: doc comments (`///`, `//!`)
/// and block comments merely *describe* the syntax and waive nothing.
fn is_waiver_comment(comment_line: &str) -> bool {
    let t = comment_line.trim_start();
    t.starts_with("//") && !t.starts_with("///") && !t.starts_with("//!")
}

/// The rule name inside an `audit:allow(<rule>)` marker, if the line
/// carries one that [`is_waiver_comment`] accepts.
pub fn waiver_rule(comment_line: &str) -> Option<String> {
    if !is_waiver_comment(comment_line) {
        return None;
    }
    let at = comment_line.find("audit:allow(")?;
    let rest = &comment_line[at + "audit:allow(".len()..];
    let close = rest.find(')')?;
    Some(rest[..close].trim().to_string())
}

/// A violation on line `idx` is waived by a marker on the same line or on
/// the line immediately above it.
fn line_waived(s: &Scrubbed, idx: usize, rule: &str) -> bool {
    has_waiver(&s.comments[idx], rule) || (idx > 0 && has_waiver(&s.comments[idx - 1], rule))
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Count raw `as <numeric>` casts on one scrubbed line, by token pair so
/// identifiers merely containing `as` never match.
fn casts_on_line(code: &str) -> usize {
    let toks = lex::line_tokens(code);
    toks.windows(2).filter(|w| w[0].is("as") && NUMERIC_TYPES.contains(&w[1].text.as_str())).count()
}

/// Rule 1: raw numeric `as` casts in an enforced file (non-test lines,
/// minus waived ones).
pub fn check_casts(rel_path: &Path, s: &Scrubbed) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, code) in s.lines.iter().enumerate() {
        if s.in_test[idx] || casts_on_line(code) == 0 {
            continue;
        }
        if line_waived(s, idx, "cast") {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_path_buf(),
            line: idx + 1,
            rule: "casts",
            message: "raw `as` numeric cast in counter/metric arithmetic; use \
                      From/try_from or a checked helper (or waive with \
                      `// audit:allow(cast): reason`)"
                .to_string(),
        });
    }
    out
}

/// Count raw casts on non-test lines (informational, for files where rule
/// 1 is not enforced).
pub fn count_casts(s: &Scrubbed) -> usize {
    s.lines.iter().enumerate().filter(|(i, _)| !s.in_test[*i]).map(|(_, l)| casts_on_line(l)).sum()
}

/// Rule 2: `.unwrap()` / `panic!` outside tests and exempt paths.
pub fn check_unwrap_panic(rel_path: &Path, s: &Scrubbed) -> Vec<Finding> {
    let p = rel_path.to_string_lossy().replace('\\', "/");
    if unwrap_exempt(&p) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in s.lines.iter().enumerate() {
        if s.in_test[idx] {
            continue;
        }
        for (needle, rule_name) in [(".unwrap()", "unwrap"), ("panic!", "panic")] {
            if code.contains(needle) && !line_waived(s, idx, rule_name) {
                out.push(Finding {
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    rule: "unwrap",
                    message: format!(
                        "`{needle}` outside tests; propagate the error or use \
                         `expect` with context (or waive with \
                         `// audit:allow({rule_name}): reason`)"
                    ),
                });
            }
        }
    }
    out
}

/// Crates exempt from the `unsafe_code = "forbid"` half of the lint
/// gate: the audited unsafe islands (raw syscall bindings live in
/// `aon-hw` and nowhere else). Exemption is not a free pass — the
/// island's manifest must still replicate the rest of the workspace
/// lint table (checked: `missing_docs = "warn"`), and its sources stay
/// on the cast/doc enforcement lists above.
pub const UNSAFE_ISLAND_MANIFESTS: &[&str] = &["crates/hw/Cargo.toml"];

/// Rule 3: the crate opts into the workspace lint gate. Accepts a
/// manifest `[lints] workspace = true` (with the workspace table defining
/// `unsafe_code = "forbid"` and `missing_docs = "warn"`), the equivalent
/// crate-root attributes, or — for [`UNSAFE_ISLAND_MANIFESTS`] only — a
/// crate-local lint table that keeps `missing_docs = "warn"` while
/// permitting the audited `unsafe`.
pub fn check_lint_gate(
    rel_manifest: &Path,
    manifest: &str,
    root_source: &str,
    workspace_defines_gate: bool,
) -> Vec<Finding> {
    let inherits = manifest_inherits_workspace_lints(manifest);
    let has_attrs = root_source.contains("#![forbid(unsafe_code)]")
        && root_source.contains("#![warn(missing_docs)]");
    let island = UNSAFE_ISLAND_MANIFESTS.iter().any(|m| Path::new(m) == rel_manifest)
        && manifest.replace(' ', "").contains("missing_docs=\"warn\"");
    if (inherits && workspace_defines_gate) || has_attrs || island {
        return Vec::new();
    }
    vec![Finding {
        file: rel_manifest.to_path_buf(),
        line: 1,
        rule: "lint-gate",
        message: "crate neither inherits `[lints] workspace = true` (with the \
                  workspace table forbidding unsafe_code and warning on \
                  missing_docs) nor carries `#![forbid(unsafe_code)]` + \
                  `#![warn(missing_docs)]` in its crate root"
            .to_string(),
    }]
}

/// True if the manifest contains `[lints]` followed by `workspace = true`.
fn manifest_inherits_workspace_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
        } else if in_lints && t.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

/// True if the workspace manifest defines the required lint levels.
pub fn workspace_defines_gate(root_manifest: &str) -> bool {
    let mut section = String::new();
    let mut forbid_unsafe = false;
    let mut warn_docs = false;
    for line in root_manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            section = t.to_string();
        } else if section == "[workspace.lints.rust]" {
            let t = t.replace(' ', "");
            if t == "unsafe_code=\"forbid\"" {
                forbid_unsafe = true;
            }
            if t == "missing_docs=\"warn\"" || t == "missing_docs=\"deny\"" {
                warn_docs = true;
            }
        }
    }
    forbid_unsafe && warn_docs
}

/// Rule 4: every `pub` item carries a doc comment. Checked against the
/// raw source (doc comments are comments, so the scrubbed text is blind
/// to them); `pub(crate)`/`pub(super)` items and `pub use` re-exports are
/// not public API and are skipped.
pub fn check_doc_comments(rel_path: &Path, source: &str) -> Vec<Finding> {
    let scrubbed = scrub(source);
    let raw: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        if scrubbed.in_test[idx] {
            continue;
        }
        let t = line.trim_start();
        let is_pub_item = t.starts_with("pub ")
            && !t.starts_with("pub use ")
            && scrubbed.lines[idx].trim_start().starts_with("pub ");
        if !is_pub_item {
            continue;
        }
        // Walk back over attributes and plain `//` comments (e.g. an
        // `audit:role` marker) to the line that should document it.
        let mut j = idx;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let prev = raw[j].trim_start();
            if prev.starts_with("#[")
                || prev.starts_with("#![")
                || (prev.starts_with("//") && !prev.starts_with("///") && !prev.starts_with("//!"))
            {
                continue;
            }
            documented = prev.starts_with("///") || prev.starts_with("#[doc");
            break;
        }
        if !documented {
            let name = t
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .filter(|w| !w.is_empty())
                .find(|w| {
                    ![
                        "pub", "fn", "struct", "enum", "const", "static", "type", "trait", "mod",
                        "unsafe", "async",
                    ]
                    .contains(w)
                })
                .unwrap_or("<item>");
            out.push(Finding {
                file: rel_path.to_path_buf(),
                line: idx + 1,
                rule: "docs",
                message: format!("public item `{name}` has no doc comment"),
            });
        }
    }
    out
}

/// One `audit:allow(...)` marker line found in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Waiver {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line number of the marker.
    pub line: usize,
    /// The rule name inside the marker's parentheses.
    pub rule: String,
}

/// Full report from one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Raw `as` casts seen in files where rule 1 is informational only.
    pub informational_casts: usize,
    /// Every `audit:allow(...)` marker line, sorted by (file, line).
    pub waivers: Vec<Waiver>,
    /// Every sync-primitive declaration the role registry inventoried,
    /// sorted by (file, line).
    pub sync_sites: Vec<concurrency::SyncSite>,
    /// Rust files scanned.
    pub files_scanned: usize,
}

/// The workspace-relative path of the waiver-count budget file. The file
/// holds the exact number of waiver lines the workspace is allowed to
/// carry; any waiver added or removed must bump it in the same diff, so
/// waiver churn is always visible in review.
pub const WAIVER_BUDGET_FILE: &str = "crates/audit/waiver-budget.txt";

/// Read the waiver budget: the first non-comment, non-blank line of
/// [`WAIVER_BUDGET_FILE`], parsed as a count.
pub fn waiver_budget(root: &Path) -> Result<usize, String> {
    let path = root.join(WAIVER_BUDGET_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {WAIVER_BUDGET_FILE}: {e}"))?;
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or_else(|| format!("{WAIVER_BUDGET_FILE} contains no budget line"))?
        .parse()
        .map_err(|e| format!("{WAIVER_BUDGET_FILE}: bad budget count: {e}"))
}

/// Walk the workspace at `root` and apply all four rules.
pub fn audit_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let gate_defined = workspace_defines_gate(&root_manifest);

    let mut rust_files = Vec::new();
    collect_rust_files(root, root, &mut rust_files)?;
    rust_files.sort();

    for rel in &rust_files {
        let source = std::fs::read_to_string(root.join(rel))?;
        let s = scrub(&source);
        report.files_scanned += 1;
        for (idx, cmt) in s.comments.iter().enumerate() {
            if let Some(rule) = waiver_rule(cmt) {
                report.waivers.push(Waiver { file: rel.clone(), line: idx + 1, rule });
            }
        }
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if CAST_ENFORCED_FILES.contains(&rel_str.as_str()) {
            report.findings.extend(check_casts(rel, &s));
        } else {
            report.informational_casts += count_casts(&s);
        }
        report.findings.extend(check_unwrap_panic(rel, &s));
        if DOC_ENFORCED_FILES.contains(&rel_str.as_str()) {
            report.findings.extend(check_doc_comments(rel, &source));
        }
        if concurrency::concurrency_enforced(&rel_str) {
            let spans = lex::FileSpans::new(&s.lines);
            let (sites, role_findings) = concurrency::check_sync_roles(rel, &s, &spans);
            report.findings.extend(role_findings);
            report.findings.extend(concurrency::check_atomics_discipline(rel, &s, &spans, &sites));
            if concurrency::LOCK_ENFORCED_PREFIXES.iter().any(|p| rel_str.starts_with(p)) {
                report.findings.extend(concurrency::check_lock_discipline(rel, &s));
            }
            report.sync_sites.extend(sites);
        }
    }

    // Rule 3 over every crate manifest (workspace members only).
    let mut manifests = vec![PathBuf::from("Cargo.toml")];
    for dir in ["crates", "third_party"] {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else { continue };
        for e in entries.flatten() {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m.strip_prefix(root).unwrap_or(&m).to_path_buf());
            }
        }
    }
    manifests.sort();
    for rel in manifests {
        let manifest = std::fs::read_to_string(root.join(&rel))?;
        let crate_dir = rel.parent().unwrap_or(Path::new(""));
        let mut root_source = String::new();
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let p = root.join(crate_dir).join(candidate);
            if let Ok(text) = std::fs::read_to_string(p) {
                root_source.push_str(&text);
            }
        }
        report.findings.extend(check_lint_gate(&rel, &manifest, &root_source, gate_defined));
    }

    // Deterministic output regardless of directory-walk order.
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.waivers.sort();
    report.sync_sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    Ok(report)
}

/// Recursively gather workspace-relative `.rs` paths, skipping `target`
/// and VCS metadata.
fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rule: &str, src: &str, path: &str) -> Vec<Finding> {
        let s = scrub(src);
        let rel = Path::new(path);
        match rule {
            "casts" => check_casts(rel, &s),
            "unwrap" => check_unwrap_panic(rel, &s),
            "docs" => check_doc_comments(rel, src),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cast_rule_flags_raw_numeric_casts_with_line_numbers() {
        let src = "fn f(x: u64) -> f64 {\n    let y = x as f64;\n    y\n}\n";
        let got = findings("casts", src, "crates/sim/src/counters.rs");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[0].rule, "casts");
    }

    #[test]
    fn cast_rule_honours_waiver_and_skips_tests_and_strings() {
        let src = "fn f(x: u64) -> f64 {\n    x as f64 // audit:allow(cast): exact below 2^53\n}\nfn g() -> &'static str {\n    \"x as f64\"\n}\n#[cfg(test)]\nmod tests {\n    fn h(x: u64) -> f64 { x as f64 }\n}\n";
        assert!(findings("casts", src, "crates/sim/src/counters.rs").is_empty());
    }

    #[test]
    fn cast_rule_ignores_non_numeric_as() {
        let src = "use std::fmt as formatting;\nfn f(x: &dyn std::any::Any) { let _ = x as &dyn std::any::Any; }\n";
        assert!(findings("casts", src, "crates/sim/src/counters.rs").is_empty());
    }

    #[test]
    fn unwrap_rule_flags_unwrap_and_panic_outside_tests() {
        let src =
            "fn f() {\n    let v: Option<u8> = None;\n    v.unwrap();\n    panic!(\"boom\");\n}\n";
        let got = findings("unwrap", src, "crates/sim/src/machine.rs");
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].line, got[1].line), (3, 4));
    }

    #[test]
    fn unwrap_rule_exempts_tests_bench_bins_and_waivers() {
        let src = "fn f(v: Option<u8>) {\n    v.unwrap(); // audit:allow(unwrap): checked above\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(findings("unwrap", src, "crates/sim/src/machine.rs").is_empty());
        let bin = "fn main() { std::fs::read(\"x\").unwrap(); }\n";
        assert!(findings("unwrap", bin, "crates/bench/src/bin/fig3.rs").is_empty());
        assert!(findings("unwrap", bin, "crates/sim/tests/interleave.rs").is_empty());
    }

    #[test]
    fn unwrap_rule_ignores_comments_and_strings() {
        let src = "fn f() {\n    // never panic! here, and .unwrap() is banned\n    let s = \"panic!\";\n    let _ = s;\n}\n";
        assert!(findings("unwrap", src, "crates/sim/src/machine.rs").is_empty());
    }

    #[test]
    fn docs_rule_requires_doc_comments_on_pub_items_and_fields() {
        let src = "/// Documented.\npub struct Counters {\n    /// Ticks.\n    pub ticks: u64,\n    pub misses: u64,\n}\n\npub fn undoc() {}\n";
        let got = findings("docs", src, "crates/sim/src/counters.rs");
        let lines: Vec<usize> = got.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![5, 8]);
        assert!(got[0].message.contains("misses"));
        assert!(got[1].message.contains("undoc"));
    }

    #[test]
    fn docs_rule_accepts_attributes_between_doc_and_item() {
        let src = "/// Documented.\n#[derive(Debug, Clone)]\npub struct S;\n\npub use std::fmt;\npub(crate) fn internal() {}\n";
        assert!(findings("docs", src, "crates/core/src/metrics.rs").is_empty());
    }

    #[test]
    fn lint_gate_accepts_workspace_inheritance_or_root_attributes() {
        let inherit = "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n";
        let bare = "[package]\nname = \"x\"\n";
        let attrs = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        let rel = Path::new("crates/x/Cargo.toml");
        assert!(check_lint_gate(rel, inherit, "", true).is_empty());
        assert!(check_lint_gate(rel, bare, attrs, true).is_empty());
        assert_eq!(check_lint_gate(rel, inherit, "", false).len(), 1);
        assert_eq!(check_lint_gate(rel, bare, "", true).len(), 1);
    }

    #[test]
    fn lint_gate_exempts_only_the_listed_unsafe_island_with_its_own_docs_lint() {
        let island_manifest =
            "[package]\nname = \"aon-hw\"\n\n[lints.rust]\nmissing_docs = \"warn\"\n";
        let island = Path::new("crates/hw/Cargo.toml");
        assert!(check_lint_gate(island, island_manifest, "", true).is_empty());
        // The same manifest in any other crate is still a violation...
        assert_eq!(
            check_lint_gate(Path::new("crates/x/Cargo.toml"), island_manifest, "", true).len(),
            1
        );
        // ...and the island without its docs lint is too.
        assert_eq!(check_lint_gate(island, "[package]\nname = \"aon-hw\"\n", "", true).len(), 1);
    }

    #[test]
    fn workspace_gate_detection_reads_lint_tables() {
        let good = "[workspace.lints.rust]\nunsafe_code = \"forbid\"\nmissing_docs = \"warn\"\n";
        let bad = "[workspace.lints.rust]\nunsafe_code = \"warn\"\n";
        assert!(workspace_defines_gate(good));
        assert!(!workspace_defines_gate(bad));
    }

    #[test]
    fn scrubber_handles_raw_strings_and_char_literals() {
        let src = "fn f() {\n    let r = r#\"x.unwrap() as f64\"#;\n    let c = 'a';\n    let l: &'static str = \"ok\";\n    let _ = (r, c, l);\n}\n";
        let s = scrub(src);
        assert!(!s.lines.iter().any(|l| l.contains("unwrap")));
        assert!(s.lines[3].contains("'static"), "lifetimes survive scrubbing");
    }

    #[test]
    fn test_span_tracking_covers_nested_braces() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        if true { Some(1).unwrap(); }\n    }\n}\nfn also_live() { Some(1).unwrap(); }\n";
        let s = scrub(src);
        assert!(!s.in_test[0]);
        assert!(s.in_test[4]);
        assert!(!s.in_test[7]);
        let got = check_unwrap_panic(Path::new("crates/x/src/lib.rs"), &s);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 8);
    }

    #[test]
    fn waiver_marker_inside_string_literal_waives_nothing() {
        let src = "fn f(x: u64) -> f64 {\n    let m = \"audit:allow(cast): not a waiver\";\n    let _ = m;\n    x as f64\n}\n";
        let got = findings("casts", src, "crates/sim/src/counters.rs");
        assert_eq!(got.len(), 1, "string-embedded marker must not waive");
        let s = scrub(src);
        assert!(!has_waiver(&s.comments[1], "cast"));
    }

    #[test]
    fn findings_render_as_file_line_rule_message() {
        let f = Finding {
            file: PathBuf::from("crates/sim/src/counters.rs"),
            line: 42,
            rule: "casts",
            message: "raw cast".to_string(),
        };
        assert_eq!(f.to_string(), "crates/sim/src/counters.rs:42: casts: raw cast");
    }
}
