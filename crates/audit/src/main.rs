//! `aon-audit` CLI: run the workspace lint pass and exit nonzero on any
//! violation. See the crate docs for the rules and the waiver syntax.

use std::path::PathBuf;
use std::process::ExitCode;

/// Locate the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` contains a `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("aon-audit: no workspace Cargo.toml found above the current directory");
            return ExitCode::FAILURE;
        }
    };
    let report = match aon_audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aon-audit: I/O error walking {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "aon-audit: {} file(s) scanned, {} violation(s), {} waiver line(s), \
         {} informational cast(s) outside enforced files",
        report.files_scanned,
        report.findings.len(),
        report.waivers.len(),
        report.informational_casts,
    );
    for (file, line) in &report.waivers {
        println!("aon-audit: waiver at {}:{line}", file.display());
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
