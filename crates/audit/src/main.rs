//! `aon-audit` CLI: run the workspace lint pass and exit nonzero on any
//! violation. See the crate docs for the rules and the waiver syntax.

use std::path::PathBuf;
use std::process::ExitCode;

/// Locate the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` contains a `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("aon-audit: no workspace Cargo.toml found above the current directory");
            return ExitCode::FAILURE;
        }
    };
    let report = match aon_audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aon-audit: I/O error walking {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "aon-audit: {} file(s) scanned, {} violation(s), {} waiver line(s), \
         {} informational cast(s) outside enforced files",
        report.files_scanned,
        report.findings.len(),
        report.waivers.len(),
        report.informational_casts,
    );

    // Sync-primitive inventory: per-role counts, then every site.
    let mut role_counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for site in &report.sync_sites {
        *role_counts.entry(site.role.as_deref().unwrap_or("<undeclared>")).or_default() += 1;
    }
    let summary =
        role_counts.iter().map(|(role, n)| format!("{role}={n}")).collect::<Vec<_>>().join(", ");
    println!("aon-audit: {} sync primitive(s) inventoried: {summary}", report.sync_sites.len());
    for site in &report.sync_sites {
        println!(
            "aon-audit: sync {}:{}: {} `{}` role={}",
            site.file.display(),
            site.line,
            site.primitive,
            site.name,
            site.role.as_deref().unwrap_or("<undeclared>"),
        );
    }

    // Waiver report (already sorted by file:line) and budget enforcement.
    for w in &report.waivers {
        println!("aon-audit: waiver at {}:{}: allow({})", w.file.display(), w.line, w.rule);
    }
    let mut budget_ok = true;
    match aon_audit::waiver_budget(&root) {
        Err(e) => {
            eprintln!("aon-audit: {e}");
            budget_ok = false;
        }
        Ok(budget) if report.waivers.len() > budget => {
            eprintln!(
                "aon-audit: {} waiver(s) exceed the budget of {budget}; remove waivers or \
                 bump {} in the same diff with a justification",
                report.waivers.len(),
                aon_audit::WAIVER_BUDGET_FILE,
            );
            budget_ok = false;
        }
        Ok(budget) if report.waivers.len() < budget => {
            eprintln!(
                "aon-audit: only {} waiver(s) remain but the budget is {budget}; lower {} \
                 so the headroom cannot be spent silently",
                report.waivers.len(),
                aon_audit::WAIVER_BUDGET_FILE,
            );
            budget_ok = false;
        }
        Ok(budget) => {
            println!("aon-audit: waiver budget {budget} exactly met");
        }
    }

    if report.findings.is_empty() && budget_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
