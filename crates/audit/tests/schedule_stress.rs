//! Seeded schedule-stress harness: the dynamic complement to the static
//! concurrency passes in `aon-audit`.
//!
//! Each test releases a set of threads through a [`Barrier`] so their
//! critical sections collide as hard as the scheduler allows, permutes
//! the work with a seeded RNG, and checks an exact invariant afterwards
//! (conservation of items through the accept queue, exact counter totals
//! through the registry). The seed is printed on entry, so any failure is
//! replayable:
//!
//! ```text
//! AON_STRESS_SEED=12345 cargo test -p aon-audit --test schedule_stress
//! ```
//!
//! `AON_STRESS_ROUNDS` scales the number of permutations per test (CI's
//! `CI_CONCURRENCY=1` stage raises it well above the default).

use aon_net::acceptq::{AcceptQueue, Pop, PushError};
use aon_obs::registry::Registry;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// SplitMix64: tiny, seedable, and good enough to decorrelate schedules.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    /// Uniform value in `[lo, hi]` as a count (always small here).
    fn count(&mut self, lo: u64, hi: u64) -> usize {
        usize::try_from(self.range(lo, hi)).expect("stress parameters are small")
    }
}

/// The run's seed: `AON_STRESS_SEED` if set, otherwise wall-clock derived.
/// Printed so a failing schedule can be replayed exactly.
fn seed(test: &str) -> u64 {
    let s =
        std::env::var("AON_STRESS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0x5eed))
                .unwrap_or(0x5eed)
        });
    println!("schedule_stress[{test}]: seed={s} (replay with AON_STRESS_SEED={s})");
    s
}

/// Permutations per test: `AON_STRESS_ROUNDS`, default 16.
fn rounds() -> u64 {
    std::env::var("AON_STRESS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// Barrier-released producers, consumers, and a closer racing over one
/// bounded queue. Conservation invariant: every item is accounted for
/// exactly once — popped, refused `Full`, or refused `Closed` — and the
/// push-reported depth never exceeds capacity.
#[test]
fn acceptq_push_pop_close_permutations() {
    let mut rng = SplitMix64(seed("acceptq_push_pop_close"));
    for round in 0..rounds() {
        let capacity = rng.count(1, 8);
        let producers = rng.range(1, 4);
        let consumers = rng.range(1, 4);
        let per_producer = rng.range(1, 64);
        let close_after = rng.range(0, per_producer);

        let q: Arc<AcceptQueue<u64>> = Arc::new(AcceptQueue::new(capacity));
        let parties = usize::try_from(producers + consumers + 1).expect("few threads");
        let barrier = Arc::new(Barrier::new(parties));
        let pushed_ok: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let popped: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                let pushed_ok = Arc::clone(&pushed_ok);
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..per_producer {
                        let item = p * 1_000_000 + i;
                        match q.push(item) {
                            Ok(depth) => {
                                assert!(
                                    depth <= capacity,
                                    "depth {depth} over capacity {capacity} (round {round})"
                                );
                                pushed_ok.lock().expect("pushed_ok lock").push(item);
                            }
                            Err(PushError::Full(back)) | Err(PushError::Closed(back)) => {
                                assert_eq!(back, item, "refused push must hand the item back");
                            }
                        }
                    }
                });
            }
            for _ in 0..consumers {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                let popped = Arc::clone(&popped);
                scope.spawn(move || {
                    barrier.wait();
                    loop {
                        match q.pop(Duration::from_millis(10)) {
                            Pop::Item(i) => popped.lock().expect("popped lock").push(i),
                            Pop::Empty => continue,
                            Pop::Closed => break,
                        }
                    }
                });
            }
            let q = Arc::clone(&q);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                // Close somewhere inside the producers' working window so
                // every round exercises a different open/closed cut.
                for _ in 0..close_after {
                    std::thread::yield_now();
                }
                q.close();
            });
        });

        let mut ok = pushed_ok.lock().expect("pushed_ok lock").clone();
        let mut got = popped.lock().expect("popped lock").clone();
        ok.sort_unstable();
        got.sort_unstable();
        assert_eq!(
            got, ok,
            "popped items must be exactly the successfully pushed ones (round {round})"
        );
        assert!(q.is_empty(), "drained queue must be empty (round {round})");
    }
}

/// Close-while-full: producers hammer an already-full queue while it
/// closes, with consumers draining afterwards. Once any producer observes
/// `Closed`, every later push by that producer must also be `Closed`
/// (closedness is monotonic), and the drain still conserves items.
#[test]
fn acceptq_close_while_full_sheds_monotonically() {
    let mut rng = SplitMix64(seed("acceptq_close_while_full"));
    for round in 0..rounds() {
        let capacity = rng.count(1, 4);
        let producers = rng.range(2, 4);
        let per_producer = rng.range(8, 32);

        let q: Arc<AcceptQueue<u64>> = Arc::new(AcceptQueue::new(capacity));
        // Pre-fill to capacity so the close races against a full queue.
        for i in 0..u64::try_from(capacity).expect("small capacity") {
            q.push(u64::MAX - i).expect("pre-fill fits");
        }
        let parties = usize::try_from(producers + 1).expect("few threads");
        let barrier = Arc::new(Barrier::new(parties));
        let pushed_ok: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                let pushed_ok = Arc::clone(&pushed_ok);
                scope.spawn(move || {
                    barrier.wait();
                    let mut saw_closed = false;
                    for i in 0..per_producer {
                        match q.push(p * 1_000_000 + i) {
                            Ok(_) => {
                                assert!(!saw_closed, "push succeeded after Closed (round {round})");
                                pushed_ok.lock().expect("pushed_ok lock").push(p * 1_000_000 + i);
                            }
                            Err(PushError::Closed(_)) => saw_closed = true,
                            Err(PushError::Full(_)) => {
                                assert!(!saw_closed, "Full reported after Closed (round {round})");
                            }
                        }
                    }
                });
            }
            let q = Arc::clone(&q);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                q.close();
            });
        });

        // Drain single-threaded: everything that entered must come out,
        // then Closed — and never more than pre-fill + successful pushes.
        let expected = capacity + pushed_ok.lock().expect("pushed_ok lock").len();
        let mut drained = 0usize;
        loop {
            match q.pop(Duration::from_millis(10)) {
                Pop::Item(_) => drained += 1,
                Pop::Empty => continue,
                Pop::Closed => break,
            }
        }
        assert_eq!(drained, expected, "drain must conserve items (round {round})");
    }
}

/// Barrier-released threads bump registry counters and histograms through
/// racing idempotent registrations. Totals must be exact after join — the
/// Relaxed counter discipline promises exactness once writers quiesce.
#[test]
fn registry_concurrent_records_are_exact() {
    let mut rng = SplitMix64(seed("registry_concurrent_records"));
    for round in 0..rounds() {
        let threads = rng.range(2, 8);
        let bumps = rng.range(1, 256);

        let reg = Arc::new(Registry::new());
        let barrier = Arc::new(Barrier::new(usize::try_from(threads).expect("few threads")));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let reg = Arc::clone(&reg);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    // All threads race to register the same series; the
                    // registry must hand every one the same instrument.
                    let shared = reg.counter("stress_shared_total", "shared", &[]);
                    let mine = reg.counter(
                        "stress_per_thread_total",
                        "per thread",
                        &[("t", &t.to_string())],
                    );
                    let hist = reg.histogram("stress_hist", "values", &[]);
                    for i in 0..bumps {
                        shared.inc();
                        mine.inc();
                        hist.record(i);
                    }
                });
            }
        });

        let samples = reg.samples();
        let total = |name: &str| -> u64 {
            samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
        };
        assert_eq!(
            total("stress_shared_total"),
            threads * bumps,
            "shared counter must be exact (round {round})"
        );
        assert_eq!(
            total("stress_per_thread_total"),
            threads * bumps,
            "per-thread series must merge to the global total (round {round})"
        );
        assert_eq!(
            total("stress_hist_count"),
            threads * bumps,
            "histogram count must be exact (round {round})"
        );
    }
}
