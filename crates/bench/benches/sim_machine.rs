//! Whole-machine simulation throughput: how many simulated cycles per
//! wall-second each platform model sustains under the FR workload.

use aon_core::workload::WorkloadKind;
use aon_server::corpus::Corpus;
use aon_sim::config::Platform;
use aon_sim::machine::Machine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const WINDOW: u64 = 3_000_000;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_machine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(WINDOW));
    for p in [Platform::OneCorePentiumM, Platform::TwoCorePentiumM, Platform::TwoLogicalXeon] {
        g.bench_with_input(BenchmarkId::new("fr_cycles", p.notation()), &p, |b, &p| {
            b.iter(|| {
                let corpus = Corpus::generate(42, 2);
                let mut m = Machine::new(p.config());
                WorkloadKind::Fr.build(&mut m, &corpus);
                std::hint::black_box(m.run(WINDOW))
            })
        });
    }
    g.finish();
}

criterion_group!(machine, benches);
criterion_main!(machine);
