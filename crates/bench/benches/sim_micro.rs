//! Microbenchmarks of the simulator's hot components.

use aon_sim::branch::Gshare;
use aon_sim::bus::{BusyTimeline, SlotTimeline};
use aon_sim::cache::{CacheArray, Mesi};
use aon_sim::config::{Platform, PredictorConfig};
use aon_sim::hier::MemorySystem;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_micro");
    g.throughput(Throughput::Elements(1));

    g.bench_function("cache_lookup_hit", |b| {
        let mut cache = CacheArray::new(512, 8);
        for line in 0..512u64 {
            cache.fill(line, Mesi::Exclusive);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 511;
            std::hint::black_box(cache.lookup(i))
        })
    });

    g.bench_function("cache_fill_evict", |b| {
        let mut cache = CacheArray::new(64, 8);
        let mut line = 0u64;
        b.iter(|| {
            line += 64;
            std::hint::black_box(cache.fill(line, Mesi::Modified))
        })
    });

    g.bench_function("gshare_update", |b| {
        let mut p = Gshare::new(PredictorConfig { table_bits: 12, history_bits: 8 });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(p.update(0x40_0000 + (i % 97) * 4, 0, !i.is_multiple_of(3)))
        })
    });

    g.bench_function("slot_timeline_book", |b| {
        let mut t = SlotTimeline::new(135);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            std::hint::black_box(t.book(now, 1))
        })
    });

    g.bench_function("busy_timeline_book", |b| {
        let mut t = BusyTimeline::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 30;
            std::hint::black_box(t.book(now, 24))
        })
    });

    g.bench_function("memory_access_l1_hit", |b| {
        let mut mem = MemorySystem::new(&Platform::OneCorePentiumM.config());
        mem.access_data(0, 0x1000, 8, false, 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 4;
            std::hint::black_box(mem.access_data(0, 0x1000, 8, false, now))
        })
    });

    g.bench_function("memory_access_streaming_miss", |b| {
        let mut mem = MemorySystem::new(&Platform::OneLogicalXeon.config());
        let mut addr = 0x10_0000u64;
        let mut now = 0u64;
        b.iter(|| {
            addr += 64;
            now += 300;
            std::hint::black_box(mem.access_data(0, addr, 8, false, now))
        })
    });

    g.finish();
}

criterion_group!(micro, benches);
criterion_main!(micro);
