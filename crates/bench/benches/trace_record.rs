//! Trace-recording throughput: running the real engines under a tracer.

use aon_server::corpus::Corpus;
use aon_server::usecase::{record_message_trace, UseCase};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn benches(c: &mut Criterion) {
    let corpus = Corpus::generate(42, 1);
    let mut g = c.benchmark_group("trace_record");
    g.sample_size(20);
    for u in UseCase::ALL {
        g.bench_with_input(BenchmarkId::new("record", u.label()), &u, |b, &u| {
            b.iter(|| {
                std::hint::black_box(record_message_trace(u, &corpus, &corpus.variants[0], 0))
            })
        });
    }
    g.finish();
}

criterion_group!(record, benches);
criterion_main!(record);
