//! Native (untraced) speed of the XML substrate — the engine running as an
//! ordinary library with the instrumentation compiled away.

use aon_server::corpus::Corpus;
use aon_trace::NullProbe;
use aon_xml::input::TBuf;
use aon_xml::lazy::parse_document_lazy;
use aon_xml::parser::parse_document;
use aon_xml::schema::{Schema, SchemaAutomaton};
use aon_xml::serialize::serialize_document;
use aon_xml::utf8::validate_utf8;
use aon_xml::xpath::{CompiledPath, XPath};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn benches(c: &mut Criterion) {
    let corpus = Corpus::generate(42, 1);
    let v = &corpus.variants[0];
    let body = &v.http[v.body_start..];
    let schema = Schema::compile(aon_server::corpus::CORPUS_XSD).expect("corpus XSD compiles");
    let xp = XPath::compile("//quantity/text()").expect("query compiles");
    let doc = parse_document(TBuf::msg(body), &mut NullProbe).expect("corpus body parses");

    let mut g = c.benchmark_group("xml_native");
    g.throughput(Throughput::Bytes(body.len() as u64));
    g.bench_function("parse_5kb", |b| {
        b.iter(|| {
            parse_document(TBuf::msg(std::hint::black_box(body)), &mut NullProbe).expect("parses")
        })
    });
    g.bench_function("utf8_validate_5kb", |b| {
        b.iter(|| {
            validate_utf8(TBuf::msg(std::hint::black_box(body)), &mut NullProbe)
                .expect("valid utf-8")
        })
    });
    g.bench_function("xpath_eval", |b| {
        b.iter(|| {
            xp.string_equals(std::hint::black_box(&doc), b"1", &mut NullProbe).expect("evaluates")
        })
    });
    g.bench_function("schema_validate", |b| {
        b.iter(|| {
            let payload = aon_xml::soap::payload_root(&doc, &mut NullProbe).expect("has payload");
            schema.validate_node(std::hint::black_box(&doc), payload, &mut NullProbe)
        })
    });
    g.bench_function("serialize", |b| {
        b.iter(|| serialize_document(std::hint::black_box(&doc), &mut NullProbe))
    });

    // The fast serving-path twins: SWAR-scanned lazy parse, compiled XPath
    // pattern, compiled content-model DFAs — same verdicts, fewer host
    // instructions (the `*_fast` / `*_compiled` rows pair with the scalar
    // rows above).
    let cpath = CompiledPath::compile(&xp).expect("paper expression is streamable");
    let automaton = SchemaAutomaton::compile(&schema);
    let lazy = parse_document_lazy(body).expect("corpus body parses");
    g.bench_function("parse_5kb_fast", |b| {
        b.iter(|| parse_document_lazy(std::hint::black_box(body)).expect("parses"))
    });
    g.bench_function("xpath_eval_compiled", |b| {
        b.iter(|| cpath.string_equals(std::hint::black_box(&lazy), b"1"))
    });
    g.bench_function("schema_validate_compiled", |b| {
        b.iter(|| {
            let payload = aon_xml::soap::payload_root_lazy(&lazy).expect("has payload");
            automaton.validate(std::hint::black_box(&lazy), payload)
        })
    });
    g.finish();

    c.bench_function("schema_compile", |b| {
        b.iter(|| {
            Schema::compile(std::hint::black_box(aon_server::corpus::CORPUS_XSD)).expect("compiles")
        })
    });
    c.bench_function("xpath_compile", |b| {
        b.iter(|| {
            XPath::compile(std::hint::black_box("//item[quantity > 10]/name/text()"))
                .expect("compiles")
        })
    });
}

criterion_group!(xml, benches);
criterion_main!(xml);
