//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation builds a *modified* machine description, reruns a server
//! use case, and reports the delta — quantifying how much each modelled
//! mechanism contributes to the paper's effects:
//!
//! 1. shared vs. private L2 for the dual-core Pentium M (§5.1/§5.3);
//! 2. Smart Memory Access (prefetch + disambiguation reloads) on/off for
//!    Pentium M bus traffic (§5.4);
//! 3. SMT-shared vs. private branch-predictor history for Hyperthreading
//!    BrMPR (§5.5);
//! 4. misprediction-penalty sweep (the Netburst pipeline-depth effect);
//! 5. L2-size sweep for the Xeon (cache-capacity sensitivity).

use aon_core::experiment::ExperimentConfig;
use aon_core::workload::WorkloadKind;
use aon_server::corpus::Corpus;
use aon_sim::config::{L2Topology, MachineConfig, Platform, PrefetchConfig};
use aon_sim::machine::Machine;
use aon_sim::stats::MachineStats;

fn run_with(cfg: MachineConfig, workload: WorkloadKind, ecfg: &ExperimentConfig) -> MachineStats {
    let corpus = Corpus::generate(ecfg.corpus_seed, ecfg.corpus_variants);
    let mut m = Machine::new(cfg);
    workload.build(&mut m, &corpus);
    m.run(ecfg.warmup_cycles);
    m.reset_counters();
    let out = m.run(ecfg.warmup_cycles + ecfg.measure_cycles);
    MachineStats::collect(&m, &out)
}

fn main() {
    let ecfg = aon_bench::experiment_config();

    println!("=== Ablation 1: 2CPm shared vs private L2 (FR) ===");
    let shared = run_with(Platform::TwoCorePentiumM.config(), WorkloadKind::Fr, &ecfg);
    let mut private = Platform::TwoCorePentiumM.config();
    private.l2_topology = L2Topology::PerPackage;
    private.packages = 2;
    private.cores_per_package = 1;
    let private = run_with(private, WorkloadKind::Fr, &ecfg);
    println!(
        "shared L2 : {:>8.0} msg/s  CPI {:.2}  L2MPI {:.3}%  BTPI {:.2}%",
        shared.units_per_sec(),
        shared.total.cpi(),
        shared.total.l2mpi_pct(),
        shared.total.btpi_pct()
    );
    println!(
        "private L2: {:>8.0} msg/s  CPI {:.2}  L2MPI {:.3}%  BTPI {:.2}%",
        private.units_per_sec(),
        private.total.cpi(),
        private.total.l2mpi_pct(),
        private.total.btpi_pct()
    );

    println!("\n=== Ablation 2: Pentium M Smart Memory Access on/off (FR, 1CPm) ===");
    let on = run_with(Platform::OneCorePentiumM.config(), WorkloadKind::Fr, &ecfg);
    let mut off_cfg = Platform::OneCorePentiumM.config();
    off_cfg.arch.prefetch = PrefetchConfig::OFF;
    let off = run_with(off_cfg, WorkloadKind::Fr, &ecfg);
    println!(
        "SMA on : {:>8.0} msg/s  BTPI {:.2}%  L2MPI {:.3}%",
        on.units_per_sec(),
        on.total.btpi_pct(),
        on.total.l2mpi_pct()
    );
    println!(
        "SMA off: {:>8.0} msg/s  BTPI {:.2}%  L2MPI {:.3}%",
        off.units_per_sec(),
        off.total.btpi_pct(),
        off.total.l2mpi_pct()
    );
    println!("(prefetch+disambiguation should raise bus traffic while hiding latency)");

    println!("\n=== Ablation 3: 2LPx shared vs private predictor history (SV) ===");
    let shared_hist = run_with(Platform::TwoLogicalXeon.config(), WorkloadKind::Sv, &ecfg);
    let mut priv_cfg = Platform::TwoLogicalXeon.config();
    priv_cfg.smt_shared_predictor = false;
    let private_hist = run_with(priv_cfg, WorkloadKind::Sv, &ecfg);
    println!(
        "shared history : BrMPR {:.2}%  {:>8.0} msg/s",
        shared_hist.total.brmpr_pct(),
        shared_hist.units_per_sec()
    );
    println!(
        "private history: BrMPR {:.2}%  {:>8.0} msg/s",
        private_hist.total.brmpr_pct(),
        private_hist.units_per_sec()
    );

    println!("\n=== Ablation 4: misprediction penalty sweep (Xeon 1LPx, SV) ===");
    for penalty in [12u32, 20, 30, 45] {
        let mut cfg = Platform::OneLogicalXeon.config();
        cfg.arch.mispredict_penalty = penalty;
        let s = run_with(cfg, WorkloadKind::Sv, &ecfg);
        println!(
            "penalty {penalty:>2} cycles: CPI {:.2}  {:>8.0} msg/s",
            s.total.cpi(),
            s.units_per_sec()
        );
    }

    println!("\n=== Ablation 5: Xeon L2 size sweep (1LPx, FR) ===");
    for size_kb in [512u32, 1024, 2048, 4096] {
        let mut cfg = Platform::OneLogicalXeon.config();
        cfg.l2.size = size_kb << 10;
        let s = run_with(cfg, WorkloadKind::Fr, &ecfg);
        println!(
            "L2 {size_kb:>4} KiB: L2MPI {:.3}%  CPI {:.2}  {:>8.0} msg/s",
            s.total.l2mpi_pct(),
            s.total.cpi(),
            s.units_per_sec()
        );
    }
}
