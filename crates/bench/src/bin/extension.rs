//! The paper's §6 future work, measured: deep packet inspection and
//! HMAC-SHA1 message authentication as fourth and fifth use cases on the
//! same five configurations. No paper numbers exist for these — this is
//! the extension study the authors propose.

use aon_bench::experiment_config;
use aon_core::experiment::{find, run_grid};
use aon_core::metrics::{throughput_scaling, MetricKind, ScalingPair};
use aon_core::report::metric_row;
use aon_core::workload::WorkloadKind;
use aon_sim::config::Platform;

fn main() {
    let cfg = experiment_config();
    let loads = [WorkloadKind::Fr, WorkloadKind::Sv, WorkloadKind::Dpi, WorkloadKind::Crypto];
    eprintln!("running extension grid (4 workloads x 5 platforms)...");
    let ms = run_grid(&Platform::ALL, &loads, &cfg, true);

    println!("Extension study (paper §6 future work): DPI and crypto use cases.");
    println!("FR and SV shown for context.\n");
    println!("{:<10}{:>9}{:>9}{:>9}{:>9}{:>9}", "msg/s", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx");
    for w in loads {
        let mut row = [0.0f64; 5];
        for (i, p) in Platform::ALL.iter().enumerate() {
            row[i] = find(&ms, *p, w).map(|m| m.stats.units_per_sec()).unwrap_or(f64::NAN);
        }
        println!(
            "{:<10}{:>9.0}{:>9.0}{:>9.0}{:>9.0}{:>9.0}",
            w.label(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4]
        );
    }
    println!();
    for (name, metric) in [
        ("CPI", MetricKind::Cpi),
        ("L2MPI %", MetricKind::L2Mpi),
        ("BrMPR %", MetricKind::BrMpr),
        ("branch %", MetricKind::BranchFreq),
    ] {
        println!("{:<10}{:>9}{:>9}{:>9}{:>9}{:>9}", name, "1CPm", "2CPm", "1LPx", "2LPx", "2PPx");
        for w in [WorkloadKind::Dpi, WorkloadKind::Crypto] {
            let row = metric_row(&ms, w, metric);
            println!(
                "{:<10}{:>9.2}{:>9.2}{:>9.2}{:>9.2}{:>9.2}",
                w.label(),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4]
            );
        }
        println!();
    }

    println!("dual-processing scaling (Figure 3 extended):");
    println!("{:<10}{:>14}{:>14}{:>14}", "", "1CPm->2CPm", "1LPx->2LPx", "1LPx->2PPx");
    for w in loads {
        let s: Vec<f64> = ScalingPair::ALL
            .iter()
            .map(|&pr| throughput_scaling(&ms, pr, w).unwrap_or(f64::NAN))
            .collect();
        println!("{:<10}{:>14.2}{:>14.2}{:>14.2}", w.label(), s[0], s[1], s[2]);
    }
    println!(
        "\nExpectation from the paper's analysis: both extensions are CPU-\n\
         intensive, so they should scale like SV — well on dual core / dual\n\
         package, poorly under Hyperthreading."
    );
}
