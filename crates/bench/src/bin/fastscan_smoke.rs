//! CI smoke gate for the fast parsing layer: on the canonical 5 KB SOAP
//! corpus message, the fast path (SWAR lazy parse + compiled automata)
//! must beat the scalar byte-at-a-time engines on both live-pipeline use
//! cases, or the optimization has silently regressed into dead weight.
//!
//! Timing in CI is noisy, so each side takes the best of several
//! multi-iteration rounds (minimum is robust against scheduling spikes;
//! a genuine slowdown shifts the whole distribution, including the min).
//! The gate only asserts an ordering, never an absolute time.

use aon_obs::stage::NoopStages;
use aon_server::corpus::Corpus;
use aon_server::engine::Engine;
use aon_server::usecase::UseCase;
use std::time::{Duration, Instant};

const ROUNDS: usize = 7;
const ITERS: u32 = 400;

/// Best-of-`ROUNDS` wall time for `ITERS` runs of `f`.
fn best_of<F: FnMut()>(mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let corpus = Corpus::generate(42, 1);
    let v = &corpus.variants[0];
    let body = &v.http[v.body_start..];
    let engine = Engine::new();
    assert!(engine.cbr_compiled(), "CBR expression must compile to a pattern");
    assert!(engine.schema_dfa_count() > 0, "corpus schema must compile to DFAs");

    let mut failed = false;
    for uc in [UseCase::Cbr, UseCase::Sv] {
        // Warm both paths (page in code, fill allocator pools).
        for _ in 0..50 {
            let s = engine.process_native(uc, body).expect("corpus body processes");
            let f = engine.process_fast_staged(uc, body, &mut NoopStages).expect("corpus body");
            assert_eq!(s, f, "{uc:?} verdict divergence");
        }
        let scalar = best_of(|| {
            engine.process_native(uc, std::hint::black_box(body)).expect("processes");
        });
        let fast = best_of(|| {
            engine
                .process_fast_staged(uc, std::hint::black_box(body), &mut NoopStages)
                .expect("processes");
        });
        let speedup = scalar.as_secs_f64() / fast.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "fastscan smoke {uc:?}: scalar {:.1}us/msg, fast {:.1}us/msg ({speedup:.2}x)",
            scalar.as_secs_f64() * 1e6 / f64::from(ITERS),
            fast.as_secs_f64() * 1e6 / f64::from(ITERS),
        );
        if fast >= scalar {
            eprintln!("fastscan smoke: FAIL — {uc:?} fast path is not faster than scalar");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
