//! Regenerates Figure 2 — netperf baseline throughput on the five
//! configurations (loopback and end-to-end).

use aon_bench::{experiment_config, header, paper_vs_measured, run_netperf_grid};
use aon_core::metrics::MetricKind;
use aon_core::paper;
use aon_core::report::metric_row;
use aon_core::workload::WorkloadKind;

fn main() {
    let cfg = experiment_config();
    let ms = run_netperf_grid(&cfg);
    println!("Figure 2. Baseline throughput measurements using Netperf benchmark (Mbps).");
    print!("{}", header());
    print!(
        "{}",
        paper_vs_measured(
            "netperf-loopback",
            &paper::FIG2_LOOPBACK_MBPS,
            &metric_row(&ms, WorkloadKind::NetperfLoopback, MetricKind::ThroughputMbps),
        )
    );
    print!(
        "{}",
        paper_vs_measured(
            "netperf (e2e)",
            &paper::FIG2_E2E_MBPS,
            &metric_row(&ms, WorkloadKind::NetperfE2E, MetricKind::ThroughputMbps),
        )
    );
}
