//! Regenerates Figure 3 — dual-processor throughput scaling for the XML
//! AON use cases.

use aon_bench::{experiment_config, run_server_grid};
use aon_core::metrics::{throughput_scaling, ScalingPair};
use aon_core::paper::fig3_scaling;
use aon_core::workload::WorkloadKind;

fn main() {
    let cfg = experiment_config();
    let ms = run_server_grid(&cfg);
    println!("Figure 3. Dual processor throughput scaling for XML AON use cases.");
    println!("{:<14}{:>18}{:>18}{:>18}", "", "1CPm->2CPm", "1LPx->2LPx", "1LPx->2PPx");
    for w in [WorkloadKind::Sv, WorkloadKind::Cbr, WorkloadKind::Fr] {
        let paper: Vec<f64> = ScalingPair::ALL
            .iter()
            .map(|&p| fig3_scaling(p, w).expect("paper table covers every pair"))
            .collect();
        let sim: Vec<f64> = ScalingPair::ALL
            .iter()
            .map(|&p| throughput_scaling(&ms, p, w).unwrap_or(f64::NAN))
            .collect();
        println!(
            "{:<14}{:>18.2}{:>18.2}{:>18.2}",
            format!("{w} (paper)"),
            paper[0],
            paper[1],
            paper[2]
        );
        println!("{:<14}{:>18.2}{:>18.2}{:>18.2}", format!("{w} (sim)"), sim[0], sim[1], sim[2]);
    }
}
