//! Regenerates Figure 5.

use aon_bench::{experiment_config, header, paper_vs_measured, run_server_grid};
use aon_core::metrics::MetricKind;
use aon_core::paper::fig5_btpi;
use aon_core::report::metric_row;
use aon_core::workload::WorkloadKind;

fn main() {
    let cfg = experiment_config();
    let ms = run_server_grid(&cfg);
    println!("Figure 5. Bus transactions per retired instruction (%) for AON use cases.");
    print!("{}", header());
    for w in [WorkloadKind::Sv, WorkloadKind::Cbr, WorkloadKind::Fr] {
        let paper = fig5_btpi(w).expect("server workload");
        let sim = metric_row(&ms, w, MetricKind::Btpi);
        print!("{}", paper_vs_measured(w.label(), &paper, &sim));
    }
}
