//! Simulator performance harness: measures the simulator itself.
//!
//! Runs the standard 5 × 5 grid with per-phase wall timing (record /
//! replay / report) and writes `BENCH_sim.json` with cells-per-second and
//! simulated-cycles-per-wall-second. See [`aon_bench::perf`].
//!
//! Usage: `cargo run -p aon-bench --release --bin perf [-- --quick] [<output-path>]`

use aon_bench::perf;

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_sim.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => out_path = other.to_string(),
        }
    }

    eprintln!("perf harness: full grid, {} windows...", if quick { "quick" } else { "full" });
    let report = perf::run(quick);

    eprintln!(
        "phases: record {:.3}s, replay {:.3}s, report {:.3}s (total {:.3}s)",
        report.wall.record,
        report.wall.replay,
        report.wall.report,
        report.wall.total()
    );
    eprintln!(
        "{} cells -> {:.2} cells/s, {:.0} simulated cycles/wall-s (shape checks {}/{})",
        report.cells,
        report.cells_per_second(),
        report.simulated_cycles_per_wall_second(),
        report.shape_checks_passed,
        report.shape_checks_total
    );
    eprintln!(
        "memo: corpus {}h/{}m, server {}h/{}m, netperf {}h/{}m",
        report.memo.corpus_hits,
        report.memo.corpus_misses,
        report.memo.server_hits,
        report.memo.server_misses,
        report.memo.netperf_hits,
        report.memo.netperf_misses
    );

    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
