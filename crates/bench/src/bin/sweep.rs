//! Parameter sweeps around the paper's fixed operating point.
//!
//! The paper fixes the AONBench 5 KB message size and saturation load;
//! its companion benchmark (Waheed & Ding, SAINT'07) sweeps both axes.
//! This binary reproduces those sweeps on the simulated platforms:
//!
//! 1. **message-size sweep** — 1.5 KB … 24 KB bodies, FR vs SV on the two
//!    dual-unit flagships (2CPm, 2PPx): bigger messages amortize the
//!    per-connection overhead, so Mbps rises even as msg/s falls;
//! 2. **offered-load sweep** — 25 % … 100 % of the ingress link for SV on
//!    2CPm: below saturation the server tracks the offered load with idle
//!    headroom; at saturation it flat-tops.

use aon_bench::experiment_config;
use aon_core::memo::{self, CorpusSpec};
use aon_server::app::{build_server_with_traces, ServerConfig};
use aon_server::usecase::UseCase;
use aon_sim::config::Platform;
use aon_sim::machine::Machine;
use aon_sim::stats::MachineStats;

fn run_sized(
    platform: Platform,
    use_case: UseCase,
    body_size: usize,
    offered_pct: u32,
) -> MachineStats {
    let ecfg = experiment_config();
    // Each (use case, body size) records once; the platform × load grid
    // replays the shared traces.
    let spec = CorpusSpec {
        seed: ecfg.corpus_seed,
        variants: ecfg.corpus_variants,
        body_size: Some(body_size),
    };
    let rec = memo::server_recording(use_case, spec);
    let mut m = Machine::new(platform.config());
    build_server_with_traces(
        &mut m,
        rec.traces,
        rec.msg_len,
        &ServerConfig { offered_load_pct: offered_pct, ..ServerConfig::default() },
    );
    m.run(ecfg.warmup_cycles);
    m.reset_counters();
    let out = m.run(ecfg.warmup_cycles + ecfg.measure_cycles);
    MachineStats::collect(&m, &out)
}

fn main() {
    println!("=== Message-size sweep (saturation load) ===");
    println!(
        "{:<10}{:<6}{:>10}{:>10}{:>8}{:>9}",
        "platform", "case", "body", "msg/s", "Mbps", "CPI"
    );
    for p in [Platform::TwoCorePentiumM, Platform::TwoPhysicalXeon] {
        for u in [UseCase::Fr, UseCase::Sv] {
            for body in [1536usize, 3 * 1024, 5 * 1024, 10 * 1024, 24 * 1024] {
                let s = run_sized(p, u, body, 100);
                println!(
                    "{:<10}{:<6}{:>10}{:>10.0}{:>8.0}{:>9.2}",
                    p.notation(),
                    u.label(),
                    body,
                    s.units_per_sec(),
                    s.throughput_mbps(),
                    s.total.cpi()
                );
            }
        }
    }

    println!("\n=== Offered-load sweep (SV on 2CPm, 5 KB messages) ===");
    println!("{:<10}{:>10}{:>8}{:>10}", "offered%", "msg/s", "Mbps", "idle%");
    for pct in [25u32, 50, 75, 90, 100] {
        let s = run_sized(Platform::TwoCorePentiumM, UseCase::Sv, 5 * 1024, pct);
        let idle: u64 = s.per_cpu.iter().map(|c| c.idle_cycles).sum();
        let total: u64 = s.per_cpu.iter().map(|c| c.clockticks).sum();
        println!(
            "{:<10}{:>10.0}{:>8.0}{:>10.1}",
            pct,
            s.units_per_sec(),
            s.throughput_mbps(),
            aon_sim::convert::ratio(idle, total.max(1)) * 100.0
        );
    }
}
