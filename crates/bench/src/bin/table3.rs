//! Regenerates Table 3 — performance metrics for netperf in loopback and
//! end-to-end modes.

use aon_bench::{experiment_config, header, paper_vs_measured, run_netperf_grid};
use aon_core::metrics::MetricKind;
use aon_core::paper::{TABLE3_E2E, TABLE3_LOOPBACK};
use aon_core::report::metric_row;
use aon_core::workload::WorkloadKind;

fn main() {
    let cfg = experiment_config();
    let ms = run_netperf_grid(&cfg);
    for (mode, w, rows) in [
        ("Netperf-loopback", WorkloadKind::NetperfLoopback, TABLE3_LOOPBACK),
        ("Netperf (end-to-end)", WorkloadKind::NetperfE2E, TABLE3_E2E),
    ] {
        println!("Table 3. Performance metrics for {mode}.");
        print!("{}", header());
        print!("{}", paper_vs_measured("CPI", &rows.cpi, &metric_row(&ms, w, MetricKind::Cpi)));
        print!(
            "{}",
            paper_vs_measured("L2MPI", &rows.l2mpi, &metric_row(&ms, w, MetricKind::L2Mpi))
        );
        print!(
            "{}",
            paper_vs_measured("BTPI %", &rows.btpi, &metric_row(&ms, w, MetricKind::Btpi))
        );
        print!(
            "{}",
            paper_vs_measured(
                "Branch freq %",
                &rows.branch_freq,
                &metric_row(&ms, w, MetricKind::BranchFreq)
            )
        );
        print!(
            "{}",
            paper_vs_measured("BrMPR %", &rows.brmpr, &metric_row(&ms, w, MetricKind::BrMpr))
        );
        println!();
    }
}
