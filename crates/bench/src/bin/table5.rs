//! Regenerates Table 5.

use aon_bench::{experiment_config, header, paper_vs_measured, run_server_grid};
use aon_core::metrics::MetricKind;
use aon_core::paper::table5_branch_freq;
use aon_core::report::metric_row;
use aon_core::workload::WorkloadKind;

fn main() {
    let cfg = experiment_config();
    let ms = run_server_grid(&cfg);
    println!("Table 5. Branch instructions retired per instruction retired (%).");
    print!("{}", header());
    for w in [WorkloadKind::Sv, WorkloadKind::Cbr, WorkloadKind::Fr] {
        let paper = table5_branch_freq(w).expect("server workload");
        let sim = metric_row(&ms, w, MetricKind::BranchFreq);
        print!("{}", paper_vs_measured(w.label(), &paper, &sim));
    }
}
