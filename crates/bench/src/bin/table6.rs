//! Regenerates Table 6.

use aon_bench::{experiment_config, header, paper_vs_measured, run_server_grid};
use aon_core::metrics::MetricKind;
use aon_core::paper::table6_brmpr;
use aon_core::report::metric_row;
use aon_core::workload::WorkloadKind;

fn main() {
    let cfg = experiment_config();
    let ms = run_server_grid(&cfg);
    println!("Table 6. Branch misprediction ratios (%).");
    print!("{}", header());
    for w in [WorkloadKind::Sv, WorkloadKind::Cbr, WorkloadKind::Fr] {
        let paper = table6_brmpr(w).expect("server workload");
        let sim = metric_row(&ms, w, MetricKind::BrMpr);
        print!("{}", paper_vs_measured(w.label(), &paper, &sim));
    }
}
