//! # aon-bench — regeneration harness for every table and figure
//!
//! One binary per paper artifact (`fig2`, `table3`, `fig3`, `table4`,
//! `fig4`, `fig5`, `table5`, `table6`), each printing the paper's published
//! values beside the simulated measurements, plus `all` (writes
//! EXPERIMENTS.md) and `ablation` (design-choice studies). Criterion
//! benches measure the native speed of the substrates.
//!
//! Set `AON_QUICK=1` to run with short measurement windows (CI-sized).

use aon_core::experiment::{run_grid, ExperimentConfig, Measurement};
use aon_core::workload::WorkloadKind;
use aon_sim::config::Platform;

pub mod perf;

/// The experiment configuration, honoring `AON_QUICK`.
pub fn experiment_config() -> ExperimentConfig {
    if std::env::var("AON_QUICK").is_ok() {
        ExperimentConfig {
            warmup_cycles: 5_000_000,
            measure_cycles: 20_000_000,
            ..ExperimentConfig::default()
        }
    } else {
        ExperimentConfig::default()
    }
}

/// Run the server-use-case grid (FR/CBR/SV × 5 platforms).
pub fn run_server_grid(cfg: &ExperimentConfig) -> Vec<Measurement> {
    run_grid(&Platform::ALL, &WorkloadKind::SERVER, cfg, true)
}

/// Run the netperf grid (loopback + e2e × 5 platforms).
pub fn run_netperf_grid(cfg: &ExperimentConfig) -> Vec<Measurement> {
    run_grid(&Platform::ALL, &[WorkloadKind::NetperfLoopback, WorkloadKind::NetperfE2E], cfg, true)
}

/// Render one paper-vs-measured block.
pub fn paper_vs_measured(label: &str, paper: &[f64; 5], measured: &[f64; 5]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22}{:>9}{:>9}{:>9}{:>9}{:>9}\n",
        format!("{label} (paper)"),
        paper[0],
        paper[1],
        paper[2],
        paper[3],
        paper[4]
    ));
    out.push_str(&format!(
        "{:<22}{:>9.2}{:>9.2}{:>9.2}{:>9.2}{:>9.2}\n",
        format!("{label} (sim)"),
        measured[0],
        measured[1],
        measured[2],
        measured[3],
        measured[4]
    ));
    out
}

/// Standard header row for the five platforms.
pub fn header() -> String {
    format!("{:<22}{:>9}{:>9}{:>9}{:>9}{:>9}\n", "", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx")
}
