//! Simulator performance harness: wall-clock throughput of the pipeline.
//!
//! Everything else in this workspace measures the *simulated* machines;
//! this module measures the *simulator* — how fast the host turns
//! experiment cells into counters. It runs the standard 5 × 5 grid with
//! per-phase wall timing:
//!
//! * **record** — corpus generation plus use-case/netperf trace recording
//!   (warms the [`aon_core::memo`] caches; the grid then replays shared
//!   immutable traces);
//! * **replay** — the netperf and server grids, the simulation itself;
//! * **report** — metric derivation and the paper shape checks.
//!
//! The two headline figures are **cells per second** (experiment cells
//! retired per wall second) and **simulated cycles per wall second**
//! (per-CPU clockticks accounted in the measured windows, divided by total
//! wall time). [`PerfReport::to_json`] renders the machine-readable
//! `BENCH_sim.json` the CI smoke and regression tracking consume.

use crate::{experiment_config, run_netperf_grid, run_server_grid};
use aon_core::memo::{self, CorpusSpec, MemoStats};
use aon_core::report::check_all_shapes;
use aon_core::workload::WorkloadKind;
use aon_core::ExperimentConfig;
use aon_net::netperf::NetperfConfig;
use aon_trace::num::exact_f64;
use std::time::Instant;

/// Wall-clock seconds spent in each pipeline phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSeconds {
    /// Corpus generation + trace recording (memo-cache warm-up).
    pub record: f64,
    /// Grid simulation (trace replay).
    pub replay: f64,
    /// Metric derivation + shape checks.
    pub report: f64,
}

impl PhaseSeconds {
    /// Total wall seconds across the three phases.
    pub fn total(&self) -> f64 {
        self.record + self.replay + self.report
    }
}

/// One harness run's results.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// True when run with the CI-sized quick windows.
    pub quick: bool,
    /// Experiment cells simulated.
    pub cells: u64,
    /// Per-phase wall time.
    pub wall: PhaseSeconds,
    /// Per-CPU clockticks accounted across all measured windows.
    pub simulated_cycles: u64,
    /// Shape checks that passed / total (sanity that the run was real).
    pub shape_checks_passed: u64,
    /// Total shape checks evaluated.
    pub shape_checks_total: u64,
    /// Memo cache statistics at the end of the run.
    pub memo: MemoStats,
}

impl PerfReport {
    /// Cells retired per wall second.
    pub fn cells_per_second(&self) -> f64 {
        let total = self.wall.total();
        if total > 0.0 {
            exact_f64(self.cells) / total
        } else {
            0.0
        }
    }

    /// Simulated CPU cycles accounted per wall second.
    pub fn simulated_cycles_per_wall_second(&self) -> f64 {
        let total = self.wall.total();
        if total > 0.0 {
            exact_f64(self.simulated_cycles) / total
        } else {
            0.0
        }
    }

    /// Render as a JSON object (hand-rolled: the workspace is hermetic, no
    /// serde). All values are finite by construction, so the output is
    /// always valid JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"cells\": {},\n", self.cells));
        s.push_str("  \"wall_seconds\": {\n");
        s.push_str(&format!("    \"record\": {:.6},\n", self.wall.record));
        s.push_str(&format!("    \"replay\": {:.6},\n", self.wall.replay));
        s.push_str(&format!("    \"report\": {:.6},\n", self.wall.report));
        s.push_str(&format!("    \"total\": {:.6}\n", self.wall.total()));
        s.push_str("  },\n");
        s.push_str(&format!("  \"cells_per_second\": {:.4},\n", self.cells_per_second()));
        s.push_str(&format!("  \"simulated_cycles\": {},\n", self.simulated_cycles));
        s.push_str(&format!(
            "  \"simulated_cycles_per_wall_second\": {:.1},\n",
            self.simulated_cycles_per_wall_second()
        ));
        s.push_str(&format!(
            "  \"shape_checks\": {{ \"passed\": {}, \"total\": {} }},\n",
            self.shape_checks_passed, self.shape_checks_total
        ));
        s.push_str("  \"memo\": {\n");
        s.push_str(&format!("    \"corpus_hits\": {},\n", self.memo.corpus_hits));
        s.push_str(&format!("    \"corpus_misses\": {},\n", self.memo.corpus_misses));
        s.push_str(&format!("    \"server_hits\": {},\n", self.memo.server_hits));
        s.push_str(&format!("    \"server_misses\": {},\n", self.memo.server_misses));
        s.push_str(&format!("    \"netperf_hits\": {},\n", self.memo.netperf_hits));
        s.push_str(&format!("    \"netperf_misses\": {}\n", self.memo.netperf_misses));
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }
}

/// The quick (CI smoke) experiment windows.
fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        warmup_cycles: 2_000_000,
        measure_cycles: 8_000_000,
        ..ExperimentConfig::default()
    }
}

/// Run the harness: record, replay the full 5 × 5 grid, report; return the
/// timed results.
pub fn run(quick: bool) -> PerfReport {
    let cfg = if quick { quick_config() } else { experiment_config() };
    let spec = CorpusSpec::of(&cfg);

    // Phase 1: record. Warming the memo caches here cleanly separates
    // recording cost from replay cost; the grids then hit the caches.
    let t0 = Instant::now();
    for w in WorkloadKind::SERVER {
        memo::server_recording(w.use_case().expect("server workload"), spec);
    }
    memo::netperf_recording(&NetperfConfig::default());
    let record = t0.elapsed().as_secs_f64();

    // Phase 2: replay.
    let t1 = Instant::now();
    let net = run_netperf_grid(&cfg);
    let srv = run_server_grid(&cfg);
    let replay = t1.elapsed().as_secs_f64();

    // Phase 3: report.
    let t2 = Instant::now();
    let mut all = net;
    all.extend(srv);
    let checks = check_all_shapes(&all);
    let report = t2.elapsed().as_secs_f64();

    let simulated_cycles =
        all.iter().flat_map(|m| m.stats.per_cpu.iter()).map(|c| c.clockticks).sum();
    let passed = checks.iter().filter(|c| c.pass).count();
    PerfReport {
        quick,
        cells: u64::try_from(all.len()).expect("cell count fits u64"),
        wall: PhaseSeconds { record, replay, report },
        simulated_cycles,
        shape_checks_passed: u64::try_from(passed).expect("check count fits u64"),
        shape_checks_total: u64::try_from(checks.len()).expect("check count fits u64"),
        memo: memo::stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_wellformed() {
        let r = PerfReport {
            quick: true,
            cells: 25,
            wall: PhaseSeconds { record: 0.25, replay: 3.5, report: 0.01 },
            simulated_cycles: 5_000_000_000,
            shape_checks_passed: 19,
            shape_checks_total: 20,
            memo: MemoStats::default(),
        };
        let j = r.to_json();
        // Structural spot checks without a JSON parser: balanced braces,
        // the headline keys, no NaN/inf tokens.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"cells\": 25"));
        assert!(j.contains("\"cells_per_second\""));
        assert!(j.contains("\"simulated_cycles_per_wall_second\""));
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn zero_wall_time_yields_zero_rates() {
        let r = PerfReport {
            quick: true,
            cells: 1,
            wall: PhaseSeconds { record: 0.0, replay: 0.0, report: 0.0 },
            simulated_cycles: 1,
            shape_checks_passed: 0,
            shape_checks_total: 0,
            memo: MemoStats::default(),
        };
        assert_eq!(r.cells_per_second(), 0.0);
        assert_eq!(r.simulated_cycles_per_wall_second(), 0.0);
    }
}
