//! Persistent cell-result memoization.
//!
//! [`crate::memo`] shares *recordings* within a process; this module
//! extends the same idea across processes: a finished cell measurement
//! ([`aon_sim::stats::MachineStats`] is a closed set of exact integer
//! counters) is written to disk keyed by everything it depends on, and the
//! next `--bin all` / `--bin perf` run with the same key reads it back
//! instead of re-simulating ~100 Mcycles. Regenerating EXPERIMENTS.md
//! after a doc or report change drops from tens of seconds to well under
//! one.
//!
//! **Exactness.** A hit must be byte-identical to a recompute, so the key
//! covers every input the simulation reads:
//!
//! * a fingerprint of the *running executable's bytes* — any rebuild
//!   (code change, flag change, toolchain change) invalidates the whole
//!   cache, so stale results cannot leak across simulator versions;
//! * the platform notation and workload label;
//! * every [`ExperimentConfig`] field;
//! * the memoized recording's content fingerprint (see [`crate::memo`]),
//!   tying the entry to the actual trace bytes that were replayed.
//!
//! Values store only exact integers (`u64`/`u32` counters and strings),
//! so a round-trip cannot introduce drift. A corrupt or truncated entry
//! parses as a miss and is overwritten. Writes go through a temp file +
//! rename so a killed run never leaves a half-written entry behind.
//!
//! The cache is **opt-in per process** ([`enable`]): the report binaries
//! turn it on; tests and the equivalence suite never see it unless they
//! ask. `AON_CELL_CACHE=0` vetoes even an enabled process;
//! `AON_CELL_CACHE_DIR` overrides the default directory (the system temp
//! directory, namespaced per user by the OS).

use crate::experiment::{ExperimentConfig, Measurement};
use crate::memo::{self, CorpusSpec};
use crate::workload::WorkloadKind;
use aon_net::netperf::NetperfConfig;
use aon_sim::config::Platform;
use aon_sim::counters::PerfCounters;
use aon_sim::stats::MachineStats;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Bump when the entry format or key derivation changes.
const FORMAT: &str = "aon-cell-cache v1";

// audit:role(flag): cache on/off edge; Release store in enable() makes any
// prior setup visible to workers that observe it with Acquire
static ENABLED: AtomicBool = AtomicBool::new(false);
// audit:role(counter): monotonic lookup hits; exact once workers quiesce
static HITS: AtomicU64 = AtomicU64::new(0);
// audit:role(counter): monotonic lookup misses; exact once workers quiesce
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Turn the cache on for this process (report binaries call this; tests
/// don't). `AON_CELL_CACHE=0` in the environment still vetoes it.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Whether lookups are active: enabled, not vetoed, and the executable
/// fingerprint is available.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
        && !matches!(std::env::var("AON_CELL_CACHE").as_deref(), Ok("0") | Ok("off"))
        && exe_fingerprint().is_some()
}

/// (hits, misses) so far in this process.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// The cache directory: `AON_CELL_CACHE_DIR` or `<tmp>/aon-cell-cache`.
pub fn dir() -> PathBuf {
    match std::env::var_os("AON_CELL_CACHE_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join("aon-cell-cache"),
    }
}

/// FNV-1a over a byte slice, continuing from `h`.
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Content fingerprint of the running executable, computed once per
/// process. `None` (unreadable binary) disables the cache rather than
/// risking a stale hit.
fn exe_fingerprint() -> Option<u64> {
    // audit:role(once): init-once cell; OnceLock's own API synchronizes
    static FP: OnceLock<Option<u64>> = OnceLock::new();
    *FP.get_or_init(|| {
        let exe = std::env::current_exe().ok()?;
        let bytes = std::fs::read(exe).ok()?;
        Some(fnv(fnv(FNV_SEED, FORMAT.as_bytes()), &bytes))
    })
}

/// The content fingerprint of the recording this workload replays (the
/// same value [`crate::memo`] stores at record time).
fn recording_fingerprint(workload: WorkloadKind, spec: CorpusSpec) -> u64 {
    match workload.use_case() {
        Some(uc) => memo::server_recording(uc, spec).fingerprint,
        None => memo::netperf_recording(&NetperfConfig::default()).fingerprint,
    }
}

/// The cache key for one cell. `None` when the executable cannot be
/// fingerprinted.
fn cell_key(platform: Platform, workload: WorkloadKind, cfg: &ExperimentConfig) -> Option<u64> {
    let mut h = exe_fingerprint()?;
    h = fnv(h, platform.notation().as_bytes());
    h = fnv(h, workload.label().as_bytes());
    for v in [
        cfg.warmup_cycles,
        cfg.measure_cycles,
        cfg.corpus_seed,
        u64::try_from(cfg.corpus_variants).expect("variant count fits u64"),
        recording_fingerprint(workload, CorpusSpec::of(cfg)),
    ] {
        h = fnv(h, &v.to_le_bytes());
    }
    Some(h)
}

fn counters_line(c: &PerfCounters) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        c.clockticks,
        c.inst_retired_milli,
        c.abstract_ops,
        c.branches_retired,
        c.branch_mispredicts,
        c.l1d_misses,
        c.l1i_misses,
        c.l2_misses,
        c.bus_txns,
        c.loads,
        c.stores,
        c.idle_cycles,
        c.flush_cycles,
        c.mem_stall_cycles,
    )
}

fn parse_counters(line: &str) -> Option<PerfCounters> {
    let mut it = line.split(' ').map(str::parse::<u64>);
    let mut next = || it.next()?.ok();
    let c = PerfCounters {
        clockticks: next()?,
        inst_retired_milli: next()?,
        abstract_ops: next()?,
        branches_retired: next()?,
        branch_mispredicts: next()?,
        l1d_misses: next()?,
        l1i_misses: next()?,
        l2_misses: next()?,
        bus_txns: next()?,
        loads: next()?,
        stores: next()?,
        idle_cycles: next()?,
        flush_cycles: next()?,
        mem_stall_cycles: next()?,
    };
    if it.next().is_some() {
        return None; // trailing fields: a different format version
    }
    Some(c)
}

/// Serialize one measurement's stats. Strings are last on their lines, so
/// platform names with spaces would still round-trip (they don't have
/// any, but the format shouldn't care).
fn render(stats: &MachineStats) -> String {
    let mut s = String::new();
    s.push_str(FORMAT);
    s.push('\n');
    s.push_str(&format!("platform {}\n", stats.platform));
    s.push_str(&format!("cpu_mhz {}\n", stats.cpu_mhz));
    s.push_str(&format!("cycles {}\n", stats.cycles));
    s.push_str(&format!("completed_units {}\n", stats.completed_units));
    s.push_str(&format!("completed_bytes {}\n", stats.completed_bytes));
    s.push_str(&format!("total {}\n", counters_line(&stats.total)));
    for c in &stats.per_cpu {
        s.push_str(&format!("cpu {}\n", counters_line(c)));
    }
    s
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.strip_prefix(key)?.strip_prefix(' ')
}

fn parse(text: &str) -> Option<MachineStats> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let platform = field(lines.next()?, "platform")?.to_string();
    let cpu_mhz = field(lines.next()?, "cpu_mhz")?.parse().ok()?;
    let cycles = field(lines.next()?, "cycles")?.parse().ok()?;
    let completed_units = field(lines.next()?, "completed_units")?.parse().ok()?;
    let completed_bytes = field(lines.next()?, "completed_bytes")?.parse().ok()?;
    let total = parse_counters(field(lines.next()?, "total")?)?;
    let mut per_cpu = Vec::new();
    for line in lines {
        per_cpu.push(parse_counters(field(line, "cpu")?)?);
    }
    Some(MachineStats {
        platform,
        cpu_mhz,
        cycles,
        completed_units,
        completed_bytes,
        total,
        per_cpu,
    })
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.cell"))
}

/// Load a cell from `dir`; any read or parse failure is a miss.
fn load(dir: &Path, key: u64, platform: Platform, workload: WorkloadKind) -> Option<Measurement> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    let stats = parse(&text)?;
    // The platform name is derived from the key inputs; a mismatch means a
    // key collision or tampering — treat as a miss.
    if stats.platform != platform.notation() {
        return None;
    }
    Some(Measurement { platform, workload, stats })
}

/// Store a cell under `dir`, atomically (temp file + rename). Best-effort:
/// an unwritable cache directory silently degrades to no caching.
fn store(dir: &Path, key: u64, m: &Measurement) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = dir.join(format!("{key:016x}.cell.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, render(&m.stats)).is_ok() {
        let _ = std::fs::rename(&tmp, entry_path(dir, key));
    }
}

/// The cached-cell front door [`crate::experiment::run_cell`] uses when
/// the cache is [`enabled`]: look up, else compute via `f` and store.
pub fn run_or_load(
    platform: Platform,
    workload: WorkloadKind,
    cfg: &ExperimentConfig,
    f: impl FnOnce() -> Measurement,
) -> Measurement {
    let d = dir();
    let Some(key) = cell_key(platform, workload, cfg) else {
        return f();
    };
    if let Some(m) = load(&d, key, platform, workload) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return m;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let m = f();
    store(&d, key, &m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> MachineStats {
        MachineStats {
            platform: "2CPm".into(),
            cpu_mhz: 2100,
            cycles: 80_000_000,
            completed_units: 1234,
            completed_bytes: 5_678_901,
            total: PerfCounters {
                clockticks: 160_000_000,
                inst_retired_milli: 42_000_500,
                abstract_ops: 40_000_000,
                branches_retired: 9_000_001,
                branch_mispredicts: 123_456,
                l1d_misses: 7890,
                l1i_misses: 12,
                l2_misses: 345,
                bus_txns: 678,
                loads: 10_000_000,
                stores: 3_000_000,
                idle_cycles: 99,
                flush_cycles: 1_234_560,
                mem_stall_cycles: 777_777,
            },
            per_cpu: vec![PerfCounters::default(), PerfCounters { loads: 5, ..Default::default() }],
        }
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let stats = sample_stats();
        let back = parse(&render(&stats)).expect("round trip");
        assert_eq!(back.platform, stats.platform);
        assert_eq!(back.cpu_mhz, stats.cpu_mhz);
        assert_eq!(back.cycles, stats.cycles);
        assert_eq!(back.completed_units, stats.completed_units);
        assert_eq!(back.completed_bytes, stats.completed_bytes);
        assert_eq!(back.total, stats.total);
        assert_eq!(back.per_cpu, stats.per_cpu);
    }

    #[test]
    fn corrupt_entries_parse_as_misses() {
        let good = render(&sample_stats());
        assert!(parse(&good).is_some());
        assert!(parse("").is_none());
        assert!(parse("garbage\n").is_none());
        // Truncation anywhere is a miss, not a partial result.
        for cut in [10, 40, good.len() - 2] {
            assert!(parse(&good[..cut]).is_none(), "truncated at {cut}");
        }
        // A counter line with extra fields (a future format) is a miss.
        let extended = good.replace("total ", "total 9 ");
        assert!(parse(&extended).is_none());
    }

    #[test]
    fn store_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("aon-cellcache-test-{}", std::process::id()));
        let m = Measurement {
            platform: Platform::TwoCorePentiumM,
            workload: WorkloadKind::Sv,
            stats: sample_stats(),
        };
        let key = 0xdead_beef_0123_4567u64;
        store(&dir, key, &m);
        let back = load(&dir, key, m.platform, m.workload).expect("stored entry loads");
        assert_eq!(back.stats.total, m.stats.total);
        assert_eq!(back.stats.per_cpu, m.stats.per_cpu);
        // A different key misses; a platform mismatch is rejected.
        assert!(load(&dir, key ^ 1, m.platform, m.workload).is_none());
        assert!(load(&dir, key, Platform::OneCorePentiumM, m.workload).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_cells_and_configs() {
        // Keys must differ across platform, workload, and config — same
        // executable, so any difference comes from the cell inputs.
        let quick = ExperimentConfig::quick();
        let mut other = quick;
        other.measure_cycles += 1;
        let base = cell_key(Platform::OneCorePentiumM, WorkloadKind::Fr, &quick);
        if let Some(base) = base {
            let p = cell_key(Platform::TwoCorePentiumM, WorkloadKind::Fr, &quick).unwrap();
            let w = cell_key(Platform::OneCorePentiumM, WorkloadKind::Cbr, &quick).unwrap();
            let c = cell_key(Platform::OneCorePentiumM, WorkloadKind::Fr, &other).unwrap();
            assert_ne!(base, p);
            assert_ne!(base, w);
            assert_ne!(base, c);
        }
        // `None` (unreadable executable) is legal: the cache just stays off.
    }

    #[test]
    fn cache_disabled_by_default_in_tests() {
        assert!(!enabled(), "tests must not see a process-wide cache");
    }
}
