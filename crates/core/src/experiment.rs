//! The experiment runner.
//!
//! One *cell* is one (platform × workload) measurement: build the machine,
//! wire the workload, warm up, reset the counters, measure for a fixed
//! simulated window, and collect [`MachineStats`]. The full grid (5 × 5)
//! can run across OS threads — each simulated machine is self-contained,
//! so the sweep parallelizes embarrassingly.

use crate::workload::WorkloadKind;
use aon_server::corpus::Corpus;
use aon_sim::config::Platform;
use aon_sim::machine::Machine;
use aon_sim::stats::MachineStats;

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Warm-up cycles before counters reset.
    pub warmup_cycles: u64,
    /// Measured window in cycles.
    pub measure_cycles: u64,
    /// Corpus seed.
    pub corpus_seed: u64,
    /// Number of message variants in the corpus.
    pub corpus_variants: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            warmup_cycles: 20_000_000,
            measure_cycles: 80_000_000,
            corpus_seed: 42,
            corpus_variants: 4,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for unit tests (small windows).
    pub fn quick() -> Self {
        ExperimentConfig {
            warmup_cycles: 2_000_000,
            measure_cycles: 8_000_000,
            corpus_seed: 42,
            corpus_variants: 2,
        }
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The platform measured.
    pub platform: Platform,
    /// The workload measured.
    pub workload: WorkloadKind,
    /// Collected statistics.
    pub stats: MachineStats,
}

/// Run one (platform × workload) cell.
pub fn run_cell(platform: Platform, workload: WorkloadKind, cfg: &ExperimentConfig) -> Measurement {
    let corpus = Corpus::generate(cfg.corpus_seed, cfg.corpus_variants);
    let mut machine = Machine::new(platform.config());
    workload.build(&mut machine, &corpus);
    machine.run(cfg.warmup_cycles);
    machine.reset_counters();
    let out = machine.run(cfg.warmup_cycles + cfg.measure_cycles);
    Measurement { platform, workload, stats: MachineStats::collect(&machine, &out) }
}

/// Run the full 5 × 5 grid. `parallel` fans cells out across OS threads
/// (each machine is independent; determinism is unaffected).
pub fn run_grid(
    platforms: &[Platform],
    workloads: &[WorkloadKind],
    cfg: &ExperimentConfig,
    parallel: bool,
) -> Vec<Measurement> {
    let cells: Vec<(Platform, WorkloadKind)> =
        workloads.iter().flat_map(|&w| platforms.iter().map(move |&p| (p, w))).collect();
    if !parallel {
        return cells.iter().map(|&(p, w)| run_cell(p, w, cfg)).collect();
    }
    let mut out: Vec<Option<Measurement>> = (0..cells.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &(p, w)) in cells.iter().enumerate() {
            let cfg = *cfg;
            handles.push((i, scope.spawn(move || run_cell(p, w, &cfg))));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("experiment thread panicked"));
        }
    });
    out.into_iter().map(|m| m.expect("filled")).collect()
}

/// Find a cell in a measurement set.
pub fn find(
    measurements: &[Measurement],
    platform: Platform,
    workload: WorkloadKind,
) -> Option<&Measurement> {
    measurements.iter().find(|m| m.platform == platform && m.workload == workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_produces_work() {
        let m = run_cell(Platform::OneCorePentiumM, WorkloadKind::Fr, &ExperimentConfig::quick());
        assert!(m.stats.completed_units > 0);
        assert!(m.stats.total.inst_retired() > 0.0);
        assert!(m.stats.total.cpi() > 0.5);
    }

    #[test]
    fn cells_are_deterministic() {
        let cfg = ExperimentConfig::quick();
        let a = run_cell(Platform::TwoLogicalXeon, WorkloadKind::Cbr, &cfg);
        let b = run_cell(Platform::TwoLogicalXeon, WorkloadKind::Cbr, &cfg);
        assert_eq!(a.stats.total, b.stats.total);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let cfg = ExperimentConfig::quick();
        let plats = [Platform::OneCorePentiumM, Platform::TwoCorePentiumM];
        let loads = [WorkloadKind::Fr];
        let serial = run_grid(&plats, &loads, &cfg, false);
        let parallel = run_grid(&plats, &loads, &cfg, true);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.platform, b.platform);
            assert_eq!(a.stats.total, b.stats.total, "parallelism must not change results");
        }
    }

    #[test]
    fn find_locates_cells() {
        let cfg = ExperimentConfig::quick();
        let ms = run_grid(&[Platform::OneCorePentiumM], &[WorkloadKind::Sv], &cfg, false);
        assert!(find(&ms, Platform::OneCorePentiumM, WorkloadKind::Sv).is_some());
        assert!(find(&ms, Platform::TwoCorePentiumM, WorkloadKind::Sv).is_none());
    }
}
