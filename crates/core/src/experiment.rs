//! The experiment runner.
//!
//! One *cell* is one (platform × workload) measurement: build the machine,
//! wire the workload, warm up, reset the counters, measure for a fixed
//! simulated window, and collect [`MachineStats`]. The full grid (5 × 5)
//! can run across OS threads — each simulated machine is self-contained,
//! so the sweep parallelizes embarrassingly.

use crate::workload::WorkloadKind;
use aon_server::corpus::Corpus;
use aon_sim::config::Platform;
use aon_sim::machine::Machine;
use aon_sim::stats::MachineStats;

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Warm-up cycles before counters reset.
    pub warmup_cycles: u64,
    /// Measured window in cycles.
    pub measure_cycles: u64,
    /// Corpus seed.
    pub corpus_seed: u64,
    /// Number of message variants in the corpus.
    pub corpus_variants: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            warmup_cycles: 20_000_000,
            measure_cycles: 80_000_000,
            corpus_seed: 42,
            corpus_variants: 4,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for unit tests (small windows).
    pub fn quick() -> Self {
        ExperimentConfig {
            warmup_cycles: 2_000_000,
            measure_cycles: 8_000_000,
            corpus_seed: 42,
            corpus_variants: 2,
        }
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The platform measured.
    pub platform: Platform,
    /// The workload measured.
    pub workload: WorkloadKind,
    /// Collected statistics.
    pub stats: MachineStats,
}

/// Run one (platform × workload) cell.
///
/// Corpus generation and trace recording are memoized (see [`crate::memo`]):
/// the 5 × 5 grid records each workload once and replays the same
/// immutable traces on every platform. When the persistent result cache
/// is on ([`crate::cellcache::enable`] — report binaries only, never
/// tests), a finished cell is also stored on disk and reused by later
/// runs of the *same executable*. [`run_cell_fresh`] is the unmemoized
/// reference; the equivalence suite proves the paths byte-identical.
pub fn run_cell(platform: Platform, workload: WorkloadKind, cfg: &ExperimentConfig) -> Measurement {
    if crate::cellcache::enabled() {
        return crate::cellcache::run_or_load(platform, workload, cfg, || {
            run_cell_uncached(platform, workload, cfg)
        });
    }
    run_cell_uncached(platform, workload, cfg)
}

/// [`run_cell`] without the persistent result cache (trace memoization
/// still applies).
fn run_cell_uncached(
    platform: Platform,
    workload: WorkloadKind,
    cfg: &ExperimentConfig,
) -> Measurement {
    let mut machine = Machine::new(platform.config());
    workload.build_memoized(&mut machine, crate::memo::CorpusSpec::of(cfg));
    measure(machine, platform, workload, cfg)
}

/// [`run_cell`] without memoization: generate the corpus and record the
/// traces from scratch. Kept as the semantic reference the memoized path
/// is checked against.
pub fn run_cell_fresh(
    platform: Platform,
    workload: WorkloadKind,
    cfg: &ExperimentConfig,
) -> Measurement {
    let corpus = Corpus::generate(cfg.corpus_seed, cfg.corpus_variants);
    let mut machine = Machine::new(platform.config());
    workload.build(&mut machine, &corpus);
    measure(machine, platform, workload, cfg)
}

/// Warm up, reset, measure: the shared back half of a cell.
fn measure(
    mut machine: Machine,
    platform: Platform,
    workload: WorkloadKind,
    cfg: &ExperimentConfig,
) -> Measurement {
    machine.run(cfg.warmup_cycles);
    machine.reset_counters();
    let out = machine.run(cfg.warmup_cycles + cfg.measure_cycles);
    Measurement { platform, workload, stats: MachineStats::collect(&machine, &out) }
}

/// Worker count for a parallel grid: one thread per hardware thread, and
/// never more threads than cells. A simulated machine is CPU-bound, so
/// oversubscribing the host (the old thread-per-cell scheme spawned 25 for
/// a full grid) only adds scheduler churn and peak memory.
fn pool_size(cells: usize) -> usize {
    let hw = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);
    hw.min(cells).max(1)
}

/// Run the full 5 × 5 grid. `parallel` fans cells out across a bounded
/// worker pool (each machine is independent; determinism is unaffected —
/// results land by cell index, not completion order).
pub fn run_grid(
    platforms: &[Platform],
    workloads: &[WorkloadKind],
    cfg: &ExperimentConfig,
    parallel: bool,
) -> Vec<Measurement> {
    let cells: Vec<(Platform, WorkloadKind)> =
        workloads.iter().flat_map(|&w| platforms.iter().map(move |&p| (p, w))).collect();
    if !parallel || cells.len() <= 1 {
        return cells.iter().map(|&(p, w)| run_cell(p, w, cfg)).collect();
    }
    let workers = pool_size(cells.len());
    // audit:role(seqgen): unique work-ticket dispenser; Relaxed suffices
    // because cells are independent and each result lands in its own slot
    let next = std::sync::atomic::AtomicUsize::new(0);
    // audit:role(lock): one slot per cell; scope join publishes results
    let out: Vec<std::sync::Mutex<Option<Measurement>>> =
        (0..cells.len()).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(p, w)) = cells.get(i) else { break };
                let m = run_cell(p, w, cfg);
                *out[i].lock().expect("result slot lock") = Some(m);
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.into_inner().expect("result slot lock").expect("every cell measured"))
        .collect()
}

/// Find a cell in a measurement set.
pub fn find(
    measurements: &[Measurement],
    platform: Platform,
    workload: WorkloadKind,
) -> Option<&Measurement> {
    measurements.iter().find(|m| m.platform == platform && m.workload == workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_produces_work() {
        let m = run_cell(Platform::OneCorePentiumM, WorkloadKind::Fr, &ExperimentConfig::quick());
        assert!(m.stats.completed_units > 0);
        assert!(m.stats.total.inst_retired() > 0.0);
        assert!(m.stats.total.cpi() > 0.5);
    }

    #[test]
    fn cells_are_deterministic() {
        let cfg = ExperimentConfig::quick();
        let a = run_cell(Platform::TwoLogicalXeon, WorkloadKind::Cbr, &cfg);
        let b = run_cell(Platform::TwoLogicalXeon, WorkloadKind::Cbr, &cfg);
        assert_eq!(a.stats.total, b.stats.total);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let cfg = ExperimentConfig::quick();
        let plats = [Platform::OneCorePentiumM, Platform::TwoCorePentiumM];
        let loads = [WorkloadKind::Fr];
        let serial = run_grid(&plats, &loads, &cfg, false);
        let parallel = run_grid(&plats, &loads, &cfg, true);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.platform, b.platform);
            assert_eq!(a.stats.total, b.stats.total, "parallelism must not change results");
        }
    }

    #[test]
    fn find_locates_cells() {
        let cfg = ExperimentConfig::quick();
        let ms = run_grid(&[Platform::OneCorePentiumM], &[WorkloadKind::Sv], &cfg, false);
        assert!(find(&ms, Platform::OneCorePentiumM, WorkloadKind::Sv).is_some());
        assert!(find(&ms, Platform::TwoCorePentiumM, WorkloadKind::Sv).is_none());
    }
}
