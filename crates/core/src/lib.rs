//! # aon-core — the characterization framework
//!
//! The paper's methodology (§3) as a library: the five platform
//! configurations, the five workloads (netperf loopback / end-to-end and
//! the FR / CBR / SV server use cases), an experiment runner that collects
//! simulated performance-counter measurements, metric derivation, the
//! published numbers for every table and figure, and report generation
//! that prints paper-vs-measured comparisons.
//!
//! * [`workload`] — workload enumeration and construction;
//! * [`experiment`] — run one (platform × workload) cell or sweep the full
//!   grid (optionally in parallel across a bounded worker pool);
//! * [`memo`] — process-wide memoization of corpora and recorded traces
//!   (a recording depends on the workload, never the platform, so sweeps
//!   share it);
//! * [`cellcache`] — opt-in persistent memoization of finished cell
//!   measurements, keyed by executable + config + trace fingerprints;
//! * [`metrics`] — the derived quantities of §3.3 (CPI, L2MPI, BTPI,
//!   branch frequency, BrMPR, throughput, scaling);
//! * [`paper`] — the published values of Figure 2–5 and Table 3–6;
//! * [`report`] — ASCII rendering and shape checks.

pub mod cellcache;
pub mod experiment;
pub mod memo;
pub mod metrics;
pub mod paper;
pub mod report;
pub mod workload;

pub use experiment::{run_cell, run_cell_fresh, run_grid, ExperimentConfig, Measurement};
pub use metrics::MetricKind;
pub use workload::WorkloadKind;
