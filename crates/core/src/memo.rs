//! Trace and corpus memoization across an experiment sweep.
//!
//! A recorded trace depends only on the *workload* side of a cell — the
//! use case, the corpus (seed, variant count, body size) or the netperf
//! send size — never on the platform. The full grid replays the same five
//! recordings on five platform configurations, and a message-size sweep
//! replays each corpus's recording at several operating points; recording
//! them once and sharing the immutable [`Arc`]s is pure saving.
//!
//! Three process-wide caches live here, one per recorded artifact:
//!
//! * generated corpora, keyed by [`CorpusSpec`];
//! * server use-case phase traces, keyed by `(UseCase, CorpusSpec)`;
//! * netperf tx/rx traces, keyed by send size.
//!
//! **Verifiability.** Every cached trace set stores the combined
//! [`Trace::fingerprint`] taken at record time. A cache hit hands back the
//! same `Arc`s, so the fingerprint *cannot* drift — but the equivalence
//! suite re-records from scratch and checks the fingerprints (and the
//! resulting [`aon_sim::counters::PerfCounters`]) match, so "memoized" is
//! a proven no-op rather than an article of faith. [`stats`] exposes
//! hit/miss counts so harnesses can report how much recording was shared.

use aon_net::netperf::{record_netperf_traces, NetperfConfig};
use aon_server::app::record_server_traces;
use aon_server::corpus::Corpus;
use aon_server::usecase::UseCase;
use aon_trace::trace::Trace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything corpus generation depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CorpusSpec {
    /// Corpus RNG seed.
    pub seed: u64,
    /// Number of message variants.
    pub variants: usize,
    /// Target body size in bytes; `None` is the paper's fixed operating
    /// point ([`Corpus::generate`]'s default).
    pub body_size: Option<usize>,
}

impl CorpusSpec {
    /// The spec an [`crate::experiment::ExperimentConfig`] implies.
    pub fn of(cfg: &crate::experiment::ExperimentConfig) -> CorpusSpec {
        CorpusSpec { seed: cfg.corpus_seed, variants: cfg.corpus_variants, body_size: None }
    }

    fn generate(&self) -> Corpus {
        match self.body_size {
            Some(size) => Corpus::generate_sized(self.seed, self.variants, size),
            None => Corpus::generate(self.seed, self.variants),
        }
    }
}

/// A memoized server recording: the shared traces plus the content
/// fingerprint taken when they were recorded.
#[derive(Debug, Clone)]
pub struct ServerRecording {
    /// Per variant, the labelled phase traces of one message.
    pub traces: Arc<Vec<Vec<Arc<Trace>>>>,
    /// Largest HTTP message length in the corpus (ring arithmetic).
    pub msg_len: u32,
    /// Combined fingerprint of every phase trace, in order.
    pub fingerprint: u64,
}

/// A memoized netperf recording.
#[derive(Debug, Clone)]
pub struct NetperfRecording {
    /// Transmit-side trace.
    pub tx: Arc<Trace>,
    /// Receive-side trace.
    pub rx: Arc<Trace>,
    /// Combined fingerprint of both traces.
    pub fingerprint: u64,
}

/// Cache hit/miss counts, cumulative for the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Corpus cache hits.
    pub corpus_hits: u64,
    /// Corpus cache misses (generations performed).
    pub corpus_misses: u64,
    /// Server trace cache hits.
    pub server_hits: u64,
    /// Server trace cache misses (recordings performed).
    pub server_misses: u64,
    /// Netperf trace cache hits.
    pub netperf_hits: u64,
    /// Netperf trace cache misses (recordings performed).
    pub netperf_misses: u64,
}

// audit:role(counter): monotonic memo hits; read for reporting only
static CORPUS_HITS: AtomicU64 = AtomicU64::new(0);
// audit:role(counter): monotonic memo misses; read for reporting only
static CORPUS_MISSES: AtomicU64 = AtomicU64::new(0);
// audit:role(counter): monotonic memo hits; read for reporting only
static SERVER_HITS: AtomicU64 = AtomicU64::new(0);
// audit:role(counter): monotonic memo misses; read for reporting only
static SERVER_MISSES: AtomicU64 = AtomicU64::new(0);
// audit:role(counter): monotonic memo hits; read for reporting only
static NETPERF_HITS: AtomicU64 = AtomicU64::new(0);
// audit:role(counter): monotonic memo misses; read for reporting only
static NETPERF_MISSES: AtomicU64 = AtomicU64::new(0);

fn corpus_cache() -> &'static Mutex<HashMap<CorpusSpec, Arc<Corpus>>> {
    // audit:role(lock): init-once via OnceLock, then the mutex guards map access
    static CACHE: OnceLock<Mutex<HashMap<CorpusSpec, Arc<Corpus>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn server_cache() -> &'static Mutex<HashMap<(UseCase, CorpusSpec), ServerRecording>> {
    // audit:role(lock): init-once via OnceLock, then the mutex guards map access
    static CACHE: OnceLock<Mutex<HashMap<(UseCase, CorpusSpec), ServerRecording>>> =
        OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn netperf_cache() -> &'static Mutex<HashMap<u32, NetperfRecording>> {
    // audit:role(lock): init-once via OnceLock, then the mutex guards map access
    static CACHE: OnceLock<Mutex<HashMap<u32, NetperfRecording>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The corpus for `spec`, generated at most once per process.
pub fn corpus(spec: CorpusSpec) -> Arc<Corpus> {
    let mut cache = corpus_cache().lock().expect("corpus cache lock");
    if let Some(c) = cache.get(&spec) {
        CORPUS_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(c);
    }
    CORPUS_MISSES.fetch_add(1, Ordering::Relaxed);
    let c = Arc::new(spec.generate());
    cache.insert(spec, Arc::clone(&c));
    c
}

/// Fold the fingerprints of a server recording's phase traces, in order.
pub fn server_fingerprint(traces: &[Vec<Arc<Trace>>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for segs in traces {
        for t in segs {
            h = (h ^ t.fingerprint()).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The server recording for `(use_case, spec)`, recorded at most once per
/// process. The corpus itself comes from [`corpus`].
pub fn server_recording(use_case: UseCase, spec: CorpusSpec) -> ServerRecording {
    {
        let cache = server_cache().lock().expect("server trace cache lock");
        if let Some(r) = cache.get(&(use_case, spec)) {
            SERVER_HITS.fetch_add(1, Ordering::Relaxed);
            return r.clone();
        }
    }
    // Record outside the lock: recordings are deterministic, so a racing
    // duplicate is wasted work, not divergence — the first insert wins.
    SERVER_MISSES.fetch_add(1, Ordering::Relaxed);
    let c = corpus(spec);
    let traces = record_server_traces(use_case, &c);
    let rec = ServerRecording {
        fingerprint: server_fingerprint(&traces),
        msg_len: u32::try_from(c.max_http_len()).expect("HTTP messages are KiB-sized"),
        traces,
    };
    let mut cache = server_cache().lock().expect("server trace cache lock");
    cache.entry((use_case, spec)).or_insert_with(|| rec.clone());
    cache[&(use_case, spec)].clone()
}

/// The netperf recording for a send size, recorded at most once per
/// process.
pub fn netperf_recording(cfg: &NetperfConfig) -> NetperfRecording {
    let mut cache = netperf_cache().lock().expect("netperf trace cache lock");
    if let Some(r) = cache.get(&cfg.send_size) {
        NETPERF_HITS.fetch_add(1, Ordering::Relaxed);
        return r.clone();
    }
    NETPERF_MISSES.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = record_netperf_traces(cfg);
    let fingerprint = (tx.fingerprint() ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(rx.fingerprint() | 1);
    let rec = NetperfRecording { tx, rx, fingerprint };
    cache.insert(cfg.send_size, rec.clone());
    rec
}

/// Cumulative cache statistics for this process.
pub fn stats() -> MemoStats {
    MemoStats {
        corpus_hits: CORPUS_HITS.load(Ordering::Relaxed),
        corpus_misses: CORPUS_MISSES.load(Ordering::Relaxed),
        server_hits: SERVER_HITS.load(Ordering::Relaxed),
        server_misses: SERVER_MISSES.load(Ordering::Relaxed),
        netperf_hits: NETPERF_HITS.load(Ordering::Relaxed),
        netperf_misses: NETPERF_MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CorpusSpec = CorpusSpec { seed: 9_427, variants: 2, body_size: None };

    #[test]
    fn corpus_is_cached_and_shared() {
        let a = corpus(SPEC);
        let b = corpus(SPEC);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the first generation");
    }

    #[test]
    fn server_recording_hits_return_the_same_traces() {
        let a = server_recording(UseCase::Cbr, SPEC);
        let b = server_recording(UseCase::Cbr, SPEC);
        assert!(Arc::ptr_eq(&a.traces, &b.traces));
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn cached_fingerprint_matches_a_fresh_recording() {
        let cached = server_recording(UseCase::Fr, SPEC);
        let fresh = record_server_traces(UseCase::Fr, &SPEC.generate());
        assert_eq!(
            cached.fingerprint,
            server_fingerprint(&fresh),
            "cache content must match what recording from scratch produces"
        );
    }

    #[test]
    fn netperf_recording_is_cached() {
        let cfg = NetperfConfig::default();
        let a = netperf_recording(&cfg);
        let b = netperf_recording(&cfg);
        assert!(Arc::ptr_eq(&a.tx, &b.tx));
        assert!(Arc::ptr_eq(&a.rx, &b.rx));
        assert_eq!(a.fingerprint, b.fingerprint);
        let (tx, rx) = record_netperf_traces(&cfg);
        assert_eq!(tx.fingerprint(), a.tx.fingerprint());
        assert_eq!(rx.fingerprint(), a.rx.fingerprint());
    }

    #[test]
    fn distinct_specs_do_not_alias() {
        let small = CorpusSpec { body_size: Some(2048), ..SPEC };
        let a = server_recording(UseCase::Sv, SPEC);
        let b = server_recording(UseCase::Sv, small);
        assert_ne!(a.fingerprint, b.fingerprint, "different corpora record different work");
    }
}
