//! Derived metrics (§3.3 of the paper).

use crate::experiment::{find, Measurement};
use crate::workload::WorkloadKind;
use aon_sim::config::Platform;

/// The microarchitectural metrics the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Cycles per retired instruction.
    Cpi,
    /// L2 misses per retired instruction (%).
    L2Mpi,
    /// Bus transactions per retired instruction (%).
    Btpi,
    /// Branch instructions retired per instruction retired (%).
    BranchFreq,
    /// Branch mispredictions per retired branch (%).
    BrMpr,
    /// Payload throughput (Mbps).
    ThroughputMbps,
}

impl MetricKind {
    /// All counter-derived metrics (excludes throughput).
    pub const COUNTER_METRICS: [MetricKind; 5] = [
        MetricKind::Cpi,
        MetricKind::L2Mpi,
        MetricKind::Btpi,
        MetricKind::BranchFreq,
        MetricKind::BrMpr,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::Cpi => "CPI",
            MetricKind::L2Mpi => "L2MPI (%)",
            MetricKind::Btpi => "BTPI (%)",
            MetricKind::BranchFreq => "Branch freq (%)",
            MetricKind::BrMpr => "BrMPR (%)",
            MetricKind::ThroughputMbps => "Throughput (Mbps)",
        }
    }

    /// Extract this metric from a measurement.
    pub fn extract(&self, m: &Measurement) -> f64 {
        match self {
            MetricKind::Cpi => m.stats.total.cpi(),
            MetricKind::L2Mpi => m.stats.total.l2mpi_pct(),
            MetricKind::Btpi => m.stats.total.btpi_pct(),
            MetricKind::BranchFreq => m.stats.total.branch_freq_pct(),
            MetricKind::BrMpr => m.stats.total.brmpr_pct(),
            MetricKind::ThroughputMbps => m.stats.throughput_mbps(),
        }
    }
}

impl core::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The three dual-processing transitions of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingPair {
    /// 1CPm → 2CPm (single core → dual core).
    PmDualCore,
    /// 1LPx → 2LPx (Hyperthreading on).
    XeonHyperthread,
    /// 1LPx → 2PPx (second physical CPU).
    XeonDualPackage,
}

impl ScalingPair {
    /// All three, in the paper's legend order.
    pub const ALL: [ScalingPair; 3] =
        [ScalingPair::PmDualCore, ScalingPair::XeonHyperthread, ScalingPair::XeonDualPackage];

    /// The (baseline, scaled) platforms.
    pub fn platforms(&self) -> (Platform, Platform) {
        match self {
            ScalingPair::PmDualCore => (Platform::OneCorePentiumM, Platform::TwoCorePentiumM),
            ScalingPair::XeonHyperthread => (Platform::OneLogicalXeon, Platform::TwoLogicalXeon),
            ScalingPair::XeonDualPackage => (Platform::OneLogicalXeon, Platform::TwoPhysicalXeon),
        }
    }

    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            ScalingPair::PmDualCore => "1CPm->2CPm",
            ScalingPair::XeonHyperthread => "1LPx->2LPx",
            ScalingPair::XeonDualPackage => "1LPx->2PPx",
        }
    }
}

/// Throughput scaling of a workload across a dual-processing transition
/// (Figure 3's y-axis). `None` if either cell is missing.
pub fn throughput_scaling(
    measurements: &[Measurement],
    pair: ScalingPair,
    workload: WorkloadKind,
) -> Option<f64> {
    let (base, scaled) = pair.platforms();
    let b = find(measurements, base, workload)?;
    let s = find(measurements, scaled, workload)?;
    let base_tput = b.stats.units_per_sec();
    if base_tput == 0.0 {
        return None;
    }
    Some(s.stats.units_per_sec() / base_tput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_grid, ExperimentConfig};

    #[test]
    fn scaling_pairs_cover_figure3() {
        assert_eq!(ScalingPair::ALL.len(), 3);
        let (b, s) = ScalingPair::XeonDualPackage.platforms();
        assert_eq!(b, Platform::OneLogicalXeon);
        assert_eq!(s, Platform::TwoPhysicalXeon);
    }

    #[test]
    fn scaling_computes_ratio() {
        let cfg = ExperimentConfig::quick();
        let ms = run_grid(
            &[Platform::OneLogicalXeon, Platform::TwoPhysicalXeon],
            &[WorkloadKind::Sv],
            &cfg,
            true,
        );
        let r = throughput_scaling(&ms, ScalingPair::XeonDualPackage, WorkloadKind::Sv).unwrap();
        assert!(r > 1.2 && r < 2.4, "two packages should speed SV up: {r}");
        assert!(
            throughput_scaling(&ms, ScalingPair::PmDualCore, WorkloadKind::Sv).is_none(),
            "missing cells yield None"
        );
    }

    #[test]
    fn metric_extraction_is_total_based() {
        let cfg = ExperimentConfig::quick();
        let ms = run_grid(&[Platform::OneCorePentiumM], &[WorkloadKind::Fr], &cfg, false);
        let m = &ms[0];
        assert!(MetricKind::Cpi.extract(m) > 0.0);
        assert!(MetricKind::BranchFreq.extract(m) > 10.0);
        assert!(MetricKind::ThroughputMbps.extract(m) > 0.0);
    }
}
