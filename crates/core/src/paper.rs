//! The published numbers.
//!
//! Every table and figure of the paper's evaluation, transcribed for
//! paper-vs-measured reporting. Platform order is always
//! `[1CPm, 2CPm, 1LPx, 2LPx, 2PPx]` (Table 2). Figure 4/5 bars are
//! digitized from the charts (the paper prints no numeric table for them),
//! so treat those as approximate; tables are exact transcriptions.

use crate::metrics::ScalingPair;
use crate::workload::WorkloadKind;

/// Platform order used by every per-platform row.
pub const PLATFORM_ORDER: [&str; 5] = ["1CPm", "2CPm", "1LPx", "2LPx", "2PPx"];

/// Figure 2 — netperf loopback throughput (Mbps).
pub const FIG2_LOOPBACK_MBPS: [f64; 5] = [9550.0, 6252.0, 8897.0, 8496.0, 2823.0];
/// Figure 2 — netperf end-to-end throughput (Mbps).
pub const FIG2_E2E_MBPS: [f64; 5] = [940.0, 936.0, 936.0, 920.0, 940.0];

/// One workload row of Table 3 (netperf metrics).
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Cycles per instruction.
    pub cpi: [f64; 5],
    /// L2 misses per retired instruction (as printed).
    pub l2mpi: [f64; 5],
    /// Bus transactions per retired instruction (%).
    pub btpi: [f64; 5],
    /// Branch instructions per retired instruction (%).
    pub branch_freq: [f64; 5],
    /// Branch misprediction ratio (%).
    pub brmpr: [f64; 5],
}

/// Table 3, netperf loopback.
pub const TABLE3_LOOPBACK: Table3Row = Table3Row {
    cpi: [3.03, 6.05, 6.38, 7.70, 22.13],
    l2mpi: [0.00, 0.35, 0.00, 23.32, 24.64],
    btpi: [0.00, 9.84, 0.19, 0.10, 10.48],
    branch_freq: [36.0, 34.0, 18.0, 19.0, 18.0],
    brmpr: [0.96, 0.70, 3.23, 3.04, 2.30],
};

/// Table 3, netperf end-to-end.
pub const TABLE3_E2E: Table3Row = Table3Row {
    cpi: [3.46, 6.27, 8.10, 18.52, 11.53],
    l2mpi: [0.05, 0.08, 0.33, 2.89, 2.71],
    btpi: [2.13, 5.99, 0.53, 0.95, 0.57],
    branch_freq: [33.0, 34.0, 18.0, 19.0, 17.0],
    brmpr: [0.85, 0.83, 1.68, 3.96, 1.87],
};

/// Figure 3 — dual-processor throughput scaling, by (pair, use case).
pub fn fig3_scaling(pair: ScalingPair, workload: WorkloadKind) -> Option<f64> {
    Some(match (pair, workload) {
        (ScalingPair::PmDualCore, WorkloadKind::Fr) => 1.51,
        (ScalingPair::PmDualCore, WorkloadKind::Cbr) => 1.84,
        (ScalingPair::PmDualCore, WorkloadKind::Sv) => 1.91,
        (ScalingPair::XeonHyperthread, WorkloadKind::Fr) => 1.49,
        (ScalingPair::XeonHyperthread, WorkloadKind::Cbr) => 1.32,
        (ScalingPair::XeonHyperthread, WorkloadKind::Sv) => 1.12,
        (ScalingPair::XeonDualPackage, WorkloadKind::Fr) => 1.97,
        (ScalingPair::XeonDualPackage, WorkloadKind::Cbr) => 1.97,
        (ScalingPair::XeonDualPackage, WorkloadKind::Sv) => 1.98,
        _ => return None,
    })
}

/// Table 4 — CPI per use case and platform.
pub fn table4_cpi(workload: WorkloadKind) -> Option<[f64; 5]> {
    Some(match workload {
        WorkloadKind::Sv => [1.02, 1.05, 1.91, 3.50, 1.96],
        WorkloadKind::Cbr => [1.12, 1.22, 2.26, 4.34, 2.32],
        WorkloadKind::Fr => [2.24, 2.96, 5.71, 7.65, 5.92],
        _ => return None,
    })
}

/// Figure 4 — L2 cache misses per retired instruction (%), digitized.
pub fn fig4_l2mpi(workload: WorkloadKind) -> Option<[f64; 5]> {
    Some(match workload {
        WorkloadKind::Sv => [0.20, 0.35, 0.90, 0.60, 0.90],
        WorkloadKind::Cbr => [0.30, 0.45, 1.10, 0.80, 1.10],
        WorkloadKind::Fr => [0.90, 1.10, 2.60, 1.90, 2.60],
        _ => return None,
    })
}

/// Figure 5 — bus transactions per retired instruction (%), digitized.
pub fn fig5_btpi(workload: WorkloadKind) -> Option<[f64; 5]> {
    Some(match workload {
        WorkloadKind::Sv => [1.00, 1.90, 0.60, 0.40, 0.50],
        WorkloadKind::Cbr => [1.20, 2.20, 0.80, 0.50, 0.60],
        WorkloadKind::Fr => [2.20, 3.50, 2.20, 1.20, 1.40],
        _ => return None,
    })
}

/// Table 5 — branch instructions retired per instruction retired (%).
pub fn table5_branch_freq(workload: WorkloadKind) -> Option<[f64; 5]> {
    Some(match workload {
        WorkloadKind::Sv => [27.0, 28.0, 15.0, 15.0, 15.0],
        WorkloadKind::Cbr => [28.0, 27.0, 15.0, 15.0, 15.0],
        WorkloadKind::Fr => [35.0, 36.0, 19.0, 19.0, 19.0],
        _ => return None,
    })
}

/// Table 6 — branch misprediction ratios (%).
pub fn table6_brmpr(workload: WorkloadKind) -> Option<[f64; 5]> {
    Some(match workload {
        WorkloadKind::Sv => [1.98, 1.97, 3.62, 4.61, 3.65],
        WorkloadKind::Cbr => [1.07, 1.04, 2.01, 2.91, 1.96],
        WorkloadKind::Fr => [1.13, 1.21, 2.65, 3.96, 2.71],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_covers_all_nine_bars() {
        for pair in ScalingPair::ALL {
            for w in WorkloadKind::SERVER {
                assert!(fig3_scaling(pair, w).is_some());
            }
        }
        assert!(fig3_scaling(ScalingPair::PmDualCore, WorkloadKind::NetperfE2E).is_none());
    }

    #[test]
    fn published_shapes_hold_internally() {
        // The paper's own data obeys the trends it describes; encode a few
        // as sanity checks on the transcription.
        // Fig 3: PM scaling rises FR -> SV; HT scaling falls FR -> SV.
        assert!(
            fig3_scaling(ScalingPair::PmDualCore, WorkloadKind::Fr).unwrap()
                < fig3_scaling(ScalingPair::PmDualCore, WorkloadKind::Sv).unwrap()
        );
        assert!(
            fig3_scaling(ScalingPair::XeonHyperthread, WorkloadKind::Fr).unwrap()
                > fig3_scaling(ScalingPair::XeonHyperthread, WorkloadKind::Sv).unwrap()
        );
        // Table 4: FR CPI > SV CPI everywhere.
        let fr = table4_cpi(WorkloadKind::Fr).unwrap();
        let sv = table4_cpi(WorkloadKind::Sv).unwrap();
        for i in 0..5 {
            assert!(fr[i] > sv[i]);
        }
        // Table 5: PM branch frequency ~2x Xeon.
        let t5 = table5_branch_freq(WorkloadKind::Fr).unwrap();
        assert!(t5[0] / t5[2] > 1.5);
        // Table 6: HT inflates BrMPR over 1LPx by >= 25%.
        let t6 = table6_brmpr(WorkloadKind::Sv).unwrap();
        assert!(t6[3] / t6[2] >= 1.25);
        // Fig 2: loopback collapses on 2PPx.
        let (collapse, peak) = (FIG2_LOOPBACK_MBPS[4], FIG2_LOOPBACK_MBPS[0]);
        assert!(collapse < peak / 2.0);
    }
}
