//! Report rendering and shape validation.
//!
//! Reproduction fidelity is judged on *shape*: orderings, trends and
//! crossovers the paper highlights, not absolute magnitudes (the authors'
//! 2006 testbed cannot be re-measured). [`ShapeCheck`] encodes each
//! headline claim as a predicate over measurements; the report prints
//! paper-vs-measured tables plus the check outcomes, and the integration
//! suite asserts the checks.

use crate::experiment::{find, Measurement};
use crate::metrics::{throughput_scaling, MetricKind, ScalingPair};
use crate::paper;
use crate::workload::WorkloadKind;
use aon_sim::config::Platform;
use aon_sim::invariants::check_counters;

/// Validate the counter blocks behind a set of measurements.
///
/// Runs the structural invariants from [`aon_sim::invariants`] over every
/// measurement's aggregate and per-CPU counters and returns one diagnostic
/// string per violation, tagged with the (platform, workload) cell it came
/// from. The report pipeline calls this before extracting any metric — a
/// malformed counter block would otherwise flow silently into every table.
///
/// Width/window bounds are skipped here: a [`Measurement`] records counter
/// values, not the per-pipeline accrual spans the time-dependent bounds
/// need (those are asserted inside the machine itself).
pub fn validate_measurements(ms: &[Measurement]) -> Vec<String> {
    let mut out = Vec::new();
    for m in ms {
        let cell = format!("{}/{}", m.stats.platform, m.workload.label());
        for v in check_counters(&m.stats.total, None, None) {
            out.push(format!("{cell} total: {v}"));
        }
        for (i, c) in m.stats.per_cpu.iter().enumerate() {
            for v in check_counters(c, None, None) {
                out.push(format!("{cell} cpu{i}: {v}"));
            }
        }
    }
    out
}

/// Render a fixed-width table: one row label + five platform columns.
pub fn format_table(title: &str, rows: &[(String, [f64; 5])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<26}", ""));
    for p in paper::PLATFORM_ORDER {
        out.push_str(&format!("{p:>9}"));
    }
    out.push('\n');
    for (label, vals) in rows {
        out.push_str(&format!("{label:<26}"));
        for v in vals {
            out.push_str(&format!("{v:>9.2}"));
        }
        out.push('\n');
    }
    out
}

/// Extract a metric across the five platforms for one workload.
pub fn metric_row(
    measurements: &[Measurement],
    workload: WorkloadKind,
    metric: MetricKind,
) -> [f64; 5] {
    // Every table row passes through here, so this is the choke point for
    // refusing to render from inconsistent counters.
    debug_assert!(
        validate_measurements(measurements).is_empty(),
        "counter invariants violated: {:?}",
        validate_measurements(measurements)
    );
    let mut row = [f64::NAN; 5];
    for (i, p) in Platform::ALL.iter().enumerate() {
        if let Some(m) = find(measurements, *p, workload) {
            row[i] = metric.extract(m);
        }
    }
    row
}

/// One qualitative claim from the paper, checked against measurements.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Which claim (paper section reference included).
    pub name: String,
    /// Did the measured data reproduce it?
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

impl ShapeCheck {
    fn new(name: &str, pass: bool, detail: String) -> Self {
        ShapeCheck { name: name.to_string(), pass, detail }
    }
}

/// Evaluate the Figure 3 shape claims against server-workload measurements.
pub fn check_fig3_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let s = |pair, w| throughput_scaling(ms, pair, w).unwrap_or(f64::NAN);
    let pm = (
        s(ScalingPair::PmDualCore, WorkloadKind::Fr),
        s(ScalingPair::PmDualCore, WorkloadKind::Cbr),
        s(ScalingPair::PmDualCore, WorkloadKind::Sv),
    );
    let ht = (
        s(ScalingPair::XeonHyperthread, WorkloadKind::Fr),
        s(ScalingPair::XeonHyperthread, WorkloadKind::Cbr),
        s(ScalingPair::XeonHyperthread, WorkloadKind::Sv),
    );
    let pp = (
        s(ScalingPair::XeonDualPackage, WorkloadKind::Fr),
        s(ScalingPair::XeonDualPackage, WorkloadKind::Cbr),
        s(ScalingPair::XeonDualPackage, WorkloadKind::Sv),
    );
    vec![
        ShapeCheck::new(
            "Fig3/§5.1: PM dual-core scaling rises FR -> SV",
            pm.0 < pm.2,
            format!(
                "1CPm->2CPm FR {:.2} CBR {:.2} SV {:.2} (paper 1.51/1.84/1.91)",
                pm.0, pm.1, pm.2
            ),
        ),
        ShapeCheck::new(
            "Fig3/§5.1: Hyperthreading scaling *falls* FR -> SV (reverse trend)",
            ht.0 > ht.2,
            format!(
                "1LPx->2LPx FR {:.2} CBR {:.2} SV {:.2} (paper 1.49/1.32/1.12)",
                ht.0, ht.1, ht.2
            ),
        ),
        ShapeCheck::new(
            "Fig3/§5.1: two physical Xeons scale well for all three use cases",
            pp.0 > 1.6 && pp.1 > 1.6 && pp.2 > 1.6,
            format!("1LPx->2PPx FR {:.2} CBR {:.2} SV {:.2} (paper ~1.97)", pp.0, pp.1, pp.2),
        ),
        ShapeCheck::new(
            "Fig3/§5.1: dual physical Xeon beats Hyperthreading for every use case",
            pp.0 > ht.0 && pp.1 > ht.1 && pp.2 > ht.2,
            format!(
                "2PPx ({:.2},{:.2},{:.2}) vs 2LPx ({:.2},{:.2},{:.2})",
                pp.0, pp.1, pp.2, ht.0, ht.1, ht.2
            ),
        ),
    ]
}

/// Evaluate the Table 4 (CPI) shape claims.
pub fn check_table4_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let cpi = |w| metric_row(ms, w, MetricKind::Cpi);
    let fr = cpi(WorkloadKind::Fr);
    let cbr = cpi(WorkloadKind::Cbr);
    let sv = cpi(WorkloadKind::Sv);
    let mut checks = vec![
        ShapeCheck::new(
            "Tbl4/§5.2: CPI rises from CPU-intensive (SV) to I/O-intensive (FR) on every platform",
            (0..5).all(|i| fr[i] > sv[i]),
            format!("FR {:?} vs SV {:?}", rounded(&fr), rounded(&sv)),
        ),
        ShapeCheck::new(
            "Tbl4/§5.2: Pentium M CPI below Xeon CPI for the same workload",
            fr[0] < fr[2] && cbr[0] < cbr[2] && sv[0] < sv[2],
            format!(
                "1CPm vs 1LPx: FR {:.2}/{:.2} CBR {:.2}/{:.2} SV {:.2}/{:.2}",
                fr[0], fr[2], cbr[0], cbr[2], sv[0], sv[2]
            ),
        ),
        ShapeCheck::new(
            "Tbl4/§5.2: Hyperthreading (2LPx) shows the highest CPI of the Xeon configs",
            (0..3).all(|_| true)
                && fr[3] > fr[2]
                && fr[3] > fr[4]
                && sv[3] > sv[2]
                && sv[3] > sv[4],
            format!(
                "FR: 1LPx {:.2} 2LPx {:.2} 2PPx {:.2}; SV: {:.2}/{:.2}/{:.2}",
                fr[2], fr[3], fr[4], sv[2], sv[3], sv[4]
            ),
        ),
    ];
    checks.push(ShapeCheck::new(
        "Tbl4/§5.2: 2PPx CPI close to 1LPx (private resources), unlike 2LPx",
        (fr[4] - fr[2]).abs() < (fr[3] - fr[2]).abs(),
        format!(
            "FR deltas: |2PPx-1LPx| {:.2} < |2LPx-1LPx| {:.2}",
            (fr[4] - fr[2]).abs(),
            (fr[3] - fr[2]).abs()
        ),
    ));
    checks
}

/// Evaluate the Figure 4 (L2MPI) shape claims.
pub fn check_fig4_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let l2 = |w| metric_row(ms, w, MetricKind::L2Mpi);
    let fr = l2(WorkloadKind::Fr);
    let sv = l2(WorkloadKind::Sv);
    vec![ShapeCheck::new(
        "Fig4/§5.3: L2MPI grows with network-I/O intensity (FR > SV) on every platform",
        (0..5).all(|i| fr[i] > sv[i]),
        format!("FR {:?} vs SV {:?}", rounded(&fr), rounded(&sv)),
    )]
}

/// Evaluate the Figure 5 (BTPI) shape claims.
pub fn check_fig5_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let bt = |w| metric_row(ms, w, MetricKind::Btpi);
    let fr = bt(WorkloadKind::Fr);
    let sv = bt(WorkloadKind::Sv);
    vec![
        ShapeCheck::new(
            "Fig5/§5.4: BTPI grows from CPU-intensive to I/O-intensive workloads",
            (0..5).all(|i| fr[i] > sv[i]),
            format!("FR {:?} vs SV {:?}", rounded(&fr), rounded(&sv)),
        ),
        ShapeCheck::new(
            "Fig5/§5.4: 2CPm BTPI exceeds 2PPx (shared L2 + Smart Memory Access traffic)",
            fr[1] > fr[4] && sv[1] > sv[4],
            format!("FR: 2CPm {:.2} vs 2PPx {:.2}; SV: {:.2} vs {:.2}", fr[1], fr[4], sv[1], sv[4]),
        ),
    ]
}

/// Evaluate the Table 5 (branch frequency) shape claims.
pub fn check_table5_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let bf = |w| metric_row(ms, w, MetricKind::BranchFreq);
    let fr = bf(WorkloadKind::Fr);
    let sv = bf(WorkloadKind::Sv);
    vec![
        ShapeCheck::new(
            "Tbl5/§5.5: Pentium M retires ~2x the branch fraction of Xeon",
            fr[0] / fr[2] > 1.4 && sv[0] / sv[2] > 1.4,
            format!("FR {:.1}% vs {:.1}%; SV {:.1}% vs {:.1}%", fr[0], fr[2], sv[0], sv[2]),
        ),
        ShapeCheck::new(
            "Tbl5/§5.5: FR carries ~25% more branches than SV/CBR",
            fr[0] > sv[0] * 0.9,
            format!("FR {:.1}% vs SV {:.1}% (1CPm)", fr[0], sv[0]),
        ),
    ]
}

/// Evaluate the Table 6 (BrMPR) shape claims.
pub fn check_table6_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let br = |w| metric_row(ms, w, MetricKind::BrMpr);
    let fr = br(WorkloadKind::Fr);
    let sv = br(WorkloadKind::Sv);
    vec![
        ShapeCheck::new(
            "Tbl6/§5.5: Pentium M BrMPR significantly below Xeon",
            fr[0] < fr[2] && sv[0] < sv[2],
            format!("FR {:.2}% vs {:.2}%; SV {:.2}% vs {:.2}%", fr[0], fr[2], sv[0], sv[2]),
        ),
        ShapeCheck::new(
            "Tbl6/§5.5: Hyperthreading inflates BrMPR >= 25% over 1LPx; 2PPx does not",
            fr[3] / fr[2] >= 1.25 && (fr[4] / fr[2]) < (fr[3] / fr[2]),
            format!("FR: 1LPx {:.2}% 2LPx {:.2}% 2PPx {:.2}%", fr[2], fr[3], fr[4]),
        ),
        ShapeCheck::new(
            "Tbl6/§5.5: BrMPR largely unaffected by 1CPm->2CPm and 1LPx->2PPx",
            (fr[1] - fr[0]).abs() / fr[0] < 0.3 && (fr[4] - fr[2]).abs() / fr[2] < 0.3,
            format!(
                "FR: 1CPm {:.2}% 2CPm {:.2}%; 1LPx {:.2}% 2PPx {:.2}%",
                fr[0], fr[1], fr[2], fr[4]
            ),
        ),
    ]
}

/// Evaluate the Figure 2 / Table 3 (netperf baseline) shape claims.
pub fn check_netperf_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let tput = |p, w| find(ms, p, w).map(|m| m.stats.throughput_mbps()).unwrap_or(f64::NAN);
    use Platform::*;
    let lb: Vec<f64> =
        Platform::ALL.iter().map(|&p| tput(p, WorkloadKind::NetperfLoopback)).collect();
    let e2e: Vec<f64> = Platform::ALL.iter().map(|&p| tput(p, WorkloadKind::NetperfE2E)).collect();
    vec![
        ShapeCheck::new(
            "Fig2/§4: every configuration saturates the gigabit link end-to-end",
            e2e.iter().all(|&m| m > 800.0 && m < 1000.0),
            format!("e2e Mbps {:?}", rounded5(&e2e)),
        ),
        ShapeCheck::new(
            "Fig2/§4: loopback peaks on 1CPm and degrades single -> dual units",
            lb[0] > lb[1] && lb[2] > lb[4],
            format!("loopback Mbps {:?} (paper 9550/6252/8897/8496/2823)", rounded5(&lb)),
        ),
        ShapeCheck::new(
            "Fig2/§4: dual-unit loopback impact more severe for 2PPx than 2CPm",
            // The paper's claim compares *degradations*: 2PPx loses more of
            // its single-unit throughput than 2CPm does, and ends lowest.
            (lb[4] / lb[2]) < (lb[1] / lb[0]) && lb[4] < lb[2] && lb[4] < lb[1],
            format!(
                "2PPx/1LPx {:.2} vs 2CPm/1CPm {:.2}; absolute {:.0} lowest",
                lb[4] / lb[2],
                lb[1] / lb[0],
                lb[4]
            ),
        ),
        ShapeCheck::new(
            "Tbl3/§4: loopback bus traffic jumps an order of magnitude for dual *physical* units",
            {
                let bt = |p| {
                    find(ms, p, WorkloadKind::NetperfLoopback)
                        .map(|m| m.stats.total.btpi_pct())
                        .unwrap_or(f64::NAN)
                };
                bt(TwoPhysicalXeon) > 4.0 * bt(OneLogicalXeon)
                    && bt(TwoCorePentiumM) > bt(OneCorePentiumM)
            },
            "BTPI(2PPx) >> BTPI(1LPx); BTPI(2CPm) > BTPI(1CPm)".to_string(),
        ),
    ]
}

/// Run every shape check that the available measurements support.
pub fn check_all_shapes(ms: &[Measurement]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let have = |w: WorkloadKind| Platform::ALL.iter().all(|&p| find(ms, p, w).is_some());
    if WorkloadKind::SERVER.iter().all(|&w| have(w)) {
        out.extend(check_fig3_shapes(ms));
        out.extend(check_table4_shapes(ms));
        out.extend(check_fig4_shapes(ms));
        out.extend(check_fig5_shapes(ms));
        out.extend(check_table5_shapes(ms));
        out.extend(check_table6_shapes(ms));
    }
    if have(WorkloadKind::NetperfLoopback) && have(WorkloadKind::NetperfE2E) {
        out.extend(check_netperf_shapes(ms));
    }
    out
}

/// Render shape-check outcomes.
pub fn format_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&format!(
            "[{}] {}\n      {}\n",
            if c.pass { "PASS" } else { "MISS" },
            c.name,
            c.detail
        ));
    }
    let passed = checks.iter().filter(|c| c.pass).count();
    out.push_str(&format!("shape checks: {passed}/{} reproduced\n", checks.len()));
    out
}

fn rounded(v: &[f64; 5]) -> [f64; 5] {
    let mut out = *v;
    for x in &mut out {
        *x = (*x * 100.0).round() / 100.0;
    }
    out
}

fn rounded5(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| x.round()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting() {
        let rows = vec![("SV".to_string(), [1.0, 2.0, 3.0, 4.0, 5.0])];
        let t = format_table("Table 4. CPI", &rows);
        assert!(t.contains("Table 4. CPI"));
        assert!(t.contains("1CPm"));
        assert!(t.contains("2PPx"));
        assert!(t.contains("SV"));
        assert!(t.contains("5.00"));
    }

    #[test]
    fn checks_format() {
        let checks = vec![
            ShapeCheck::new("a", true, "ok".into()),
            ShapeCheck::new("b", false, "nope".into()),
        ];
        let s = format_checks(&checks);
        assert!(s.contains("[PASS] a"));
        assert!(s.contains("[MISS] b"));
        assert!(s.contains("1/2 reproduced"));
    }

    #[test]
    fn empty_measurements_yield_no_checks() {
        assert!(check_all_shapes(&[]).is_empty());
    }

    #[test]
    fn validation_tags_the_offending_cell() {
        use crate::experiment::{run_cell, ExperimentConfig};
        let mut m =
            run_cell(Platform::OneCorePentiumM, WorkloadKind::Fr, &ExperimentConfig::quick());
        assert!(validate_measurements(std::slice::from_ref(&m)).is_empty());
        m.stats.total.branch_mispredicts = m.stats.total.branches_retired + 1;
        let diags = validate_measurements(std::slice::from_ref(&m));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].contains("1CPm/FR total"), "got: {}", diags[0]);
        assert!(diags[0].contains("branch-retirement"));
    }
}
