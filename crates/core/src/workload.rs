//! The five workloads of the study.

use crate::memo::{self, CorpusSpec};
use aon_net::netperf::{
    build_netperf_e2e, build_netperf_e2e_with_traces, build_netperf_loopback,
    build_netperf_loopback_with_traces, NetperfConfig,
};
use aon_server::app::{build_server, build_server_with_traces, ServerConfig};
use aon_server::corpus::Corpus;
use aon_server::usecase::UseCase;
use aon_sim::machine::Machine;

/// A workload the paper measures (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Netperf TCP_STREAM, both processes on the SUT (CPU-intensive
    /// baseline).
    NetperfLoopback,
    /// Netperf TCP_STREAM across the Gigabit link (network-I/O baseline).
    NetperfE2E,
    /// XML server, HTTP Forward Request.
    Fr,
    /// XML server, Content Based Routing.
    Cbr,
    /// XML server, Schema Validation.
    Sv,
    /// XML server, deep packet inspection (extension; paper §6 future
    /// work).
    Dpi,
    /// XML server, HMAC-SHA1 message authentication (extension; paper §6
    /// future work).
    Crypto,
}

impl WorkloadKind {
    /// All five, baselines first.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::NetperfLoopback,
        WorkloadKind::NetperfE2E,
        WorkloadKind::Fr,
        WorkloadKind::Cbr,
        WorkloadKind::Sv,
    ];

    /// The three server use cases.
    pub const SERVER: [WorkloadKind; 3] = [WorkloadKind::Fr, WorkloadKind::Cbr, WorkloadKind::Sv];

    /// The future-work extensions (paper §6).
    pub const EXTENSIONS: [WorkloadKind; 2] = [WorkloadKind::Dpi, WorkloadKind::Crypto];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::NetperfLoopback => "netperf-loopback",
            WorkloadKind::NetperfE2E => "netperf",
            WorkloadKind::Fr => "FR",
            WorkloadKind::Cbr => "CBR",
            WorkloadKind::Sv => "SV",
            WorkloadKind::Dpi => "DPI",
            WorkloadKind::Crypto => "CRYPTO",
        }
    }

    /// The server use case, if this is one.
    pub fn use_case(&self) -> Option<UseCase> {
        match self {
            WorkloadKind::Fr => Some(UseCase::Fr),
            WorkloadKind::Cbr => Some(UseCase::Cbr),
            WorkloadKind::Sv => Some(UseCase::Sv),
            WorkloadKind::Dpi => Some(UseCase::Dpi),
            WorkloadKind::Crypto => Some(UseCase::Crypto),
            _ => None,
        }
    }

    /// Wire this workload onto a machine, recording its traces from
    /// scratch. `corpus` feeds the server use cases (baselines ignore it).
    ///
    /// This is the reference path: [`WorkloadKind::build_memoized`] must
    /// produce byte-identical counters, and the equivalence suite checks
    /// the two against each other.
    pub fn build(&self, machine: &mut Machine, corpus: &Corpus) {
        match self {
            WorkloadKind::NetperfLoopback => {
                build_netperf_loopback(machine, &NetperfConfig::default());
            }
            WorkloadKind::NetperfE2E => {
                build_netperf_e2e(machine, &NetperfConfig::default());
            }
            WorkloadKind::Fr
            | WorkloadKind::Cbr
            | WorkloadKind::Sv
            | WorkloadKind::Dpi
            | WorkloadKind::Crypto => {
                build_server(
                    machine,
                    self.use_case().expect("server workload"),
                    corpus,
                    &ServerConfig::default(),
                );
            }
        }
    }

    /// Wire this workload onto a machine, replaying memoized traces (see
    /// [`crate::memo`]): the corpus and the use-case recording are made at
    /// most once per process and shared immutably across every platform
    /// and sweep point that asks for the same [`CorpusSpec`].
    pub fn build_memoized(&self, machine: &mut Machine, spec: CorpusSpec) {
        match self {
            WorkloadKind::NetperfLoopback => {
                let cfg = NetperfConfig::default();
                let rec = memo::netperf_recording(&cfg);
                build_netperf_loopback_with_traces(machine, &cfg, rec.tx, rec.rx);
            }
            WorkloadKind::NetperfE2E => {
                let cfg = NetperfConfig::default();
                let rec = memo::netperf_recording(&cfg);
                build_netperf_e2e_with_traces(machine, &cfg, rec.tx);
            }
            WorkloadKind::Fr
            | WorkloadKind::Cbr
            | WorkloadKind::Sv
            | WorkloadKind::Dpi
            | WorkloadKind::Crypto => {
                let rec = memo::server_recording(self.use_case().expect("server workload"), spec);
                build_server_with_traces(
                    machine,
                    rec.traces,
                    rec.msg_len,
                    &ServerConfig::default(),
                );
            }
        }
    }
}

impl core::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_use_cases() {
        assert_eq!(WorkloadKind::Fr.label(), "FR");
        assert_eq!(WorkloadKind::Fr.use_case(), Some(UseCase::Fr));
        assert_eq!(WorkloadKind::NetperfE2E.use_case(), None);
        assert_eq!(WorkloadKind::ALL.len(), 5);
        assert_eq!(WorkloadKind::SERVER.len(), 3);
    }
}
