//! Determinism equivalence suite for the perf optimizations.
//!
//! Every fast path in the pipeline — memoized trace recording, batched
//! replay, the pooled grid, the persistent cell cache — has a slow
//! reference twin. This suite runs both sides on at least two platforms
//! and two workloads and demands **byte-identical** [`PerfCounters`]
//! (full struct equality on the aggregate and every per-CPU block), so an
//! optimization that drifts by a single event count fails loudly here
//! before it can perturb EXPERIMENTS.md.

use aon_core::experiment::{run_cell, run_cell_fresh, run_grid, ExperimentConfig};
use aon_core::memo::CorpusSpec;
use aon_core::workload::WorkloadKind;
use aon_sim::config::Platform;
use aon_sim::machine::Machine;
use aon_sim::stats::MachineStats;

/// Platforms spanning both microarchitectures and both multi-unit styles.
const PLATFORMS: [Platform; 3] =
    [Platform::OneCorePentiumM, Platform::TwoCorePentiumM, Platform::TwoLogicalXeon];

/// A CPU-bound server case and an I/O-bound baseline.
const WORKLOADS: [WorkloadKind; 2] = [WorkloadKind::Sv, WorkloadKind::NetperfLoopback];

fn assert_stats_identical(a: &MachineStats, b: &MachineStats, what: &str) {
    assert_eq!(a.total, b.total, "{what}: aggregate counters must be byte-identical");
    assert_eq!(a.per_cpu, b.per_cpu, "{what}: per-CPU counters must be byte-identical");
    assert_eq!(a.cycles, b.cycles, "{what}: measured windows must agree");
    assert_eq!(a.completed_units, b.completed_units, "{what}: completed units must agree");
    assert_eq!(a.completed_bytes, b.completed_bytes, "{what}: completed bytes must agree");
}

#[test]
fn memoized_traces_match_fresh_recordings() {
    let cfg = ExperimentConfig::quick();
    for p in PLATFORMS {
        for w in WORKLOADS {
            let memoized = run_cell(p, w, &cfg);
            let fresh = run_cell_fresh(p, w, &cfg);
            assert_stats_identical(
                &memoized.stats,
                &fresh.stats,
                &format!("memoized vs fresh, {p:?} x {w:?}"),
            );
        }
    }
}

/// Replay a cell with the replay engine forced to the scalar reference
/// interpreter (the batched path is the production default).
fn run_cell_scalar(
    platform: Platform,
    workload: WorkloadKind,
    cfg: &ExperimentConfig,
) -> MachineStats {
    let mut machine = Machine::new(platform.config());
    machine.set_reference_replay(true);
    workload.build_memoized(&mut machine, CorpusSpec::of(cfg));
    machine.run(cfg.warmup_cycles);
    machine.reset_counters();
    let out = machine.run(cfg.warmup_cycles + cfg.measure_cycles);
    MachineStats::collect(&machine, &out)
}

#[test]
fn batched_replay_matches_scalar_reference() {
    let cfg = ExperimentConfig::quick();
    for p in PLATFORMS {
        for w in WORKLOADS {
            let batched = run_cell(p, w, &cfg);
            let scalar = run_cell_scalar(p, w, &cfg);
            assert_stats_identical(
                &batched.stats,
                &scalar,
                &format!("batched vs scalar, {p:?} x {w:?}"),
            );
        }
    }
}

#[test]
fn pooled_grid_matches_serial_grid() {
    let cfg = ExperimentConfig::quick();
    let serial = run_grid(&PLATFORMS, &WORKLOADS, &cfg, false);
    let pooled = run_grid(&PLATFORMS, &WORKLOADS, &cfg, true);
    assert_eq!(serial.len(), pooled.len());
    for (a, b) in serial.iter().zip(&pooled) {
        assert_eq!(a.platform, b.platform, "grid cell order must be deterministic");
        assert_eq!(a.workload, b.workload, "grid cell order must be deterministic");
        assert_stats_identical(
            &a.stats,
            &b.stats,
            &format!("pooled vs serial, {:?} x {:?}", a.platform, a.workload),
        );
    }
}

#[test]
fn repeated_cells_are_bit_stable() {
    // The memo caches are warm after the first call; the second call must
    // reproduce the first exactly (shared traces cannot drift).
    let cfg = ExperimentConfig::quick();
    for w in WORKLOADS {
        let first = run_cell(Platform::TwoLogicalXeon, w, &cfg);
        let second = run_cell(Platform::TwoLogicalXeon, w, &cfg);
        assert_stats_identical(&first.stats, &second.stats, &format!("repeat, {w:?}"));
    }
}
