//! Property tests for metric extraction: every [`MetricKind`] must
//! produce a finite, non-negative value for *any* structurally valid
//! measurement — the same predicate `aon_sim::invariants` asserts on real
//! counter blocks, checked here over the whole generated input space.

use aon_core::experiment::Measurement;
use aon_core::metrics::MetricKind;
use aon_core::workload::WorkloadKind;
use aon_sim::config::Platform;
use aon_sim::counters::PerfCounters;
use aon_sim::invariants::check_counters;
use aon_sim::stats::MachineStats;
use proptest::prelude::*;

/// All metric kinds, counter-derived plus throughput.
const ALL_KINDS: [MetricKind; 6] = [
    MetricKind::Cpi,
    MetricKind::L2Mpi,
    MetricKind::Btpi,
    MetricKind::BranchFreq,
    MetricKind::BrMpr,
    MetricKind::ThroughputMbps,
];

/// Strategy for a structurally valid counter block. Subordinate counts
/// are derived from their parents (mispredicts ⊆ branches ⊆ ops,
/// l2 ⊆ l1, …) so every generated block satisfies the simulator's
/// counter invariants by construction — including the all-zero block a
/// freshly reset machine reports.
fn counters() -> impl Strategy<Value = PerfCounters> {
    (
        0u64..=10_000_000_000,                                  // clockticks
        0u64..=2_000_000_000,                                   // abstract ops
        (0u64..=100, 0u64..=100, 0u64..=100),                   // branch/load/store shares (%)
        (0u64..=100, 0u64..=100, 0u64..=100),                   // mispredict / l1 / l2 shares
        0u64..=1_000_000,                                       // l1i misses
        (0u64..=1_000_000, 0u64..=1_000_000, 0u64..=1_000_000), // cycle accounts
    )
        .prop_map(|(ticks, ops, (br, ld, st), (mp, l1, l2), l1i, (idle, flush, stall))| {
            let branches = ops * br / 300; // the three shares sum ≤ 100%
            let loads = ops * ld / 300;
            let stores = ops * st / 300;
            let l1d = loads * l1 / 100;
            let l2m = (l1d + l1i) * l2 / 100;
            PerfCounters {
                clockticks: ticks,
                // Retired instructions track ops loosely (cracking factor).
                inst_retired_milli: ops * 1_700,
                abstract_ops: ops,
                branches_retired: branches,
                branch_mispredicts: branches * mp / 100,
                l1d_misses: l1d,
                l1i_misses: l1i,
                l2_misses: l2m,
                bus_txns: l2m,
                loads,
                stores,
                idle_cycles: idle.min(ticks),
                flush_cycles: flush.min(ticks),
                mem_stall_cycles: stall.min(ticks),
            }
        })
}

/// Strategy for a valid measurement wrapping a generated counter block.
fn measurement() -> impl Strategy<Value = Measurement> {
    (counters(), 0u64..=100_000, 0u32..=3, 0u32..=4).prop_map(
        |(total, units, mhz_sel, platform_sel)| {
            let platform = Platform::ALL[platform_sel as usize];
            let cpu_mhz = [600, 1_600, 2_800, 3_800][mhz_sel as usize];
            Measurement {
                platform,
                workload: WorkloadKind::Sv,
                stats: MachineStats {
                    platform: platform.notation().to_string(),
                    cpu_mhz,
                    cycles: total.clockticks,
                    completed_units: units,
                    completed_bytes: units * 5_120,
                    per_cpu: vec![total],
                    total,
                },
            }
        },
    )
}

proptest! {
    #[test]
    fn generated_counters_satisfy_the_invariants(c in counters()) {
        let v = check_counters(&c, None, None);
        prop_assert!(v.is_empty(), "generator produced an invalid block: {v:?}");
    }

    #[test]
    fn every_metric_is_finite_and_non_negative(m in measurement()) {
        for kind in ALL_KINDS {
            let value = kind.extract(&m);
            prop_assert!(
                value.is_finite() && value >= 0.0,
                "{kind} = {value} for counters {:?} over {} cycles at {} MHz",
                m.stats.total,
                m.stats.cycles,
                m.stats.cpu_mhz
            );
        }
    }
}
