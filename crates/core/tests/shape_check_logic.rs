//! Unit tests for the shape-check predicates themselves, using synthetic
//! measurements (no simulation): feeding the checks the paper's *own*
//! published numbers must make every applicable check pass, and feeding
//! them inverted data must make them fail.

use aon_core::experiment::Measurement;
use aon_core::paper;
use aon_core::report::{
    check_fig3_shapes, check_table4_shapes, check_table5_shapes, check_table6_shapes,
};
use aon_core::workload::WorkloadKind;
use aon_sim::config::Platform;
use aon_sim::convert::exact_f64;
use aon_sim::counters::PerfCounters;
use aon_sim::stats::MachineStats;

/// Truncating `f64` → `u64` for synthesizing counter values from target
/// ratios. Inputs are small positive magnitudes, so the narrowing is the
/// intended rounding, not data loss.
fn trunc_u64(v: f64) -> u64 {
    debug_assert!(v.is_finite() && v >= 0.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let out = v as u64;
    out
}

/// Build a synthetic measurement with chosen derived metrics.
fn synth(
    platform: Platform,
    workload: WorkloadKind,
    cpi: f64,
    brf_pct: f64,
    brmpr_pct: f64,
    units_per_sec: f64,
) -> Measurement {
    // Choose counters that produce the requested metrics at 1 GHz over 1 s.
    let cycles: u64 = 1_000_000_000;
    let inst = trunc_u64(exact_f64(cycles) / cpi);
    let branches = trunc_u64(exact_f64(inst) * brf_pct / 100.0);
    let mispredicts = trunc_u64(exact_f64(branches) * brmpr_pct / 100.0);
    let total = PerfCounters {
        clockticks: cycles,
        inst_retired_milli: inst * 1000,
        // Synthetic blocks must still satisfy the counter invariants the
        // report validates (branches are a subset of abstract ops).
        abstract_ops: inst,
        branches_retired: branches,
        branch_mispredicts: mispredicts,
        ..Default::default()
    };
    Measurement {
        platform,
        workload,
        stats: MachineStats {
            platform: platform.notation().to_string(),
            cpu_mhz: 1000,
            cycles,
            completed_units: trunc_u64(units_per_sec),
            completed_bytes: trunc_u64(units_per_sec) * 5120,
            total,
            per_cpu: vec![total],
        },
    }
}

/// A full server grid synthesized from the paper's published values.
fn paper_grid() -> Vec<Measurement> {
    let mut out = Vec::new();
    for w in WorkloadKind::SERVER {
        let cpi = paper::table4_cpi(w).expect("paper table covers every server workload");
        let brf = paper::table5_branch_freq(w).expect("paper table covers every server workload");
        let brmpr = paper::table6_brmpr(w).expect("paper table covers every server workload");
        // Synthesize absolute throughputs consistent with Figure 3's
        // scaling factors.
        let base = 10_000.0;
        let s3 = |pair| paper::fig3_scaling(pair, w).expect("paper figure covers every pair");
        use aon_core::metrics::ScalingPair::*;
        let tput = [
            base,
            base * s3(PmDualCore),
            base * 0.7,
            base * 0.7 * s3(XeonHyperthread),
            base * 0.7 * s3(XeonDualPackage),
        ];
        for (i, p) in Platform::ALL.iter().enumerate() {
            out.push(synth(*p, w, cpi[i], brf[i], brmpr[i], tput[i]));
        }
    }
    out
}

#[test]
fn paper_numbers_pass_their_own_checks() {
    let ms = paper_grid();
    for c in check_fig3_shapes(&ms)
        .into_iter()
        .chain(check_table4_shapes(&ms))
        .chain(check_table5_shapes(&ms))
        .chain(check_table6_shapes(&ms))
    {
        assert!(c.pass, "paper data must satisfy its own claim: {} — {}", c.name, c.detail);
    }
}

#[test]
fn inverted_scaling_fails_fig3_checks() {
    // Swap the HT and dual-package throughputs: "dual package beats HT"
    // must now fail.
    let mut ms = paper_grid();
    for m in &mut ms {
        match m.platform {
            Platform::TwoLogicalXeon => m.stats.completed_units *= 10,
            Platform::TwoPhysicalXeon => m.stats.completed_units /= 10,
            _ => {}
        }
    }
    let checks = check_fig3_shapes(&ms);
    assert!(checks.iter().any(|c| !c.pass), "inverted data must fail at least one Figure 3 check");
}

#[test]
fn flat_brmpr_fails_table6_ht_check() {
    // Make every platform's BrMPR identical: the HT-inflation claim fails.
    let ms: Vec<Measurement> = WorkloadKind::SERVER
        .iter()
        .flat_map(|&w| Platform::ALL.iter().map(move |&p| synth(p, w, 2.0, 20.0, 2.0, 10_000.0)))
        .collect();
    let checks = check_table6_shapes(&ms);
    let ht_check =
        checks.iter().find(|c| c.name.contains("Hyperthreading inflates")).expect("check exists");
    assert!(!ht_check.pass, "flat BrMPR must fail the HT claim");
}

#[test]
fn equal_branch_freq_fails_table5_check() {
    let ms: Vec<Measurement> = WorkloadKind::SERVER
        .iter()
        .flat_map(|&w| Platform::ALL.iter().map(move |&p| synth(p, w, 2.0, 20.0, 2.0, 10_000.0)))
        .collect();
    let checks = check_table5_shapes(&ms);
    assert!(checks.iter().any(|c| !c.pass), "identical branch fractions must fail the 2x claim");
}
