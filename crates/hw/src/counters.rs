//! Safe per-thread hardware counter groups.
//!
//! [`HwGroup::open_for_thread`] opens the paper's five-event set on the
//! calling thread as one perf group; [`HwGroup::read_now`] is a single
//! syscall returning an atomically-scheduled [`HwSnapshot`] of all five.
//! Opening is a probe: on any refusal the group degrades to an inert
//! no-op (zero snapshots, zero syscalls) and records why.
//!
//! Everything here is plain safe Rust over the errno-returning wrappers
//! in [`crate::sys`].

use crate::sys;

/// Number of hardware events in a group.
pub const EVENT_COUNT: usize = 5;

/// The five-event characterization set — the live analogue of the
/// paper's PMU reads (clockticks, instructions retired, cache misses,
/// branch misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwEvent {
    /// CPU cycles (user mode; kernel/hypervisor excluded so the open
    /// stays permitted under default `perf_event_paranoid`).
    Cycles,
    /// Instructions retired.
    Instructions,
    /// L1 data-cache read misses.
    L1dMiss,
    /// Last-level cache misses.
    LlcMiss,
    /// Mispredicted branches.
    BranchMiss,
}

impl HwEvent {
    /// Every event, in group-open (and snapshot) order.
    pub const ALL: [HwEvent; EVENT_COUNT] = [
        HwEvent::Cycles,
        HwEvent::Instructions,
        HwEvent::L1dMiss,
        HwEvent::LlcMiss,
        HwEvent::BranchMiss,
    ];

    /// Stable metric-label name (`aon_hw_events_total{event=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            HwEvent::Cycles => "cycles",
            HwEvent::Instructions => "instructions",
            HwEvent::L1dMiss => "l1d_miss",
            HwEvent::LlcMiss => "llc_miss",
            HwEvent::BranchMiss => "branch_miss",
        }
    }

    /// Position in [`HwEvent::ALL`] / [`HwSnapshot::values`].
    pub fn index(&self) -> usize {
        match self {
            HwEvent::Cycles => 0,
            HwEvent::Instructions => 1,
            HwEvent::L1dMiss => 2,
            HwEvent::LlcMiss => 3,
            HwEvent::BranchMiss => 4,
        }
    }

    /// The `(perf_type, config)` pair for `perf_event_open`.
    fn perf_ids(&self) -> (u32, u64) {
        match self {
            HwEvent::Cycles => (sys::PERF_TYPE_HARDWARE, sys::HW_CPU_CYCLES),
            HwEvent::Instructions => (sys::PERF_TYPE_HARDWARE, sys::HW_INSTRUCTIONS),
            HwEvent::L1dMiss => (sys::PERF_TYPE_HW_CACHE, sys::HW_CACHE_L1D_READ_MISS),
            HwEvent::LlcMiss => (sys::PERF_TYPE_HARDWARE, sys::HW_CACHE_MISSES),
            HwEvent::BranchMiss => (sys::PERF_TYPE_HARDWARE, sys::HW_BRANCH_MISSES),
        }
    }
}

/// One point-in-time reading of a group: cumulative event counts since
/// the group was opened (zeros for events the PMU refused, and all
/// zeros on the no-op backend). Plain data: subtractable and mergeable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwSnapshot {
    /// Counts indexed by [`HwEvent::index`].
    pub values: [u64; EVENT_COUNT],
}

impl HwSnapshot {
    /// The count for one event.
    pub fn get(&self, event: HwEvent) -> u64 {
        self.values[event.index()]
    }

    /// Element-wise `self - earlier`, saturating — with `earlier` read
    /// before `self` on the same group, the delta is the events spent in
    /// between (a stage span's cost).
    pub fn delta_since(&self, earlier: &HwSnapshot) -> HwSnapshot {
        let mut out = HwSnapshot::default();
        for (i, slot) in out.values.iter_mut().enumerate() {
            *slot = self.values[i].saturating_sub(earlier.values[i]);
        }
        out
    }

    /// Element-wise saturating accumulate (commutative, associative).
    pub fn accumulate(&mut self, delta: &HwSnapshot) {
        for (mine, d) in self.values.iter_mut().zip(delta.values.iter()) {
            *mine = mine.saturating_add(*d);
        }
    }

    /// True when every event count is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

/// What [`probe`] (or a group open) found — the degrade-matrix entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwProbe {
    /// `"perf_event"` when at least the group leader opened, else `"noop"`.
    pub backend: &'static str,
    /// Why the backend degraded (empty when fully available); per-event
    /// refusals are listed even when the backend itself is active.
    pub reason: String,
    /// Which of [`HwEvent::ALL`] actually opened.
    pub events: [bool; EVENT_COUNT],
}

impl HwProbe {
    /// True when hardware counts are flowing (leader opened).
    pub fn active(&self) -> bool {
        self.backend == "perf_event"
    }
}

/// A per-thread counter group. Open it on the thread you want measured;
/// reads from other threads would still be safe, just attributed to the
/// opening thread's schedule.
#[derive(Debug)]
pub struct HwGroup {
    /// Leader fd, or -1 for the no-op backend.
    leader: i32,
    /// Every owned fd (leader first), closed on drop.
    fds: Vec<i32>,
    /// Events that opened, in fd order — the group read returns values
    /// in exactly this order.
    opened: Vec<HwEvent>,
    probe: HwProbe,
}

impl HwGroup {
    /// The inert backend: zero snapshots, zero syscalls.
    pub fn noop(reason: String) -> HwGroup {
        HwGroup {
            leader: -1,
            fds: Vec::new(),
            opened: Vec::new(),
            probe: HwProbe { backend: "noop", reason, events: [false; EVENT_COUNT] },
        }
    }

    /// Probe-and-degrade open of the five-event group on the calling
    /// thread. The cycles event is the group leader: if it refuses, the
    /// whole group degrades to no-op with the errno recorded. Individual
    /// sibling refusals (e.g. an L1d cache event a VM's PMU lacks) only
    /// mark that event unavailable.
    pub fn open_for_thread() -> HwGroup {
        let mut fds: Vec<i32> = Vec::new();
        let mut opened: Vec<HwEvent> = Vec::new();
        let mut events = [false; EVENT_COUNT];
        let mut refusals: Vec<String> = Vec::new();
        for ev in HwEvent::ALL {
            let (ty, config) = ev.perf_ids();
            let group_fd = fds.first().copied().unwrap_or(-1);
            match sys::perf_event_open_thread(ty, config, group_fd) {
                Ok(fd) => {
                    fds.push(fd);
                    opened.push(ev);
                    events[ev.index()] = true;
                }
                Err(e) if fds.is_empty() => {
                    // Leader refused: the backend is unavailable here.
                    return HwGroup::noop(format!("{}: {}", ev.label(), sys::errno_name(e)));
                }
                Err(e) => refusals.push(format!("{}: {}", ev.label(), sys::errno_name(e))),
            }
        }
        let leader = fds[0];
        if let Err(e) = sys::group_reset(leader).and_then(|()| sys::group_enable(leader)) {
            for fd in &fds {
                sys::close_fd(*fd);
            }
            return HwGroup::noop(format!("enable: {}", sys::errno_name(e)));
        }
        HwGroup {
            leader,
            fds,
            opened,
            probe: HwProbe { backend: "perf_event", reason: refusals.join("; "), events },
        }
    }

    /// The probe record for this group (backend, reason, event mask).
    pub fn probe(&self) -> &HwProbe {
        &self.probe
    }

    /// True when hardware counts are flowing.
    pub fn active(&self) -> bool {
        self.leader >= 0
    }

    /// One-syscall snapshot of every event in the group (cumulative
    /// counts). The no-op backend — and any read error — returns zeros,
    /// so callers never branch on availability.
    pub fn read_now(&self) -> HwSnapshot {
        let mut snap = HwSnapshot::default();
        if self.leader < 0 {
            return snap;
        }
        // {nr, value[0..nr]} with PERF_FORMAT_GROUP.
        let mut buf = [0u64; 1 + EVENT_COUNT];
        let Ok(words) = sys::read_group(self.leader, &mut buf) else {
            return snap;
        };
        if words < 1 {
            return snap;
        }
        let nr = usize::try_from(buf[0]).unwrap_or(0).min(self.opened.len()).min(words - 1);
        for (slot, ev) in buf[1..1 + nr].iter().zip(self.opened.iter()) {
            snap.values[ev.index()] = *slot;
        }
        snap
    }
}

impl Drop for HwGroup {
    fn drop(&mut self) {
        if self.leader >= 0 {
            let _ = sys::group_disable(self.leader);
        }
        for fd in &self.fds {
            sys::close_fd(*fd);
        }
    }
}

/// Probe the backend on the calling thread: open a group, record the
/// outcome, drop it. This is the `hw_smoke` / `hw-report` availability
/// check and the source of the DESIGN.md degrade matrix entries.
pub fn probe() -> HwProbe {
    HwGroup::open_for_thread().probe().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_group_reads_zero_and_reports_backend() {
        let g = HwGroup::noop("test".to_string());
        assert!(!g.active());
        assert!(g.read_now().is_zero());
        assert_eq!(g.probe().backend, "noop");
        assert_eq!(g.probe().reason, "test");
        assert!(!g.probe().active());
    }

    #[test]
    fn snapshot_delta_and_accumulate_are_elementwise() {
        let a = HwSnapshot { values: [100, 50, 5, 2, 1] };
        let b = HwSnapshot { values: [150, 80, 6, 2, 3] };
        let d = b.delta_since(&a);
        assert_eq!(d.values, [50, 30, 1, 0, 2]);
        // Reversed order saturates to zero instead of wrapping.
        assert!(a.delta_since(&b).get(HwEvent::Cycles) == 0);
        let mut acc = HwSnapshot::default();
        acc.accumulate(&d);
        acc.accumulate(&d);
        assert_eq!(acc.get(HwEvent::Cycles), 100);
        assert_eq!(acc.get(HwEvent::BranchMiss), 4);
    }

    #[test]
    fn probe_never_panics_and_names_a_backend() {
        let p = probe();
        assert!(p.backend == "perf_event" || p.backend == "noop", "{p:?}");
        if p.backend == "noop" {
            assert!(!p.reason.is_empty(), "a degraded probe must say why");
        }
    }

    #[test]
    fn active_group_counts_work_when_available() {
        let g = HwGroup::open_for_thread();
        if !g.active() {
            // Probe-and-skip: containers routinely refuse perf_event.
            eprintln!("perf_event unavailable ({}), skipping live assertions", g.probe().reason);
            return;
        }
        let before = g.read_now();
        // Burn real instructions between the two snapshots.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..200_000u64 {
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17) ^ i;
        }
        std::hint::black_box(x);
        let after = g.read_now();
        let delta = after.delta_since(&before);
        assert!(delta.get(HwEvent::Instructions) > 0, "{delta:?}");
        assert!(delta.get(HwEvent::Cycles) > 0, "{delta:?}");
    }

    #[test]
    fn software_event_exercises_open_read_close_where_permitted() {
        // PMU-hardware events are often hidden (VMs report ENOENT), which
        // would leave the open/read/close path untested in CI; a software
        // task-clock event goes through the identical machinery and is
        // available wherever the syscall itself is permitted.
        let fd = match sys::perf_event_open_thread(sys::PERF_TYPE_SOFTWARE, sys::SW_TASK_CLOCK, -1)
        {
            Ok(fd) => fd,
            Err(e) => {
                eprintln!("perf_event_open refused ({}), skipping", sys::errno_name(e));
                return;
            }
        };
        sys::group_reset(fd).and_then(|()| sys::group_enable(fd)).expect("enable sw event");
        let mut x = 1u64;
        for i in 0..500_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let mut buf = [0u64; 2];
        let words = sys::read_group(fd, &mut buf).expect("group read");
        sys::close_fd(fd);
        assert_eq!(words, 2, "PERF_FORMAT_GROUP read returns {{nr, value}}");
        assert_eq!(buf[0], 1, "one event in the group");
        assert!(buf[1] > 0, "task clock advanced: {buf:?}");
    }

    #[test]
    fn event_labels_and_indices_are_stable() {
        for (i, ev) in HwEvent::ALL.iter().enumerate() {
            assert_eq!(ev.index(), i);
        }
        let labels: Vec<&str> = HwEvent::ALL.iter().map(HwEvent::label).collect();
        assert_eq!(labels, ["cycles", "instructions", "l1d_miss", "llc_miss", "branch_miss"]);
    }
}
