//! # aon-hw — hardware performance counters for the live server
//!
//! The source paper's entire method is hardware performance-counter
//! characterization: CPI, cache misses, and bus transactions read from
//! the Pentium M / Pentium 4 PMUs under live XML load. The simulator
//! half of this workspace *models* those counters and the `aon-obs`
//! crate counts the server in *software*; this crate closes the loop by
//! reading the real PMU of the machine the live server runs on, through
//! the Linux `perf_event_open(2)` interface.
//!
//! Design constraints, in order:
//!
//! 1. **No new dependencies.** The workspace is hermetic (no crates.io),
//!    so there is no `libc` crate. The syscall bindings are raw
//!    `extern "C"` declarations against the system libc that every
//!    `*-linux-gnu` binary already links ([`sys`]).
//! 2. **Probe and degrade, never fail.** Containers routinely block
//!    `perf_event_open` (seccomp, `perf_event_paranoid`, missing PMU in
//!    VMs). Opening a counter group is a *probe*: on any refusal the
//!    caller gets an inert no-op group plus an errno-style reason
//!    string, and everything downstream keeps working with zeroed
//!    counters — the same probe-and-skip discipline the concurrency CI
//!    stages use for miri/TSan.
//! 3. **One syscall per snapshot.** The five events (cycles,
//!    instructions, L1d misses, LLC misses, branch misses) are opened as
//!    one perf *group* with `PERF_FORMAT_GROUP`, so a snapshot at a
//!    stage boundary is a single `read(2)` that returns all five values
//!    atomically (scheduled on and off the PMU together).
//!
//! The safe API is [`counters`]: [`counters::HwGroup`] (per-thread
//! counter group), [`counters::HwSnapshot`] (plain-data values,
//! subtractable), and [`counters::probe`] (the degrade matrix entry:
//! backend + reason). The unsafe surface is confined to [`sys`] and is
//! four calls: `syscall(SYS_perf_event_open)`, `ioctl`, `read`, `close`.

pub mod counters;
pub mod sys;

pub use counters::{probe, HwEvent, HwGroup, HwProbe, HwSnapshot, EVENT_COUNT};
