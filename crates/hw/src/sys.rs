//! Raw `perf_event_open(2)` bindings — the workspace's only unsafe code.
//!
//! The hermetic workspace has no `libc` crate, so the four calls this
//! module needs (`syscall`, `ioctl`, `read`, `close`) are declared
//! directly against the system libc that every `*-linux-gnu` binary
//! links anyway. Everything is wrapped in safe functions that return
//! `Result<_, i32>` with the raw errno, so callers above this module
//! never see a pointer or a file descriptor they didn't ask for.
//!
//! On non-Linux targets (or unknown architectures) the same functions
//! exist but unconditionally return `ENOSYS` — the probe-and-degrade
//! contract of [`crate::counters`] then reports a clean `noop` backend.

/// `perf_event_open` is not wired up on this target (or the stub build).
pub const ENOSYS: i32 = 38;

/// `PERF_TYPE_HARDWARE` — generalized hardware events.
pub const PERF_TYPE_HARDWARE: u32 = 0;
/// `PERF_TYPE_HW_CACHE` — generalized cache events.
pub const PERF_TYPE_HW_CACHE: u32 = 3;
/// `PERF_TYPE_SOFTWARE` — kernel software events. Not part of the
/// characterization set; used by tests to exercise the open/read/close
/// path on machines whose PMU is hidden (VMs) but whose
/// `perf_event_open` still works.
pub const PERF_TYPE_SOFTWARE: u32 = 1;
/// `PERF_COUNT_SW_TASK_CLOCK` — per-task clock in nanoseconds.
pub const SW_TASK_CLOCK: u64 = 1;

/// `PERF_COUNT_HW_CPU_CYCLES`.
pub const HW_CPU_CYCLES: u64 = 0;
/// `PERF_COUNT_HW_INSTRUCTIONS`.
pub const HW_INSTRUCTIONS: u64 = 1;
/// `PERF_COUNT_HW_CACHE_MISSES` (last-level cache misses).
pub const HW_CACHE_MISSES: u64 = 3;
/// `PERF_COUNT_HW_BRANCH_MISSES`.
pub const HW_BRANCH_MISSES: u64 = 5;
/// `PERF_COUNT_HW_CACHE_L1D | (OP_READ << 8) | (RESULT_MISS << 16)` —
/// L1 data-cache read misses via the cache-event encoding.
pub const HW_CACHE_L1D_READ_MISS: u64 = 0x1_0000;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use std::os::raw::{c_int, c_long, c_ulong, c_void};

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: c_long = 241;

    // asm-generic `_IO('$', n)` encodings, identical on x86_64 and aarch64.
    const PERF_EVENT_IOC_ENABLE: c_ulong = 0x2400;
    const PERF_EVENT_IOC_DISABLE: c_ulong = 0x2401;
    const PERF_EVENT_IOC_RESET: c_ulong = 0x2403;
    /// Apply the ioctl to the whole group, not just one member.
    const PERF_IOC_FLAG_GROUP: c_ulong = 1;

    /// `read_format`: one read returns `{nr, value[nr]}` for the group.
    const PERF_FORMAT_GROUP: u64 = 1 << 3;
    /// attr.flags bit 0: start disabled (group leader only).
    const FLAG_DISABLED: u64 = 1;
    /// attr.flags bit 5: don't count kernel mode. Counting user mode only
    /// keeps the open permitted under `perf_event_paranoid <= 2`, the
    /// common unprivileged default.
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    /// attr.flags bit 6: don't count the hypervisor.
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;

    /// `struct perf_event_attr`, first 64 bytes (`PERF_ATTR_SIZE_VER0`).
    /// Declaring only VER0 and saying so in `size` is the most compatible
    /// ABI contract: the kernel reads exactly `size` bytes and applies
    /// defaults for everything newer, and every field this crate uses
    /// (type, config, read_format, the flag bits) is inside VER0.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
    }

    const ATTR_SIZE: u32 = 64;

    #[allow(unsafe_code)]
    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn __errno_location() -> *mut c_int;
    }

    #[allow(unsafe_code)]
    fn errno() -> i32 {
        // SAFETY: glibc/musl guarantee `__errno_location` returns a valid
        // thread-local pointer for the lifetime of the thread.
        unsafe { *__errno_location() }
    }

    /// Open one counting event on the calling thread (`pid = 0`,
    /// `cpu = -1`), attached to `group_fd` (or as a new group leader when
    /// `group_fd < 0`). Returns the event fd or the raw errno.
    pub fn perf_event_open_thread(ty: u32, config: u64, group_fd: i32) -> Result<i32, i32> {
        let mut flags = FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV;
        if group_fd < 0 {
            // The leader starts disabled; one ENABLE-with-group-flag
            // ioctl then starts all members together.
            flags |= FLAG_DISABLED;
        }
        let attr = PerfEventAttr {
            type_: ty,
            size: ATTR_SIZE,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: PERF_FORMAT_GROUP,
            flags,
            wakeup_events: 0,
            bp_type: 0,
            config1: 0,
        };
        debug_assert_eq!(std::mem::size_of::<PerfEventAttr>(), ATTR_SIZE as usize);
        // SAFETY: the attr struct is repr(C), fully initialized, lives
        // across the call, and `size` tells the kernel to read exactly
        // the 64 bytes it occupies. All other arguments are plain ints.
        #[allow(unsafe_code)]
        let ret = unsafe {
            syscall(
                SYS_PERF_EVENT_OPEN,
                std::ptr::from_ref(&attr).cast::<c_void>(),
                0_i32,  // pid 0: the calling thread
                -1_i32, // cpu -1: whichever CPU the thread runs on
                group_fd,
                0_u64, // no PERF_FLAG_*
            )
        };
        if ret < 0 {
            Err(errno())
        } else {
            i32::try_from(ret).map_err(|_| super::ENOSYS)
        }
    }

    fn group_ioctl(leader: i32, request: c_ulong) -> Result<(), i32> {
        // SAFETY: plain-integer ioctl on an fd this crate opened; the
        // third argument is the group flag, not a pointer.
        #[allow(unsafe_code)]
        let ret = unsafe { ioctl(leader, request, PERF_IOC_FLAG_GROUP) };
        if ret < 0 {
            Err(errno())
        } else {
            Ok(())
        }
    }

    /// Start every member of the group led by `leader`.
    pub fn group_enable(leader: i32) -> Result<(), i32> {
        group_ioctl(leader, PERF_EVENT_IOC_ENABLE)
    }

    /// Stop every member of the group led by `leader`.
    pub fn group_disable(leader: i32) -> Result<(), i32> {
        group_ioctl(leader, PERF_EVENT_IOC_DISABLE)
    }

    /// Zero every member of the group led by `leader`.
    pub fn group_reset(leader: i32) -> Result<(), i32> {
        group_ioctl(leader, PERF_EVENT_IOC_RESET)
    }

    /// One group read: fills `out` with `{nr, value[0], value[1], ...}`
    /// and returns how many `u64`s the kernel wrote.
    pub fn read_group(fd: i32, out: &mut [u64]) -> Result<usize, i32> {
        let bytes = std::mem::size_of_val(out);
        // SAFETY: `out` is a valid, writable buffer of exactly `bytes`
        // bytes for the duration of the call; the kernel writes at most
        // that much.
        #[allow(unsafe_code)]
        let n = unsafe { read(fd, out.as_mut_ptr().cast::<c_void>(), bytes) };
        if n < 0 {
            Err(errno())
        } else {
            Ok(usize::try_from(n).unwrap_or(0) / std::mem::size_of::<u64>())
        }
    }

    /// Close an event fd (best effort; errors are ignored by design).
    pub fn close_fd(fd: i32) {
        // SAFETY: closing an fd this crate opened; double-close cannot
        // happen because `HwGroup` owns each fd exactly once.
        #[allow(unsafe_code)]
        unsafe {
            close(fd);
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    //! Stub backend: every call reports `ENOSYS`, so [`crate::counters`]
    //! degrades to the no-op backend exactly as it would in a container
    //! that blocks the syscall.

    /// Always `Err(ENOSYS)` on this target.
    pub fn perf_event_open_thread(_ty: u32, _config: u64, _group_fd: i32) -> Result<i32, i32> {
        Err(super::ENOSYS)
    }

    /// Always `Err(ENOSYS)` on this target.
    pub fn group_enable(_leader: i32) -> Result<(), i32> {
        Err(super::ENOSYS)
    }

    /// Always `Err(ENOSYS)` on this target.
    pub fn group_disable(_leader: i32) -> Result<(), i32> {
        Err(super::ENOSYS)
    }

    /// Always `Err(ENOSYS)` on this target.
    pub fn group_reset(_leader: i32) -> Result<(), i32> {
        Err(super::ENOSYS)
    }

    /// Always `Err(ENOSYS)` on this target.
    pub fn read_group(_fd: i32, _out: &mut [u64]) -> Result<usize, i32> {
        Err(super::ENOSYS)
    }

    /// Nothing to close on this target.
    pub fn close_fd(_fd: i32) {}
}

pub use imp::{
    close_fd, group_disable, group_enable, group_reset, perf_event_open_thread, read_group,
};

/// Human-readable name for the errnos `perf_event_open` realistically
/// returns, for the probe/degrade matrix (unknown values print as `E<n>`).
pub fn errno_name(e: i32) -> String {
    let name = match e {
        1 => "EPERM (perf_event_paranoid or seccomp)",
        2 => "ENOENT (event not supported by this PMU)",
        7 => "E2BIG (attr size mismatch)",
        9 => "EBADF",
        11 => "EAGAIN",
        13 => "EACCES (perf_event_paranoid or seccomp)",
        19 => "ENODEV (no PMU on this CPU)",
        22 => "EINVAL (event or attr rejected)",
        24 => "EMFILE (fd limit)",
        28 => "ENOSPC (out of PMU counters)",
        38 => "ENOSYS (syscall unavailable on this target)",
        95 => "EOPNOTSUPP (event not supported by hardware)",
        _ => return format!("E{e}"),
    };
    name.to_string()
}
