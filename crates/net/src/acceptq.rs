//! Bounded accept queue for the live serving path.
//!
//! The paper's server sits behind the kernel's SYN backlog; our live
//! listener mirrors that with an explicit bounded hand-off queue between
//! the accept thread and the worker pool. Bounded means overload sheds
//! connections at the edge (the push fails and the socket drops) instead
//! of queueing unboundedly — the same admission behaviour a `listen(2)`
//! backlog gives a real server.
//!
//! The queue is a plain `Mutex<VecDeque>` + `Condvar` MPMC channel with a
//! close/drain protocol for graceful shutdown: after [`AcceptQueue::close`]
//! producers are refused, but consumers keep draining whatever was already
//! accepted, and only then observe [`Pop::Closed`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// An item stamped with its enqueue time, so the consumer can attribute
/// queue wait — the gap between a connection being accepted and a worker
/// picking it up — to the request it serves. The paper's service-time
/// decomposition starts at TCP termination; without this stamp the
/// server's own view starts only when a worker reads the first byte, and
/// queueing delay silently disappears from every trace.
#[derive(Debug, PartialEq, Eq)]
pub struct Timed<T> {
    /// The queued item.
    pub item: T,
    /// When the producer enqueued it.
    pub enqueued_at: Instant,
}

impl<T> Timed<T> {
    /// Stamp `item` with the current instant.
    pub fn now(item: T) -> Timed<T> {
        Timed { item, enqueued_at: Instant::now() }
    }

    /// Nanoseconds since the item was enqueued (the queue wait, when
    /// called at dequeue time).
    pub fn wait_ns(&self) -> u64 {
        u64::try_from(self.enqueued_at.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Result of a [`AcceptQueue::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The wait elapsed with the queue open but empty.
    Empty,
    /// The queue is closed and fully drained — the consumer should exit.
    Closed,
}

/// Why a [`AcceptQueue::push`] was refused; the item is handed back so
/// the caller can drop (or retry) the connection. The two cases are
/// distinct observables: `Full` is overload shed at the edge, `Closed`
/// is a connection arriving during shutdown drain.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue already holds `capacity` items (admission control).
    Full(T),
    /// The queue was closed ([`AcceptQueue::close`]) before the push.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recover the refused item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded, closeable MPMC hand-off queue.
pub struct AcceptQueue<T> {
    // audit:role(queue): items + closed bit; every push/pop/close edge
    // happens under this mutex, so no atomics appear on the queue at all
    state: Mutex<State<T>>,
    // audit:role(queue): wakes poppers; always signalled with the state
    // mutex held-then-released, never used to pass data itself
    available: Condvar,
    capacity: usize,
}

impl<T> AcceptQueue<T> {
    /// A queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> AcceptQueue<T> {
        assert!(capacity > 0, "a zero-capacity backlog would refuse everything");
        AcceptQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item`; on a full or closed queue the item is handed back
    /// (the caller drops the connection — admission control). On success
    /// returns the queue depth **after** the push, so producers can track
    /// the depth high-water mark without a second lock.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut s = self.state.lock().expect("accept queue poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeue, waiting up to `wait` for an item. Draining outlives
    /// closing: a closed queue keeps yielding items until empty.
    pub fn pop(&self, wait: Duration) -> Pop<T> {
        let mut s = self.state.lock().expect("accept queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Closed;
            }
            let (next, timeout) =
                self.available.wait_timeout(s, wait).expect("accept queue poisoned");
            s = next;
            if timeout.timed_out() {
                return match s.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if s.closed => Pop::Closed,
                    None => Pop::Empty,
                };
            }
        }
    }

    /// Refuse new items and wake every waiting consumer.
    pub fn close(&self) {
        self.state.lock().expect("accept queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// The bound: the depth at which pushes start failing with
    /// [`PushError::Full`]. A `Full` refusal therefore *means* the queue
    /// stood at exactly this depth — the shed-path depth accounting in
    /// the server's listener relies on that.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued items right now.
    pub fn len(&self) -> usize {
        self.state.lock().expect("accept queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_sheds_overload_and_reports_depth() {
        let q = AcceptQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2, "a Full refusal happens with the queue at capacity");
        assert_eq!(q.push(4).expect_err("full").into_inner(), 4);
    }

    #[test]
    fn pop_drains_then_reports_closed() {
        let q = AcceptQueue::new(4);
        q.push(10).unwrap();
        q.push(11).unwrap();
        q.close();
        assert_eq!(q.push(12), Err(PushError::Closed(12)), "closed queue refuses producers");
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item(10));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item(11));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::<i32>::Closed);
    }

    #[test]
    fn empty_open_queue_times_out() {
        let q: AcceptQueue<i32> = AcceptQueue::new(1);
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Empty);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<AcceptQueue<i32>> = Arc::new(AcceptQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().expect("consumer thread"), Pop::Closed);
    }

    #[test]
    fn close_while_full_drains_everything_then_reports_closed() {
        let q = AcceptQueue::new(2);
        q.push(1).expect("fits");
        q.push(2).expect("fits");
        assert_eq!(q.push(3), Err(PushError::Full(3)), "full before close sheds as Full");
        q.close();
        // Closed wins over Full once the close lands, even with room freed.
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.push(4), Err(PushError::Closed(4)));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item(2));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::<i32>::Closed);
        assert!(q.is_empty());
    }

    #[test]
    fn timed_wrapper_measures_queue_wait() {
        let q: AcceptQueue<Timed<u32>> = AcceptQueue::new(4);
        q.push(Timed::now(7)).expect("fits");
        std::thread::sleep(Duration::from_millis(5));
        let Pop::Item(t) = q.pop(Duration::from_millis(1)) else {
            panic!("item queued above");
        };
        assert_eq!(t.item, 7);
        assert!(t.wait_ns() >= 2_000_000, "waited ~5ms, got {}ns", t.wait_ns());
        // The wait keeps growing monotonically after dequeue.
        let first = t.wait_ns();
        assert!(t.wait_ns() >= first);
    }

    #[test]
    fn items_flow_across_threads() {
        let q: Arc<AcceptQueue<usize>> = Arc::new(AcceptQueue::new(64));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..100 {
                    while q.push(i).is_err() {
                        std::thread::yield_now();
                    }
                }
                q.close();
            })
        };
        let mut got = Vec::new();
        loop {
            match q.pop(Duration::from_millis(50)) {
                Pop::Item(i) => got.push(i),
                Pop::Empty => continue,
                Pop::Closed => break,
            }
        }
        producer.join().expect("producer thread");
        assert_eq!(got.len(), 100);
    }
}
