//! # aon-net — simulated network substrate
//!
//! Everything between the wire and the application for the AON
//! reproduction:
//!
//! * [`link`] — Gigabit Ethernet rate constants and conversions into the
//!   simulator's cycle-denominated drain/fill rates.
//! * [`tcpcost`] — instrumented TCP/IP stack work: per-segment header
//!   processing, checksum+copy loops between user and kernel buffers.
//!   These are recorded as [`aon_trace::Trace`]s with realistic buffer
//!   addresses, so the network stack's streaming memory behaviour (no
//!   temporal reuse, §5.3 of the paper) is emergent.
//! * [`netperf`] — the paper's baseline workload (§3.2.2): the TCP_STREAM
//!   bulk transfer benchmark in **end-to-end** mode (sender → NIC DMA →
//!   gigabit link) and **loopback** mode (producer and consumer threads
//!   sharing a kernel socket buffer — the extreme CPU/memory-intensive
//!   case).
//!
//! Plus the substrate of the **live** serving path (`aon-serve`), which
//! moves real bytes instead of modeled ones:
//!
//! * [`wire`] — blocking HTTP/1.1 message framing over real sockets, with
//!   hard head/body limits and per-message deadlines;
//! * [`acceptq`] — the bounded accept queue between the listener thread
//!   and the worker pool (overload sheds connections at the edge).

pub mod acceptq;
pub mod link;
pub mod netperf;
pub mod tcpcost;
pub mod wire;

pub use netperf::{
    build_netperf_e2e, build_netperf_e2e_with_traces, build_netperf_loopback,
    build_netperf_loopback_with_traces, record_netperf_traces, NetperfConfig,
};
