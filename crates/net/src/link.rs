//! Link-rate arithmetic.
//!
//! The testbed's Gigabit Ethernet moves at most 125 MB/s of payload (less
//! in practice: Ethernet + IP + TCP framing). The simulator's channels
//! meter flow in *bytes per 1024 cycles*, which depends on the CPU clock,
//! so these helpers convert.

/// Gigabit Ethernet payload capacity in bytes per second, accounting for
/// Ethernet/IP/TCP framing of MSS-sized segments (~94 % of 125 MB/s — the
/// paper's observation that a good TCP application reaches >90 % of the
/// wire rate).
pub const GIGE_PAYLOAD_BYTES_PER_SEC: u64 = 117_500_000;

/// The classic Ethernet TCP maximum segment size.
pub const MSS: u32 = 1460;

/// Convert a byte rate into the simulator's bytes-per-1024-cycles unit for
/// a CPU running at `cpu_mhz`.
pub fn bytes_per_kcycle(bytes_per_sec: u64, cpu_mhz: u32) -> u32 {
    // rate[B/s] * 1024[cycles] / (mhz * 1e6)[cycles/s]
    let rate = ((bytes_per_sec * 1024) / (u64::from(cpu_mhz) * 1_000_000)).max(1);
    u32::try_from(rate).expect("per-kilocycle rates are small")
}

/// Gigabit link rate in the simulator's channel unit.
pub fn gige_per_kcycle(cpu_mhz: u32) -> u32 {
    bytes_per_kcycle(GIGE_PAYLOAD_BYTES_PER_SEC, cpu_mhz)
}

/// Number of MSS segments needed for `bytes` of payload.
pub fn segments(bytes: u32) -> u32 {
    bytes.div_ceil(MSS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kcycle_rates_scale_with_clock() {
        let pm = gige_per_kcycle(1830);
        let xe = gige_per_kcycle(3160);
        // Faster clock → fewer bytes per kilocycle.
        assert!(pm > xe);
        // Sanity: 117.5 MB/s at 1.83 GHz ≈ 65 bytes/kcycle.
        assert!((60..=70).contains(&pm), "pm rate {pm}");
        assert!((35..=42).contains(&xe), "xeon rate {xe}");
    }

    #[test]
    fn round_trip_rate_is_gigabit() {
        // Converting back: rate * mhz * 1e6 / 1024 ≈ original.
        use aon_trace::num::exact_f64;
        let r = u64::from(gige_per_kcycle(1830));
        let back = r * 1830 * 1_000_000 / 1024;
        let err = (exact_f64(back) - exact_f64(GIGE_PAYLOAD_BYTES_PER_SEC)).abs()
            / exact_f64(GIGE_PAYLOAD_BYTES_PER_SEC);
        assert!(err < 0.02, "rate conversion error {err}");
    }

    #[test]
    fn segment_count() {
        assert_eq!(segments(1460), 1);
        assert_eq!(segments(1461), 2);
        assert_eq!(segments(16 * 1024), 12);
        assert_eq!(segments(1), 1);
    }
}
