//! The netperf TCP_STREAM baseline (paper §3.2.2, Figure 2, Table 3).
//!
//! Two modes, matching the paper exactly:
//!
//! * **End-to-end** — `netperf` on the system under test streams to a
//!   `netserver` on another host across Gigabit Ethernet. Modelled as a
//!   sender thread doing TCP transmit work into a NIC queue drained at
//!   wire rate (with NIC DMA reads on the bus). The sender blocks on the
//!   full queue: the link is the bottleneck, the CPU mostly waits — the
//!   extreme *network I/O intensive* case.
//! * **Loopback** — both processes on the same host: a producer and a
//!   consumer thread copying through a shared kernel socket buffer. No
//!   wire, no DMA: pure CPU/memory work, with the socket-buffer ring
//!   shared between the two threads — the extreme *CPU intensive* case
//!   whose cache behaviour separates the five platforms (shared L1 on
//!   1CPm/2LPx, shared L2 on 2CPm, bus-crossing MESI transfers on 2PPx).

use crate::link::gige_per_kcycle;
use crate::tcpcost::{rx_trace, tx_trace};
use aon_sim::machine::Machine;
use aon_sim::sync::{ChannelConfig, ChannelId, Msg};
use aon_sim::thread::{Step, Workload, WorkloadCtx};
use aon_trace::trace::{Binding, Trace};
use aon_trace::{RegionSlot, VAddr};
use std::sync::Arc;

/// Netperf benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetperfConfig {
    /// Bytes per socket send call (netperf default message size).
    pub send_size: u32,
    /// Socket buffer / NIC queue capacity.
    pub sockbuf: u32,
}

impl Default for NetperfConfig {
    fn default() -> Self {
        NetperfConfig { send_size: 16 * 1024, sockbuf: 64 * 1024 }
    }
}

/// Virtual address of the sender's user buffer.
const USER_TX_BUF: VAddr = VAddr(0x2000_0000);
/// Virtual address of the receiver's user buffer.
const USER_RX_BUF: VAddr = VAddr(0x2400_0000);
/// Virtual address of the kernel socket-buffer ring.
const SOCKBUF_BASE: VAddr = VAddr(0x3000_0000);

/// Mirror of [`aon_sim::sync::SimChannel::next_buf_addr`]'s ring policy, so
/// workloads compute the same buffer addresses the channel assigns.
fn ring_addr(base: VAddr, window: u32, cursor: u64, bytes: u32) -> VAddr {
    let window = window.max(bytes) as u64;
    let off = cursor % window;
    let off = if off + bytes as u64 > window { 0 } else { off };
    base.offset(off)
}

enum SenderState {
    Compute,
    Send,
    Dma,
}

/// The `netperf` process: an endless TCP_STREAM transmit loop.
struct Sender {
    chan: ChannelId,
    trace: Arc<Trace>,
    window: u32,
    cursor: u64,
    send_size: u32,
    /// End-to-end mode: issue a NIC DMA read per send and report
    /// throughput at the sender.
    e2e: bool,
    state: SenderState,
}

impl Workload for Sender {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        match self.state {
            SenderState::Compute => {
                let mut b = Binding::new();
                b.bind(RegionSlot::MSG, USER_TX_BUF);
                b.bind(
                    RegionSlot::OUT,
                    ring_addr(SOCKBUF_BASE, self.window, self.cursor, self.send_size),
                );
                self.state = SenderState::Send;
                Step::Run { trace: Arc::clone(&self.trace), binding: b }
            }
            SenderState::Send => {
                let msg = Msg { bytes: self.send_size, tag: self.cursor };
                if self.e2e {
                    // The DMA leg reads this send's buffer; the cursor
                    // advances there.
                    self.state = SenderState::Dma;
                    ctx.complete_units = 1;
                    ctx.complete_bytes = self.send_size as u64;
                } else {
                    self.state = SenderState::Compute;
                    self.cursor += self.send_size as u64;
                }
                Step::Send { chan: self.chan, msg }
            }
            SenderState::Dma => {
                let addr = ring_addr(SOCKBUF_BASE, self.window, self.cursor, self.send_size);
                self.cursor += self.send_size as u64;
                self.state = SenderState::Compute;
                Step::Dma { write: false, addr, len: self.send_size }
            }
        }
    }

    fn label(&self) -> &str {
        "netperf"
    }
}

/// The `netserver` process in loopback mode: an endless receive loop.
struct Receiver {
    chan: ChannelId,
    trace: Arc<Trace>,
    window: u32,
    cursor: u64,
}

impl Workload for Receiver {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        if let Some(m) = ctx.last_recv {
            let mut b = Binding::new();
            b.bind(RegionSlot::MSG, USER_RX_BUF);
            b.bind(RegionSlot::IN2, ring_addr(SOCKBUF_BASE, self.window, self.cursor, m.bytes));
            self.cursor += m.bytes as u64;
            ctx.complete_units = 1;
            ctx.complete_bytes = m.bytes as u64;
            return Step::Run { trace: Arc::clone(&self.trace), binding: b };
        }
        Step::Recv { chan: self.chan }
    }

    fn label(&self) -> &str {
        "netserver"
    }
}

/// Record the transmit and receive traces netperf replays, shared
/// (`Arc`) for reuse.
///
/// The recording depends only on the send size — never on the platform —
/// so a sweep records once and replays the same immutable traces on every
/// platform configuration.
pub fn record_netperf_traces(cfg: &NetperfConfig) -> (Arc<Trace>, Arc<Trace>) {
    (Arc::new(tx_trace(cfg.send_size)), Arc::new(rx_trace(cfg.send_size)))
}

/// Wire up netperf **loopback** mode on `machine`: producer + consumer
/// sharing a bounded kernel socket buffer. Returns the channel.
pub fn build_netperf_loopback(machine: &mut Machine, cfg: &NetperfConfig) -> ChannelId {
    let (tx, rx) = record_netperf_traces(cfg);
    build_netperf_loopback_with_traces(machine, cfg, tx, rx)
}

/// [`build_netperf_loopback`] with pre-recorded `(tx, rx)` traces (the
/// memoization seam — byte-identical given the same recording).
pub fn build_netperf_loopback_with_traces(
    machine: &mut Machine,
    cfg: &NetperfConfig,
    tx: Arc<Trace>,
    rx: Arc<Trace>,
) -> ChannelId {
    let chan = machine.add_channel(ChannelConfig::bounded(cfg.sockbuf, SOCKBUF_BASE));
    machine.spawn(Box::new(Sender {
        chan,
        trace: tx,
        window: cfg.sockbuf,
        cursor: 0,
        send_size: cfg.send_size,
        e2e: false,
        state: SenderState::Compute,
    }));
    machine.spawn(Box::new(Receiver { chan, trace: rx, window: cfg.sockbuf, cursor: 0 }));
    chan
}

/// Wire up netperf **end-to-end** transmit mode on `machine`: a sender
/// streaming into a NIC queue drained at Gigabit wire rate, with NIC DMA
/// reads on the bus. Returns the NIC queue channel.
pub fn build_netperf_e2e(machine: &mut Machine, cfg: &NetperfConfig) -> ChannelId {
    let (tx, _rx) = record_netperf_traces(cfg);
    build_netperf_e2e_with_traces(machine, cfg, tx)
}

/// [`build_netperf_e2e`] with a pre-recorded transmit trace (the
/// memoization seam — byte-identical given the same recording).
pub fn build_netperf_e2e_with_traces(
    machine: &mut Machine,
    cfg: &NetperfConfig,
    tx: Arc<Trace>,
) -> ChannelId {
    let mhz = machine.config().cpu_mhz;
    let chan = machine.add_channel(ChannelConfig {
        capacity: cfg.sockbuf,
        drain_per_kcycle: gige_per_kcycle(mhz),
        buf_base: SOCKBUF_BASE,
        fill: None,
    });
    machine.spawn(Box::new(Sender {
        chan,
        trace: tx,
        window: cfg.sockbuf,
        cursor: 0,
        send_size: cfg.send_size,
        e2e: true,
        state: SenderState::Compute,
    }));
    chan
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_sim::config::Platform;
    use aon_sim::stats::MachineStats;

    fn run(p: Platform, loopback: bool, cycles: u64) -> MachineStats {
        let mut m = Machine::new(p.config());
        let cfg = NetperfConfig::default();
        if loopback {
            build_netperf_loopback(&mut m, &cfg);
        } else {
            build_netperf_e2e(&mut m, &cfg);
        }
        // Warm up, then measure.
        m.run(cycles / 4);
        m.reset_counters();
        let out = m.run(cycles / 4 + cycles);
        MachineStats::collect(&m, &out)
    }

    #[test]
    fn e2e_saturates_near_link_rate() {
        for p in [Platform::OneCorePentiumM, Platform::OneLogicalXeon] {
            let s = run(p, false, 30_000_000);
            let mbps = s.throughput_mbps();
            assert!(
                (800.0..=1000.0).contains(&mbps),
                "{} e2e should ride the gigabit link: {mbps:.0} Mbps",
                s.platform
            );
        }
    }

    #[test]
    fn loopback_exceeds_link_rate() {
        let s = run(Platform::OneCorePentiumM, true, 30_000_000);
        let mbps = s.throughput_mbps();
        assert!(mbps > 2000.0, "loopback is CPU-bound, not wire-bound: {mbps:.0} Mbps");
    }

    #[test]
    fn e2e_cpu_mostly_waits() {
        let s = run(Platform::OneCorePentiumM, false, 30_000_000);
        // CPI is inflated by idle/blocked time (paper Table 3: CPI 3.46).
        assert!(s.total.cpi() > 1.5, "link-bound sender idles: CPI {:.2}", s.total.cpi());
    }

    #[test]
    fn loopback_2ppx_generates_coherence_traffic() {
        let same = run(Platform::TwoCorePentiumM, true, 30_000_000);
        let cross = run(Platform::TwoPhysicalXeon, true, 30_000_000);
        // The paper's starkest result: cross-package loopback pays bus-
        // crossing cache-to-cache transfers; shared-L2 loopback does not.
        assert!(
            cross.total.btpi_pct() > same.total.btpi_pct() * 1.5,
            "2PPx BTPI {:.2}% should dwarf 2CPm {:.2}%",
            cross.total.btpi_pct(),
            same.total.btpi_pct()
        );
    }

    #[test]
    fn loopback_throughput_ordering_matches_paper() {
        // Figure 2: 1CPm > 1LPx > 2LPx-ish > 2CPm > 2PPx (2PPx collapses).
        let one_pm = run(Platform::OneCorePentiumM, true, 30_000_000).throughput_mbps();
        let two_pp = run(Platform::TwoPhysicalXeon, true, 30_000_000).throughput_mbps();
        assert!(
            one_pm > two_pp,
            "single-CPU loopback beats cross-package: {one_pm:.0} vs {two_pp:.0}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(Platform::TwoCorePentiumM, true, 10_000_000);
        let b = run(Platform::TwoCorePentiumM, true, 10_000_000);
        assert_eq!(a.total, b.total, "simulation must be deterministic");
        assert_eq!(a.completed_bytes, b.completed_bytes);
    }
}
