//! Instrumented TCP/IP stack work.
//!
//! These functions *execute* the byte-moving kernels a 2.6-era Linux stack
//! runs per socket call — segment header construction, combined
//! checksum-and-copy between user and kernel buffers, socket bookkeeping —
//! against a probe, producing replayable traces. Buffer roles map to
//! relocatable region slots:
//!
//! * [`RegionSlot::MSG`] — the user buffer (netperf's send buffer, the
//!   server's message buffer);
//! * [`RegionSlot::OUT`] — the destination kernel socket buffer (bound to
//!   a channel's ring window at replay time);
//! * [`RegionSlot::IN2`] — the source kernel socket buffer on the receive
//!   path.
//!
//! One trace covers one socket call moving `len` bytes (possibly several
//! MSS segments).

use crate::link::{segments, MSS};
use aon_trace::code::{site_hash, SiteId};
use aon_trace::{Addr, Probe, ProbeExt, RegionSlot, Trace, Tracer};

/// Per-syscall fixed overhead in abstract ALU ops (mode switch, fd lookup,
/// socket lock).
const SYSCALL_ALU: u32 = 420;
/// Per-segment header/bookkeeping overhead in ALU ops (IP/TCP header
/// build, route cache hit, timer update).
const SEGMENT_ALU: u32 = 180;
/// Span of the socket/TCP control structures touched per segment.
const SOCK_STATE: u32 = 32 << 10;

fn xorshift(x: &mut u32) -> u32 {
    *x ^= *x << 13;
    *x ^= *x >> 17;
    *x ^= *x << 5;
    *x
}

/// Per-segment TCP protocol processing: sequence/window arithmetic, timer
/// and congestion bookkeeping, socket-state reads — the branchy state
/// machine that makes bulk TCP traffic branch-rich (the paper's Table 3
/// reports ~34 % branch frequency for netperf on Pentium M). Branch sites
/// vary across 64 synthetic code paths with strong per-site biases, so
/// predictor capacity (and SMT history sharing) matters exactly as in
/// §5.5.
fn emit_segment_protocol<P: Probe>(seq: u32, p: &mut P) {
    let mut r = seq.wrapping_mul(0x9e37_79b9) | 1;
    // Socket / PCB field reads.
    for _ in 0..6 {
        p.load(Addr::new(RegionSlot::KERNEL, xorshift(&mut r) % SOCK_STATE), 8);
        p.alu(10);
    }
    // Protocol decision tree: a handful of code paths with strong biases
    // (fast-path TCP is highly predictable), plus header-field loops.
    let base = site_hash(file!(), line!(), column!());
    for _ in 0..64 {
        let v = xorshift(&mut r);
        let path = (v >> 6) & 15;
        let site = SiteId(base ^ path.wrapping_mul(0x9e37_79b9));
        let taken = if path & 1 == 0 { v & 63 != 0 } else { v & 63 == 0 };
        p.branch(site, taken);
        p.alu(1);
    }
    p.counted_loop(80, 1);
    // ACK / window update writes.
    p.store(Addr::new(RegionSlot::KERNEL, xorshift(&mut r) % SOCK_STATE), 8);
    p.alu(20);
}

/// Emit the work of `send(fd, buf, len)` onto `p`: per segment, header
/// construction plus checksum-and-copy from the user buffer (`MSG`) into
/// the kernel socket buffer (`OUT`).
pub fn emit_tx<P: Probe>(len: u32, p: &mut P) {
    p.alu(SYSCALL_ALU);
    p.call(64, 0);
    let nseg = segments(len);
    let mut off = 0u32;
    for s in 0..nseg {
        let seg = (len - off).min(MSS);
        p.alu(SEGMENT_ALU);
        emit_segment_protocol(s, p);
        // Header write into the kernel buffer ahead of the payload.
        p.store(Addr::new(RegionSlot::OUT, off), 8);
        p.store(Addr::new(RegionSlot::OUT, off + 8), 8);
        // csum_and_copy_from_user: word loads from MSG, word stores to OUT,
        // checksum accumulate.
        p.copy(Addr::new(RegionSlot::OUT, off + 64), Addr::new(RegionSlot::MSG, off), seg);
        p.counted_loop(seg / 32, 2); // checksum folding
        p.branch(aon_trace::code::site_from(file!(), line!(), column!()), s + 1 < nseg);
        off += seg;
    }
    p.ret(0);
}

/// Emit the work of `recv(fd, buf, len)` onto `p`: copy from the kernel
/// socket buffer (`IN2`) to the user buffer (`MSG`), with verification
/// checksum.
pub fn emit_rx<P: Probe>(len: u32, p: &mut P) {
    p.alu(SYSCALL_ALU);
    p.call(64, 0);
    let nseg = segments(len);
    let mut off = 0u32;
    for s in 0..nseg {
        let seg = (len - off).min(MSS);
        p.alu(SEGMENT_ALU);
        emit_segment_protocol(s.wrapping_add(0x8000), p);
        // Read the segment header.
        p.load(Addr::new(RegionSlot::IN2, off), 8);
        p.load(Addr::new(RegionSlot::IN2, off + 8), 8);
        // csum_and_copy_to_user.
        p.copy(Addr::new(RegionSlot::MSG, off), Addr::new(RegionSlot::IN2, off + 64), seg);
        p.counted_loop(seg / 32, 2);
        p.branch(aon_trace::code::site_from(file!(), line!(), column!()), s + 1 < nseg);
        off += seg;
    }
    p.ret(0);
}

/// Emit softirq-side receive processing for a message that arrived by NIC
/// DMA: per segment, header parsing and socket demux (the payload copy
/// happens later in [`emit_rx`]).
pub fn emit_softirq_rx<P: Probe>(len: u32, p: &mut P) {
    let nseg = segments(len);
    for s in 0..nseg {
        p.alu(SEGMENT_ALU);
        // Parse the DMA'd headers (cold lines — the NIC just wrote them).
        p.load(Addr::new(RegionSlot::IN2, s * MSS), 8);
        p.load(Addr::new(RegionSlot::IN2, s * MSS + 8), 8);
        p.alu(90); // demux hash, sequence check, ack bookkeeping
        p.branch(aon_trace::code::site_from(file!(), line!(), column!()), s + 1 < nseg);
    }
}

/// Record [`emit_tx`] as a standalone trace.
pub fn tx_trace(len: u32) -> Trace {
    let mut t = Tracer::with_label(format!("tcp-tx:{len}"));
    emit_tx(len, &mut t);
    t.finish()
}

/// Record [`emit_rx`] as a standalone trace.
pub fn rx_trace(len: u32) -> Trace {
    let mut t = Tracer::with_label(format!("tcp-rx:{len}"));
    emit_rx(len, &mut t);
    t.finish()
}

/// Record [`emit_softirq_rx`] as a standalone trace.
pub fn softirq_rx_trace(len: u32) -> Trace {
    let mut t = Tracer::with_label(format!("tcp-softirq:{len}"));
    emit_softirq_rx(len, &mut t);
    t.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::mix::Mix;

    #[test]
    fn tx_moves_every_byte() {
        let t = tx_trace(16 * 1024);
        let s = t.stats();
        // Word-at-a-time copy: stores cover the payload (plus headers).
        assert!(s.bytes_stored >= 16 * 1024);
        assert!(s.bytes_loaded >= 16 * 1024);
    }

    #[test]
    fn rx_mirrors_tx_volume() {
        let tx = tx_trace(8 * 1024).stats();
        let rx = rx_trace(8 * 1024).stats();
        let ratio = aon_trace::num::ratio(tx.ops, rx.ops);
        assert!((0.8..1.25).contains(&ratio), "tx/rx op ratio {ratio}");
    }

    #[test]
    fn io_mix_is_memory_heavy() {
        let t = tx_trace(64 * 1024);
        let m = Mix::of(&t);
        assert!(m.load + m.store > 0.2, "bulk transfer is memory-rich: {m}");
        // Paper Table 5 shape: network I/O code is branch-rich too (~35%
        // of Pentium M retirement was branches for FR).
        assert!(m.branch > 0.15, "copy loops carry back-edges: {m}");
    }

    #[test]
    fn per_segment_costs_scale() {
        let one = tx_trace(MSS).stats().ops;
        let twelve = tx_trace(12 * MSS).stats().ops;
        let ratio = aon_trace::num::ratio(twelve, one);
        assert!((9.0..13.0).contains(&ratio), "12 segments ≈ 12x one: {ratio}");
    }

    #[test]
    fn softirq_is_header_only() {
        let s = softirq_rx_trace(16 * 1024).stats();
        assert!(s.bytes_loaded < 1024, "softirq touches headers, not payload");
        assert!(s.ops > 100);
    }
}
