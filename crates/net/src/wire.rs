//! Blocking HTTP/1.1 wire framing for the live serving path.
//!
//! The simulated stack ([`crate::tcpcost`]) models TCP's *cost*; this
//! module moves real bytes over real sockets. It frames one HTTP/1.1
//! message at a time out of a connection byte stream — head up to
//! `\r\n\r\n`, then exactly `Content-Length` body bytes — under hard
//! limits (maximum head size, maximum body size) and a per-message
//! deadline, so a slow or malicious peer can neither balloon memory nor
//! pin a worker thread.
//!
//! Framing is deliberately dumb: it finds the head terminator and the
//! `Content-Length` value and nothing else. The authoritative parse (the
//! instrumented [`aon-server`](../../aon_server/http/index.html) parser
//! with its request-smuggling defenses) runs on the framed bytes at the
//! application layer; the framer mirrors its duplicate-`Content-Length`
//! semantics so the two layers can never disagree about where a body
//! ends.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard per-message size limits.
#[derive(Debug, Clone, Copy)]
pub struct WireLimits {
    /// Maximum bytes in the head (request/status line + headers + CRLFCRLF).
    pub max_head: usize,
    /// Maximum bytes in the body (`Content-Length` ceiling).
    pub max_body: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits { max_head: 16 * 1024, max_body: 1024 * 1024 }
    }
}

/// Why a message could not be framed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Clean EOF before any byte of this message (peer closed between
    /// messages — normal keep-alive termination, not an error).
    Closed,
    /// EOF in the middle of a message.
    UnexpectedEof,
    /// The deadline passed before the message completed.
    TimedOut,
    /// The head exceeded [`WireLimits::max_head`] without terminating.
    HeadTooLarge,
    /// The declared body exceeds [`WireLimits::max_body`].
    BodyTooLarge,
    /// The head is structurally unusable (bad or conflicting
    /// `Content-Length`).
    BadFrame,
    /// Any other socket error.
    Io(io::ErrorKind),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Closed => f.write_str("connection closed"),
            WireError::UnexpectedEof => f.write_str("EOF mid-message"),
            WireError::TimedOut => f.write_str("deadline exceeded"),
            WireError::HeadTooLarge => f.write_str("head exceeds limit"),
            WireError::BodyTooLarge => f.write_str("body exceeds limit"),
            WireError::BadFrame => f.write_str("unusable message head"),
            WireError::Io(k) => write!(f, "io error: {k:?}"),
        }
    }
}

/// The socket behaviour framing needs beyond [`Read`]/[`Write`]:
/// re-arming the read timeout as the deadline approaches. Implemented for
/// [`TcpStream`]; tests use in-memory fakes that ignore deadlines.
pub trait WireStream: Read + Write {
    /// Arm the next blocking read to give up after `remaining`.
    fn arm_read_timeout(&mut self, remaining: Duration) -> io::Result<()>;
}

impl WireStream for TcpStream {
    fn arm_read_timeout(&mut self, remaining: Duration) -> io::Result<()> {
        // Zero means "no timeout" to the socket API; clamp up instead.
        self.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
    }
}

/// One framed message: `head_len + body_len` leading bytes of the
/// connection buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Bytes up to and including the `\r\n\r\n` terminator.
    pub head_len: usize,
    /// Declared body length (0 when no `Content-Length` is present).
    pub body_len: usize,
}

impl Frame {
    /// Total message length in bytes.
    pub fn total(&self) -> usize {
        self.head_len + self.body_len
    }
}

/// A connection-scoped read buffer that frames messages out of a byte
/// stream, retaining any bytes read past the current message (pipelined
/// or keep-alive follow-ups) for the next call.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Where the `\r\n\r\n` scan resumes (avoid rescanning the head on
    /// every chunk).
    scan_from: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// The buffered bytes (the current message occupies the front).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// True if no bytes of the next message have arrived yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Discard the first `n` bytes (a consumed message).
    pub fn consume(&mut self, n: usize) {
        self.buf.drain(..n.min(self.buf.len()));
        self.scan_from = 0;
    }

    /// Read from `stream` until one complete message (head + declared
    /// body) is buffered, enforcing `limits` and `deadline`.
    pub fn read_frame<S: WireStream>(
        &mut self,
        stream: &mut S,
        limits: &WireLimits,
        deadline: Instant,
    ) -> Result<Frame, WireError> {
        // Head.
        let head_len = loop {
            if let Some(n) = find_head_end(&self.buf, self.scan_from) {
                break n;
            }
            // Resume the next scan a little before the current end so a
            // terminator split across chunks is still found.
            self.scan_from = self.buf.len().saturating_sub(3);
            if self.buf.len() > limits.max_head {
                return Err(WireError::HeadTooLarge);
            }
            let was_empty = self.buf.is_empty();
            self.fill(stream, deadline, was_empty)?;
        };
        if head_len > limits.max_head {
            return Err(WireError::HeadTooLarge);
        }

        // Body.
        let body_len = match content_length(&self.buf[..head_len]) {
            Ok(n) => n.unwrap_or(0),
            Err(()) => return Err(WireError::BadFrame),
        };
        if body_len > limits.max_body {
            return Err(WireError::BodyTooLarge);
        }
        while self.buf.len() < head_len + body_len {
            self.fill(stream, deadline, false)?;
        }
        Ok(Frame { head_len, body_len })
    }

    /// One successful `read` into the buffer, honoring the deadline.
    /// `idle` marks a read that may legitimately see a clean close (start
    /// of a message).
    ///
    /// `EINTR` (`ErrorKind::Interrupted`) is not a connection failure —
    /// the kernel delivered a signal before any bytes arrived — so the
    /// read is retried within whatever deadline budget remains instead of
    /// surfacing as a hard [`WireError::Io`] that would tear down a
    /// healthy connection. The deadline still bounds an interrupt storm.
    fn fill<S: WireStream>(
        &mut self,
        stream: &mut S,
        deadline: Instant,
        idle: bool,
    ) -> Result<(), WireError> {
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::TimedOut);
            }
            stream.arm_read_timeout(remaining).map_err(|e| WireError::Io(e.kind()))?;
            let mut chunk = [0u8; 8192];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return if idle && self.buf.is_empty() {
                        Err(WireError::Closed)
                    } else {
                        Err(WireError::UnexpectedEof)
                    };
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(WireError::TimedOut);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e.kind())),
            }
        }
    }
}

/// Offset just past the `\r\n\r\n` terminator, scanning from `from`.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.min(buf.len());
    buf[start..].windows(4).position(|w| w == b"\r\n\r\n").map(|i| start + i + 4)
}

/// Scan a message head for `Content-Length`, mirroring the instrumented
/// parser's duplicate semantics: identical repeats are fine, conflicting
/// or unparseable values are an error.
fn content_length(head: &[u8]) -> Result<Option<usize>, ()> {
    let mut found: Option<usize> = None;
    for line in head.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else { continue };
        if !line[..colon].eq_ignore_ascii_case(b"content-length") {
            continue;
        }
        let value = std::str::from_utf8(&line[colon + 1..]).map_err(|_| ())?;
        let n: usize = value.trim().parse().map_err(|_| ())?;
        match found {
            Some(prev) if prev != n => return Err(()),
            _ => found = Some(n),
        }
    }
    Ok(found)
}

/// Parse the status code out of an HTTP/1.x status line (`HTTP/1.1 200 OK`).
pub fn status_code(head: &[u8]) -> Option<u16> {
    let line = head.split(|&b| b == b'\r').next()?;
    let mut parts = line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let version = parts.next()?;
    if !version.starts_with(b"HTTP/1.") {
        return None;
    }
    let code = parts.next()?;
    std::str::from_utf8(code).ok()?.parse().ok()
}

/// Write a complete message, mapping timeouts onto [`WireError`].
pub fn write_all<S: WireStream>(stream: &mut S, bytes: &[u8]) -> Result<(), WireError> {
    match stream.write_all(bytes).and_then(|()| stream.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Err(WireError::TimedOut)
        }
        Err(e) => Err(WireError::Io(e.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake stream feeding scripted read results — data chunks or
    /// errors (e.g. an `Interrupted` read mid-message); deadlines are
    /// ignored.
    struct Script {
        steps: Vec<Result<Vec<u8>, io::ErrorKind>>,
        next: usize,
    }

    impl Script {
        fn of(chunks: &[&[u8]]) -> Script {
            Script { steps: chunks.iter().map(|c| Ok(c.to_vec())).collect(), next: 0 }
        }

        fn steps(steps: &[Result<&[u8], io::ErrorKind>]) -> Script {
            Script { steps: steps.iter().map(|s| (*s).map(<[u8]>::to_vec)).collect(), next: 0 }
        }
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.next >= self.steps.len() {
                return Ok(0); // EOF
            }
            let step = self.steps[self.next].clone();
            self.next += 1;
            match step {
                Ok(chunk) => {
                    out[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                Err(kind) => Err(io::Error::from(kind)),
            }
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl WireStream for Script {
        fn arm_read_timeout(&mut self, _remaining: Duration) -> io::Result<()> {
            Ok(())
        }
    }

    fn deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn frames_a_message_split_across_chunks() {
        let mut s =
            Script::of(&[b"POST / HTTP/1.1\r\nContent-Le", b"ngth: 5\r\n\r", b"\nhel", b"lo"]);
        let mut fb = FrameBuf::new();
        let f = fb.read_frame(&mut s, &WireLimits::default(), deadline()).unwrap();
        assert_eq!(f.body_len, 5);
        assert_eq!(&fb.bytes()[f.head_len..f.total()], b"hello");
    }

    #[test]
    fn retains_pipelined_bytes_across_consume() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut s = Script::of(&[two]);
        let mut fb = FrameBuf::new();
        let f1 = fb.read_frame(&mut s, &WireLimits::default(), deadline()).unwrap();
        assert!(fb.bytes()[..f1.total()].ends_with(b"/a HTTP/1.1\r\n\r\n"));
        fb.consume(f1.total());
        let f2 = fb.read_frame(&mut s, &WireLimits::default(), deadline()).unwrap();
        assert!(fb.bytes()[..f2.total()].starts_with(b"GET /b"));
    }

    #[test]
    fn clean_close_between_messages_is_closed_mid_message_is_eof() {
        let mut s = Script::of(&[]);
        let mut fb = FrameBuf::new();
        assert_eq!(
            fb.read_frame(&mut s, &WireLimits::default(), deadline()).unwrap_err(),
            WireError::Closed
        );
        let mut s = Script::of(&[b"POST / HT"]);
        let mut fb = FrameBuf::new();
        assert_eq!(
            fb.read_frame(&mut s, &WireLimits::default(), deadline()).unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    #[test]
    fn head_and_body_limits_are_enforced() {
        let limits = WireLimits { max_head: 64, max_body: 16 };
        let long_head = vec![b'x'; 100];
        let mut s = Script::of(&[&long_head]);
        assert_eq!(
            FrameBuf::new().read_frame(&mut s, &limits, deadline()).unwrap_err(),
            WireError::HeadTooLarge
        );
        let mut s = Script::of(&[b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n"]);
        assert_eq!(
            FrameBuf::new().read_frame(&mut s, &limits, deadline()).unwrap_err(),
            WireError::BodyTooLarge
        );
    }

    #[test]
    fn conflicting_content_length_is_bad_frame() {
        let mut s =
            Script::of(&[b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n"]);
        assert_eq!(
            FrameBuf::new().read_frame(&mut s, &WireLimits::default(), deadline()).unwrap_err(),
            WireError::BadFrame
        );
        // Identical duplicates frame fine (the parser above re-checks).
        let mut s =
            Script::of(&[b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok"]);
        let f = FrameBuf::new().read_frame(&mut s, &WireLimits::default(), deadline()).unwrap();
        assert_eq!(f.body_len, 2);
    }

    #[test]
    fn interrupted_reads_retry_instead_of_dropping_the_connection() {
        // EINTR before the head, inside the head, and inside the body:
        // each is retried and the message still frames completely.
        let mut s = Script::steps(&[
            Err(io::ErrorKind::Interrupted),
            Ok(b"POST / HTTP/1.1\r\nContent-"),
            Err(io::ErrorKind::Interrupted),
            Err(io::ErrorKind::Interrupted),
            Ok(b"Length: 5\r\n\r\n"),
            Err(io::ErrorKind::Interrupted),
            Ok(b"hello"),
        ]);
        let mut fb = FrameBuf::new();
        let f = fb.read_frame(&mut s, &WireLimits::default(), deadline()).unwrap();
        assert_eq!(f.body_len, 5);
        assert_eq!(&fb.bytes()[f.head_len..f.total()], b"hello");
    }

    #[test]
    fn interrupt_storm_is_bounded_by_the_deadline() {
        // A stream that only ever returns EINTR cannot spin forever: the
        // deadline check in the retry loop converts it to a timeout.
        struct AlwaysInterrupted;
        impl Read for AlwaysInterrupted {
            fn read(&mut self, _out: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::Interrupted))
            }
        }
        impl Write for AlwaysInterrupted {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        impl WireStream for AlwaysInterrupted {
            fn arm_read_timeout(&mut self, _remaining: Duration) -> io::Result<()> {
                Ok(())
            }
        }
        let mut fb = FrameBuf::new();
        let short = Instant::now() + Duration::from_millis(20);
        assert_eq!(
            fb.read_frame(&mut AlwaysInterrupted, &WireLimits::default(), short).unwrap_err(),
            WireError::TimedOut
        );
    }

    #[test]
    fn non_eintr_errors_still_surface_as_io() {
        let mut s =
            Script::steps(&[Ok(b"POST / HTTP/1.1\r\n"), Err(io::ErrorKind::ConnectionReset)]);
        let mut fb = FrameBuf::new();
        assert_eq!(
            fb.read_frame(&mut s, &WireLimits::default(), deadline()).unwrap_err(),
            WireError::Io(io::ErrorKind::ConnectionReset)
        );
    }

    #[test]
    fn expired_deadline_times_out() {
        let mut s = Script::of(&[b"POST / HTTP/1.1\r\n"]);
        let mut fb = FrameBuf::new();
        let past = Instant::now() - Duration::from_millis(1);
        // First fill happens after the deadline check sees zero remaining.
        assert_eq!(
            fb.read_frame(&mut s, &WireLimits::default(), past).unwrap_err(),
            WireError::TimedOut
        );
    }

    #[test]
    fn status_line_parses() {
        assert_eq!(status_code(b"HTTP/1.1 200 OK\r\n..."), Some(200));
        assert_eq!(status_code(b"HTTP/1.1 422 Unprocessable Entity\r\n"), Some(422));
        assert_eq!(status_code(b"ICY 200 OK\r\n"), None);
        assert_eq!(status_code(b""), None);
    }
}
