//! Bounded ring-buffer flight recorder: the last N request events, kept
//! cheaply in memory, dumpable as JSONL on demand (the `/flight.jsonl`
//! admin endpoint) or when something goes wrong.
//!
//! A hardware performance-counter run tells you *that* CPI spiked; a
//! flight recording tells you *which requests* were on the machine when
//! it did. Each event carries the response status, use case, payload
//! bytes, end-to-end service nanoseconds, and the per-stage breakdown —
//! everything needed to reconstruct the tail of the workload post hoc.
//!
//! Recording takes one short `Mutex` lock (push + possible pop at
//! capacity — O(1), no allocation in steady state, since the deque is
//! pre-reserved). That is deliberately not lock-free: the critical
//! section is tens of nanoseconds, contention is bounded by worker
//! count, and a lock keeps event ordering exact for forensics.
//!
//! This file is on the `aon-audit` cast-enforced list.

use crate::stage::{Stage, STAGE_COUNT};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestEvent {
    /// Monotonic sequence number (global across the recorder's life).
    pub seq: u64,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Use-case label (`"FR"`, `"CBR"`, …) or `"-"` for requests that
    /// never reached an engine (health checks, parse failures).
    pub use_case: &'static str,
    /// Request payload bytes.
    pub bytes: u64,
    /// End-to-end service time in nanoseconds.
    pub total_ns: u64,
    /// Per-stage nanoseconds, indexed by [`Stage::index`].
    pub stage_ns: [u64; STAGE_COUNT],
}

impl RequestEvent {
    /// Render as one JSON object (one JSONL line, no trailing newline).
    /// Only stages with nonzero time are emitted, keeping lines short.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str(&format!(
            "{{\"seq\":{},\"status\":{},\"use_case\":\"{}\",\"bytes\":{},\"total_ns\":{}",
            self.seq, self.status, self.use_case, self.bytes, self.total_ns
        ));
        let mut any = false;
        for stage in Stage::ALL {
            let ns = self.stage_ns[stage.index()];
            if ns > 0 {
                s.push_str(if any { "," } else { ",\"stage_ns\":{" });
                s.push_str(&format!("\"{}\":{}", stage.label(), ns));
                any = true;
            }
        }
        if any {
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// What one [`FlightRecorder::record`] call did: the sequence number it
/// assigned and how many old events it evicted to make room (0 or 1 in
/// steady state; the type still carries a count so the accounting stays
/// exact if the capacity invariant ever changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recorded {
    /// Sequence number assigned to the recorded event.
    pub seq: u64,
    /// Events evicted by this record call.
    pub evicted: u64,
}

/// The recorder: last `capacity` events, newest last.
#[derive(Debug)]
pub struct FlightRecorder {
    // audit:role(queue): ring of recent events; the mutex orders all access
    events: Mutex<VecDeque<RequestEvent>>,
    capacity: usize,
    // audit:role(seqgen): unique event sequence numbers; Relaxed fetch_add
    // suffices — only uniqueness matters, order comes from the ring
    seq: AtomicU64,
    // audit:role(counter): monotonic evicted-event count; Relaxed
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "a zero-capacity flight recorder records nothing");
        FlightRecorder {
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one event (assigning its sequence number); evicts the
    /// oldest event when full. The eviction count is returned alongside
    /// the sequence number so callers exporting metrics can bump an
    /// externally visible drop counter without re-reading [`Self::dropped`]
    /// (which would race with concurrent recorders).
    pub fn record(&self, mut event: RequestEvent) -> Recorded {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let mut events = self.events.lock().expect("flight recorder poisoned");
        let mut evicted = 0u64;
        while events.len() >= self.capacity {
            events.pop_front();
            evicted += 1;
        }
        events.push_back(event);
        drop(events);
        if evicted > 0 {
            self.dropped.fetch_add(evicted, Ordering::Relaxed);
        }
        Recorded { seq, evicted }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().expect("flight recorder poisoned").len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far (recorded beyond capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<RequestEvent> {
        self.events.lock().expect("flight recorder poisoned").iter().copied().collect()
    }

    /// Dump the retained events as JSONL, oldest first, one event per
    /// line, trailing newline after the last.
    pub fn dump_jsonl(&self) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(events.len() * 160);
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(status: u16) -> RequestEvent {
        RequestEvent {
            seq: 0,
            status,
            use_case: "FR",
            bytes: 100,
            total_ns: 5000,
            stage_ns: [0; STAGE_COUNT],
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let fr = FlightRecorder::new(3);
        let mut evicted_total = 0;
        for i in 0..5u16 {
            let r = fr.record(event(200 + i));
            assert_eq!(r.seq, u64::from(i));
            evicted_total += r.evicted;
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(evicted_total, 2, "per-call eviction counts sum to dropped()");
        let statuses: Vec<u16> = fr.snapshot().iter().map(|e| e.status).collect();
        assert_eq!(statuses, vec![202, 203, 204]);
        let seqs: Vec<u64> = fr.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "sequence numbers are global, not slot-local");
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_nonzero_stages_only() {
        let fr = FlightRecorder::new(4);
        let mut e = event(200);
        e.stage_ns[Stage::Parse.index()] = 1200;
        e.stage_ns[Stage::XPath.index()] = 300;
        fr.record(e);
        fr.record(event(422));
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage_ns\":{\"parse\":1200,\"xpath\":300}"), "{}", lines[0]);
        assert!(!lines[1].contains("stage_ns"), "zero stages omitted: {}", lines[1]);
        assert!(lines[1].contains("\"status\":422"));
        // Balanced braces on every line.
        for l in &lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count(), "{l}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        // Miri runs every interleaving it explores ~1000x slower than
        // native; a smaller volume keeps `cargo miri test` tractable while
        // exercising the same record/snapshot races.
        let per_thread = if cfg!(miri) { 50 } else { 1000 };
        let fr = std::sync::Arc::new(FlightRecorder::new(10_000));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let fr = std::sync::Arc::clone(&fr);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        fr.record(event(200));
                    }
                });
            }
        });
        assert_eq!(fr.len(), 8 * per_thread);
        assert_eq!(fr.dropped(), 0);
        let seqs: std::collections::HashSet<u64> = fr.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 8 * per_thread, "sequence numbers must be unique");
    }
}
