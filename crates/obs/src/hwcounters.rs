//! Hardware-counter stage attribution for the live pipeline.
//!
//! The paper's characterization is *per use case, per phase*: Table 4's
//! CPI and Figure 4's L2 misses are read from the PMU while a specific
//! workload runs. [`RichStages`] is the live-path equivalent of that
//! measurement discipline — a [`StageRecorder`] that, at every stage
//! boundary, snapshots a per-thread `aon-hw` counter group alongside the
//! wall clock, so each parse/xpath/validate/dpi/crypto/write span
//! carries cycle, instruction, and cache-miss deltas.
//!
//! Cost discipline: the perf group uses `PERF_FORMAT_GROUP`, so a
//! snapshot is one `read(2)`; and the recorder caches the end-of-stage
//! snapshot as the next stage's start ([`RichStages`] keeps a `pending`
//! boundary), so a request with N stages costs ~N+1 reads, not 2N. When
//! the group is absent (PMU unavailable, counters disabled) the recorder
//! skips the reads entirely and degrades to wall-clock-plus-trace.
//!
//! The same recorder carries the request's trace spans (see
//! [`crate::reqtrace`]): one allocation-light `Vec<TraceEvent>` whose
//! root is closed by [`RichStages::finish_trace`].

use crate::reqtrace::{self, TraceEvent};
use crate::stage::{Stage, StageRecorder, WallStages, STAGE_COUNT};
use aon_hw::{HwGroup, HwSnapshot};
use std::time::Instant;

/// Per-stage accumulated hardware-counter deltas (the PMU analogue of
/// [`WallStages`]). A stage entered twice accumulates both spans.
#[derive(Debug, Default, Clone, Copy)]
pub struct HwStageSet {
    /// Accumulated event deltas per [`Stage::index`].
    pub stages: [HwSnapshot; STAGE_COUNT],
}

impl HwStageSet {
    /// A zeroed set.
    pub fn new() -> HwStageSet {
        HwStageSet::default()
    }

    /// Accumulate `delta` into `stage` (saturating, per event).
    pub fn add(&mut self, stage: Stage, delta: &HwSnapshot) {
        self.stages[stage.index()].accumulate(delta);
    }

    /// The accumulated deltas for `stage`.
    pub fn get(&self, stage: Stage) -> &HwSnapshot {
        &self.stages[stage.index()]
    }

    /// Sum across all stages (saturating, per event).
    pub fn total(&self) -> HwSnapshot {
        let mut out = HwSnapshot::default();
        for s in &self.stages {
            out.accumulate(s);
        }
        out
    }

    /// True when every stage's every event is zero (noop backend, or no
    /// stage ran).
    pub fn is_zero(&self) -> bool {
        self.stages.iter().all(HwSnapshot::is_zero)
    }
}

/// The composite per-request recorder: wall-clock spans (always),
/// hardware-counter deltas (when a live group is supplied), and trace
/// span events (when tracing is on) — one recorder, one `time()` call
/// per stage, so the engine stays generic over plain [`StageRecorder`].
#[derive(Debug)]
pub struct RichStages<'g> {
    /// Service-start origin every span offset is measured from.
    origin: Instant,
    wall: WallStages,
    group: Option<&'g HwGroup>,
    hw: HwStageSet,
    /// End-of-stage snapshot reused as the next stage's start, saving
    /// one group read per boundary.
    pending: Option<HwSnapshot>,
    /// Trace spans (root placeholder at index 0) when tracing is on.
    spans: Option<Vec<TraceEvent>>,
}

impl<'g> RichStages<'g> {
    /// A recorder whose origin is *now*. Pass `group` only when it is
    /// active (callers should map a noop group to `None` so the hot path
    /// skips the reads); `tracing` turns span collection on.
    pub fn new(group: Option<&'g HwGroup>, tracing: bool) -> RichStages<'g> {
        let group = group.filter(|g| g.active());
        RichStages {
            origin: Instant::now(),
            wall: WallStages::new(),
            group,
            hw: HwStageSet::new(),
            pending: None,
            spans: tracing.then(reqtrace::new_spans),
        }
    }

    /// Nanoseconds elapsed since the recorder's origin.
    pub fn offset_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The wall-clock stage table (same shape the software-only path
    /// produces).
    pub fn wall(&self) -> &WallStages {
        &self.wall
    }

    /// The hardware-counter stage table (all zeros without a group).
    pub fn hw(&self) -> &HwStageSet {
        &self.hw
    }

    /// True when this recorder is reading a live counter group.
    pub fn hw_active(&self) -> bool {
        self.group.is_some()
    }

    /// True when this recorder is collecting trace spans.
    pub fn tracing(&self) -> bool {
        self.spans.is_some()
    }

    fn hw_begin(&mut self) -> Option<HwSnapshot> {
        let group = self.group?;
        Some(self.pending.take().unwrap_or_else(|| group.read_now()))
    }

    fn hw_end(&mut self, stage: Stage, start: Option<HwSnapshot>) {
        let (Some(group), Some(start)) = (self.group, start) else {
            return;
        };
        let end = group.read_now();
        self.hw.add(stage, &end.delta_since(&start));
        self.pending = Some(end);
    }

    fn push_span(&mut self, label: &'static str, start_ns: u64, dur_ns: u64) {
        if let Some(spans) = self.spans.as_mut() {
            spans.push(TraceEvent { label, start_ns, dur_ns, parent: Some(0) });
        }
    }

    /// Record the time the connection spent queued before service began.
    /// This is the one span that *precedes* the origin; by convention it
    /// reports offset 0 (see [`crate::reqtrace::ParsedTrace::tree_complete`]).
    pub fn note_queue_wait(&mut self, wait_ns: u64) {
        self.push_span("queue_wait", 0, wait_ns);
    }

    /// Record a zero-duration point event (e.g. `"governor_shed"`) at
    /// the current offset.
    pub fn note_point(&mut self, label: &'static str) {
        let at = self.offset_ns();
        self.push_span(label, at, 0);
    }

    /// Close the root span with the request's total service time and
    /// hand the span tree to the tracer. Returns `None` when tracing is
    /// off. The recorder is spent afterwards (further spans are lost),
    /// matching its one-request lifetime.
    pub fn finish_trace(&mut self, total_ns: u64) -> Option<Vec<TraceEvent>> {
        let mut spans = self.spans.take()?;
        reqtrace::finish_spans(&mut spans, total_ns);
        Some(spans)
    }
}

impl StageRecorder for RichStages<'_> {
    fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let hw_start = self.hw_begin();
        // Two clock reads per stage, like the plain WallStages recorder:
        // both the wall duration and the span window derive from origin
        // offsets, so the span view never needs a third read.
        let span_start = self.offset_ns();
        let out = f();
        let ns = self.offset_ns().saturating_sub(span_start);
        self.hw_end(stage, hw_start);
        self.wall.add(stage, ns);
        self.push_span(stage.label(), span_start, ns);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reqtrace::{ParsedTrace, TraceClass, TraceRecord};

    #[test]
    fn stage_set_accumulates_and_totals_per_event() {
        let mut set = HwStageSet::new();
        assert!(set.is_zero());
        let mut d = HwSnapshot::default();
        d.values[0] = 100;
        d.values[2] = 7;
        set.add(Stage::Parse, &d);
        set.add(Stage::Parse, &d);
        set.add(Stage::Write, &d);
        assert_eq!(set.get(Stage::Parse).values[0], 200);
        assert_eq!(set.get(Stage::Write).values[2], 7);
        assert_eq!(set.total().values[0], 300);
        assert_eq!(set.total().values[2], 21);
        assert!(!set.is_zero());
    }

    #[test]
    fn recorder_without_group_still_times_and_traces() {
        let mut r = RichStages::new(None, true);
        assert!(!r.hw_active());
        assert!(r.tracing());
        r.note_queue_wait(1234);
        let v = r.time(Stage::Parse, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            7
        });
        assert_eq!(v, 7);
        r.note_point("governor_shed");
        assert!(r.wall().get(Stage::Parse) >= 500_000);
        assert!(r.hw().is_zero(), "no group, no counters");
        let total = r.offset_ns();
        let spans = r.finish_trace(total).expect("tracing on");
        let labels: Vec<&str> = spans.iter().map(|s| s.label).collect();
        assert_eq!(labels, vec!["request", "queue_wait", "parse", "governor_shed"]);
        assert_eq!(spans[0].dur_ns, total);
        assert_eq!(spans[1].start_ns, 0, "queue_wait precedes the origin");
        assert!(spans[2].start_ns <= total && spans[2].dur_ns <= total);
        assert_eq!(spans[3].dur_ns, 0, "point events have zero duration");
        // The span list forms a complete tree when wrapped in a record.
        let rec = TraceRecord {
            id: 0,
            use_case: "FR",
            status: 200,
            class: TraceClass::Sampled,
            total_ns: total,
            spans,
        };
        let parsed = ParsedTrace::parse_jsonl(&rec.to_json()).expect("parses");
        parsed[0].tree_complete().expect("complete tree");
    }

    #[test]
    fn recorder_with_tracing_off_allocates_no_spans() {
        let mut r = RichStages::new(None, false);
        r.note_queue_wait(99);
        r.time(Stage::Crypto, || {});
        assert!(r.finish_trace(1).is_none());
    }

    #[test]
    fn noop_group_is_filtered_to_none() {
        let group = HwGroup::noop("test".to_string());
        let r = RichStages::new(Some(&group), false);
        assert!(!r.hw_active(), "inactive groups must not be polled");
    }

    #[test]
    fn live_group_attributes_counts_to_stages_when_available() {
        let group = HwGroup::open_for_thread();
        if !group.active() {
            eprintln!("skipping: {}", group.probe().reason);
            return;
        }
        let mut r = RichStages::new(Some(&group), false);
        let sum = r.time(Stage::Parse, || (0..50_000u64).fold(0u64, |a, b| a.wrapping_add(b * b)));
        assert!(sum > 0);
        assert!(
            !r.hw().get(Stage::Parse).is_zero(),
            "a live group must attribute nonzero counts to the stage"
        );
        assert!(r.hw().get(Stage::XPath).is_zero());
    }
}
