//! Exact latency summarization over raw samples.
//!
//! One implementation shared by the load generator (which keeps every
//! end-to-end sample) and by anything else that has raw nanosecond
//! samples in hand. The live server's always-on histograms
//! ([`crate::metric::Histogram`]) are the *approximate* counterpart for
//! when keeping every sample is too expensive; both use the same
//! nearest-rank percentile convention so their numbers are comparable.
//!
//! This file is on the `aon-audit` cast-enforced list: all counter
//! arithmetic goes through [`aon_trace::num`].

use aon_trace::num::exact_f64;

/// Latency percentiles over one run, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: u64,
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile (advisory: the regression gate stays on p99,
    /// p99.9 is recorded for tail visibility).
    pub p999_us: f64,
    /// Worst observed.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

/// Summarize raw nanosecond samples (sorts in place).
pub fn summarize_latencies(samples_ns: &mut [u64]) -> LatencySummary {
    if samples_ns.is_empty() {
        return LatencySummary::default();
    }
    samples_ns.sort_unstable();
    let count = u64::try_from(samples_ns.len()).expect("sample count fits u64");
    let sum: u64 = samples_ns.iter().sum();
    let to_us = |ns: u64| exact_f64(ns) / 1000.0;
    LatencySummary {
        count,
        p50_us: to_us(percentile(samples_ns, 50)),
        p99_us: to_us(percentile(samples_ns, 99)),
        p999_us: to_us(percentile_per_mille(samples_ns, 999)),
        max_us: to_us(*samples_ns.last().expect("non-empty")),
        mean_us: exact_f64(sum) / exact_f64(count) / 1000.0,
    }
}

/// Nearest-rank percentile of a sorted slice (`pct` in 0..=100).
pub fn percentile(sorted: &[u64], pct: usize) -> u64 {
    debug_assert!(!sorted.is_empty() && pct <= 100);
    let idx = ((sorted.len() - 1) * pct + 50) / 100;
    sorted[idx.min(sorted.len() - 1)]
}

/// Nearest-rank per-mille percentile of a sorted slice (`per_mille` in
/// 0..=1000, so 999 is p99.9) — the finer-grained sibling of
/// [`percentile`] with the same rounding convention.
pub fn percentile_per_mille(sorted: &[u64], per_mille: usize) -> u64 {
    debug_assert!(!sorted.is_empty() && per_mille <= 1000);
    let idx = ((sorted.len() - 1) * per_mille + 500) / 1000;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_distribution() {
        let mut ns: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        let s = summarize_latencies(&mut ns);
        assert_eq!(s.count, 100);
        assert!((s.p50_us - 50.0).abs() <= 1.0, "p50 {}", s.p50_us);
        assert!((s.p99_us - 99.0).abs() <= 1.0, "p99 {}", s.p99_us);
        assert!((s.p999_us - 100.0).abs() <= 1.0, "p999 {}", s.p999_us);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 0.01);
    }

    #[test]
    fn empty_samples_summarize_to_zero() {
        let s = summarize_latencies(&mut Vec::new());
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = summarize_latencies(&mut [7_000]);
        assert_eq!((s.p50_us, s.p99_us, s.p999_us, s.max_us), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn per_mille_percentile_sits_between_p99_and_max() {
        let mut ns: Vec<u64> = (1..=10_000).collect();
        let s = summarize_latencies(&mut ns);
        assert!(s.p99_us <= s.p999_us && s.p999_us <= s.max_us);
        assert!((s.p999_us - 9.990).abs() < 0.01, "p999 {}", s.p999_us);
    }

    #[test]
    fn percentile_is_monotonic_in_rank() {
        let sorted: Vec<u64> = vec![1, 5, 5, 9, 100, 100, 2000];
        let mut last = 0;
        for pct in 0..=100 {
            let v = percentile(&sorted, pct);
            assert!(v >= last, "pct {pct}: {v} < {last}");
            last = v;
        }
    }
}
