//! # aon-obs — software performance-counter observability
//!
//! The paper's method *is* observability: it reads the Pentium M /
//! Pentium 4 on-chip performance counters (clockticks, instructions
//! retired, L2 misses, bus transactions, branches) under live Netperf
//! load and derives CPI, L2MPI, BTPI, and BrMPR per use case. The
//! simulator half of this workspace reproduces those counters; this
//! crate gives the **live serving half** the equivalent instrumentation
//! in software, so per-use-case cost structure is visible while the
//! server runs — not only in a post-hoc `BENCH_live.json`.
//!
//! Four layers, lock-light by construction:
//!
//! * [`metric`] — the primitive instruments: relaxed-atomic
//!   [`metric::Counter`]s, [`metric::Gauge`]s (with high-water-mark
//!   updates), and fixed-bucket log2 [`metric::Histogram`]s whose
//!   snapshots are plain data and mergeable;
//! * [`registry`] — named, labelled metric families with Prometheus
//!   text exposition ([`registry::Registry::render_prometheus`]); the
//!   data path never takes the registry lock, only registration and
//!   rendering do;
//! * [`stage`] — span-based pipeline phase timing: the engine is
//!   generic over [`stage::StageRecorder`], so the
//!   [`stage::NoopStages`] instantiation is the untimed pipeline and
//!   [`stage::WallStages`] accumulates per-stage nanoseconds;
//! * [`flight`] — a bounded ring-buffer [`flight::FlightRecorder`] of
//!   recent request events, dumpable as JSONL.
//!
//! Three further planes close the loop with the paper's method:
//!
//! * [`hwcounters`] — hardware-counter stage attribution: a
//!   [`hwcounters::RichStages`] recorder snapshots a per-thread
//!   `aon-hw` perf group at stage boundaries, so every span carries
//!   cycle/instruction/cache-miss deltas when the PMU is available
//!   (and cleanly degrades to zeros when it is not);
//! * [`reqtrace`] — tail-sampled per-request span traces: slow, shed,
//!   and errored requests are always retained, the rest
//!   reservoir-sampled deterministically ([`reqtrace::Tracer`]);
//! * [`profiler`] — continuous worker-state profiling: workers publish
//!   their current state into per-worker atomic slots
//!   ([`profiler::WorkerSlots`]) and a sampler thread builds
//!   statistical wall-time profiles (state sample counters, pool
//!   saturation, a flamegraph-compatible folded-stack dump) plus a
//!   Little's-law consistency check ([`profiler::littles_law`]).
//!
//! Two support modules round it out: [`latency`] (the exact
//! percentile summarization shared with the load generator) and
//! [`scrape`] (a parser for the exposition format, used by
//! `obs-report` and the CI cross-check).
//!
//! All counter arithmetic goes through the audit-enforced lossless
//! [`aon_trace::num`] conversions.

pub mod flight;
pub mod hwcounters;
pub mod latency;
pub mod metric;
pub mod profiler;
pub mod registry;
pub mod reqtrace;
pub mod scrape;
pub mod stage;

pub use flight::{FlightRecorder, Recorded, RequestEvent};
pub use hwcounters::{HwStageSet, RichStages};
pub use latency::{percentile, percentile_per_mille, summarize_latencies, LatencySummary};
pub use metric::{Counter, Exemplar, Gauge, Histogram, HistogramSnapshot};
pub use profiler::{littles_law, LittlesLaw, Profiler, ProfilerConfig, WorkerSlots, WorkerState};
pub use registry::Registry;
pub use reqtrace::{
    sample_decision, ParsedSpan, ParsedTrace, TraceClass, TraceConfig, TraceEvent, TraceRecord,
    Tracer,
};
pub use stage::{NoopStages, Stage, StageRecorder, WallStages, STAGE_COUNT};
