//! The three primitive metric instruments: monotonic counters, gauges,
//! and fixed-bucket log2 latency histograms.
//!
//! The paper reads *hardware* performance counters (clockticks, L2
//! misses, bus transactions) out of the Pentium M / Pentium 4 PMUs; this
//! module is the software analogue for the live server — plain
//! `AtomicU64` cells updated with relaxed ordering on the data path, read
//! by scrapers with no locks and no coordination. All derived arithmetic
//! goes through the lossless [`aon_trace::num`] conversions; this file is
//! on the `aon-audit` cast-enforced list.
//!
//! Snapshots are plain-old-data and **mergeable**: worker-local or
//! shard-local histograms can be folded together with
//! [`HistogramSnapshot::merge`], and merging is commutative and
//! associative (it is element-wise saturating addition).

use aon_trace::num::exact_f64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 histogram buckets. Bucket `k` (for `k >= 1`) holds
/// values in `[2^(k-1), 2^k - 1]`; bucket 0 holds exactly 0; the last
/// bucket absorbs everything at or above `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 64;

/// A monotonic counter (wraps only after 2^64 events — never in
/// practice).
// audit:role(counter): monotonic event count; Relaxed adds and loads,
// exact once writers quiesce (which is when scrapes are compared)
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways, plus a high-water-mark
/// update for depth-style measurements.
// audit:role(gauge): last-write-wins level (plus fetch_max for HWM use);
// Relaxed by design — a gauge read is approximate while writers run
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is higher (high-water mark).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for a recorded value: 0 for 0, else
/// `64 - leading_zeros(v)` clamped into the table — so bucket `k` spans
/// `[2^(k-1), 2^k - 1]`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let k = usize::try_from(64 - v.leading_zeros()).expect("bit index fits usize");
    k.min(BUCKETS - 1)
}

/// Inclusive `[lower, upper]` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
    let upper = if i == 0 {
        0
    } else if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    };
    (lower, upper)
}

/// One exemplar: a concrete observation a histogram bucket can point at
/// (OpenMetrics exemplar semantics), linking the bucket to the trace id
/// of a real request that landed in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (same unit as the histogram's recordings).
    pub value: u64,
    /// The trace id of the request that produced the value.
    pub trace_id: u64,
}

/// Per-bucket exemplar cells, attached to a histogram only on request
/// ([`Histogram::with_exemplars`]) — two extra `AtomicU64`s per bucket
/// are too much to pay on every histogram nobody will link traces from.
///
/// The id and value cells are written independently with relaxed stores
/// (last writer wins), so a concurrent render can pair an id with a
/// value from a different attachment. Both are then still *recent real
/// observations* of the same bucket (a bucket spans a 2x value range),
/// which is all an exemplar promises; exactness is not worth a seqlock
/// on the request path.
#[derive(Debug)]
struct ExemplarCells {
    // audit:role(gauge): last-write-wins exemplar trace id plus one per
    // bucket (0 = no exemplar yet); Relaxed by design, see above
    ids: [AtomicU64; BUCKETS],
    // audit:role(gauge): last-write-wins exemplar observed value per
    // bucket; Relaxed by design, see above
    values: [AtomicU64; BUCKETS],
}

/// A fixed-bucket log2 histogram. Recording is three relaxed atomic adds
/// (bucket, sum, count) — no locks, no allocation, safe from any thread.
///
/// The three cells are updated independently, so a concurrent
/// [`Histogram::snapshot`] can observe a count that is ahead of or behind
/// the bucket total by the number of in-flight recordings; totals are
/// exact once writers quiesce (which is when scrapes are compared).
#[derive(Debug)]
pub struct Histogram {
    // audit:role(counter): per-bucket monotonic counts; Relaxed adds
    buckets: [AtomicU64; BUCKETS],
    // audit:role(counter): monotonic sum of recorded values; Relaxed adds
    sum: AtomicU64,
    // audit:role(counter): monotonic record count; Relaxed adds
    count: AtomicU64,
    /// Exemplar cells, present only for histograms built with
    /// [`Histogram::with_exemplars`].
    exemplars: Option<Box<ExemplarCells>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplars: None,
        }
    }

    /// An empty histogram whose buckets can carry exemplars.
    pub fn with_exemplars() -> Histogram {
        Histogram {
            exemplars: Some(Box::new(ExemplarCells {
                ids: std::array::from_fn(|_| AtomicU64::new(0)),
                values: std::array::from_fn(|_| AtomicU64::new(0)),
            })),
            ..Histogram::new()
        }
    }

    /// True when this histogram carries exemplar cells.
    pub fn has_exemplars(&self) -> bool {
        self.exemplars.is_some()
    }

    /// Attach an exemplar to the bucket `v` falls in: the bucket now
    /// points at `trace_id` as a concrete request that landed there.
    /// Does **not** record `v` (callers record first, then attach for
    /// the observations they chose to link). A no-op on histograms
    /// without exemplar cells. Trace ids are stored offset by one so a
    /// zero cell unambiguously means "no exemplar yet" even though
    /// trace ids themselves start at 0.
    pub fn attach_exemplar(&self, v: u64, trace_id: u64) {
        let Some(cells) = &self.exemplars else { return };
        let i = bucket_index(v);
        cells.ids[i].store(trace_id.saturating_add(1), Ordering::Relaxed);
        cells.values[i].store(v, Ordering::Relaxed);
    }

    /// The exemplar attached to bucket `i`, if any.
    pub fn exemplar(&self, i: usize) -> Option<Exemplar> {
        let cells = self.exemplars.as_ref()?;
        assert!(i < BUCKETS, "bucket index {i} out of range");
        let id_plus_one = cells.ids[i].load(Ordering::Relaxed);
        if id_plus_one == 0 {
            return None;
        }
        Some(Exemplar { value: cells.values[i].load(Ordering::Relaxed), trace_id: id_plus_one - 1 })
    }

    /// Every attached exemplar as `(bucket index, exemplar)`, ascending.
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        (0..BUCKETS).filter_map(|i| self.exemplar(i).map(|e| (i, e))).collect()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Plain-old-data copy of a [`Histogram`]; mergeable across workers,
/// shards, or scrape intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (log2 buckets, see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], sum: 0, count: 0 }
    }
}

impl HistogramSnapshot {
    /// Element-wise fold of `other` into `self` (saturating, so merging
    /// can never wrap). Commutative and associative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count = self.count.saturating_add(other.count);
    }

    /// Element-wise difference `self - earlier` (saturating, so a torn
    /// concurrent read can never wrap). With `earlier` a snapshot taken
    /// before `self` of the same histogram, the result is the histogram
    /// of just the observations recorded *between* the two snapshots —
    /// the windowed view the capacity governor samples its p99 from.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (mine, prev) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *mine = mine.saturating_sub(*prev);
        }
        out.sum = out.sum.saturating_sub(earlier.sum);
        out.count = out.count.saturating_sub(earlier.count);
        out
    }

    /// Nearest-rank percentile estimate (`pct` in 0..=100): the upper
    /// bound of the bucket containing the rank. Monotonically
    /// non-decreasing in `pct`; returns 0 for an empty histogram.
    ///
    /// Ranks are computed from the bucket totals (not the `count` cell),
    /// so an estimate is well-defined even on a torn concurrent snapshot.
    pub fn percentile(&self, pct: u8) -> u64 {
        let pct = u64::from(pct.min(100));
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        // Nearest-rank: the smallest bucket whose cumulative count
        // reaches ceil(pct/100 * total), with rank at least 1. Widening
        // to u128 keeps the product exact for any u64 total.
        let rank_wide = (u128::from(total) * u128::from(pct)).div_ceil(100);
        let rank = u64::try_from(rank_wide).expect("rank <= total").max(1);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// Interpolated per-mille percentile (`per_mille` in 0..=1000, so
    /// 999 is p99.9). Unlike the bucket-upper-bound [`Self::percentile`],
    /// this interpolates linearly *within* the rank's bucket — midpoint
    /// convention, so rank r of b occupants sits at fraction
    /// `(2r - 1) / 2b` of the bucket span — which matters for tail
    /// estimates where one log2 bucket can span a 2x latency range.
    /// Integer math throughout (the bucket spans near `u64::MAX` exceed
    /// f64's exact range); the open-ended last bucket clamps to its
    /// lower bound. Returns 0 for an empty histogram.
    pub fn percentile_per_mille(&self, per_mille: u16) -> u64 {
        let pm = u64::from(per_mille.min(1000));
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank_wide = (u128::from(total) * u128::from(pm)).div_ceil(1000);
        let rank = u64::try_from(rank_wide).expect("rank <= total").max(1);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += b;
            if cumulative >= rank {
                let (lo, hi) = bucket_bounds(i);
                if i == BUCKETS - 1 {
                    return lo;
                }
                let span = u128::from(hi - lo);
                let within = u128::from(rank - before);
                let offset = span * (2 * within - 1) / (2 * u128::from(b));
                return lo + u64::try_from(offset).expect("offset <= span");
            }
        }
        bucket_bounds(BUCKETS - 1).0
    }

    /// Interpolated p99.9 estimate (see [`Self::percentile_per_mille`]).
    pub fn p999(&self) -> u64 {
        self.percentile_per_mille(999)
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            exact_f64(self.sum) / exact_f64(self.count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds_at_powers_of_two() {
        for (v, want) in [(0u64, 0usize), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)] {
            assert_eq!(bucket_index(v), want, "v={v}");
        }
        for v in [0u64, 1, 2, 3, 5, 100, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_counts_sum_and_percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // p50 of 1..=1000 is 500 → bucket [512, 1023] or [256, 511]; the
        // estimate is that bucket's upper bound, which must bracket 500.
        let p50 = s.percentile(50);
        assert!((255..=1023).contains(&p50), "p50 estimate {p50}");
        assert!(s.percentile(100) >= 1000);
        assert!((s.mean() - 500.5).abs() < 0.001);
    }

    #[test]
    fn merge_is_commutative() {
        let a = {
            let h = Histogram::new();
            for v in [1u64, 5, 9, 1_000_000] {
                h.record(v);
            }
            h.snapshot()
        };
        let b = {
            let h = Histogram::new();
            for v in [0u64, 2, 2, 7] {
                h.record(v);
            }
            h.snapshot()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 8);
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let first = h.snapshot();
        for v in [1_000u64, 2_000, 4_000, 8_000] {
            h.record(v);
        }
        let window = h.snapshot().delta_since(&first);
        assert_eq!(window.count, 4);
        assert_eq!(window.sum, 15_000);
        // The window's percentile reflects only the later, slower values.
        assert!(window.percentile(50) >= 1_000, "p50 {}", window.percentile(50));
        // Deltas against a *later* snapshot saturate to empty, not wrap.
        let empty = first.delta_since(&h.snapshot());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.sum, 0);
        assert!(empty.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        assert_eq!(HistogramSnapshot::default().percentile(99), 0);
        assert_eq!(HistogramSnapshot::default().percentile_per_mille(999), 0);
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }

    #[test]
    fn interpolated_per_mille_refines_the_bucket_bound() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // The interpolated estimate stays inside the rank's bucket and
        // beats the bucket-upper-bound estimate toward the true value.
        let p999 = s.p999();
        assert!(
            (512..1024).contains(&p999),
            "p99.9 of 1..=1000 interpolates in [512,1024): {p999}"
        );
        assert!(p999 >= s.percentile_per_mille(990), "monotone in per-mille");
        // p50.0 per-mille agrees with the coarse p50 to within one bucket.
        let fine = s.percentile_per_mille(500);
        let coarse = s.percentile(50);
        assert!(fine <= coarse, "interpolation never exceeds the bucket upper bound");
        // Uniform occupancy inside [512,1023]: rank midpoints spread
        // monotonically across the bucket.
        let mut last = 0;
        for pm in [900u16, 950, 990, 999, 1000] {
            let v = s.percentile_per_mille(pm);
            assert!(v >= last, "per-mille {pm}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn interpolated_last_bucket_clamps_to_lower_bound() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().percentile_per_mille(999), bucket_bounds(BUCKETS - 1).0);
    }

    #[test]
    fn gauge_high_water_mark_only_rises() {
        let g = Gauge::new();
        g.record_max(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 9);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn exemplars_attach_per_bucket_and_last_writer_wins() {
        let h = Histogram::with_exemplars();
        assert!(h.has_exemplars());
        assert_eq!(h.exemplar(bucket_index(100)), None, "no exemplar before any attach");
        h.record(100);
        h.attach_exemplar(100, 7);
        h.record(5_000);
        h.attach_exemplar(5_000, 9);
        assert_eq!(h.exemplar(bucket_index(100)), Some(Exemplar { value: 100, trace_id: 7 }));
        // Trace id 0 is a valid id (ids start at 0), distinct from "none".
        h.attach_exemplar(120, 0);
        assert_eq!(
            h.exemplar(bucket_index(120)),
            Some(Exemplar { value: 120, trace_id: 0 }),
            "later attach to the same bucket wins"
        );
        let all = h.exemplars();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].1.trace_id, 9);
        assert!(all[0].0 < all[1].0, "ascending bucket order");
    }

    #[test]
    fn plain_histograms_ignore_exemplar_attaches() {
        let h = Histogram::new();
        assert!(!h.has_exemplars());
        h.record(42);
        h.attach_exemplar(42, 1);
        assert_eq!(h.exemplar(bucket_index(42)), None);
        assert!(h.exemplars().is_empty());
        assert_eq!(h.count(), 1, "attach never records");
    }
}
