//! Continuous worker-state profiling: where the worker pool's *wall
//! time* goes.
//!
//! The paper decomposes where cycles go per use case; the stage
//! histograms ([`crate::stage`]) decompose where *service time* goes.
//! What neither shows is what the pool does when it is **not** serving:
//! idle keep-alive pinning, accept-queue waits, blocked reads — exactly
//! the evidence the C10k rearchitecture needs. This module closes that
//! gap with a statistical profiler built from the same dependency-free
//! parts as the rest of the crate:
//!
//! * each worker publishes its current [`WorkerState`] into a per-worker
//!   atomic slot ([`WorkerSlots`]) — one relaxed store per transition,
//!   nothing else on the request path;
//! * a sampler thread walks the slots at a configurable rate
//!   ([`ProfilerConfig::sample_hz`]) and accumulates
//!   `aon_worker_state_samples_total{state}` counters, per-worker
//!   utilization gauges, and a pool-saturation gauge;
//! * the per-(context × state) table renders as a folded-stack dump
//!   (`use_case;state count`, one line each) that `flamegraph.pl`
//!   consumes directly.
//!
//! Sampling bias caveats: the profiler sees the state each worker is in
//! *at the sampling instant*, so states shorter than the sampling period
//! are attributed probabilistically (correct in expectation, noisy for
//! small counts), and a worker that transitions between samples simply
//! was not observed in the intermediate state. The default rate is a
//! prime 97 Hz so the sampler cannot phase-lock with millisecond-aligned
//! periodic work (the governor samples at 50 ms). A sleep-based sampler
//! has a deeper bias on an oversubscribed (or single-CPU, or stolen-time
//! virtualized) host: its wakeups are granted by the scheduler, which
//! hands out the CPU preferentially at points where workers just
//! *blocked* — so busy states are systematically under-sampled exactly
//! when the machine is busiest. The slots therefore also keep an
//! **exact** time-in-state ledger: each publish charges the wall time
//! since the previous publish to the *outgoing* state's class (busy /
//! in-service), one `Instant::now` per transition, owner-thread-only
//! writes. The Little's-law check uses the exact ledger for `L`; the
//! sampled table remains the folded/flamegraph source.
//!
//! The sampler follows the probe-and-degrade discipline of the hardware
//! plane: if sampling passes persistently overrun the sampling period
//! (`aon_profiler_overruns_total`), the loop marks itself inactive
//! (`aon_profiler_active 0`) and stops rather than distort the workload
//! it is measuring.
//!
//! This file is on the `aon-audit` cast-enforced list.

use crate::metric::{Counter, Gauge};
use crate::registry::Registry;
use crate::stage::Stage;
use aon_trace::num::exact_f64;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of worker states (array dimension for per-state tables).
pub const STATE_COUNT: usize = 11;

/// What a worker thread is doing right now: the six pipeline stages
/// (reusing [`Stage`] semantics) plus the pool-level states around them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Not running (worker exited, or slot never written).
    Idle,
    /// Blocked popping the accept queue — no connection to serve.
    AcceptWait,
    /// Blocked reading a request frame (idle keep-alive pinning lives
    /// here: the connection holds the worker but sends nothing).
    ReadWait,
    /// UTF-8 validation + XML parse ([`Stage::Parse`]).
    Parse,
    /// XPath evaluation ([`Stage::XPath`]).
    Xpath,
    /// Schema validation ([`Stage::Validate`]).
    Validate,
    /// Signature scan ([`Stage::Dpi`]).
    Dpi,
    /// HMAC authentication ([`Stage::Crypto`]).
    Crypto,
    /// Response serialization + socket write ([`Stage::Write`]).
    Write,
    /// Writing a governor-shed 503 refusal.
    Shed,
    /// Serving an admin endpoint (`/metrics`, `/profile.folded`, …).
    Admin,
}

impl WorkerState {
    /// Every state, in slot-index order.
    pub const ALL: [WorkerState; STATE_COUNT] = [
        WorkerState::Idle,
        WorkerState::AcceptWait,
        WorkerState::ReadWait,
        WorkerState::Parse,
        WorkerState::Xpath,
        WorkerState::Validate,
        WorkerState::Dpi,
        WorkerState::Crypto,
        WorkerState::Write,
        WorkerState::Shed,
        WorkerState::Admin,
    ];

    /// Stable label (Prometheus label value, folded-stack frame).
    pub fn label(self) -> &'static str {
        match self {
            WorkerState::Idle => "idle",
            WorkerState::AcceptWait => "accept_wait",
            WorkerState::ReadWait => "read_wait",
            WorkerState::Parse => "parse",
            WorkerState::Xpath => "xpath",
            WorkerState::Validate => "validate",
            WorkerState::Dpi => "dpi",
            WorkerState::Crypto => "crypto",
            WorkerState::Write => "write",
            WorkerState::Shed => "shed",
            WorkerState::Admin => "admin",
        }
    }

    /// Dense index in `0..STATE_COUNT`.
    pub fn index(self) -> usize {
        match self {
            WorkerState::Idle => 0,
            WorkerState::AcceptWait => 1,
            WorkerState::ReadWait => 2,
            WorkerState::Parse => 3,
            WorkerState::Xpath => 4,
            WorkerState::Validate => 5,
            WorkerState::Dpi => 6,
            WorkerState::Crypto => 7,
            WorkerState::Write => 8,
            WorkerState::Shed => 9,
            WorkerState::Admin => 10,
        }
    }

    /// The state a pipeline stage corresponds to.
    pub fn from_stage(stage: Stage) -> WorkerState {
        match stage {
            Stage::Parse => WorkerState::Parse,
            Stage::XPath => WorkerState::Xpath,
            Stage::Validate => WorkerState::Validate,
            Stage::Dpi => WorkerState::Dpi,
            Stage::Crypto => WorkerState::Crypto,
            Stage::Write => WorkerState::Write,
        }
    }

    fn from_index(i: u64) -> WorkerState {
        usize::try_from(i)
            .ok()
            .and_then(|i| WorkerState::ALL.get(i).copied())
            .unwrap_or(WorkerState::Idle)
    }

    /// True when the worker is *occupied*: anything but sitting on the
    /// accept queue or exited. `ReadWait` counts as busy — a worker
    /// pinned by an idle keep-alive connection cannot serve anyone else,
    /// which is precisely the C10k saturation signal.
    pub fn is_busy(self) -> bool {
        !matches!(self, WorkerState::Idle | WorkerState::AcceptWait)
    }

    /// True when a (non-admin) request is actually in service — the `L`
    /// of the Little's-law check. Excludes `ReadWait` (no request exists
    /// yet) and `Admin` (admin hits are excluded from λ and W too).
    pub fn in_service(self) -> bool {
        matches!(
            self,
            WorkerState::Parse
                | WorkerState::Xpath
                | WorkerState::Validate
                | WorkerState::Dpi
                | WorkerState::Crypto
                | WorkerState::Write
                | WorkerState::Shed
        )
    }
}

/// One atomic slot per worker, each packing `(context, state)` where
/// `context` is an embedder-defined small index (the server uses
/// use-case index + 1, with 0 meaning "no use case"). Publishing is a
/// single relaxed store; the sampler reads with single relaxed loads, so
/// a read is always *some* recently-published state, never torn.
#[derive(Debug)]
pub struct WorkerSlots {
    // audit:role(gauge): last-write-wins packed (context << 8 | state)
    // per worker; Relaxed by design — the sampler reads a statistically
    // representative point-in-time state, not a synchronized one
    slots: Vec<AtomicU64>,
    /// Origin for the nanosecond offsets in the exact ledger.
    epoch: Instant,
    // audit:role(gauge): per-worker ns offset of the last publish;
    // written only by the owning worker, Relaxed by design — readers
    // only ever see it through the cumulative ledgers below
    last_ns: Vec<AtomicU64>,
    // audit:role(counter): exact cumulative busy wall-nanoseconds per
    // worker (outgoing-state attribution); owner-thread writes, Relaxed
    // reads are a statistical scrape
    busy_ns: Vec<AtomicU64>,
    // audit:role(counter): exact cumulative in-service wall-nanoseconds
    // per worker (the Little's-law `L` ledger); owner-thread writes,
    // Relaxed reads are a statistical scrape
    in_service_ns: Vec<AtomicU64>,
}

impl WorkerSlots {
    /// Slots for `workers` threads, all starting [`WorkerState::Idle`].
    pub fn new(workers: usize) -> WorkerSlots {
        WorkerSlots {
            slots: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
            last_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            in_service_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publish worker `worker`'s current state. Contexts above 255 clamp
    /// (the packing reserves one byte for the state). Out-of-range
    /// workers are ignored (defensive; the server sizes slots to the
    /// pool).
    ///
    /// Besides the point-in-time slot store, each publish settles the
    /// exact ledger: the wall time since this worker's previous publish
    /// is charged to the state it is *leaving* (busy and/or in-service).
    /// Only the owning worker publishes, so the read-modify-write on its
    /// ledger cells is single-writer.
    pub fn publish(&self, worker: usize, ctx: usize, state: WorkerState) {
        if worker >= self.slots.len() {
            return;
        }
        let now = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let last = self.last_ns[worker].swap(now, Ordering::Relaxed);
        let prev = WorkerState::from_index(self.slots[worker].load(Ordering::Relaxed) & 0xff);
        let delta = now.saturating_sub(last);
        if prev.is_busy() {
            self.busy_ns[worker].fetch_add(delta, Ordering::Relaxed);
        }
        if prev.in_service() {
            self.in_service_ns[worker].fetch_add(delta, Ordering::Relaxed);
        }
        let ctx = u64::try_from(ctx.min(255)).expect("clamped ctx fits u64");
        let state = u64::try_from(state.index()).expect("state index fits u64");
        self.slots[worker].store((ctx << 8) | state, Ordering::Relaxed);
    }

    /// Read worker `worker`'s last-published `(context, state)`.
    pub fn read(&self, worker: usize) -> (usize, WorkerState) {
        if worker >= self.slots.len() {
            return (0, WorkerState::Idle);
        }
        let v = self.slots[worker].load(Ordering::Relaxed);
        let ctx = usize::try_from(v >> 8).unwrap_or(0);
        (ctx, WorkerState::from_index(v & 0xff))
    }

    /// Exact cumulative busy wall-nanoseconds across the pool (settled
    /// state spans only — a span is charged when the worker leaves it).
    pub fn busy_ns_total(&self) -> u64 {
        (0..self.busy_ns.len()).map(|w| self.busy_ns[w].load(Ordering::Relaxed)).sum()
    }

    /// Exact cumulative in-service wall-nanoseconds across the pool —
    /// the Little's-law `L` ledger (`L = Δin_service_ns / Δwall_ns`).
    pub fn in_service_ns_total(&self) -> u64 {
        (0..self.in_service_ns.len()).map(|w| self.in_service_ns[w].load(Ordering::Relaxed)).sum()
    }

    /// Number of worker slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Sampler deployment parameters.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Master switch. Off = no sampler thread, no slot stores on the
    /// request path, no profiler metric families — zero cost.
    pub enabled: bool,
    /// Sampling rate in Hz. The default 97 is prime, so the sampler
    /// cannot phase-lock with millisecond-aligned periodic work.
    pub sample_hz: u32,
    /// Consecutive sampling-pass overruns (pass duration exceeding the
    /// sampling period) after which the sampler degrades to inactive.
    pub max_consecutive_overruns: u32,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig { enabled: true, sample_hz: 97, max_consecutive_overruns: 64 }
    }
}

impl ProfilerConfig {
    /// The sampling period (`1 / sample_hz`; a zero rate clamps to 1 Hz).
    pub fn interval(&self) -> Duration {
        Duration::from_nanos(1_000_000_000 / u64::from(self.sample_hz.max(1)))
    }
}

/// The statistical profile accumulator: owns the worker slots, the
/// per-(context × state) sample table behind `GET /profile.folded`, and
/// the registered metric families. [`Profiler::sample_once`] is the
/// entire sampling pass — the thread loop around it lives in the server
/// so tests can drive passes deterministically.
#[derive(Debug)]
pub struct Profiler {
    cfg: ProfilerConfig,
    slots: Arc<WorkerSlots>,
    ctx_labels: Vec<&'static str>,
    /// `counts[ctx][state]` — the folded-stack source (unregistered;
    /// the registered view aggregates over contexts).
    counts: Vec<[Counter; STATE_COUNT]>,
    state_samples: [Arc<Counter>; STATE_COUNT],
    worker_busy: Vec<Counter>,
    worker_utilization: Vec<Arc<Gauge>>,
    saturation: Arc<Gauge>,
    pool_busy_ns: Arc<Gauge>,
    pool_in_service_ns: Arc<Gauge>,
    passes: Arc<Counter>,
    overruns: Arc<Counter>,
    active: Arc<Gauge>,
}

impl Profiler {
    /// Build the profiler for a pool of `workers` threads and register
    /// its metric families. `ctx_labels[0]` names the "no context" slot
    /// value; the embedder maps its own small indices onto the rest.
    pub fn new(
        cfg: ProfilerConfig,
        workers: usize,
        ctx_labels: Vec<&'static str>,
        registry: &Registry,
    ) -> Profiler {
        assert!(!ctx_labels.is_empty(), "at least the no-context label is required");
        let state_samples = std::array::from_fn(|i| {
            registry.counter(
                "aon_worker_state_samples_total",
                "Sampled worker states (one sample per worker per pass)",
                &[("state", WorkerState::ALL[i].label())],
            )
        });
        let worker_utilization = (0..workers)
            .map(|w| {
                let label = w.to_string();
                registry.gauge(
                    "aon_worker_utilization_permille",
                    "Per-worker busy fraction over all samples, in permille",
                    &[("worker", label.as_str())],
                )
            })
            .collect();
        Profiler {
            slots: Arc::new(WorkerSlots::new(workers)),
            counts: ctx_labels.iter().map(|_| std::array::from_fn(|_| Counter::new())).collect(),
            ctx_labels,
            state_samples,
            worker_busy: (0..workers).map(|_| Counter::new()).collect(),
            worker_utilization,
            saturation: registry.gauge(
                "aon_pool_saturation_permille",
                "Busy workers over pool size at the last sampling pass, in permille",
                &[],
            ),
            pool_busy_ns: registry.gauge(
                "aon_pool_busy_ns",
                "Exact cumulative busy wall-nanoseconds across the pool \
                 (refreshed each sampling pass)",
                &[],
            ),
            pool_in_service_ns: registry.gauge(
                "aon_pool_in_service_ns",
                "Exact cumulative in-service wall-nanoseconds across the pool \
                 (refreshed each sampling pass; the Little's-law L ledger)",
                &[],
            ),
            passes: registry.counter(
                "aon_profiler_passes_total",
                "Completed sampling passes over the worker slots",
                &[],
            ),
            overruns: registry.counter(
                "aon_profiler_overruns_total",
                "Sampling passes that overran the sampling period",
                &[],
            ),
            active: registry.gauge(
                "aon_profiler_active",
                "1 while the sampler runs, 0 after probe-and-degrade stopped it",
                &[],
            ),
            cfg,
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.cfg
    }

    /// The worker slots to publish states into.
    pub fn slots(&self) -> &Arc<WorkerSlots> {
        &self.slots
    }

    /// One sampling pass: read every worker slot once, accumulate the
    /// state and context tables, and refresh the utilization and
    /// saturation gauges. No locks, no allocation.
    pub fn sample_once(&self) {
        let mut busy_now = 0u64;
        for w in 0..self.slots.len() {
            let (ctx, state) = self.slots.read(w);
            let ctx = ctx.min(self.counts.len() - 1);
            self.counts[ctx][state.index()].inc();
            self.state_samples[state.index()].inc();
            if state.is_busy() {
                busy_now += 1;
                self.worker_busy[w].inc();
            }
        }
        self.passes.inc();
        let passes = self.passes.get();
        for (busy, gauge) in self.worker_busy.iter().zip(self.worker_utilization.iter()) {
            gauge.set(busy.get().saturating_mul(1000) / passes.max(1));
        }
        let workers = u64::try_from(self.slots.len()).unwrap_or(u64::MAX);
        self.saturation.set(busy_now.saturating_mul(1000) / workers.max(1));
        self.pool_busy_ns.set(self.slots.busy_ns_total());
        self.pool_in_service_ns.set(self.slots.in_service_ns_total());
    }

    /// Completed sampling passes.
    pub fn passes(&self) -> u64 {
        self.passes.get()
    }

    /// Samples in request-in-service states across all passes (the `L`
    /// numerator of the Little's-law check: `L = in_service / passes`).
    pub fn in_service_samples(&self) -> u64 {
        WorkerState::ALL
            .iter()
            .filter(|s| s.in_service())
            .map(|s| self.state_samples[s.index()].get())
            .sum()
    }

    /// Pool saturation at the last pass, in permille.
    pub fn saturation_permille(&self) -> u64 {
        self.saturation.get()
    }

    /// Per-worker busy fraction over all passes, in permille.
    pub fn worker_utilization_permille(&self) -> Vec<u64> {
        self.worker_utilization.iter().map(|g| g.get()).collect()
    }

    /// Count one sampling-pass overrun.
    pub fn note_overrun(&self) {
        self.overruns.inc();
    }

    /// Publish whether the sampler is running (probe-and-degrade edge).
    pub fn set_active(&self, on: bool) {
        self.active.set(u64::from(on));
    }

    /// The folded-stack dump: one `context;state count` line per
    /// non-zero cell, contexts in registration order, states in
    /// [`WorkerState::ALL`] order — deterministic for a given sample
    /// table, and directly consumable by `flamegraph.pl`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (ci, label) in self.ctx_labels.iter().enumerate() {
            for state in WorkerState::ALL {
                let c = self.counts[ci][state.index()].get();
                if c > 0 {
                    let _ = writeln!(out, "{label};{} {c}", state.label());
                }
            }
        }
        out
    }
}

/// The Little's-law consistency check: in a stable system, the mean
/// number of requests in service `L` equals arrival rate `λ` times mean
/// time in service `W`. The profiler measures `L` one way (state
/// samples) and the existing request counters and service histograms
/// measure `λ·W` another — agreement is evidence both planes are honest.
#[derive(Debug, Clone, Copy)]
pub struct LittlesLaw {
    /// Completed requests per second over the window (`λ`).
    pub lambda_per_sec: f64,
    /// Mean time in service over the window, in seconds (`W`).
    pub w_secs: f64,
    /// Mean requests in service observed by the sampler (`L`).
    pub l_observed: f64,
}

impl LittlesLaw {
    /// The law's prediction for `L` from the measured `λ` and `W`.
    pub fn l_predicted(&self) -> f64 {
        self.lambda_per_sec * self.w_secs
    }

    /// Relative disagreement `|λW − L| / max(λW, L)` in `0..=1`
    /// (0 when both sides are ~zero: an idle system trivially agrees).
    pub fn gap_fraction(&self) -> f64 {
        let predicted = self.l_predicted();
        let denom = predicted.max(self.l_observed);
        if denom < 1e-9 {
            return 0.0;
        }
        (predicted - self.l_observed).abs() / denom
    }

    /// True when the two sides agree within `tolerance` (e.g. `0.15`).
    pub fn within(&self, tolerance: f64) -> bool {
        self.gap_fraction() <= tolerance
    }
}

/// Build a [`LittlesLaw`] check from windowed deltas: requests completed
/// and their summed service nanoseconds over `window_secs`, plus the
/// profiler's in-service sample and pass deltas over the same window.
pub fn littles_law(
    requests: u64,
    service_ns_sum: u64,
    window_secs: f64,
    in_service_samples: u64,
    passes: u64,
) -> LittlesLaw {
    let lambda_per_sec = if window_secs > 0.0 { exact_f64(requests) / window_secs } else { 0.0 };
    let w_secs =
        if requests > 0 { exact_f64(service_ns_sum) / exact_f64(requests) / 1e9 } else { 0.0 };
    let l_observed =
        if passes > 0 { exact_f64(in_service_samples) / exact_f64(passes) } else { 0.0 };
    LittlesLaw { lambda_per_sec, w_secs, l_observed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_labels_and_indices_are_dense_and_unique() {
        let mut seen = [false; STATE_COUNT];
        for s in WorkerState::ALL {
            assert!(!seen[s.index()], "index collision at {s:?}");
            seen[s.index()] = true;
            assert!(!s.label().is_empty());
        }
        assert!(seen.iter().all(|&b| b));
        // Stage states round-trip through the Stage mapping.
        for stage in Stage::ALL {
            let st = WorkerState::from_stage(stage);
            assert_eq!(st.label(), stage.label());
            assert!(st.is_busy() && st.in_service());
        }
        assert!(!WorkerState::Idle.is_busy());
        assert!(!WorkerState::AcceptWait.is_busy());
        assert!(WorkerState::ReadWait.is_busy(), "keep-alive pinning is occupancy");
        assert!(!WorkerState::ReadWait.in_service(), "no request exists while reading");
        assert!(!WorkerState::Admin.in_service(), "admin is excluded from the law's L");
        assert!(WorkerState::Shed.in_service());
    }

    #[test]
    fn slots_roundtrip_context_and_state() {
        let slots = WorkerSlots::new(3);
        assert_eq!(slots.len(), 3);
        slots.publish(0, 4, WorkerState::Crypto);
        slots.publish(2, 0, WorkerState::ReadWait);
        assert_eq!(slots.read(0), (4, WorkerState::Crypto));
        assert_eq!(slots.read(1), (0, WorkerState::Idle), "unpublished slot reads Idle");
        assert_eq!(slots.read(2), (0, WorkerState::ReadWait));
        // Out-of-range workers and oversized contexts are defensive no-ops.
        slots.publish(99, 1, WorkerState::Parse);
        slots.publish(1, 9999, WorkerState::Parse);
        assert_eq!(slots.read(1).0, 255, "context clamps to one byte");
        assert_eq!(slots.read(99), (0, WorkerState::Idle));
    }

    #[test]
    fn exact_ledger_charges_time_to_the_outgoing_state() {
        let slots = WorkerSlots::new(2);
        // Worker 0: Idle (not busy) → nothing charged on entering Parse.
        slots.publish(0, 1, WorkerState::Parse);
        assert_eq!(slots.busy_ns_total(), 0, "idle time is never busy");
        assert_eq!(slots.in_service_ns_total(), 0);
        std::thread::sleep(Duration::from_millis(5));
        // Leaving Parse charges the elapsed span as busy + in-service.
        slots.publish(0, 0, WorkerState::ReadWait);
        let busy = slots.busy_ns_total();
        let in_service = slots.in_service_ns_total();
        assert!(busy >= 5_000_000, "at least the slept span: {busy}");
        assert_eq!(in_service, busy, "parse is both busy and in-service");
        std::thread::sleep(Duration::from_millis(5));
        // Leaving ReadWait charges busy (keep-alive pinning) but not
        // in-service (no request existed).
        slots.publish(0, 0, WorkerState::Idle);
        assert!(slots.busy_ns_total() >= busy + 5_000_000);
        assert_eq!(slots.in_service_ns_total(), in_service, "read_wait is not in-service");
        // Worker 1 never published: no ledger movement.
        assert_eq!(slots.read(1), (0, WorkerState::Idle));
    }

    #[test]
    fn sample_pass_publishes_the_exact_ledger_gauges() {
        let registry = Registry::new();
        let p = Profiler::new(ProfilerConfig::default(), 1, vec!["-"], &registry);
        p.slots().publish(0, 0, WorkerState::Write);
        std::thread::sleep(Duration::from_millis(2));
        p.slots().publish(0, 0, WorkerState::Idle);
        p.sample_once();
        let text = registry.render_prometheus();
        let value = |name: &str| {
            text.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split(' ').nth(1))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        assert!(value("aon_pool_busy_ns") >= 2_000_000, "{text}");
        assert_eq!(value("aon_pool_busy_ns"), value("aon_pool_in_service_ns"), "{text}");
    }

    #[test]
    fn sample_pass_accumulates_states_utilization_and_saturation() {
        let registry = Registry::new();
        let p = Profiler::new(ProfilerConfig::default(), 4, vec!["-", "FR", "CBR"], &registry);
        // Two busy workers, one accept-waiting, one idle.
        p.slots().publish(0, 1, WorkerState::Parse);
        p.slots().publish(1, 2, WorkerState::Write);
        p.slots().publish(2, 0, WorkerState::AcceptWait);
        p.sample_once();
        p.sample_once();
        assert_eq!(p.passes(), 2);
        assert_eq!(p.in_service_samples(), 4, "parse + write across two passes");
        assert_eq!(p.saturation_permille(), 500, "2 of 4 workers busy");
        assert_eq!(p.worker_utilization_permille(), vec![1000, 1000, 0, 0]);

        let text = registry.render_prometheus();
        assert!(text.contains("aon_worker_state_samples_total{state=\"parse\"} 2"), "{text}");
        assert!(text.contains("aon_worker_state_samples_total{state=\"idle\"} 2"), "{text}");
        assert!(text.contains("aon_pool_saturation_permille 500"), "{text}");
        assert!(text.contains("aon_worker_utilization_permille{worker=\"0\"} 1000"), "{text}");
        assert!(text.contains("aon_profiler_passes_total 2"), "{text}");
    }

    #[test]
    fn folded_dump_keys_context_then_state_and_skips_zero_cells() {
        let registry = Registry::new();
        let p = Profiler::new(ProfilerConfig::default(), 2, vec!["-", "SV"], &registry);
        p.slots().publish(0, 1, WorkerState::Validate);
        p.slots().publish(1, 0, WorkerState::ReadWait);
        p.sample_once();
        p.slots().publish(0, 1, WorkerState::Write);
        p.sample_once();
        let folded = p.folded();
        assert_eq!(folded, "-;read_wait 2\nSV;validate 1\nSV;write 1\n");
        // Every line matches the flamegraph.pl input grammar.
        for line in folded.lines() {
            let (frames, count) = line.rsplit_once(' ').expect("space-separated count");
            assert!(count.parse::<u64>().is_ok(), "{line}");
            assert_eq!(frames.split(';').count(), 2, "{line}");
        }
    }

    /// A deterministic schedule from a seeded generator (SplitMix64, the
    /// same mixer the tail sampler uses) drives worker transitions under
    /// a fake clock: tick `t` publishes the scheduled states, then the
    /// sampler takes one pass. The folded output must be byte-identical
    /// across runs — no wall-clock dependence anywhere in the sample or
    /// render path.
    #[test]
    fn folded_output_is_deterministic_under_a_seeded_fake_clock() {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let run = |seed: u64| {
            let registry = Registry::new();
            let p = Profiler::new(ProfilerConfig::default(), 3, vec!["-", "FR", "DPI"], &registry);
            let mut rng = seed;
            for _tick in 0..200 {
                for w in 0..3 {
                    let r = splitmix(&mut rng);
                    let state = WorkerState::ALL[usize::try_from(r % 11).expect("fits")];
                    let ctx = usize::try_from((r >> 8) % 3).expect("fits");
                    p.slots().publish(w, ctx, state);
                }
                p.sample_once();
            }
            p.folded()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same folded profile");
        assert_ne!(a, run(43), "different schedules differ");
        assert!(!a.is_empty());
    }

    #[test]
    fn littles_law_agrees_on_a_scripted_workload() {
        // Scripted: 1000 requests over 10 s, each 20 ms in service →
        // λ = 100/s, W = 0.02 s, λW = 2. The sampler saw 2 of the
        // workers in service on average: 800 in-service samples over
        // 400 passes → L = 2. Exact agreement.
        let law = littles_law(1000, 20_000_000 * 1000, 10.0, 800, 400);
        assert!((law.l_predicted() - 2.0).abs() < 1e-9);
        assert!((law.l_observed - 2.0).abs() < 1e-9);
        assert_eq!(law.gap_fraction(), 0.0);
        assert!(law.within(0.15));

        // 20% disagreement is outside a 15% tolerance but inside 25%.
        let law = littles_law(1000, 20_000_000 * 1000, 10.0, 640, 400);
        assert!(law.gap_fraction() > 0.15 && law.gap_fraction() < 0.25, "{law:?}");
        assert!(!law.within(0.15));
        assert!(law.within(0.25));

        // An idle window trivially agrees (no division blowups).
        let idle = littles_law(0, 0, 5.0, 0, 100);
        assert_eq!(idle.gap_fraction(), 0.0);
        assert!(idle.within(0.15));
    }

    #[test]
    fn overrun_and_active_markers_render() {
        let registry = Registry::new();
        let p = Profiler::new(ProfilerConfig::default(), 1, vec!["-"], &registry);
        p.set_active(true);
        p.note_overrun();
        let text = registry.render_prometheus();
        assert!(text.contains("aon_profiler_active 1"), "{text}");
        assert!(text.contains("aon_profiler_overruns_total 1"), "{text}");
        p.set_active(false);
        assert!(registry.render_prometheus().contains("aon_profiler_active 0"));
    }

    #[test]
    fn config_interval_follows_hz() {
        assert_eq!(ProfilerConfig::default().interval().as_nanos(), 1_000_000_000 / 97);
        let cfg = ProfilerConfig { sample_hz: 0, ..ProfilerConfig::default() };
        assert_eq!(cfg.interval(), Duration::from_secs(1), "zero rate clamps to 1 Hz");
    }
}
