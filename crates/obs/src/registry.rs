//! The metric registry: named, labelled families of counters, gauges,
//! and histograms, rendered in the Prometheus text exposition format.
//!
//! Registration happens once at startup (the server constructs every
//! series it will ever touch before serving traffic), so the registry
//! holds its catalogue behind a single `Mutex` that the **data path
//! never takes** — hot-path code holds `Arc` handles to the primitive
//! instruments and updates them with relaxed atomics. Only registration
//! and rendering lock.
//!
//! This file is on the `aon-audit` cast-enforced list: counter-to-float
//! arithmetic goes through [`aon_trace::num`].

use crate::metric::{bucket_bounds, Counter, Gauge, Histogram, BUCKETS};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// What kind of instrument a family holds (one kind per family name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic counter; rendered with a `_total`-style single line.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log2 histogram; rendered as cumulative `_bucket`/`_sum`/`_count`.
    Histogram,
}

impl Kind {
    fn prometheus_type(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One instrument handle.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One labelled series inside a family.
#[derive(Debug, Clone)]
struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A named family: one metric name, one help string, many label sets.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// The registry. Cheap to share (`Arc<Registry>`); see the module docs
/// for the locking discipline.
#[derive(Debug, Default)]
pub struct Registry {
    // audit:role(lock): guards registration and render only; the data
    // path holds Arc handles to metrics and never takes this lock
    families: Mutex<Vec<Family>>,
}

/// A parsed sample as exposed by [`Registry::samples`]: flattened
/// `(name, labels, value)` rows for programmatic consumers (the
/// `/stats.json` endpoint, tests).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name (histograms expand to `name_sum`/`name_count`).
    pub name: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or look up) a counter series. Re-registering the same
    /// `name` + `labels` returns the existing handle, so construction is
    /// idempotent.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, Kind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("registry returned wrong instrument kind for {name}"),
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self
            .register(name, help, Kind::Gauge, labels, || Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => g,
            _ => unreachable!("registry returned wrong instrument kind for {name}"),
        }
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, Kind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("registry returned wrong instrument kind for {name}"),
        }
    }

    /// Register (or look up) a histogram series whose buckets carry
    /// exemplars ([`Histogram::with_exemplars`]); rendering appends the
    /// OpenMetrics exemplar suffix to buckets that have one. Looking up
    /// an existing series returns it as-is (the first registration
    /// decides whether the cells exist).
    pub fn histogram_with_exemplars(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, Kind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::with_exemplars()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("registry returned wrong instrument kind for {name}"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
        }
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        let mut families = self.families.lock().expect("registry poisoned");
        let idx = match families.iter().position(|f| f.name == name) {
            Some(i) => {
                assert!(
                    families[i].kind == kind,
                    "metric {name} re-registered as a different kind"
                );
                i
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.len() - 1
            }
        };
        let family = &mut families[idx];
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return existing.instrument.clone();
        }
        let instrument = make();
        family.series.push(Series { labels, instrument: instrument.clone() });
        instrument
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` headers, one line per
    /// series, histograms as cumulative `le` buckets plus `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::with_capacity(4096);
        for f in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.prometheus_type());
            for s in &f.series {
                match &s.instrument {
                    Instrument::Counter(c) => {
                        let _ =
                            writeln!(out, "{}{} {}", f.name, label_set(&s.labels, &[]), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ =
                            writeln!(out, "{}{} {}", f.name, label_set(&s.labels, &[]), g.get());
                    }
                    Instrument::Histogram(h) => render_histogram(&mut out, &f.name, s, h),
                }
            }
        }
        out
    }

    /// Flatten every series into `(name, labels, value)` samples.
    /// Histograms contribute `name_sum` and `name_count` rows (buckets
    /// are an exposition concern; programmatic consumers want moments).
    pub fn samples(&self) -> Vec<Sample> {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = Vec::new();
        for f in families.iter() {
            for s in &f.series {
                match &s.instrument {
                    Instrument::Counter(c) => out.push(Sample {
                        name: f.name.clone(),
                        labels: s.labels.clone(),
                        value: c.get(),
                    }),
                    Instrument::Gauge(g) => out.push(Sample {
                        name: f.name.clone(),
                        labels: s.labels.clone(),
                        value: g.get(),
                    }),
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        out.push(Sample {
                            name: format!("{}_sum", f.name),
                            labels: s.labels.clone(),
                            value: snap.sum,
                        });
                        out.push(Sample {
                            name: format!("{}_count", f.name),
                            labels: s.labels.clone(),
                            value: snap.count,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Render one histogram series: cumulative buckets up to the highest
/// non-empty one, then `+Inf`, `_sum`, `_count`. Buckets carrying an
/// exemplar get the OpenMetrics exemplar suffix
/// (`# {trace_id="..."} value`) appended after the sample value; the
/// last bucket's exemplar, when the table overflowed into it, rides on
/// the `+Inf` line.
fn render_histogram(out: &mut String, name: &str, s: &Series, h: &Histogram) {
    let snap = h.snapshot();
    let highest = snap.buckets.iter().rposition(|&b| b > 0);
    let mut cumulative = 0u64;
    if let Some(hi) = highest {
        for i in 0..=hi.min(BUCKETS - 2) {
            cumulative += snap.buckets[i];
            let le = bucket_bounds(i).1.to_string();
            let _ =
                write!(out, "{name}_bucket{} {cumulative}", label_set(&s.labels, &[("le", &le)]));
            write_exemplar(out, h.exemplar(i));
            out.push('\n');
        }
    }
    let total: u64 = snap.buckets.iter().sum();
    let _ = write!(out, "{name}_bucket{} {total}", label_set(&s.labels, &[("le", "+Inf")]));
    write_exemplar(out, h.exemplar(BUCKETS - 1));
    out.push('\n');
    let _ = writeln!(out, "{name}_sum{} {}", label_set(&s.labels, &[]), snap.sum);
    let _ = writeln!(out, "{name}_count{} {}", label_set(&s.labels, &[]), snap.count);
}

/// Append the OpenMetrics exemplar suffix for `exemplar`, if any.
fn write_exemplar(out: &mut String, exemplar: Option<crate::metric::Exemplar>) {
    if let Some(e) = exemplar {
        let _ = write!(out, " # {{trace_id=\"{}\"}} {}", e.trace_id, e.value);
    }
}

/// Format `{k="v",...}` from the series labels plus any extras (the
/// histogram `le`); empty label sets render as nothing.
fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))));
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Label names: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("aon_test_total", "help", &[("k", "v")]);
        let b = r.counter("aon_test_total", "help", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles must hit the same cell");
        let other = r.counter("aon_test_total", "help", &[("k", "w")]);
        assert_eq!(other.get(), 0, "different labels are a different series");
    }

    #[test]
    fn prometheus_text_has_help_type_and_series_lines() {
        let r = Registry::new();
        r.counter("aon_requests_total", "Requests processed", &[("use_case", "FR")]).add(7);
        r.gauge("aon_queue_depth", "Accept queue depth", &[]).set(3);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP aon_requests_total Requests processed"));
        assert!(text.contains("# TYPE aon_requests_total counter"));
        assert!(text.contains("aon_requests_total{use_case=\"FR\"} 7"));
        assert!(text.contains("# TYPE aon_queue_depth gauge"));
        assert!(text.contains("aon_queue_depth 3"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_and_moments() {
        let r = Registry::new();
        let h = r.histogram("aon_latency_ns", "Latency", &[("use_case", "SV")]);
        h.record(1);
        h.record(2);
        h.record(1000);
        let text = r.render_prometheus();
        // Bucket 1 ([1,1]) has 1 observation; bucket 2 ([2,3]) makes it
        // cumulative 2; the +Inf bucket carries all 3.
        assert!(text.contains("aon_latency_ns_bucket{use_case=\"SV\",le=\"1\"} 1"), "{text}");
        assert!(text.contains("aon_latency_ns_bucket{use_case=\"SV\",le=\"3\"} 2"), "{text}");
        assert!(text.contains("aon_latency_ns_bucket{use_case=\"SV\",le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("aon_latency_ns_sum{use_case=\"SV\"} 1003"));
        assert!(text.contains("aon_latency_ns_count{use_case=\"SV\"} 3"));
    }

    #[test]
    fn exemplar_histograms_render_openmetrics_suffixes() {
        let r = Registry::new();
        let h = r.histogram_with_exemplars("aon_lat_ns", "Latency", &[("use_case", "FR")]);
        h.record(100);
        h.attach_exemplar(100, 42);
        h.record(u64::MAX);
        h.attach_exemplar(u64::MAX, 43);
        let text = r.render_prometheus();
        // Bucket [64,127] carries the linked trace id and observed value.
        assert!(
            text.contains(
                "aon_lat_ns_bucket{use_case=\"FR\",le=\"127\"} 1 # {trace_id=\"42\"} 100"
            ),
            "{text}"
        );
        // The overflow bucket's exemplar rides on the +Inf line.
        assert!(
            text.contains(&format!(
                "aon_lat_ns_bucket{{use_case=\"FR\",le=\"+Inf\"}} 2 # {{trace_id=\"43\"}} {}",
                u64::MAX
            )),
            "{text}"
        );
        // Buckets without an exemplar render exactly as before.
        let r2 = Registry::new();
        let plain = r2.histogram("aon_lat_ns", "Latency", &[]);
        plain.record(100);
        assert!(r2.render_prometheus().contains("aon_lat_ns_bucket{le=\"127\"} 1\n"));
    }

    #[test]
    fn samples_flatten_histograms_into_moments() {
        let r = Registry::new();
        r.counter("aon_c_total", "c", &[]).add(5);
        let h = r.histogram("aon_h_ns", "h", &[]);
        h.record(10);
        let samples = r.samples();
        let get = |n: &str| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("aon_c_total"), Some(5));
        assert_eq!(get("aon_h_ns_sum"), Some(10));
        assert_eq!(get("aon_h_ns_count"), Some(1));
    }

    #[test]
    fn name_validation_rejects_bad_names() {
        assert!(valid_metric_name("aon_requests_total"));
        assert!(!valid_metric_name("9bad"));
        assert!(!valid_metric_name("has space"));
        assert!(valid_label_name("use_case"));
        assert!(!valid_label_name("le-gal"));
    }
}
