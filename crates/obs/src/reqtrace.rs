//! Per-request tracing with tail-based sampling.
//!
//! The software counters (metrics, flight recorder) answer *how much*;
//! a trace answers *where inside one request the time went*. Each traced
//! request carries a 64-bit id and a span tree — queue wait, every
//! pipeline stage, the response write, and governor events — with
//! nanosecond offsets from the request's service origin. Traces land in
//! a bounded ring dumped by the `GET /trace.jsonl` admin endpoint and
//! reconstructed by `trace-report`.
//!
//! **Tail-based sampling.** The retention decision is made at the *end*
//! of the request, when its fate is known:
//!
//! * slow (service time over the configured budget, by default the
//!   governor's p99 budget), shed (503), and errored requests are
//!   **always** kept;
//! * everything else is reservoir-sampled at a configurable rate with a
//!   **deterministic** per-id decision ([`sample_decision`]) seeded by
//!   `AON_TRACE_SEED`, so a run can be replayed with the identical
//!   sampling pattern (the PR 6 stress-harness convention).
//!
//! **Bounded, keep-class-preferring ring.** The ring never exceeds its
//! capacity; under pressure it evicts the oldest *sampled* trace first
//! and touches always-keep traces only when sampled ones are exhausted.
//! Evictions are counted per class, so "100% of shed/slow/error traces
//! retained" is a checkable claim (`dropped_keep == 0`), not a hope.
//!
//! This file is on the `aon-audit` cast- and doc-enforced lists.

use crate::stage::Stage;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One span (or zero-duration point event) within a trace. `start_ns`
/// is the offset from the trace origin (first byte of the request frame
/// consumed — i.e. service start); the root span has `parent == None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span label: `"request"` (root), `"queue_wait"`, a stage label,
    /// or a governor event.
    pub label: &'static str,
    /// Offset from the trace origin, nanoseconds. The `queue_wait` span
    /// is the one span that *precedes* the origin; it reports offset 0.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for point events).
    pub dur_ns: u64,
    /// Index of the parent span within the record, `None` for the root.
    pub parent: Option<u32>,
}

/// Why a finished trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClass {
    /// Service time exceeded the slow budget.
    Slow,
    /// Refused by the capacity governor (503).
    Shed,
    /// The engine (or request parsing) reported an error.
    Error,
    /// Unremarkable request kept by the reservoir sampler.
    Sampled,
}

impl TraceClass {
    /// Every class, in retention-priority order.
    pub const ALL: [TraceClass; 4] =
        [TraceClass::Slow, TraceClass::Shed, TraceClass::Error, TraceClass::Sampled];

    /// Stable label (JSON value, Prometheus label).
    pub fn label(self) -> &'static str {
        match self {
            TraceClass::Slow => "slow",
            TraceClass::Shed => "shed",
            TraceClass::Error => "error",
            TraceClass::Sampled => "sampled",
        }
    }

    /// Dense index in `0..4`.
    pub fn index(self) -> usize {
        match self {
            TraceClass::Slow => 0,
            TraceClass::Shed => 1,
            TraceClass::Error => 2,
            TraceClass::Sampled => 3,
        }
    }

    /// Inverse of [`TraceClass::label`].
    pub fn from_label(s: &str) -> Option<TraceClass> {
        TraceClass::ALL.into_iter().find(|c| c.label() == s)
    }

    /// True for the always-keep classes (everything but `Sampled`).
    pub fn always_keep(self) -> bool {
        !matches!(self, TraceClass::Sampled)
    }
}

/// A finished, classified request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The request's trace id (unique per server lifetime).
    pub id: u64,
    /// Use-case label (`"FR"`, …) or `"-"` off the engine path.
    pub use_case: &'static str,
    /// HTTP status answered.
    pub status: u16,
    /// Why this trace was retained.
    pub class: TraceClass,
    /// End-to-end service nanoseconds (the root span's duration).
    pub total_ns: u64,
    /// The span tree; index 0 is the root `"request"` span.
    pub spans: Vec<TraceEvent>,
}

impl TraceRecord {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160 + self.spans.len() * 64);
        s.push_str(&format!(
            "{{\"id\":{},\"use_case\":\"{}\",\"status\":{},\"class\":\"{}\",\"total_ns\":{},\"spans\":[",
            self.id,
            self.use_case,
            self.status,
            self.class.label(),
            self.total_ns
        ));
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let parent = sp.parent.map_or(-1i64, i64::from);
            s.push_str(&format!(
                "{{\"label\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"parent\":{}}}",
                sp.label, sp.start_ns, sp.dur_ns, parent
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Tracing configuration (a [`crate::reqtrace::Tracer`]'s knobs).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch; off means no ids, no ring, a 404 `/trace.jsonl`.
    pub enabled: bool,
    /// Ring capacity in retained traces (keep + sampled together).
    pub capacity: usize,
    /// Reservoir rate for unremarkable requests, in parts per million
    /// (10_000 = 1%). Slow/shed/error traces ignore this.
    pub sample_per_million: u32,
    /// Seed for the deterministic sampling decision (`AON_TRACE_SEED`).
    pub seed: u64,
    /// Slow threshold in nanoseconds; `None` adopts the governor's p99
    /// budget when the server starts.
    pub slow_budget_ns: Option<u64>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            capacity: 512,
            sample_per_million: 10_000,
            seed: seed_from_env(),
            slow_budget_ns: None,
        }
    }
}

/// The run's trace seed: `AON_TRACE_SEED` if set (replay), else 42 —
/// deterministic by default, like the corpus seed.
pub fn seed_from_env() -> u64 {
    std::env::var("AON_TRACE_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42)
}

/// SplitMix64 output function over `seed ⊕ φ·id` — the same generator
/// the corpus and the schedule-stress harness use. One evaluation per
/// request; no state, so the decision for (seed, id) never depends on
/// traffic interleaving.
pub fn sample_decision(seed: u64, id: u64, per_million: u32) -> bool {
    if per_million == 0 {
        return false;
    }
    if per_million >= 1_000_000 {
        return true;
    }
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 1_000_000) < u64::from(per_million)
}

/// What [`Tracer::finish`] did with a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreOutcome {
    /// The class the trace was kept under (`None` = not sampled,
    /// discarded without entering the ring).
    pub kept: Option<TraceClass>,
    /// Sampled traces evicted to make room (0 or 1).
    pub evicted_sampled: u64,
    /// Always-keep traces evicted because no sampled trace was left —
    /// the counter that must stay 0 for the 100%-retention claim.
    pub evicted_keep: u64,
}

struct Ring {
    /// Always-keep traces (slow/shed/error), oldest first.
    keep: VecDeque<TraceRecord>,
    /// Reservoir-sampled traces, oldest first — evicted first.
    sampled: VecDeque<TraceRecord>,
}

/// The tracing engine: id generation, tail classification, and the
/// bounded keep-preferring ring.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    /// Resolved slow threshold (ns).
    slow_budget_ns: u64,
    // audit:role(seqgen): unique trace ids; Relaxed fetch_add suffices —
    // only uniqueness matters, retention order comes from the ring
    ids: AtomicU64,
    // audit:role(queue): retained traces; the mutex orders all access
    ring: Mutex<Ring>,
    // audit:role(counter): monotonic sampled-trace evictions; Relaxed
    dropped_sampled: AtomicU64,
    // audit:role(counter): monotonic keep-class evictions; Relaxed.
    // Nonzero means the 100%-retention guarantee was breached by sizing
    dropped_keep: AtomicU64,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("keep", &self.keep.len())
            .field("sampled", &self.sampled.len())
            .finish()
    }
}

impl Tracer {
    /// A tracer with `cfg`; `default_slow_budget_ns` fills in the slow
    /// threshold when the config leaves it `None` (the server passes its
    /// governor p99 budget).
    pub fn new(cfg: TraceConfig, default_slow_budget_ns: u64) -> Tracer {
        assert!(cfg.capacity > 0, "a zero-capacity trace ring retains nothing");
        let slow_budget_ns = cfg.slow_budget_ns.unwrap_or(default_slow_budget_ns);
        Tracer {
            slow_budget_ns,
            cfg,
            ids: AtomicU64::new(0),
            ring: Mutex::new(Ring { keep: VecDeque::new(), sampled: VecDeque::new() }),
            dropped_sampled: AtomicU64::new(0),
            dropped_keep: AtomicU64::new(0),
        }
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &TraceConfig {
        &self.cfg
    }

    /// The resolved slow threshold, nanoseconds.
    pub fn slow_budget_ns(&self) -> u64 {
        self.slow_budget_ns
    }

    /// A fresh trace id (unique for the tracer's lifetime).
    pub fn next_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Tail classification: the retention decision once a request's
    /// fate is known. `None` means discard (not sampled).
    pub fn classify(
        &self,
        id: u64,
        status: u16,
        errored: bool,
        total_ns: u64,
    ) -> Option<TraceClass> {
        if status == 503 {
            Some(TraceClass::Shed)
        } else if errored {
            Some(TraceClass::Error)
        } else if total_ns > self.slow_budget_ns {
            Some(TraceClass::Slow)
        } else if sample_decision(self.cfg.seed, id, self.cfg.sample_per_million) {
            Some(TraceClass::Sampled)
        } else {
            None
        }
    }

    /// Store a classified trace, evicting (sampled-first) if at
    /// capacity. The record's `class` decides which deque it enters.
    pub fn store(&self, record: TraceRecord) -> StoreOutcome {
        let mut out = StoreOutcome { kept: Some(record.class), ..StoreOutcome::default() };
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        while ring.keep.len() + ring.sampled.len() >= self.cfg.capacity {
            if ring.sampled.pop_front().is_some() {
                out.evicted_sampled += 1;
                self.dropped_sampled.fetch_add(1, Ordering::Relaxed);
            } else if ring.keep.pop_front().is_some() {
                out.evicted_keep += 1;
                self.dropped_keep.fetch_add(1, Ordering::Relaxed);
            } else {
                break; // capacity >= 1 makes this unreachable; stay safe
            }
        }
        if record.class.always_keep() {
            ring.keep.push_back(record);
        } else {
            ring.sampled.push_back(record);
        }
        out
    }

    /// Classify-and-store in one call; discarded traces never touch the
    /// ring (the common case — one branch, no lock).
    pub fn finish(&self, mut record: TraceRecord, errored: bool) -> StoreOutcome {
        match self.classify(record.id, record.status, errored, record.total_ns) {
            Some(class) => {
                record.class = class;
                self.store(record)
            }
            None => StoreOutcome::default(),
        }
    }

    /// Retained traces right now (keep + sampled).
    pub fn len(&self) -> usize {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.keep.len() + ring.sampled.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sampled traces evicted so far.
    pub fn dropped_sampled(&self) -> u64 {
        self.dropped_sampled.load(Ordering::Relaxed)
    }

    /// Always-keep traces evicted so far (0 ⇔ the retention guarantee
    /// held for this capacity).
    pub fn dropped_keep(&self) -> u64 {
        self.dropped_keep.load(Ordering::Relaxed)
    }

    /// Copy out every retained trace, ordered by id.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        let mut all: Vec<TraceRecord> =
            ring.keep.iter().chain(ring.sampled.iter()).cloned().collect();
        drop(ring);
        all.sort_by_key(|r| r.id);
        all
    }

    /// Dump the retained traces as JSONL, id order, one per line.
    pub fn dump_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(records.len() * 256);
        for r in &records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

/// A span parsed back out of `/trace.jsonl` (owned label — the reader
/// side of [`TraceEvent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSpan {
    /// Span label.
    pub label: String,
    /// Offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Parent span index, `None` for the root.
    pub parent: Option<u32>,
}

/// A trace parsed back out of `/trace.jsonl`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTrace {
    /// Trace id.
    pub id: u64,
    /// Use-case label.
    pub use_case: String,
    /// HTTP status.
    pub status: u16,
    /// Retention class.
    pub class: TraceClass,
    /// Root duration, nanoseconds.
    pub total_ns: u64,
    /// The span tree.
    pub spans: Vec<ParsedSpan>,
}

impl ParsedTrace {
    /// Parse one JSONL dump (the exact shape [`TraceRecord::to_json`]
    /// writes). Strict by design: an unrecognized shape is an error, not
    /// a silently skipped line.
    pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedTrace>, String> {
        text.lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| Self::parse_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
            .collect()
    }

    fn parse_line(line: &str) -> Result<ParsedTrace, String> {
        let mut p = Scan { s: line.as_bytes(), at: 0 };
        p.expect(b'{')?;
        let id = p.field_u64("id")?;
        p.expect(b',')?;
        let use_case = p.field_str("use_case")?;
        p.expect(b',')?;
        let status = u16::try_from(p.field_u64("status")?).map_err(|_| "status range")?;
        p.expect(b',')?;
        let class_label = p.field_str("class")?;
        let class =
            TraceClass::from_label(&class_label).ok_or_else(|| format!("class {class_label:?}"))?;
        p.expect(b',')?;
        let total_ns = p.field_u64("total_ns")?;
        p.expect(b',')?;
        p.key("spans")?;
        p.expect(b'[')?;
        let mut spans = Vec::new();
        if p.peek() == Some(b']') {
            p.expect(b']')?;
        } else {
            loop {
                p.expect(b'{')?;
                let label = p.field_str("label")?;
                p.expect(b',')?;
                let start_ns = p.field_u64("start_ns")?;
                p.expect(b',')?;
                let dur_ns = p.field_u64("dur_ns")?;
                p.expect(b',')?;
                let parent = p.field_i64("parent")?;
                p.expect(b'}')?;
                let parent = if parent < 0 {
                    None
                } else {
                    Some(u32::try_from(parent).map_err(|_| "parent range")?)
                };
                spans.push(ParsedSpan { label, start_ns, dur_ns, parent });
                match p.next_byte()? {
                    b',' => continue,
                    b']' => break,
                    other => return Err(format!("expected , or ] got {:?}", char::from(other))),
                }
            }
        }
        p.expect(b'}')?;
        if p.at != p.s.len() {
            return Err("trailing bytes".to_string());
        }
        Ok(ParsedTrace { id, use_case, status, class, total_ns, spans })
    }

    /// Structural check for the `trace_smoke` CI stage: exactly one root
    /// (index 0, labeled `request`, duration = `total_ns`), every parent
    /// reference resolves to an *earlier* span, and every span except
    /// `queue_wait` (which precedes the origin by definition) lies
    /// within the root window.
    pub fn tree_complete(&self) -> Result<(), String> {
        let Some(root) = self.spans.first() else {
            return Err("no spans".to_string());
        };
        if root.label != "request" || root.parent.is_some() {
            return Err(format!("span 0 is not the request root: {root:?}"));
        }
        if root.dur_ns != self.total_ns {
            return Err(format!("root dur {} != total_ns {}", root.dur_ns, self.total_ns));
        }
        for (i, sp) in self.spans.iter().enumerate().skip(1) {
            match sp.parent {
                None => return Err(format!("span {i} ({}) is a second root", sp.label)),
                Some(pidx) if usize::try_from(pidx).is_ok_and(|p| p < i) => {}
                Some(pidx) => return Err(format!("span {i} parent {pidx} not earlier")),
            }
            if sp.label != "queue_wait" && sp.start_ns.saturating_add(sp.dur_ns) > self.total_ns {
                return Err(format!(
                    "span {i} ({}) [{}, +{}] exceeds root window {}",
                    sp.label, sp.start_ns, sp.dur_ns, self.total_ns
                ));
            }
        }
        Ok(())
    }

    /// Nanoseconds spent in the span(s) labeled `label` (summed).
    pub fn span_ns(&self, label: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.label == label)
            .fold(0u64, |acc, s| acc.saturating_add(s.dur_ns))
    }

    /// Root time not attributed to any child span: read/dispatch
    /// overhead between stages.
    pub fn unattributed_ns(&self) -> u64 {
        let children: u64 = self
            .spans
            .iter()
            .skip(1)
            .filter(|s| s.label != "queue_wait")
            .fold(0u64, |acc, s| acc.saturating_add(s.dur_ns));
        self.total_ns.saturating_sub(children)
    }
}

/// Byte scanner for the canonical JSONL the writer emits (ASCII keys,
/// no escapes, no insignificant whitespace).
struct Scan<'a> {
    s: &'a [u8],
    at: usize,
}

impl Scan<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.at).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end")?;
        self.at += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next_byte()?;
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "at {}: expected {:?} got {:?}",
                self.at - 1,
                char::from(want),
                char::from(got)
            ))
        }
    }

    fn key(&mut self, name: &str) -> Result<(), String> {
        let quoted = format!("\"{name}\":");
        let end = self.at + quoted.len();
        if self.s.get(self.at..end) == Some(quoted.as_bytes()) {
            self.at = end;
            Ok(())
        } else {
            Err(format!("at {}: expected key {name:?}", self.at))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let start = self.at;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == start {
            return Err(format!("at {start}: expected number"));
        }
        std::str::from_utf8(&self.s[start..self.at])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("at {start}: bad number"))
    }

    fn field_u64(&mut self, name: &str) -> Result<u64, String> {
        self.key(name)?;
        self.parse_u64()
    }

    fn field_i64(&mut self, name: &str) -> Result<i64, String> {
        self.key(name)?;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.at += 1;
        }
        let raw = self.parse_u64()?;
        let v = i64::try_from(raw).map_err(|_| "i64 range")?;
        Ok(if negative { -v } else { v })
    }

    fn field_str(&mut self, name: &str) -> Result<String, String> {
        self.key(name)?;
        self.expect(b'"')?;
        let start = self.at;
        while self.peek().is_some_and(|b| b != b'"') {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.at])
            .map_err(|_| "non-utf8 string")?
            .to_string();
        self.expect(b'"')?;
        Ok(text)
    }
}

/// Build the standard span list for a request: root placeholder first
/// (duration filled by [`finish_spans`]), stage/queue/governor spans
/// appended as the request progresses.
pub fn new_spans() -> Vec<TraceEvent> {
    let mut v = Vec::with_capacity(8);
    v.push(TraceEvent { label: "request", start_ns: 0, dur_ns: 0, parent: None });
    v
}

/// Close the root span with the request's total service time.
pub fn finish_spans(spans: &mut [TraceEvent], total_ns: u64) {
    if let Some(root) = spans.first_mut() {
        root.dur_ns = total_ns;
    }
}

/// Convenience: the trace label for a pipeline stage.
pub fn stage_label(stage: Stage) -> &'static str {
    stage.label()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, class: TraceClass, total_ns: u64) -> TraceRecord {
        let mut spans = new_spans();
        spans.push(TraceEvent { label: "parse", start_ns: 10, dur_ns: 100, parent: Some(0) });
        finish_spans(&mut spans, total_ns);
        TraceRecord { id, use_case: "FR", status: 200, class, total_ns, spans }
    }

    #[test]
    fn roundtrip_json_parse_equals_writer() {
        let mut spans = new_spans();
        spans.push(TraceEvent { label: "queue_wait", start_ns: 0, dur_ns: 420, parent: Some(0) });
        spans.push(TraceEvent { label: "parse", start_ns: 55, dur_ns: 1200, parent: Some(0) });
        spans.push(TraceEvent { label: "write", start_ns: 1500, dur_ns: 300, parent: Some(0) });
        finish_spans(&mut spans, 2000);
        let rec = TraceRecord {
            id: 9,
            use_case: "CBR",
            status: 200,
            class: TraceClass::Sampled,
            total_ns: 2000,
            spans,
        };
        let parsed = ParsedTrace::parse_jsonl(&format!("{}\n", rec.to_json())).expect("parses");
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!((p.id, p.status, p.class), (9, 200, TraceClass::Sampled));
        assert_eq!(p.use_case, "CBR");
        assert_eq!(p.spans.len(), 4);
        assert_eq!(p.spans[0].label, "request");
        assert_eq!(p.spans[0].parent, None);
        assert_eq!(p.spans[2].label, "parse");
        assert_eq!(p.spans[2].parent, Some(0));
        p.tree_complete().expect("complete tree");
        assert_eq!(p.span_ns("write"), 300);
        assert_eq!(p.unattributed_ns(), 2000 - 1200 - 300);
    }

    #[test]
    fn malformed_lines_are_errors_not_skips() {
        assert!(ParsedTrace::parse_jsonl("{\"id\":1}").is_err());
        assert!(ParsedTrace::parse_jsonl("not json").is_err());
        let good = record(1, TraceClass::Slow, 99).to_json();
        assert!(ParsedTrace::parse_jsonl(&format!("{good}\ngarbage")).is_err());
    }

    #[test]
    fn tree_completeness_rejects_orphans_and_overflow() {
        let mut p = ParsedTrace {
            id: 1,
            use_case: "FR".to_string(),
            status: 200,
            class: TraceClass::Sampled,
            total_ns: 1000,
            spans: vec![
                ParsedSpan {
                    label: "request".to_string(),
                    start_ns: 0,
                    dur_ns: 1000,
                    parent: None,
                },
                ParsedSpan {
                    label: "parse".to_string(),
                    start_ns: 0,
                    dur_ns: 500,
                    parent: Some(0),
                },
            ],
        };
        p.tree_complete().expect("valid");
        p.spans[1].parent = Some(5);
        assert!(p.tree_complete().is_err(), "dangling parent");
        p.spans[1].parent = Some(0);
        p.spans[1].dur_ns = 2000;
        assert!(p.tree_complete().is_err(), "span exceeds root window");
        p.spans[1].dur_ns = 500;
        p.spans[0].dur_ns = 900;
        assert!(p.tree_complete().is_err(), "root dur must equal total_ns");
    }

    #[test]
    fn classification_priority_shed_error_slow_sampled() {
        let cfg = TraceConfig {
            sample_per_million: 0,
            slow_budget_ns: Some(1_000),
            ..TraceConfig::default()
        };
        let t = Tracer::new(cfg, 0);
        assert_eq!(t.classify(1, 503, true, 9_999), Some(TraceClass::Shed), "shed wins");
        assert_eq!(t.classify(1, 422, true, 10), Some(TraceClass::Error));
        assert_eq!(t.classify(1, 200, false, 1_001), Some(TraceClass::Slow));
        assert_eq!(t.classify(1, 200, false, 1_000), None, "at budget is not over budget");
    }

    #[test]
    fn slow_budget_defaults_to_fallback_when_unset() {
        let t = Tracer::new(TraceConfig { slow_budget_ns: None, ..TraceConfig::default() }, 777);
        assert_eq!(t.slow_budget_ns(), 777);
        let t = Tracer::new(TraceConfig { slow_budget_ns: Some(5), ..TraceConfig::default() }, 777);
        assert_eq!(t.slow_budget_ns(), 5);
    }

    #[test]
    fn ring_evicts_sampled_before_keep_and_counts_both() {
        let cfg = TraceConfig { capacity: 4, ..TraceConfig::default() };
        let t = Tracer::new(cfg, 1_000_000);
        // 2 sampled + 2 keep fills the ring.
        t.store(record(0, TraceClass::Sampled, 10));
        t.store(record(1, TraceClass::Slow, 10));
        t.store(record(2, TraceClass::Sampled, 10));
        t.store(record(3, TraceClass::Shed, 10));
        assert_eq!(t.len(), 4);
        // Two more keeps: both evictions must hit the sampled traces.
        let o = t.store(record(4, TraceClass::Error, 10));
        assert_eq!((o.evicted_sampled, o.evicted_keep), (1, 0));
        let o = t.store(record(5, TraceClass::Slow, 10));
        assert_eq!((o.evicted_sampled, o.evicted_keep), (1, 0));
        assert_eq!(t.dropped_sampled(), 2);
        assert_eq!(t.dropped_keep(), 0);
        let ids: Vec<u64> = t.snapshot().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 3, 4, 5], "every keep-class trace retained, id order");
        // Only with sampled exhausted does a keep eviction happen.
        let o = t.store(record(6, TraceClass::Shed, 10));
        assert_eq!((o.evicted_sampled, o.evicted_keep), (0, 1));
        assert_eq!(t.dropped_keep(), 1);
    }

    #[test]
    fn finish_discards_unsampled_without_touching_the_ring() {
        let cfg = TraceConfig {
            sample_per_million: 0,
            slow_budget_ns: Some(u64::MAX),
            ..TraceConfig::default()
        };
        let t = Tracer::new(cfg, 0);
        let o = t.finish(record(0, TraceClass::Sampled, 10), false);
        assert_eq!(o.kept, None);
        assert!(t.is_empty());
        // …but a 503 at the same settings is always kept.
        let mut rec = record(1, TraceClass::Sampled, 10);
        rec.status = 503;
        let o = t.finish(rec, false);
        assert_eq!(o.kept, Some(TraceClass::Shed));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sample_decision_is_deterministic_and_rate_bounded() {
        for id in 0..64u64 {
            assert_eq!(sample_decision(7, id, 10_000), sample_decision(7, id, 10_000));
            assert!(!sample_decision(7, id, 0));
            assert!(sample_decision(7, id, 1_000_000));
        }
        // ~1% rate over 100k ids lands within loose bounds.
        let hits = (0..100_000u64).filter(|&id| sample_decision(42, id, 10_000)).count();
        assert!((500..2_000).contains(&hits), "1% of 100k ≈ 1000, got {hits}");
        // Different seeds decorrelate.
        let a: Vec<bool> = (0..256).map(|id| sample_decision(1, id, 500_000)).collect();
        let b: Vec<bool> = (0..256).map(|id| sample_decision(2, id, 500_000)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn dump_jsonl_is_parseable_and_id_ordered() {
        let t = Tracer::new(TraceConfig::default(), 1_000_000);
        t.store(record(5, TraceClass::Sampled, 10));
        t.store(record(2, TraceClass::Slow, 10));
        t.store(record(9, TraceClass::Shed, 10));
        let parsed = ParsedTrace::parse_jsonl(&t.dump_jsonl()).expect("parses");
        let ids: Vec<u64> = parsed.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }
}
