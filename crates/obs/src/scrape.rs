//! A small parser for the Prometheus text exposition format — enough to
//! read back what [`crate::registry::Registry::render_prometheus`]
//! writes, so `obs-report` and the CI cross-check can consume a live
//! `/metrics` scrape without external dependencies.
//!
//! Handles `# HELP`/`# TYPE` comments (skipped), series lines with and
//! without label sets, escaped label values, and integer or float sample
//! values. Lines that do not parse are skipped rather than fatal: a
//! scraper must tolerate families it does not know.
//!
//! This file is on the `aon-audit` cast-enforced list.

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedSample {
    /// Metric name as written (`aon_requests_total`,
    /// `aon_stage_duration_ns_sum`, …).
    pub name: String,
    /// Label pairs in written order (unescaped values).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl ScrapedSample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse an exposition-format document into samples, skipping comments,
/// blank lines, and malformed lines.
pub fn parse_prometheus(text: &str) -> Vec<ScrapedSample> {
    text.lines().filter_map(parse_line).collect()
}

/// Sum the values of every sample named `name` that carries all of the
/// `required` label pairs (an empty filter sums the whole family).
pub fn sum_samples(samples: &[ScrapedSample], name: &str, required: &[(&str, &str)]) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .filter(|s| required.iter().all(|(k, v)| s.label(k) == Some(*v)))
        .map(|s| s.value)
        .sum()
}

fn parse_line(line: &str) -> Option<ScrapedSample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (name_and_labels, value_text) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}')?;
            if close < open {
                return None;
            }
            (line[..close + 1].to_string(), line[close + 1..].trim())
        }
        None => {
            let space = line.find(' ')?;
            (line[..space].to_string(), line[space + 1..].trim())
        }
    };
    // Value may be followed by an optional timestamp; take the first token.
    let value_token = value_text.split_whitespace().next()?;
    let value = parse_value(value_token)?;
    let (name, labels) = match name_and_labels.find('{') {
        Some(open) => {
            let name = name_and_labels[..open].to_string();
            let inner = &name_and_labels[open + 1..name_and_labels.len() - 1];
            (name, parse_labels(inner)?)
        }
        None => (name_and_labels, Vec::new()),
    };
    Some(ScrapedSample { name, labels, value })
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse().ok(),
    }
}

/// Parse `k="v",k2="v2"` (possibly empty), unescaping values.
fn parse_labels(inner: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next()?.1 != '"' {
            return None;
        }
        let mut value = String::new();
        let mut consumed = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                consumed = Some(i + c.len_utf8());
                break;
            } else {
                value.push(c);
            }
        }
        let end = consumed?;
        labels.push((key, value));
        let tail = after[end..].trim_start();
        rest = match tail.strip_prefix(',') {
            Some(t) => t.trim_start(),
            None if tail.is_empty() => "",
            None => return None,
        };
    }
    Some(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn parses_plain_and_labelled_lines() {
        let text = "# HELP aon_x help text\n# TYPE aon_x counter\naon_x 5\naon_y{use_case=\"FR\",stage=\"parse\"} 12.5\n";
        let samples = parse_prometheus(text);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0], ScrapedSample { name: "aon_x".into(), labels: vec![], value: 5.0 });
        assert_eq!(samples[1].name, "aon_y");
        assert_eq!(samples[1].label("use_case"), Some("FR"));
        assert_eq!(samples[1].label("stage"), Some("parse"));
        assert_eq!(samples[1].value, 12.5);
    }

    #[test]
    fn parses_inf_and_escaped_labels() {
        let samples = parse_prometheus("h_bucket{le=\"+Inf\"} 3\nm{k=\"a\\\"b\\\\c\"} 1\n");
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(samples[1].label("k"), Some("a\"b\\c"));
    }

    #[test]
    fn skips_garbage_lines() {
        let samples = parse_prometheus("not a metric line at all {\nname_only\n");
        assert!(samples.is_empty(), "{samples:?}");
    }

    #[test]
    fn sum_filters_by_labels() {
        let text = "t{u=\"FR\",o=\"ok\"} 3\nt{u=\"FR\",o=\"rej\"} 2\nt{u=\"SV\",o=\"ok\"} 7\n";
        let samples = parse_prometheus(text);
        assert_eq!(sum_samples(&samples, "t", &[]), 12.0);
        assert_eq!(sum_samples(&samples, "t", &[("u", "FR")]), 5.0);
        assert_eq!(sum_samples(&samples, "t", &[("u", "FR"), ("o", "ok")]), 3.0);
        assert_eq!(sum_samples(&samples, "missing", &[]), 0.0);
    }

    #[test]
    fn truncated_exposition_keeps_complete_lines() {
        // A scrape cut mid-line (connection dropped) must still yield
        // every complete line before the cut and never panic.
        let full = "a_total 1\nb_total{k=\"v\"} 2\nc_total 3\n";
        for cut in 0..full.len() {
            let samples = parse_prometheus(&full[..cut]);
            assert!(samples.len() <= 3, "cut at {cut} invented samples: {samples:?}");
            for s in &samples {
                assert!(["a_total", "b_total", "c_total"].contains(&s.name.as_str()));
            }
        }
        // Cut exactly after the second newline: both whole lines survive.
        let two = parse_prometheus(&full[..full.find("c_total").expect("present")]);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn bad_label_escapes_are_skipped_not_fatal() {
        // Trailing backslash: the escape never completes, so the closing
        // quote is consumed and the line cannot terminate — skipped.
        let samples = parse_prometheus("m{k=\"a\\\\\\\"} 1\nok_total 2\n");
        assert_eq!(samples.len(), 1, "{samples:?}");
        assert_eq!(samples[0].name, "ok_total");
        // Unterminated value quote and missing `=`: same treatment.
        assert!(parse_prometheus("m{k=\"open} 1\n").is_empty());
        assert!(parse_prometheus("m{kv} 1\n").is_empty());
        // Unknown escapes pass the character through (Prometheus allows
        // only \\, \", \n but a reader must not lose the line).
        let lenient = parse_prometheus("m{k=\"a\\tb\"} 1\n");
        assert_eq!(lenient[0].label("k"), Some("atb"));
    }

    #[test]
    fn nan_and_inf_values_parse() {
        let samples = parse_prometheus("a +Inf\nb -Inf\nc NaN\nd 1e3\ne not_a_number\n");
        assert_eq!(samples.len(), 4, "{samples:?}");
        assert_eq!(samples[0].value, f64::INFINITY);
        assert_eq!(samples[1].value, f64::NEG_INFINITY);
        assert!(samples[2].value.is_nan());
        assert_eq!(samples[3].value, 1000.0);
        // NaN samples must not poison family sums that exclude them.
        assert_eq!(sum_samples(&samples, "a", &[]), f64::INFINITY);
        assert!(sum_samples(&samples, "c", &[]).is_nan());
    }

    #[test]
    fn round_trips_registry_output() {
        let r = Registry::new();
        r.counter("aon_requests_total", "reqs", &[("use_case", "FR"), ("outcome", "ok")]).add(9);
        r.counter("aon_requests_total", "reqs", &[("use_case", "SV"), ("outcome", "ok")]).add(4);
        let h = r.histogram("aon_lat_ns", "lat", &[("use_case", "FR")]);
        h.record(100);
        h.record(900);
        let samples = parse_prometheus(&r.render_prometheus());
        assert_eq!(sum_samples(&samples, "aon_requests_total", &[]), 13.0);
        assert_eq!(sum_samples(&samples, "aon_lat_ns_count", &[("use_case", "FR")]), 2.0);
        assert_eq!(sum_samples(&samples, "aon_lat_ns_sum", &[]), 1000.0);
    }
}
