//! A small parser for the Prometheus text exposition format — enough to
//! read back what [`crate::registry::Registry::render_prometheus`]
//! writes, so `obs-report` and the CI cross-check can consume a live
//! `/metrics` scrape without external dependencies.
//!
//! Handles `# HELP`/`# TYPE` comments (skipped), series lines with and
//! without label sets, escaped label values, integer or float sample
//! values, and OpenMetrics exemplar suffixes on histogram bucket lines
//! (`... 17 # {trace_id="42"} 123456` — parsed into
//! [`ScrapedSample::exemplar`]; a malformed suffix degrades to no
//! exemplar, never to a lost sample). Lines that do not parse are
//! skipped rather than fatal: a scraper must tolerate families it does
//! not know.
//!
//! This file is on the `aon-audit` cast-enforced list.

/// One parsed exemplar suffix (`# {trace_id="..."} value`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedExemplar {
    /// Exemplar label pairs in written order (unescaped values).
    pub labels: Vec<(String, String)>,
    /// The exemplar's observed value.
    pub value: f64,
}

impl ScrapedExemplar {
    /// The value of the exemplar label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedSample {
    /// Metric name as written (`aon_requests_total`,
    /// `aon_stage_duration_ns_sum`, …).
    pub name: String,
    /// Label pairs in written order (unescaped values).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// The OpenMetrics exemplar attached to the line, if any.
    pub exemplar: Option<ScrapedExemplar>,
}

impl ScrapedSample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse an exposition-format document into samples, skipping comments,
/// blank lines, and malformed lines.
pub fn parse_prometheus(text: &str) -> Vec<ScrapedSample> {
    text.lines().filter_map(parse_line).collect()
}

/// Sum the values of every sample named `name` that carries all of the
/// `required` label pairs (an empty filter sums the whole family).
pub fn sum_samples(samples: &[ScrapedSample], name: &str, required: &[(&str, &str)]) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .filter(|s| required.iter().all(|(k, v)| s.label(k) == Some(*v)))
        .map(|s| s.value)
        .sum()
}

fn parse_line(line: &str) -> Option<ScrapedSample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    // The label-set close brace must be found with quote awareness: an
    // exemplar suffix contributes a *second* `{...}` later in the line
    // (so `rfind` would be wrong), and a quoted label value may contain
    // braces of its own. An open brace only denotes a label set when it
    // precedes the first space — on an unlabelled line the first `{` is
    // the exemplar's.
    let open_brace = line.find('{').filter(|&o| line.find(' ').is_none_or(|s| o < s));
    let (name, labels, after) = match open_brace {
        Some(open) => {
            let close = find_close_brace(line, open)?;
            (line[..open].to_string(), parse_labels(&line[open + 1..close])?, &line[close + 1..])
        }
        None => {
            let space = line.find(' ')?;
            (line[..space].to_string(), Vec::new(), &line[space + 1..])
        }
    };
    // `after` is `value [timestamp] [# {labels} value [timestamp]]`.
    // Neither values nor timestamps can contain `#`, so the first `#`
    // (if any) starts the exemplar suffix.
    let (value_text, exemplar_text) = match after.find('#') {
        Some(hash) => (&after[..hash], Some(&after[hash + 1..])),
        None => (after, None),
    };
    let value_token = value_text.split_whitespace().next()?;
    let value = parse_value(value_token)?;
    // A malformed exemplar suffix degrades to "no exemplar": the sample
    // itself parsed, and a scraper must not lose it over decoration.
    let exemplar = exemplar_text.and_then(parse_exemplar);
    Some(ScrapedSample { name, labels, value, exemplar })
}

/// The index of the `}` closing the brace at `open`, skipping braces
/// inside quoted label values (with escape handling).
fn find_close_brace(line: &str, open: usize) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line[open + 1..].char_indices() {
        if escaped {
            escaped = false;
        } else if in_quotes {
            match c {
                '\\' => escaped = true,
                '"' => in_quotes = false,
                _ => {}
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == '}' {
            return Some(open + 1 + i);
        }
    }
    None
}

/// Parse the exemplar body after its `#`: `{k="v",...} value [ts]`.
fn parse_exemplar(text: &str) -> Option<ScrapedExemplar> {
    let text = text.trim_start();
    if !text.starts_with('{') {
        return None;
    }
    let close = find_close_brace(text, 0)?;
    let labels = parse_labels(&text[1..close])?;
    let value_token = text[close + 1..].split_whitespace().next()?;
    let value = parse_value(value_token)?;
    Some(ScrapedExemplar { labels, value })
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse().ok(),
    }
}

/// Parse `k="v",k2="v2"` (possibly empty), unescaping values.
fn parse_labels(inner: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next()?.1 != '"' {
            return None;
        }
        let mut value = String::new();
        let mut consumed = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                consumed = Some(i + c.len_utf8());
                break;
            } else {
                value.push(c);
            }
        }
        let end = consumed?;
        labels.push((key, value));
        let tail = after[end..].trim_start();
        rest = match tail.strip_prefix(',') {
            Some(t) => t.trim_start(),
            None if tail.is_empty() => "",
            None => return None,
        };
    }
    Some(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn parses_plain_and_labelled_lines() {
        let text = "# HELP aon_x help text\n# TYPE aon_x counter\naon_x 5\naon_y{use_case=\"FR\",stage=\"parse\"} 12.5\n";
        let samples = parse_prometheus(text);
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[0],
            ScrapedSample { name: "aon_x".into(), labels: vec![], value: 5.0, exemplar: None }
        );
        assert_eq!(samples[1].name, "aon_y");
        assert_eq!(samples[1].label("use_case"), Some("FR"));
        assert_eq!(samples[1].label("stage"), Some("parse"));
        assert_eq!(samples[1].value, 12.5);
    }

    #[test]
    fn parses_inf_and_escaped_labels() {
        let samples = parse_prometheus("h_bucket{le=\"+Inf\"} 3\nm{k=\"a\\\"b\\\\c\"} 1\n");
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(samples[1].label("k"), Some("a\"b\\c"));
    }

    #[test]
    fn skips_garbage_lines() {
        let samples = parse_prometheus("not a metric line at all {\nname_only\n");
        assert!(samples.is_empty(), "{samples:?}");
    }

    #[test]
    fn sum_filters_by_labels() {
        let text = "t{u=\"FR\",o=\"ok\"} 3\nt{u=\"FR\",o=\"rej\"} 2\nt{u=\"SV\",o=\"ok\"} 7\n";
        let samples = parse_prometheus(text);
        assert_eq!(sum_samples(&samples, "t", &[]), 12.0);
        assert_eq!(sum_samples(&samples, "t", &[("u", "FR")]), 5.0);
        assert_eq!(sum_samples(&samples, "t", &[("u", "FR"), ("o", "ok")]), 3.0);
        assert_eq!(sum_samples(&samples, "missing", &[]), 0.0);
    }

    #[test]
    fn truncated_exposition_keeps_complete_lines() {
        // A scrape cut mid-line (connection dropped) must still yield
        // every complete line before the cut and never panic.
        let full = "a_total 1\nb_total{k=\"v\"} 2\nc_total 3\n";
        for cut in 0..full.len() {
            let samples = parse_prometheus(&full[..cut]);
            assert!(samples.len() <= 3, "cut at {cut} invented samples: {samples:?}");
            for s in &samples {
                assert!(["a_total", "b_total", "c_total"].contains(&s.name.as_str()));
            }
        }
        // Cut exactly after the second newline: both whole lines survive.
        let two = parse_prometheus(&full[..full.find("c_total").expect("present")]);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn bad_label_escapes_are_skipped_not_fatal() {
        // Trailing backslash: the escape never completes, so the closing
        // quote is consumed and the line cannot terminate — skipped.
        let samples = parse_prometheus("m{k=\"a\\\\\\\"} 1\nok_total 2\n");
        assert_eq!(samples.len(), 1, "{samples:?}");
        assert_eq!(samples[0].name, "ok_total");
        // Unterminated value quote and missing `=`: same treatment.
        assert!(parse_prometheus("m{k=\"open} 1\n").is_empty());
        assert!(parse_prometheus("m{kv} 1\n").is_empty());
        // Unknown escapes pass the character through (Prometheus allows
        // only \\, \", \n but a reader must not lose the line).
        let lenient = parse_prometheus("m{k=\"a\\tb\"} 1\n");
        assert_eq!(lenient[0].label("k"), Some("atb"));
    }

    #[test]
    fn nan_and_inf_values_parse() {
        let samples = parse_prometheus("a +Inf\nb -Inf\nc NaN\nd 1e3\ne not_a_number\n");
        assert_eq!(samples.len(), 4, "{samples:?}");
        assert_eq!(samples[0].value, f64::INFINITY);
        assert_eq!(samples[1].value, f64::NEG_INFINITY);
        assert!(samples[2].value.is_nan());
        assert_eq!(samples[3].value, 1000.0);
        // NaN samples must not poison family sums that exclude them.
        assert_eq!(sum_samples(&samples, "a", &[]), f64::INFINITY);
        assert!(sum_samples(&samples, "c", &[]).is_nan());
    }

    #[test]
    fn round_trips_registry_output() {
        let r = Registry::new();
        r.counter("aon_requests_total", "reqs", &[("use_case", "FR"), ("outcome", "ok")]).add(9);
        r.counter("aon_requests_total", "reqs", &[("use_case", "SV"), ("outcome", "ok")]).add(4);
        let h = r.histogram("aon_lat_ns", "lat", &[("use_case", "FR")]);
        h.record(100);
        h.record(900);
        let samples = parse_prometheus(&r.render_prometheus());
        assert_eq!(sum_samples(&samples, "aon_requests_total", &[]), 13.0);
        assert_eq!(sum_samples(&samples, "aon_lat_ns_count", &[("use_case", "FR")]), 2.0);
        assert_eq!(sum_samples(&samples, "aon_lat_ns_sum", &[]), 1000.0);
    }

    #[test]
    fn parses_exemplar_suffixes() {
        let text = "h_bucket{le=\"127\"} 1 # {trace_id=\"42\"} 100\nh_bucket{le=\"+Inf\"} 2 # {trace_id=\"7\",span=\"parse\"} 9.5\n";
        let samples = parse_prometheus(text);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].label("le"), Some("127"));
        assert_eq!(samples[0].value, 1.0);
        let ex = samples[0].exemplar.as_ref().expect("exemplar parsed");
        assert_eq!(ex.label("trace_id"), Some("42"));
        assert_eq!(ex.value, 100.0);
        let ex2 = samples[1].exemplar.as_ref().expect("exemplar parsed");
        assert_eq!(ex2.label("trace_id"), Some("7"));
        assert_eq!(ex2.label("span"), Some("parse"));
        assert_eq!(ex2.value, 9.5);
    }

    #[test]
    fn round_trips_rendered_exemplars() {
        let r = Registry::new();
        let h = r.histogram_with_exemplars("aon_lat_ns", "lat", &[("use_case", "FR")]);
        h.record(100);
        h.attach_exemplar(100, 42);
        let samples = parse_prometheus(&r.render_prometheus());
        let with = samples
            .iter()
            .find(|s| s.name == "aon_lat_ns_bucket" && s.exemplar.is_some())
            .expect("one bucket carries the exemplar");
        let ex = with.exemplar.as_ref().expect("present");
        assert_eq!(ex.label("trace_id"), Some("42"));
        assert_eq!(ex.value, 100.0);
        // The sample's own value and labels are unperturbed by the suffix.
        assert_eq!(with.value, 1.0);
        assert_eq!(with.label("use_case"), Some("FR"));
        assert_eq!(sum_samples(&samples, "aon_lat_ns_count", &[]), 1.0);
    }

    #[test]
    fn truncated_exemplar_suffix_keeps_the_sample() {
        // A scrape cut anywhere inside the exemplar decoration must
        // still yield the sample itself (its value already parsed) —
        // never a lost sample, never a panic. An exemplar survives only
        // if the cut left a self-consistent prefix (e.g. a truncated
        // value token), mirroring how truncated plain lines behave.
        let full = "h_bucket{le=\"127\"} 1 # {trace_id=\"42\"} 100\n";
        let suffix_start = full.find('#').expect("present");
        for cut in suffix_start..full.len() - 1 {
            let samples = parse_prometheus(&full[..cut]);
            assert_eq!(samples.len(), 1, "cut at {cut}: {samples:?}");
            assert_eq!(samples[0].value, 1.0);
            if let Some(ex) = &samples[0].exemplar {
                assert_eq!(ex.label("trace_id"), Some("42"), "cut at {cut}");
                assert!(ex.value == 1.0 || ex.value == 10.0 || ex.value == 100.0, "cut at {cut}");
            }
        }
        // A cut strictly inside the exemplar's label set drops only the
        // exemplar, keeping the sample.
        let mid_labels = &full[..suffix_start + 10];
        let samples = parse_prometheus(mid_labels);
        assert_eq!(samples.len(), 1);
        assert!(samples[0].exemplar.is_none());
    }

    #[test]
    fn bad_exemplar_escapes_degrade_to_no_exemplar() {
        // Trailing-backslash escape inside the exemplar label value: the
        // exemplar body never terminates, but the sample survives.
        let samples = parse_prometheus("h_bucket{le=\"1\"} 3 # {trace_id=\"a\\\\\\\"} 5\n");
        assert_eq!(samples.len(), 1, "{samples:?}");
        assert_eq!(samples[0].value, 3.0);
        assert!(samples[0].exemplar.is_none());
        // Missing value token, missing braces, empty suffix: same.
        for bad in ["h 1 # {trace_id=\"9\"}\n", "h 1 # trace_id=9 5\n", "h 1 #\n"] {
            let got = parse_prometheus(bad);
            assert_eq!(got.len(), 1, "{bad:?} lost its sample");
            assert!(got[0].exemplar.is_none(), "{bad:?} invented an exemplar");
        }
    }
}
