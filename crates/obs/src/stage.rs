//! Span-based stage timing for the content-processing pipeline.
//!
//! The paper decomposes AON service time by *phase* — TCP termination,
//! XML parse, XPath evaluation, schema validation, and the §6 extensions
//! — to explain where each use case spends its cycles. This module is the
//! live-path equivalent: the engine wraps each pipeline phase in a
//! [`StageRecorder::time`] span, and the serving layer aggregates the
//! recorded wall time into per-(use case × stage) histograms.
//!
//! [`NoopStages`] makes the spans free when observability is off: its
//! `time` is a direct call with **no clock reads**, so the monomorphized
//! pipeline is byte-for-byte the untimed one.

use std::time::Instant;

/// The pipeline phases a request can pass through, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// UTF-8 validation + XML parse into the arena DOM.
    Parse,
    /// XPath evaluation over the parsed document (CBR).
    XPath,
    /// SOAP payload location + schema validation (SV).
    Validate,
    /// Signature scan over the raw message (DPI).
    Dpi,
    /// HMAC-SHA1 authentication (CRYPTO).
    Crypto,
    /// Response serialization + socket write (serving layer).
    Write,
}

/// Number of stages (array dimension for per-stage tables).
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] =
        [Stage::Parse, Stage::XPath, Stage::Validate, Stage::Dpi, Stage::Crypto, Stage::Write];

    /// Stable label (Prometheus label value, JSON key).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::XPath => "xpath",
            Stage::Validate => "validate",
            Stage::Dpi => "dpi",
            Stage::Crypto => "crypto",
            Stage::Write => "write",
        }
    }

    /// Dense index in `0..STAGE_COUNT` (for array-backed tables).
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::XPath => 1,
            Stage::Validate => 2,
            Stage::Dpi => 3,
            Stage::Crypto => 4,
            Stage::Write => 5,
        }
    }
}

/// Something that can time a pipeline phase. The engine is generic over
/// this, so the no-op instantiation compiles to the bare pipeline.
pub trait StageRecorder {
    /// Run `f` as the body of `stage`, recording however this recorder
    /// records.
    fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T;
}

/// The free recorder: no clock reads, no stores; `time` is a direct call.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopStages;

impl StageRecorder for NoopStages {
    fn time<T>(&mut self, _stage: Stage, f: impl FnOnce() -> T) -> T {
        f()
    }
}

/// Wall-clock recorder: accumulates nanoseconds per stage across the
/// request (a stage entered twice accumulates both spans).
#[derive(Debug, Default, Clone, Copy)]
pub struct WallStages {
    /// Accumulated nanoseconds per [`Stage::index`].
    pub ns: [u64; STAGE_COUNT],
}

impl WallStages {
    /// A zeroed recorder.
    pub fn new() -> WallStages {
        WallStages::default()
    }

    /// Nanoseconds accumulated for `stage`.
    pub fn get(&self, stage: Stage) -> u64 {
        self.ns[stage.index()]
    }

    /// Add `ns` to `stage` directly (for spans timed outside `time`,
    /// e.g. around a socket write that needs `&mut` state the closure
    /// cannot capture).
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.ns[stage.index()] = self.ns[stage.index()].saturating_add(ns);
    }

    /// Total nanoseconds across all stages.
    pub fn total(&self) -> u64 {
        self.ns.iter().fold(0u64, |acc, &v| acc.saturating_add(v))
    }
}

impl StageRecorder for WallStages {
    fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.add(stage, ns);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_and_indices_are_dense_and_unique() {
        let mut seen = [false; STAGE_COUNT];
        for s in Stage::ALL {
            assert!(!seen[s.index()], "index collision at {:?}", s);
            seen[s.index()] = true;
            assert!(!s.label().is_empty());
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn wall_recorder_accumulates_spans() {
        let mut w = WallStages::new();
        let v = w.time(Stage::Parse, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(
            w.get(Stage::Parse) >= 1_000_000,
            "span must be >= 1ms, got {}",
            w.get(Stage::Parse)
        );
        assert_eq!(w.get(Stage::XPath), 0);
        let before = w.get(Stage::Parse);
        w.time(Stage::Parse, || {});
        assert!(w.get(Stage::Parse) >= before, "re-entered stage accumulates");
        assert_eq!(w.total(), w.ns.iter().sum::<u64>());
    }

    #[test]
    fn noop_recorder_passes_values_through() {
        let mut n = NoopStages;
        assert_eq!(n.time(Stage::Crypto, || "ok"), "ok");
    }
}
