//! Property tests for the observability core: histogram bucketing,
//! snapshot merge algebra, percentile monotonicity, tail-sampler
//! decision determinism, and a multi-thread registry stress test
//! (atomic counters lose no increments).

use aon_obs::metric::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
use aon_obs::registry::Registry;
use aon_obs::reqtrace::sample_decision;
use aon_trace::num::exact_f64;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #[test]
    fn recorded_value_lands_within_its_bucket_bounds(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi, "{} outside bucket {} = [{}, {}]", v, i, lo, hi);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, u64::try_from(values.len()).unwrap());
        let mut expected_sum = 0u64;
        for &v in &values {
            expected_sum = expected_sum.wrapping_add(v);
        }
        prop_assert_eq!(snap.sum, expected_sum, "sum cell is a wrapping atomic add");
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn merge_is_commutative_and_counts_add(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba, "merge must be commutative");
        prop_assert_eq!(ab.count, u64::try_from(a.len() + b.len()).unwrap());
        // Merging an empty snapshot is the identity.
        let mut with_empty = sa;
        with_empty.merge(&HistogramSnapshot::default());
        prop_assert_eq!(with_empty, sa);
    }

    #[test]
    fn percentile_is_monotonic_in_rank(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
        pcts in prop::collection::vec(0u8..=100, 2..20),
    ) {
        let h = Histogram::new();
        for &v in &values { h.record(v); }
        let snap = h.snapshot();
        let mut sorted_pcts = pcts;
        sorted_pcts.sort_unstable();
        let mut last = 0u64;
        for &p in &sorted_pcts {
            let q = snap.percentile(p);
            prop_assert!(q >= last, "p{} = {} < previous {}", p, q, last);
            last = q;
        }
        // The top percentile's bucket bound covers the true maximum.
        let max = values.iter().copied().max().unwrap_or(0);
        prop_assert!(snap.percentile(100) >= max);
    }

    #[test]
    fn percentile_is_the_true_quantiles_bucket_bound(
        values in prop::collection::vec(0u64..1_000_000_000, 1..200),
        pct in 1u8..=100,
    ) {
        let h = Histogram::new();
        for &v in &values { h.record(v); }
        let snap = h.snapshot();
        // Nearest-rank on the exact data: because bucketing is monotonic
        // in the value, the histogram's estimate must be exactly the
        // upper bound of the bucket holding the true quantile.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let total = u64::try_from(sorted.len()).unwrap();
        let rank = (total * u64::from(pct)).div_ceil(100).max(1);
        let true_q = sorted[usize::try_from(rank - 1).unwrap()];
        let est = snap.percentile(pct);
        prop_assert_eq!(est, bucket_bounds(bucket_index(true_q)).1,
            "estimate for p{} must be the bucket bound of true quantile {}", pct, true_q);
    }

    #[test]
    fn sample_decision_is_deterministic_and_monotone_in_rate(
        seed in any::<u64>(),
        id in any::<u64>(),
        ppm in 0u32..=1_000_000,
    ) {
        // Stateless and pure: the decision for (seed, id, ppm) is a
        // function of its inputs alone — this is what makes a run
        // replayable under the same AON_TRACE_SEED.
        let d = sample_decision(seed, id, ppm);
        prop_assert_eq!(d, sample_decision(seed, id, ppm));
        // Boundary rates are exact, not probabilistic.
        prop_assert!(!sample_decision(seed, id, 0), "0 ppm keeps nothing");
        prop_assert!(sample_decision(seed, id, 1_000_000), "1M ppm keeps all");
        // Raising the rate can only turn discards into keeps: a request
        // sampled at rate p stays sampled at every rate above p.
        if d {
            prop_assert!(sample_decision(seed, id, 1_000_000.min(ppm.saturating_add(1))));
        } else if ppm > 0 {
            prop_assert!(!sample_decision(seed, id, ppm - 1));
        }
    }

    #[test]
    fn sample_decision_rate_is_bounded_over_sequential_ids(
        seed in any::<u64>(),
        ppm in prop::sample::select(vec![1_000u32, 10_000, 100_000, 500_000]),
    ) {
        // Sequential ids are exactly what the tracer's id generator
        // hands out; the kept fraction over a window must track the
        // configured rate (loose 3x window — the hash is uniform, not
        // perfect, and this must never flake).
        const N: u64 = 4_000;
        let kept = (0..N).filter(|&id| sample_decision(seed, id, ppm)).count();
        let expected = exact_f64(N) * f64::from(ppm) / 1e6;
        let kept = exact_f64(u64::try_from(kept).unwrap());
        prop_assert!(kept < expected * 3.0 + 30.0, "kept {} vs expected {}", kept, expected);
        prop_assert!(kept > expected / 3.0 - 30.0, "kept {} vs expected {}", kept, expected);
    }

    #[test]
    fn bucket_index_is_monotonic_and_total(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i, "bucket_index must be monotonic");
        }
    }
}

/// N threads hammer the same counter family and histogram through the
/// registry; every increment must survive (relaxed atomics are still
/// atomic read-modify-writes — no lost updates).
#[test]
fn registry_stress_loses_no_increments() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Half the threads hammer a shared label set (idempotent
                // registration must hand back the same instrument), half
                // use their own.
                let label = if t % 2 == 0 { "shared" } else { "solo" };
                let c = registry.counter("stress_total", "stress counter", &[("kind", label)]);
                let h = registry.histogram("stress_ns", "stress histogram", &[("kind", label)]);
                let g = registry.gauge("stress_hwm", "stress gauge", &[]);
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i);
                    g.record_max(i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread");
    }

    let samples = aon_obs::scrape::parse_prometheus(&registry.render_prometheus());
    let total = aon_obs::scrape::sum_samples(&samples, "stress_total", &[]);
    assert_eq!(total, exact_f64(THREADS * PER_THREAD), "lost counter increments");
    let hist_count = aon_obs::scrape::sum_samples(&samples, "stress_ns_count", &[]);
    assert_eq!(hist_count, exact_f64(THREADS * PER_THREAD), "lost histogram records");
    let hwm = aon_obs::scrape::sum_samples(&samples, "stress_hwm", &[]);
    assert_eq!(hwm, exact_f64(PER_THREAD - 1), "gauge high-water mark wrong");
}
