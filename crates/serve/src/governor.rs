//! SLO-aware admission control: the capacity governor.
//!
//! The paper's per-use-case service costs (FR ≪ CBR < SV, §4) are what
//! make class-based shedding meaningful: when the server is past
//! saturation, refusing one SV message buys roughly the headroom of
//! several CBR messages or many FR messages. The governor turns that
//! observation into a feedback loop over the signals the observability
//! layer already maintains:
//!
//! * the **windowed p99** of `aon_request_duration_ns` (end-to-end
//!   service time), computed as the delta between consecutive merged
//!   histogram snapshots — not the all-time p99, which would never
//!   recover after one bad burst;
//! * the **windowed accept-queue depth peak**, recorded by the listener
//!   into [`Governor::note_queue_depth`] and swapped out each sample.
//!
//! When either signal breaches its budget the governor escalates one
//! [`ShedLevel`]; each level sheds the most expensive remaining use-case
//! cost class (SV first, then CBR, then DPI/CRYPTO — FR is never shed).
//! Shed requests get `503 Service Unavailable` + `Retry-After`, which is
//! graceful degradation: the client learns to back off, instead of a
//! dropped socket or a response that arrives after it stopped caring.
//! Recovery is hysteretic: the governor steps *down* one level only
//! after [`GovernorConfig::recover_after`] consecutive healthy samples,
//! so a server oscillating around its capacity does not flap between
//! admitting and shedding every window.
//!
//! The decision core ([`GovernorCore`]) is a pure state machine —
//! sampled signals in, level transitions out — so the escalation and
//! hysteresis rules are unit-testable without threads or clocks. The
//! wrapper ([`Governor`]) holds the lock-free cells the data path reads:
//! one relaxed load per POST decides admission.
//!
//! This file is on the `aon-audit` cast-enforced list.

use aon_server::usecase::UseCase;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Governor deployment parameters.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Master switch; off means every request is admitted and no sampler
    /// thread is spawned.
    pub enabled: bool,
    /// Budget for the windowed p99 of end-to-end service time. Breaching
    /// it escalates shedding one level.
    pub p99_budget: Duration,
    /// Budget for the windowed accept-queue depth peak. Breaching it
    /// escalates shedding one level.
    pub queue_depth_budget: u64,
    /// How often the sampler thread re-evaluates the signals.
    pub sample_interval: Duration,
    /// Consecutive healthy samples required before stepping shedding
    /// *down* one level (hysteresis).
    pub recover_after: u32,
    /// Minimum completed requests in a window for its p99 to count as a
    /// signal; quieter windows are treated as healthy (the queue signal
    /// still applies).
    pub min_window_samples: u64,
    /// Degraded bypass mode: pin the level to [`ShedLevel::FrOnly`]
    /// regardless of the signals (operator override for incidents).
    pub fr_only: bool,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u64,
}

impl Default for GovernorConfig {
    fn default() -> GovernorConfig {
        GovernorConfig {
            enabled: true,
            // Generous defaults: loopback p99 is hundreds of microseconds,
            // so an unloaded server never breaches; a saturated one does.
            p99_budget: Duration::from_millis(250),
            queue_depth_budget: 96,
            sample_interval: Duration::from_millis(50),
            recover_after: 4,
            min_window_samples: 8,
            fr_only: false,
            retry_after_secs: 1,
        }
    }
}

/// How much load is currently being shed, in use-case cost-class order.
/// Each level sheds everything the previous one does plus the next most
/// expensive class; FR (network-bound, the paper's cheapest class) is
/// never shed — that is the degraded "front door stays up" guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// All classes admitted.
    None,
    /// SV (schema validation — the costliest class) shed.
    Sv,
    /// SV and CBR shed.
    SvCbr,
    /// Everything but FR shed (DPI/CRYPTO join the shed set): the
    /// FR-only bypass mode.
    FrOnly,
}

impl ShedLevel {
    /// All levels, escalation order.
    pub const ALL: [ShedLevel; 4] =
        [ShedLevel::None, ShedLevel::Sv, ShedLevel::SvCbr, ShedLevel::FrOnly];

    /// Stable numeric encoding (exported as the `aon_governor_shed_level`
    /// gauge; also the atomic cell encoding).
    pub fn as_u64(self) -> u64 {
        match self {
            ShedLevel::None => 0,
            ShedLevel::Sv => 1,
            ShedLevel::SvCbr => 2,
            ShedLevel::FrOnly => 3,
        }
    }

    /// Inverse of [`ShedLevel::as_u64`]; out-of-range values clamp to
    /// [`ShedLevel::FrOnly`] (fail toward shedding, never toward
    /// admitting).
    pub fn from_u64(v: u64) -> ShedLevel {
        match v {
            0 => ShedLevel::None,
            1 => ShedLevel::Sv,
            2 => ShedLevel::SvCbr,
            _ => ShedLevel::FrOnly,
        }
    }

    /// One step more shedding (saturates at [`ShedLevel::FrOnly`]).
    pub fn escalate(self) -> ShedLevel {
        ShedLevel::from_u64(self.as_u64().saturating_add(1))
    }

    /// One step less shedding (saturates at [`ShedLevel::None`]).
    pub fn relax(self) -> ShedLevel {
        ShedLevel::from_u64(self.as_u64().saturating_sub(1))
    }

    /// Does this level shed `uc`? The shed set grows by cost class:
    /// SV first, then CBR, then DPI/CRYPTO; FR is never shed.
    pub fn sheds(self, uc: UseCase) -> bool {
        match self {
            ShedLevel::None => false,
            ShedLevel::Sv => matches!(uc, UseCase::Sv),
            ShedLevel::SvCbr => matches!(uc, UseCase::Sv | UseCase::Cbr),
            ShedLevel::FrOnly => !matches!(uc, UseCase::Fr),
        }
    }

    /// Label for logs and the metrics help text.
    pub fn label(self) -> &'static str {
        match self {
            ShedLevel::None => "none",
            ShedLevel::Sv => "sv",
            ShedLevel::SvCbr => "sv+cbr",
            ShedLevel::FrOnly => "fr-only",
        }
    }
}

/// One sampled window's worth of signals, already compared to budgets by
/// the caller (the core does not know the budgets — only whether the
/// window breached, so the state machine is trivially testable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowVerdict {
    /// The windowed p99 exceeded its budget (with enough samples).
    pub p99_breach: bool,
    /// The windowed queue-depth peak exceeded its budget.
    pub queue_breach: bool,
}

impl WindowVerdict {
    /// Any signal breached.
    pub fn breached(&self) -> bool {
        self.p99_breach || self.queue_breach
    }
}

/// A level transition the core decided on: `(from, to)`.
pub type Transition = (ShedLevel, ShedLevel);

/// The pure governor state machine: breach → escalate immediately;
/// recover → relax one level only after `recover_after` consecutive
/// healthy windows. No clocks, no atomics — just the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GovernorCore {
    level: ShedLevel,
    healthy_streak: u32,
}

impl GovernorCore {
    /// Start at `level` (normally [`ShedLevel::None`]).
    pub fn new(level: ShedLevel) -> GovernorCore {
        GovernorCore { level, healthy_streak: 0 }
    }

    /// Current level.
    pub fn level(&self) -> ShedLevel {
        self.level
    }

    /// Feed one window's verdict; returns the transition, if any.
    ///
    /// A breach escalates immediately (overload costs goodput *now*) and
    /// zeroes the healthy streak. A healthy window extends the streak;
    /// at `recover_after` the level relaxes one step and the streak
    /// restarts — so full recovery from `FrOnly` takes
    /// `3 × recover_after` healthy windows, deliberately slower than the
    /// three windows escalation took.
    pub fn observe(&mut self, verdict: WindowVerdict, recover_after: u32) -> Option<Transition> {
        if verdict.breached() {
            self.healthy_streak = 0;
            let from = self.level;
            let to = from.escalate();
            if to != from {
                self.level = to;
                return Some((from, to));
            }
            return None;
        }
        self.healthy_streak = self.healthy_streak.saturating_add(1);
        if self.healthy_streak >= recover_after.max(1) {
            self.healthy_streak = 0;
            let from = self.level;
            let to = from.relax();
            if to != from {
                self.level = to;
                return Some((from, to));
            }
        }
        None
    }
}

/// The shared half of the governor: the lock-free cells the listener and
/// the request path touch. The sampler thread (owned by the server) runs
/// the [`GovernorCore`] and publishes its level here.
#[derive(Debug)]
pub struct Governor {
    /// Deployment parameters (immutable after start).
    pub cfg: GovernorConfig,
    /// Published [`ShedLevel`] encoding; one relaxed load per POST.
    // audit:role(gauge): last-write-wins level published by the sampler;
    // Relaxed — admission may lag a transition by one in-flight request
    level: AtomicU64,
    /// Accept-queue depth peak since the last sample (listener fetch_max,
    /// sampler swap-to-zero).
    // audit:role(hwm): per-window peak; fetch_max races resolve to the
    // true max, the sampler's swap starts the next window; Relaxed
    window_queue_peak: AtomicU64,
}

impl Governor {
    /// A governor publishing `cfg`'s initial level (pinned to
    /// [`ShedLevel::FrOnly`] in bypass mode, [`ShedLevel::None`]
    /// otherwise).
    pub fn new(cfg: GovernorConfig) -> Governor {
        let initial = if cfg.fr_only { ShedLevel::FrOnly } else { ShedLevel::None };
        Governor {
            cfg,
            level: AtomicU64::new(initial.as_u64()),
            window_queue_peak: AtomicU64::new(0),
        }
    }

    /// The currently published level.
    pub fn level(&self) -> ShedLevel {
        ShedLevel::from_u64(self.level.load(Ordering::Relaxed))
    }

    /// Publish a new level (sampler thread only).
    pub fn publish(&self, level: ShedLevel) {
        self.level.store(level.as_u64(), Ordering::Relaxed);
    }

    /// Should this request be refused with 503 right now? Disabled
    /// governors admit everything.
    pub fn should_shed(&self, uc: UseCase) -> bool {
        self.cfg.enabled && self.level().sheds(uc)
    }

    /// Record an observed accept-queue depth into the current window
    /// (listener thread; also called on the shed paths, where the depth
    /// is the queue capacity — see the server's push accounting).
    pub fn note_queue_depth(&self, depth: u64) {
        self.window_queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Take and reset the window's queue-depth peak (sampler thread).
    pub fn take_window_queue_peak(&self) -> u64 {
        self.window_queue_peak.swap(0, Ordering::Relaxed)
    }

    /// Compare one window's signals against the budgets.
    pub fn judge(&self, window_p99_ns: u64, window_samples: u64, queue_peak: u64) -> WindowVerdict {
        let budget_ns = u64::try_from(self.cfg.p99_budget.as_nanos()).unwrap_or(u64::MAX);
        WindowVerdict {
            p99_breach: window_samples >= self.cfg.min_window_samples.max(1)
                && window_p99_ns > budget_ns,
            queue_breach: queue_peak > self.cfg.queue_depth_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEALTHY: WindowVerdict = WindowVerdict { p99_breach: false, queue_breach: false };
    const BREACH: WindowVerdict = WindowVerdict { p99_breach: true, queue_breach: false };

    #[test]
    fn shed_sets_grow_by_cost_class_and_never_include_fr() {
        for level in ShedLevel::ALL {
            assert!(!level.sheds(UseCase::Fr), "{level:?} must not shed FR");
        }
        assert!(!ShedLevel::None.sheds(UseCase::Sv));
        assert!(ShedLevel::Sv.sheds(UseCase::Sv));
        assert!(!ShedLevel::Sv.sheds(UseCase::Cbr));
        assert!(ShedLevel::SvCbr.sheds(UseCase::Cbr) && ShedLevel::SvCbr.sheds(UseCase::Sv));
        assert!(!ShedLevel::SvCbr.sheds(UseCase::Dpi));
        for uc in [UseCase::Sv, UseCase::Cbr, UseCase::Dpi, UseCase::Crypto] {
            assert!(ShedLevel::FrOnly.sheds(uc), "FrOnly must shed {uc:?}");
        }
        // Monotone: a higher level sheds a superset.
        for w in ShedLevel::ALL.windows(2) {
            for uc in UseCase::EXTENDED {
                assert!(!w[0].sheds(uc) || w[1].sheds(uc), "{:?} ⊄ {:?} at {uc:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn level_encoding_roundtrips_and_clamps_toward_shedding() {
        for level in ShedLevel::ALL {
            assert_eq!(ShedLevel::from_u64(level.as_u64()), level);
        }
        assert_eq!(ShedLevel::from_u64(17), ShedLevel::FrOnly);
        assert_eq!(ShedLevel::FrOnly.escalate(), ShedLevel::FrOnly, "escalate saturates");
        assert_eq!(ShedLevel::None.relax(), ShedLevel::None, "relax saturates");
    }

    #[test]
    fn breaches_escalate_immediately_in_cost_order() {
        let mut core = GovernorCore::new(ShedLevel::None);
        assert_eq!(core.observe(BREACH, 4), Some((ShedLevel::None, ShedLevel::Sv)));
        assert_eq!(core.observe(BREACH, 4), Some((ShedLevel::Sv, ShedLevel::SvCbr)));
        assert_eq!(core.observe(BREACH, 4), Some((ShedLevel::SvCbr, ShedLevel::FrOnly)));
        assert_eq!(core.observe(BREACH, 4), None, "already at the ceiling");
        assert_eq!(core.level(), ShedLevel::FrOnly);
    }

    #[test]
    fn recovery_needs_consecutive_healthy_windows() {
        let mut core = GovernorCore::new(ShedLevel::Sv);
        assert_eq!(core.observe(HEALTHY, 3), None);
        assert_eq!(core.observe(HEALTHY, 3), None);
        // A breach mid-recovery zeroes the streak (and escalates).
        assert_eq!(core.observe(BREACH, 3), Some((ShedLevel::Sv, ShedLevel::SvCbr)));
        assert_eq!(core.observe(HEALTHY, 3), None);
        assert_eq!(core.observe(HEALTHY, 3), None);
        assert_eq!(core.observe(HEALTHY, 3), Some((ShedLevel::SvCbr, ShedLevel::Sv)));
        // The streak restarts after each relax: full recovery is slow.
        assert_eq!(core.observe(HEALTHY, 3), None);
        assert_eq!(core.observe(HEALTHY, 3), None);
        assert_eq!(core.observe(HEALTHY, 3), Some((ShedLevel::Sv, ShedLevel::None)));
        assert_eq!(core.observe(HEALTHY, 3), None, "healthy at None stays put");
    }

    #[test]
    fn either_signal_breaches() {
        let g = Governor::new(GovernorConfig {
            p99_budget: Duration::from_millis(1),
            queue_depth_budget: 4,
            min_window_samples: 2,
            ..GovernorConfig::default()
        });
        // p99 over budget but too few samples: not a breach.
        assert!(!g.judge(5_000_000, 1, 0).breached());
        assert!(g.judge(5_000_000, 2, 0).p99_breach);
        assert!(g.judge(0, 0, 5).queue_breach);
        assert!(!g.judge(500_000, 100, 4).breached(), "at budget is healthy");
    }

    #[test]
    fn governor_publishes_and_sheds_atomically() {
        let g = Governor::new(GovernorConfig::default());
        assert_eq!(g.level(), ShedLevel::None);
        assert!(!g.should_shed(UseCase::Sv));
        g.publish(ShedLevel::Sv);
        assert!(g.should_shed(UseCase::Sv));
        assert!(!g.should_shed(UseCase::Fr));
        // Disabled governors admit everything no matter the level.
        let off = Governor::new(GovernorConfig { enabled: false, ..GovernorConfig::default() });
        off.publish(ShedLevel::FrOnly);
        assert!(!off.should_shed(UseCase::Sv));
    }

    #[test]
    fn fr_only_mode_starts_pinned() {
        let g = Governor::new(GovernorConfig { fr_only: true, ..GovernorConfig::default() });
        assert_eq!(g.level(), ShedLevel::FrOnly);
        assert!(g.should_shed(UseCase::Crypto));
        assert!(!g.should_shed(UseCase::Fr));
    }

    #[test]
    fn window_queue_peak_swaps_out_per_sample() {
        let g = Governor::new(GovernorConfig::default());
        g.note_queue_depth(3);
        g.note_queue_depth(9);
        g.note_queue_depth(5);
        assert_eq!(g.take_window_queue_peak(), 9);
        assert_eq!(g.take_window_queue_peak(), 0, "window resets after the take");
    }
}
