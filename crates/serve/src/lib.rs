//! # aon-serve — the live TCP serving subsystem
//!
//! The paper measures a *real* AON server under Netperf load; the rest of
//! this workspace replays modeled traces on a simulated machine. This
//! crate closes that gap: a real `std::net` HTTP/1.1 server that serves
//! the paper's three use cases (FR, CBR, SV — plus the §6 extensions)
//! natively through the existing `aon-server`/`aon-xml` engines with
//! [`aon_trace::NullProbe`] (zero tracing overhead), and a netperf-style
//! closed-loop load generator that drives it over loopback and emits
//! `BENCH_live.json`.
//!
//! Architecture (mirroring the paper's server, §3.2.1):
//!
//! * one listener thread accepting into a **bounded** queue
//!   ([`aon_net::acceptq`]) — overload sheds connections at the edge;
//! * a worker pool (default: one thread per logical CPU) pulling
//!   connections and serving keep-alive request loops;
//! * per-connection read/write deadlines, hard head/body size limits
//!   ([`aon_net::wire`]), a keep-alive request cap, and 400/413/408
//!   error responses;
//! * graceful shutdown that stops accepting, drains queued connections,
//!   and finishes in-flight requests.
//!
//! The server also carries a software performance-counter layer
//! ([`obs`], built on [`aon_obs`]): per-use-case request counters,
//! per-stage latency histograms, a flight recorder of recent requests,
//! and admin endpoints (`GET /metrics` Prometheus text,
//! `GET /stats.json`, `GET /flight.jsonl`, `GET /profile.folded` — the
//! continuous profiler's flamegraph.pl-ready folded-stack dump) served
//! from the same worker pool. Admin hits are counted separately so
//! scraping never perturbs the request totals it reports. With the
//! profiler on, workers publish their current state (parse, write,
//! keep-alive read wait, ...) into per-worker atomic slots; an
//! `aon-profiler` sampler thread turns them into state-sample counters,
//! utilization and pool-saturation gauges, and latency-histogram
//! observations carry OpenMetrics exemplars linking p99 buckets to kept
//! traces in `/trace.jsonl`.
//!
//! Past saturation the server degrades *gracefully*: an SLO-aware
//! capacity governor ([`governor`]) samples the windowed service-time
//! p99 and accept-queue depth against budgets and sheds by use-case cost
//! class (SV first, then CBR, then DPI/CRYPTO — FR is never shed) with
//! `503 + Retry-After`, recovering hysteretically once the signals
//! clear. An operator can pin the FR-only bypass mode outright.
//!
//! Modules:
//!
//! * [`server`] — the serving half: [`server::Server`],
//!   [`server::ServeConfig`], [`server::ServeStats`];
//! * [`governor`] — SLO-aware admission control:
//!   [`governor::Governor`], [`governor::GovernorConfig`],
//!   [`governor::ShedLevel`];
//! * [`obs`] — the observability half: [`obs::ServerObs`] metric
//!   families, stage histograms, flight recorder;
//! * [`loadgen`] — the measuring half: closed-loop request/response
//!   threads ([`loadgen::LoadgenConfig`], [`loadgen::run`]) and the
//!   open-loop overload scenario ([`loadgen::OverloadConfig`],
//!   [`loadgen::run_overload`]) that draws the goodput-vs-offered-load
//!   curve;
//! * [`metrics`] — latency summaries and the `BENCH_live.json` report
//!   ([`metrics::LiveBenchReport`]).

pub mod governor;
pub mod loadgen;
pub mod metrics;
pub mod obs;
pub mod server;

pub use governor::{Governor, GovernorConfig, ShedLevel};
pub use loadgen::{run as run_loadgen, LoadgenConfig};
pub use metrics::LiveBenchReport;
pub use obs::ServerObs;
pub use server::{ServeConfig, Server};
