//! Netperf-style closed-loop load generator for the live server.
//!
//! Mirrors the paper's measurement methodology (§3.2.2): N persistent
//! connections each issue one request, wait for the full response, and
//! immediately issue the next — so offered load tracks server capacity
//! (closed loop) instead of overwhelming it (open loop). Request bodies
//! come from the same deterministic [`aon_server::corpus`] the simulator
//! replays, and each request carries a *known expected status* derived
//! from the corpus flags — a run with `requests_failed == 0` therefore
//! proves end-to-end protocol and routing correctness, not just liveness.
//!
//! Like the metrics module, this file is on the `aon-audit` cast-enforced
//! list: no raw `as` numeric casts.

use crate::metrics::{summarize_latencies, LiveBenchReport, LoadgenErrors};
use aon_net::wire::{status_code, write_all, FrameBuf, WireError, WireLimits};
use aon_server::corpus::Corpus;
use aon_server::usecase::UseCase;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// Load generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (normally the in-process server's loopback addr).
    pub addr: SocketAddr,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Use cases in the request mix (cycled per request).
    pub use_cases: Vec<UseCase>,
    /// Corpus seed (must match nothing in particular — the server parses
    /// whatever arrives — but determinism keeps runs comparable).
    pub corpus_seed: u64,
    /// Number of corpus variants to cycle through.
    pub corpus_variants: usize,
    /// Client-side response limits (response bodies are tiny).
    pub limits: WireLimits,
    /// Per-response read deadline.
    pub response_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            connections: 4,
            duration: Duration::from_secs(2),
            use_cases: UseCase::ALL.to_vec(),
            corpus_seed: 42,
            corpus_variants: 4,
            limits: WireLimits::default(),
            response_timeout: Duration::from_secs(5),
        }
    }
}

/// One prepared request: raw bytes plus the status the server must
/// return for the run to count it as OK.
#[derive(Clone)]
struct PreparedRequest {
    bytes: Vec<u8>,
    body_len: u64,
    expect_status: u16,
}

/// Build the keep-alive request mix: one request per (use case ×
/// corpus variant), with the expected status derived from the variant's
/// routing flags.
fn prepare_requests(cfg: &LoadgenConfig) -> Vec<PreparedRequest> {
    let corpus = Corpus::generate(cfg.corpus_seed, cfg.corpus_variants);
    let mut out = Vec::with_capacity(cfg.use_cases.len() * corpus.len());
    for uc in &cfg.use_cases {
        let path = match uc {
            UseCase::Fr => "/aon/fr",
            UseCase::Cbr => "/aon/cbr",
            UseCase::Sv => "/aon/sv",
            UseCase::Dpi => "/aon/dpi",
            UseCase::Crypto => "/aon/crypto",
        };
        for v in &corpus.variants {
            let body = &v.http[v.body_start..];
            // Routing verdict per the engine's semantics: 200 when the
            // use case accepts the message, 422 when it rejects it.
            let accepted = match uc {
                UseCase::Fr | UseCase::Crypto => true,
                UseCase::Cbr => v.cbr_match,
                UseCase::Sv => v.sv_valid,
                // Corpus bodies carry no DPI signatures.
                UseCase::Dpi => true,
            };
            let mut bytes = Vec::with_capacity(body.len() + 160);
            bytes.extend_from_slice(format!(
                "POST {path} HTTP/1.1\r\nHost: aon.local\r\nContent-Type: text/xml\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                body.len()
            ).as_bytes());
            bytes.extend_from_slice(body);
            out.push(PreparedRequest {
                bytes,
                body_len: u64::try_from(body.len()).expect("body length fits u64"),
                expect_status: if accepted { 200 } else { 422 },
            });
        }
    }
    out
}

/// Per-thread tally, merged into the final report.
#[derive(Default)]
struct ThreadResult {
    ok: u64,
    payload_bytes: u64,
    latencies_ns: Vec<u64>,
    errors: LoadgenErrors,
}

/// Run the closed loop against `cfg.addr` and summarize.
pub fn run(cfg: &LoadgenConfig) -> LiveBenchReport {
    let requests = prepare_requests(cfg);
    assert!(!requests.is_empty(), "loadgen needs at least one use case");
    let started = Instant::now();
    let deadline = started + cfg.duration;

    let results: Vec<ThreadResult> = thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|tid| {
                let requests = &requests;
                let cfg = &cfg;
                scope.spawn(move || connection_loop(cfg, requests, tid, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
    });
    let elapsed = started.elapsed();

    let mut ok = 0u64;
    let mut payload_bytes = 0u64;
    let mut errors = LoadgenErrors::default();
    let mut latencies_ns = Vec::new();
    for r in results {
        ok += r.ok;
        payload_bytes += r.payload_bytes;
        errors.status_mismatch += r.errors.status_mismatch;
        errors.wire += r.errors.wire;
        errors.io += r.errors.io;
        errors.reconnects += r.errors.reconnects;
        latencies_ns.extend(r.latencies_ns);
    }

    LiveBenchReport {
        duration_secs: elapsed.as_secs_f64(),
        connections: u64::try_from(cfg.connections.max(1)).expect("connection count fits u64"),
        use_cases: cfg.use_cases.iter().map(|u| u.label().to_string()).collect(),
        parse_mode: None,
        requests_ok: ok,
        requests_failed: errors.failed(),
        errors,
        payload_bytes,
        latency: summarize_latencies(&mut latencies_ns),
        stages: Vec::new(),
        obs_overhead: None,
        server: None,
    }
}

/// One closed-loop connection: send, await full response, repeat. The
/// server closing a healthy keep-alive session (its request cap) is a
/// reconnect, not a failure.
fn connection_loop(
    cfg: &LoadgenConfig,
    requests: &[PreparedRequest],
    tid: usize,
    deadline: Instant,
) -> ThreadResult {
    let mut res = ThreadResult::default();
    let mut fb = FrameBuf::new();
    let mut stream: Option<TcpStream> = None;
    // Stagger the cycle start so threads don't all hit the same variant.
    let mut next = tid % requests.len();

    while Instant::now() < deadline {
        if stream.is_none() {
            match connect(cfg) {
                Ok(s) => {
                    fb = FrameBuf::new();
                    stream = Some(s);
                }
                Err(()) => {
                    res.errors.io += 1;
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
            }
        }
        let s = stream.as_mut().expect("connected above");

        let req = &requests[next];
        next = (next + 1) % requests.len();
        let sent = Instant::now();
        if let Err(e) = write_all(s, &req.bytes) {
            // A send into a connection the server already closed (keep-
            // alive cap) surfaces as an I/O error; reconnect and retry.
            classify_send_error(&e, &mut res.errors);
            stream = None;
            continue;
        }
        let resp_deadline = sent + cfg.response_timeout;
        match fb.read_frame(s, &cfg.limits, resp_deadline) {
            Ok(frame) => {
                let latency = sent.elapsed();
                let status = status_code(&fb.bytes()[..frame.head_len]);
                let head = &fb.bytes()[..frame.head_len];
                let server_closing = head_says_close(head);
                fb.consume(frame.total());
                if status == Some(req.expect_status) {
                    res.ok += 1;
                    res.payload_bytes += req.body_len;
                    res.latencies_ns.push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                } else {
                    res.errors.status_mismatch += 1;
                }
                if server_closing {
                    res.errors.reconnects += 1;
                    stream = None;
                }
            }
            Err(WireError::Closed) => {
                // Clean close before any response bytes: keep-alive cap
                // raced our send. Not a failure; replay on a fresh
                // connection would double-count, so just reconnect.
                res.errors.reconnects += 1;
                stream = None;
            }
            Err(WireError::Io(_)) => {
                res.errors.io += 1;
                stream = None;
            }
            Err(_) => {
                res.errors.wire += 1;
                stream = None;
            }
        }
    }
    res
}

/// Fetch an admin endpoint (`/metrics`, `/stats.json`, `/flight.jsonl`)
/// from a running server over its own TCP port and return the response
/// body — what an external scraper sees, framed by the same wire code
/// the closed loop uses.
pub fn scrape(addr: SocketAddr, path: &str, timeout: Duration) -> Result<String, WireError> {
    let mut s = TcpStream::connect_timeout(&addr, timeout).map_err(|e| WireError::Io(e.kind()))?;
    let _ = s.set_nodelay(true);
    let req = format!("GET {path} HTTP/1.1\r\nHost: aon.local\r\nConnection: close\r\n\r\n");
    write_all(&mut s, req.as_bytes())?;
    let mut fb = FrameBuf::new();
    // Admin bodies (full metric exposition, flight dumps) outgrow the
    // default response limits; give them dedicated generous ones.
    let limits = WireLimits { max_head: 16 * 1024, max_body: 16 * 1024 * 1024 };
    let frame = fb.read_frame(&mut s, &limits, Instant::now() + timeout)?;
    if status_code(&fb.bytes()[..frame.head_len]) != Some(200) {
        return Err(WireError::BadFrame);
    }
    let body = &fb.bytes()[frame.head_len..frame.total()];
    Ok(String::from_utf8_lossy(body).into_owned())
}

/// Connect with TCP_NODELAY (request/response pattern).
fn connect(cfg: &LoadgenConfig) -> Result<TcpStream, ()> {
    let s = TcpStream::connect_timeout(&cfg.addr, cfg.response_timeout).map_err(|_| ())?;
    let _ = s.set_nodelay(true);
    Ok(s)
}

/// Did the response head ask us to close the connection?
fn head_says_close(head: &[u8]) -> bool {
    head.split(|&b| b == b'\n').any(|line| {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            return false;
        };
        line[..colon].eq_ignore_ascii_case(b"connection")
            && line[colon + 1..].trim_ascii().eq_ignore_ascii_case(b"close")
    })
}

/// Send failures on a stale keep-alive connection (peer already closed)
/// are reconnects; anything else is a real I/O failure.
fn classify_send_error(e: &WireError, errors: &mut LoadgenErrors) {
    match e {
        WireError::Io(
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted,
        ) => {
            errors.reconnects += 1;
        }
        WireError::Closed => errors.reconnects += 1,
        WireError::TimedOut => errors.wire += 1,
        _ => errors.io += 1,
    }
}

/// Drain any remaining bytes best-effort (used by tests to verify the
/// server half-closes cleanly).
#[cfg(test)]
fn drain(mut s: TcpStream) {
    use std::io::Read;
    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 4096];
    while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    #[test]
    fn prepared_requests_cover_mix_and_expectations() {
        let cfg = LoadgenConfig::default();
        let reqs = prepare_requests(&cfg);
        // 3 use cases × 4 variants.
        assert_eq!(reqs.len(), 12);
        // FR always expects 200; the mix must also contain 422s (CBR
        // mismatches and SV-invalid variants exist in a 4-variant corpus).
        assert!(reqs.iter().any(|r| r.expect_status == 200));
        assert!(reqs.iter().any(|r| r.expect_status == 422));
        for r in &reqs {
            assert!(r.bytes.starts_with(b"POST /aon/"));
            assert!(r.body_len > 0);
        }
    }

    #[test]
    fn closed_loop_against_live_server_has_zero_failures() {
        let server = Server::start(ServeConfig { workers: 2, ..ServeConfig::default() })
            .expect("bind loopback");
        let cfg = LoadgenConfig {
            addr: server.addr(),
            connections: 2,
            duration: Duration::from_millis(300),
            ..LoadgenConfig::default()
        };
        let report = run(&cfg);
        let stats = server.shutdown();
        assert!(report.requests_ok > 0, "served nothing: {report:?}");
        assert_eq!(report.requests_failed, 0, "failures: {:?}", report.errors);
        assert!(report.latency.p50_us > 0.0);
        assert!(report.latency.p99_us >= report.latency.p50_us);
        assert_eq!(stats.protocol_errors(), 0);
        // Every OK the client saw, the server counted (2xx or 422).
        assert_eq!(report.requests_ok, stats.requests_ok + stats.requests_rejected);
    }

    #[test]
    fn reconnects_after_keepalive_cap_are_not_failures() {
        let server = Server::start(ServeConfig {
            workers: 1,
            keepalive_max_requests: 3,
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let cfg = LoadgenConfig {
            addr: server.addr(),
            connections: 1,
            duration: Duration::from_millis(250),
            use_cases: vec![UseCase::Fr],
            ..LoadgenConfig::default()
        };
        let report = run(&cfg);
        server.shutdown();
        assert_eq!(report.requests_failed, 0, "failures: {:?}", report.errors);
        assert!(
            report.errors.reconnects > 0,
            "cap of 3 over {} requests must force reconnects",
            report.requests_ok
        );
    }

    #[test]
    fn scrape_fetches_metrics_over_tcp() {
        let server = Server::start(ServeConfig { workers: 1, ..ServeConfig::default() })
            .expect("bind loopback");
        let text = scrape(server.addr(), "/metrics", Duration::from_secs(5)).expect("scrape");
        assert!(text.contains("aon_connections_accepted_total"), "{text}");
        let stats = scrape(server.addr(), "/stats.json", Duration::from_secs(5)).expect("stats");
        assert!(stats.contains("\"queue_depth_hwm\""), "{stats}");
        assert!(
            scrape(server.addr(), "/nope", Duration::from_secs(5)).is_err(),
            "non-200 admin scrape must error"
        );
        let final_stats = server.shutdown();
        assert_eq!(final_stats.admin_requests, 2);
        assert_eq!(final_stats.requests_ok, 0, "scrapes are not requests");
    }

    #[test]
    fn head_says_close_parses_connection_header() {
        assert!(head_says_close(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n"));
        assert!(head_says_close(b"HTTP/1.1 200 OK\r\nCONNECTION:  Close \r\n\r\n"));
        assert!(!head_says_close(b"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\n\r\n"));
        assert!(!head_says_close(b"HTTP/1.1 200 OK\r\n\r\n"));
    }

    #[test]
    fn drain_helper_survives_closed_socket() {
        let server = Server::start(ServeConfig::default()).expect("bind loopback");
        let s = TcpStream::connect(server.addr()).expect("connect");
        server.shutdown();
        drain(s);
    }
}
