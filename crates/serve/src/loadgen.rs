//! Netperf-style closed-loop load generator for the live server.
//!
//! Mirrors the paper's measurement methodology (§3.2.2): N persistent
//! connections each issue one request, wait for the full response, and
//! immediately issue the next — so offered load tracks server capacity
//! (closed loop) instead of overwhelming it (open loop). Request bodies
//! come from the same deterministic [`aon_server::corpus`] the simulator
//! replays, and each request carries a *known expected status* derived
//! from the corpus flags — a run with `requests_failed == 0` therefore
//! proves end-to-end protocol and routing correctness, not just liveness.
//!
//! The overload scenario ([`run_overload`]) deliberately breaks the
//! closed loop: it first measures capacity closed-loop, then generates
//! **open-loop** arrivals at 2–10× that capacity (scheduled slots that
//! never wait for the previous response) and classifies every arrival —
//! good / governor-shed `503` / wrong-status / dropped — into the
//! goodput-vs-offered-load curve a graceful-degradation claim needs.
//!
//! Like the metrics module, this file is on the `aon-audit` cast-enforced
//! list: no raw `as` numeric casts.

use crate::metrics::{
    summarize_latencies, LiveBenchReport, LoadgenErrors, OverloadPoint, OverloadReport,
};
use aon_net::wire::{status_code, write_all, FrameBuf, WireError, WireLimits};
use aon_server::corpus::Corpus;
use aon_server::usecase::UseCase;
use aon_trace::num::exact_f64;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// Load generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (normally the in-process server's loopback addr).
    pub addr: SocketAddr,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Use cases in the request mix (cycled per request).
    pub use_cases: Vec<UseCase>,
    /// Corpus seed (must match nothing in particular — the server parses
    /// whatever arrives — but determinism keeps runs comparable).
    pub corpus_seed: u64,
    /// Number of corpus variants to cycle through.
    pub corpus_variants: usize,
    /// Client-side response limits (response bodies are tiny).
    pub limits: WireLimits,
    /// Per-response read deadline.
    pub response_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            connections: 4,
            duration: Duration::from_secs(2),
            use_cases: UseCase::ALL.to_vec(),
            corpus_seed: 42,
            corpus_variants: 4,
            limits: WireLimits::default(),
            response_timeout: Duration::from_secs(5),
        }
    }
}

/// One prepared request: raw bytes plus the status the server must
/// return for the run to count it as OK.
#[derive(Clone)]
struct PreparedRequest {
    bytes: Vec<u8>,
    body_len: u64,
    expect_status: u16,
}

/// Build the keep-alive request mix: one request per (use case ×
/// corpus variant), with the expected status derived from the variant's
/// routing flags.
fn prepare_requests(cfg: &LoadgenConfig) -> Vec<PreparedRequest> {
    prepare_mix(&cfg.use_cases, cfg.corpus_seed, cfg.corpus_variants, false)
}

/// The request-mix builder behind both loops. `close` requests
/// `Connection: close` (the open-loop overload scenario sends one-shot
/// requests); the closed loop keeps connections alive.
fn prepare_mix(
    use_cases: &[UseCase],
    corpus_seed: u64,
    corpus_variants: usize,
    close: bool,
) -> Vec<PreparedRequest> {
    let corpus = Corpus::generate(corpus_seed, corpus_variants);
    let connection = if close { "close" } else { "keep-alive" };
    let mut out = Vec::with_capacity(use_cases.len() * corpus.len());
    for uc in use_cases {
        let path = match uc {
            UseCase::Fr => "/aon/fr",
            UseCase::Cbr => "/aon/cbr",
            UseCase::Sv => "/aon/sv",
            UseCase::Dpi => "/aon/dpi",
            UseCase::Crypto => "/aon/crypto",
        };
        for v in &corpus.variants {
            let body = &v.http[v.body_start..];
            // Routing verdict per the engine's semantics: 200 when the
            // use case accepts the message, 422 when it rejects it.
            let accepted = match uc {
                UseCase::Fr | UseCase::Crypto => true,
                UseCase::Cbr => v.cbr_match,
                UseCase::Sv => v.sv_valid,
                // Corpus bodies carry no DPI signatures.
                UseCase::Dpi => true,
            };
            let mut bytes = Vec::with_capacity(body.len() + 160);
            bytes.extend_from_slice(format!(
                "POST {path} HTTP/1.1\r\nHost: aon.local\r\nContent-Type: text/xml\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
                body.len()
            ).as_bytes());
            bytes.extend_from_slice(body);
            out.push(PreparedRequest {
                bytes,
                body_len: u64::try_from(body.len()).expect("body length fits u64"),
                expect_status: if accepted { 200 } else { 422 },
            });
        }
    }
    out
}

/// Per-thread tally, merged into the final report.
#[derive(Default)]
struct ThreadResult {
    ok: u64,
    payload_bytes: u64,
    latencies_ns: Vec<u64>,
    errors: LoadgenErrors,
}

/// Run the closed loop against `cfg.addr` and summarize.
pub fn run(cfg: &LoadgenConfig) -> LiveBenchReport {
    let requests = prepare_requests(cfg);
    assert!(!requests.is_empty(), "loadgen needs at least one use case");
    let started = Instant::now();
    let deadline = started + cfg.duration;

    let results: Vec<ThreadResult> = thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|tid| {
                let requests = &requests;
                let cfg = &cfg;
                scope.spawn(move || connection_loop(cfg, requests, tid, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
    });
    let elapsed = started.elapsed();

    let mut ok = 0u64;
    let mut payload_bytes = 0u64;
    let mut errors = LoadgenErrors::default();
    let mut latencies_ns = Vec::new();
    for r in results {
        ok += r.ok;
        payload_bytes += r.payload_bytes;
        errors.status_mismatch += r.errors.status_mismatch;
        errors.wire += r.errors.wire;
        errors.io += r.errors.io;
        errors.reconnects += r.errors.reconnects;
        errors.shed += r.errors.shed;
        latencies_ns.extend(r.latencies_ns);
    }

    LiveBenchReport {
        duration_secs: elapsed.as_secs_f64(),
        connections: u64::try_from(cfg.connections.max(1)).expect("connection count fits u64"),
        use_cases: cfg.use_cases.iter().map(|u| u.label().to_string()).collect(),
        parse_mode: None,
        requests_ok: ok,
        requests_failed: errors.failed(),
        errors,
        payload_bytes,
        latency: summarize_latencies(&mut latencies_ns),
        stages: Vec::new(),
        obs_overhead: None,
        profile_overhead: None,
        overload: None,
        hw: None,
        server: None,
    }
}

/// Overload-scenario knobs: open-loop arrivals at multiples of the
/// measured closed-loop capacity.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Server address (normally the in-process server's loopback addr).
    pub addr: SocketAddr,
    /// Arrival-generating client threads.
    pub threads: usize,
    /// Offered-load steps, as multiples of measured capacity.
    pub multipliers: Vec<f64>,
    /// Measurement window per step.
    pub window: Duration,
    /// Closed-loop capacity-measurement phase length.
    pub capacity_window: Duration,
    /// Closed-loop connections during the capacity phase.
    pub capacity_connections: usize,
    /// Use cases in the request mix (cycled per arrival).
    pub use_cases: Vec<UseCase>,
    /// Corpus seed (determinism across runs).
    pub corpus_seed: u64,
    /// Number of corpus variants to cycle through.
    pub corpus_variants: usize,
    /// Client-side response limits.
    pub limits: WireLimits,
    /// Per-response read deadline.
    pub response_timeout: Duration,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            threads: 4,
            multipliers: vec![2.0, 4.0, 6.0, 8.0, 10.0],
            window: Duration::from_millis(500),
            capacity_window: Duration::from_secs(1),
            capacity_connections: 4,
            use_cases: UseCase::ALL.to_vec(),
            corpus_seed: 42,
            corpus_variants: 4,
            limits: WireLimits::default(),
            response_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-thread tally of one overload step.
#[derive(Default)]
struct PointTally {
    sent: u64,
    good: u64,
    shed: u64,
    wrong_status: u64,
    dropped: u64,
    missed_slots: u64,
    latencies_ns: Vec<u64>,
}

/// Run the overload scenario: measure capacity with the closed loop,
/// then sweep open-loop offered load across `cfg.multipliers` and
/// classify every arrival (good / shed / wrong-status / dropped).
///
/// Degenerate cases are reported, never panicked on: a capacity phase
/// that completes zero requests yields an empty sweep, and an all-shed
/// step reports zero goodput with its shed count intact (its latency
/// summary is the empty-set default).
pub fn run_overload(cfg: &OverloadConfig) -> OverloadReport {
    let closed = run(&LoadgenConfig {
        addr: cfg.addr,
        connections: cfg.capacity_connections,
        duration: cfg.capacity_window,
        use_cases: cfg.use_cases.clone(),
        corpus_seed: cfg.corpus_seed,
        corpus_variants: cfg.corpus_variants,
        limits: cfg.limits,
        response_timeout: cfg.response_timeout,
    });
    let capacity = closed.requests_per_sec();
    let mut report =
        OverloadReport { capacity_per_sec: capacity, governor_enabled: false, points: Vec::new() };
    if capacity <= 0.0 {
        // Offered load is defined relative to capacity; with a zero
        // baseline the arrival interval would be a division by zero.
        return report;
    }
    let requests = prepare_mix(&cfg.use_cases, cfg.corpus_seed, cfg.corpus_variants, true);
    for &multiplier in &cfg.multipliers {
        report.points.push(overload_point(cfg, &requests, capacity, multiplier));
    }
    report
}

/// One offered-load step: spawn the arrival threads, run the window,
/// fold their tallies.
fn overload_point(
    cfg: &OverloadConfig,
    requests: &[PreparedRequest],
    capacity: f64,
    multiplier: f64,
) -> OverloadPoint {
    let threads = cfg.threads.max(1);
    let offered = (capacity * multiplier.max(0.1)).max(1.0);
    // Arrivals are spread across threads: each thread schedules one
    // arrival every `threads / offered` seconds.
    let interval =
        Duration::from_secs_f64(exact_f64(u64::try_from(threads).expect("thread count")) / offered);
    let started = Instant::now();
    let deadline = started + cfg.window;
    let tallies: Vec<PointTally> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || open_loop_thread(cfg, requests, tid, interval, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
    });
    let elapsed = started.elapsed();

    let mut point = OverloadPoint {
        multiplier,
        offered_per_sec: offered,
        sent: 0,
        good: 0,
        shed: 0,
        wrong_status: 0,
        dropped: 0,
        missed_slots: 0,
        duration_secs: elapsed.as_secs_f64(),
        latency: Default::default(),
    };
    let mut latencies_ns = Vec::new();
    for t in tallies {
        point.sent += t.sent;
        point.good += t.good;
        point.shed += t.shed;
        point.wrong_status += t.wrong_status;
        point.dropped += t.dropped;
        point.missed_slots += t.missed_slots;
        latencies_ns.extend(t.latencies_ns);
    }
    point.latency = summarize_latencies(&mut latencies_ns);
    point
}

/// One open-loop arrival thread: fire a one-shot request at every
/// scheduled slot, counting (not compressing) the slots it falls behind
/// on. Unlike the closed loop, arrival timing never waits for the
/// previous response's completion — that is what pushes the server past
/// saturation.
fn open_loop_thread(
    cfg: &OverloadConfig,
    requests: &[PreparedRequest],
    tid: usize,
    interval: Duration,
    deadline: Instant,
) -> PointTally {
    let mut t = PointTally::default();
    let mut next = tid % requests.len();
    let mut slot = Instant::now();
    while slot < deadline {
        let now = Instant::now();
        if now < slot {
            thread::sleep(slot - now);
        } else {
            // Catch up to the schedule: every whole interval we are
            // behind is an arrival the generator failed to offer.
            while slot + interval < now && slot + interval < deadline {
                slot += interval;
                t.missed_slots += 1;
            }
        }
        let req = &requests[next];
        next = (next + 1) % requests.len();
        one_shot(cfg, req, &mut t);
        slot += interval;
    }
    t
}

/// One open-loop arrival: fresh connection, single request, classify
/// the outcome, drop the connection.
fn one_shot(cfg: &OverloadConfig, req: &PreparedRequest, t: &mut PointTally) {
    t.sent += 1;
    let sent_at = Instant::now();
    let Ok(mut s) = TcpStream::connect_timeout(&cfg.addr, cfg.response_timeout) else {
        t.dropped += 1;
        return;
    };
    let _ = s.set_nodelay(true);
    if write_all(&mut s, &req.bytes).is_err() {
        t.dropped += 1;
        return;
    }
    let mut fb = FrameBuf::new();
    match fb.read_frame(&mut s, &cfg.limits, sent_at + cfg.response_timeout) {
        Ok(frame) => {
            let status = status_code(&fb.bytes()[..frame.head_len]);
            if status == Some(req.expect_status) {
                t.good += 1;
                t.latencies_ns
                    .push(u64::try_from(sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX));
            } else if status == Some(503) {
                t.shed += 1;
            } else {
                t.wrong_status += 1;
            }
        }
        Err(_) => t.dropped += 1,
    }
}

/// One closed-loop connection: send, await full response, repeat. The
/// server closing a healthy keep-alive session (its request cap) is a
/// reconnect, not a failure.
fn connection_loop(
    cfg: &LoadgenConfig,
    requests: &[PreparedRequest],
    tid: usize,
    deadline: Instant,
) -> ThreadResult {
    let mut res = ThreadResult::default();
    let mut fb = FrameBuf::new();
    let mut stream: Option<TcpStream> = None;
    // Stagger the cycle start so threads don't all hit the same variant.
    let mut next = tid % requests.len();

    while Instant::now() < deadline {
        if stream.is_none() {
            match connect(cfg) {
                Ok(s) => {
                    fb = FrameBuf::new();
                    stream = Some(s);
                }
                Err(()) => {
                    res.errors.io += 1;
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
            }
        }
        let s = stream.as_mut().expect("connected above");

        let req = &requests[next];
        next = (next + 1) % requests.len();
        let sent = Instant::now();
        if let Err(e) = write_all(s, &req.bytes) {
            // A send into a connection the server already closed (keep-
            // alive cap) surfaces as an I/O error; reconnect and retry.
            classify_send_error(&e, &mut res.errors);
            stream = None;
            continue;
        }
        let resp_deadline = sent + cfg.response_timeout;
        match fb.read_frame(s, &cfg.limits, resp_deadline) {
            Ok(frame) => {
                let latency = sent.elapsed();
                let status = status_code(&fb.bytes()[..frame.head_len]);
                let head = &fb.bytes()[..frame.head_len];
                let server_closing = head_says_close(head);
                fb.consume(frame.total());
                if status == Some(req.expect_status) {
                    res.ok += 1;
                    res.payload_bytes += req.body_len;
                    res.latencies_ns.push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                } else if status == Some(503) {
                    // The governor refused this class: a graceful shed,
                    // counted on its own so scrape/client equality and
                    // the zero-shed smoke gate both stay exact.
                    res.errors.shed += 1;
                } else {
                    res.errors.status_mismatch += 1;
                }
                if server_closing {
                    res.errors.reconnects += 1;
                    stream = None;
                }
            }
            Err(WireError::Closed) => {
                // Clean close before any response bytes: keep-alive cap
                // raced our send. Not a failure; replay on a fresh
                // connection would double-count, so just reconnect.
                res.errors.reconnects += 1;
                stream = None;
            }
            Err(WireError::Io(_)) => {
                res.errors.io += 1;
                stream = None;
            }
            Err(_) => {
                res.errors.wire += 1;
                stream = None;
            }
        }
    }
    res
}

/// Fetch an admin endpoint (`/metrics`, `/stats.json`, `/flight.jsonl`)
/// from a running server over its own TCP port and return the response
/// body — what an external scraper sees, framed by the same wire code
/// the closed loop uses.
pub fn scrape(addr: SocketAddr, path: &str, timeout: Duration) -> Result<String, WireError> {
    let mut s = TcpStream::connect_timeout(&addr, timeout).map_err(|e| WireError::Io(e.kind()))?;
    let _ = s.set_nodelay(true);
    let req = format!("GET {path} HTTP/1.1\r\nHost: aon.local\r\nConnection: close\r\n\r\n");
    write_all(&mut s, req.as_bytes())?;
    let mut fb = FrameBuf::new();
    // Admin bodies (full metric exposition, flight dumps) outgrow the
    // default response limits; give them dedicated generous ones.
    let limits = WireLimits { max_head: 16 * 1024, max_body: 16 * 1024 * 1024 };
    let frame = fb.read_frame(&mut s, &limits, Instant::now() + timeout)?;
    if status_code(&fb.bytes()[..frame.head_len]) != Some(200) {
        return Err(WireError::BadFrame);
    }
    let body = &fb.bytes()[frame.head_len..frame.total()];
    Ok(String::from_utf8_lossy(body).into_owned())
}

/// Connect with TCP_NODELAY (request/response pattern).
fn connect(cfg: &LoadgenConfig) -> Result<TcpStream, ()> {
    let s = TcpStream::connect_timeout(&cfg.addr, cfg.response_timeout).map_err(|_| ())?;
    let _ = s.set_nodelay(true);
    Ok(s)
}

/// Did the response head ask us to close the connection?
fn head_says_close(head: &[u8]) -> bool {
    head.split(|&b| b == b'\n').any(|line| {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            return false;
        };
        line[..colon].eq_ignore_ascii_case(b"connection")
            && line[colon + 1..].trim_ascii().eq_ignore_ascii_case(b"close")
    })
}

/// Send failures on a stale keep-alive connection (peer already closed)
/// are reconnects; anything else is a real I/O failure.
fn classify_send_error(e: &WireError, errors: &mut LoadgenErrors) {
    match e {
        WireError::Io(
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted,
        ) => {
            errors.reconnects += 1;
        }
        WireError::Closed => errors.reconnects += 1,
        WireError::TimedOut => errors.wire += 1,
        _ => errors.io += 1,
    }
}

/// Drain any remaining bytes best-effort (used by tests to verify the
/// server half-closes cleanly).
#[cfg(test)]
fn drain(mut s: TcpStream) {
    use std::io::Read;
    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 4096];
    while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    #[test]
    fn prepared_requests_cover_mix_and_expectations() {
        let cfg = LoadgenConfig::default();
        let reqs = prepare_requests(&cfg);
        // 3 use cases × 4 variants.
        assert_eq!(reqs.len(), 12);
        // FR always expects 200; the mix must also contain 422s (CBR
        // mismatches and SV-invalid variants exist in a 4-variant corpus).
        assert!(reqs.iter().any(|r| r.expect_status == 200));
        assert!(reqs.iter().any(|r| r.expect_status == 422));
        for r in &reqs {
            assert!(r.bytes.starts_with(b"POST /aon/"));
            assert!(r.body_len > 0);
        }
    }

    #[test]
    fn closed_loop_against_live_server_has_zero_failures() {
        let server = Server::start(ServeConfig { workers: 2, ..ServeConfig::default() })
            .expect("bind loopback");
        let cfg = LoadgenConfig {
            addr: server.addr(),
            connections: 2,
            duration: Duration::from_millis(300),
            ..LoadgenConfig::default()
        };
        let report = run(&cfg);
        let stats = server.shutdown();
        assert!(report.requests_ok > 0, "served nothing: {report:?}");
        assert_eq!(report.requests_failed, 0, "failures: {:?}", report.errors);
        assert!(report.latency.p50_us > 0.0);
        assert!(report.latency.p99_us >= report.latency.p50_us);
        assert_eq!(stats.protocol_errors(), 0);
        // Every OK the client saw, the server counted (2xx or 422).
        assert_eq!(report.requests_ok, stats.requests_ok + stats.requests_rejected);
    }

    #[test]
    fn reconnects_after_keepalive_cap_are_not_failures() {
        let server = Server::start(ServeConfig {
            workers: 1,
            keepalive_max_requests: 3,
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let cfg = LoadgenConfig {
            addr: server.addr(),
            connections: 1,
            duration: Duration::from_millis(250),
            use_cases: vec![UseCase::Fr],
            ..LoadgenConfig::default()
        };
        let report = run(&cfg);
        server.shutdown();
        assert_eq!(report.requests_failed, 0, "failures: {:?}", report.errors);
        assert!(
            report.errors.reconnects > 0,
            "cap of 3 over {} requests must force reconnects",
            report.requests_ok
        );
    }

    #[test]
    fn scrape_fetches_metrics_over_tcp() {
        let server = Server::start(ServeConfig { workers: 1, ..ServeConfig::default() })
            .expect("bind loopback");
        let text = scrape(server.addr(), "/metrics", Duration::from_secs(5)).expect("scrape");
        assert!(text.contains("aon_connections_accepted_total"), "{text}");
        let stats = scrape(server.addr(), "/stats.json", Duration::from_secs(5)).expect("stats");
        assert!(stats.contains("\"queue_depth_hwm\""), "{stats}");
        assert!(
            scrape(server.addr(), "/nope", Duration::from_secs(5)).is_err(),
            "non-200 admin scrape must error"
        );
        let final_stats = server.shutdown();
        assert_eq!(final_stats.admin_requests, 2);
        assert_eq!(final_stats.requests_ok, 0, "scrapes are not requests");
    }

    #[test]
    fn overload_sweep_produces_a_goodput_curve() {
        let server = Server::start(ServeConfig { workers: 2, ..ServeConfig::default() })
            .expect("bind loopback");
        let cfg = OverloadConfig {
            addr: server.addr(),
            threads: 2,
            multipliers: vec![2.0],
            window: Duration::from_millis(250),
            capacity_window: Duration::from_millis(250),
            capacity_connections: 2,
            ..OverloadConfig::default()
        };
        let report = run_overload(&cfg);
        server.shutdown();
        assert!(report.capacity_per_sec > 0.0, "capacity phase must complete requests");
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert!(p.sent > 0, "open loop must offer load: {p:?}");
        assert!(p.good > 0, "a healthy server under 2x answers some requests: {p:?}");
        assert_eq!(p.wrong_status, 0, "{p:?}");
        assert!(p.goodput_per_sec() > 0.0);
    }

    #[test]
    fn all_shed_window_reports_zero_goodput_without_panicking() {
        use crate::governor::GovernorConfig;
        // FR-only bypass + an SV-only mix: every arrival is refused.
        let server = Server::start(ServeConfig {
            workers: 1,
            governor: GovernorConfig { fr_only: true, ..GovernorConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let cfg = OverloadConfig {
            addr: server.addr(),
            threads: 1,
            use_cases: vec![UseCase::Sv],
            window: Duration::from_millis(200),
            response_timeout: Duration::from_secs(2),
            ..OverloadConfig::default()
        };
        let requests = prepare_mix(&cfg.use_cases, cfg.corpus_seed, cfg.corpus_variants, true);
        let p = overload_point(&cfg, &requests, 50.0, 4.0);
        server.shutdown();
        assert!(p.sent > 0);
        assert_eq!(p.good, 0, "every arrival must be shed: {p:?}");
        assert!(p.shed > 0, "{p:?}");
        assert_eq!(p.goodput_per_sec(), 0.0);
        assert_eq!(p.latency.count, 0, "no good responses, no latency samples");
        assert_eq!(p.latency.p50_us, 0.0, "empty latency set summarizes to zeros");
    }

    #[test]
    fn zero_capacity_skips_the_sweep() {
        // Bind an ephemeral port, then shut the server down: the capacity
        // phase completes nothing, so the sweep must be skipped (offered
        // load relative to zero capacity is undefined).
        let server = Server::start(ServeConfig::default()).expect("bind loopback");
        let addr = server.addr();
        server.shutdown();
        let cfg = OverloadConfig {
            addr,
            threads: 1,
            capacity_window: Duration::from_millis(100),
            capacity_connections: 1,
            response_timeout: Duration::from_millis(200),
            ..OverloadConfig::default()
        };
        let report = run_overload(&cfg);
        assert_eq!(report.capacity_per_sec, 0.0);
        assert!(report.points.is_empty(), "no sweep against a dead server: {report:?}");
    }

    #[test]
    fn closed_loop_counts_governor_sheds_apart_from_failures() {
        use crate::governor::GovernorConfig;
        let server = Server::start(ServeConfig {
            workers: 1,
            governor: GovernorConfig { fr_only: true, ..GovernorConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let cfg = LoadgenConfig {
            addr: server.addr(),
            connections: 1,
            duration: Duration::from_millis(200),
            use_cases: vec![UseCase::Fr, UseCase::Sv],
            ..LoadgenConfig::default()
        };
        let report = run(&cfg);
        let stats = server.shutdown();
        assert!(report.errors.shed > 0, "SV requests must be shed: {:?}", report.errors);
        assert_eq!(report.requests_failed, 0, "sheds are not failures: {:?}", report.errors);
        assert_eq!(report.errors.shed, stats.requests_shed, "client and server shed counts agree");
        assert_eq!(report.requests_ok, stats.requests_ok + stats.requests_rejected);
    }

    #[test]
    fn head_says_close_parses_connection_header() {
        assert!(head_says_close(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n"));
        assert!(head_says_close(b"HTTP/1.1 200 OK\r\nCONNECTION:  Close \r\n\r\n"));
        assert!(!head_says_close(b"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\n\r\n"));
        assert!(!head_says_close(b"HTTP/1.1 200 OK\r\n\r\n"));
    }

    #[test]
    fn drain_helper_survives_closed_socket() {
        let server = Server::start(ServeConfig::default()).expect("bind loopback");
        let s = TcpStream::connect(server.addr()).expect("connect");
        server.shutdown();
        drain(s);
    }
}
