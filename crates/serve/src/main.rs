//! `aon-serve` — run the live AON server standalone.
//!
//! ```text
//! aon-serve [--addr 127.0.0.1:8080] [--threads N] [--for SECS] [--no-obs]
//!           [--parse-mode fast|scalar] [--no-governor] [--fr-only]
//!           [--p99-budget-ms N] [--queue-budget N]
//!           [--no-trace] [--trace-capacity N] [--trace-sample-ppm N]
//!           [--trace-seed N] [--hw]
//!           [--no-profiler] [--profile-hz N] [--exemplar-threshold-ns N]
//! ```
//!
//! Binds, prints the bound address (the OS picks a port when `:0` is
//! given), serves until `--for` seconds elapse (default: forever), then
//! shuts down gracefully and prints the final counters. The load
//! generator lives in `aon-bench` (`cargo run --release --bin loadgen`).

use aon_serve::server::{ServeConfig, Server};
use std::time::Duration;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("aon-serve: {msg}");
            std::process::exit(2);
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut cfg = ServeConfig { addr: "127.0.0.1:8080".to_string(), ..ServeConfig::default() };
    let mut run_for: Option<Duration> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--threads" => {
                cfg.workers = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--for" => {
                let secs: u64 = value("--for")?.parse().map_err(|e| format!("--for: {e}"))?;
                run_for = Some(Duration::from_secs(secs));
            }
            "--no-obs" => cfg.observe = false,
            "--parse-mode" => {
                let v = value("--parse-mode")?;
                cfg.parse_mode = aon_server::ParseMode::from_str_opt(&v)
                    .ok_or_else(|| format!("--parse-mode: expected fast|scalar, got {v:?}"))?;
            }
            "--no-governor" => cfg.governor.enabled = false,
            "--fr-only" => cfg.governor.fr_only = true,
            "--p99-budget-ms" => {
                let ms: u64 = value("--p99-budget-ms")?
                    .parse()
                    .map_err(|e| format!("--p99-budget-ms: {e}"))?;
                cfg.governor.p99_budget = Duration::from_millis(ms);
            }
            "--queue-budget" => {
                cfg.governor.queue_depth_budget =
                    value("--queue-budget")?.parse().map_err(|e| format!("--queue-budget: {e}"))?;
            }
            "--no-trace" => cfg.trace.enabled = false,
            "--trace-capacity" => {
                cfg.trace.capacity = value("--trace-capacity")?
                    .parse()
                    .map_err(|e| format!("--trace-capacity: {e}"))?;
            }
            "--trace-sample-ppm" => {
                cfg.trace.sample_per_million = value("--trace-sample-ppm")?
                    .parse()
                    .map_err(|e| format!("--trace-sample-ppm: {e}"))?;
            }
            "--trace-seed" => {
                cfg.trace.seed =
                    value("--trace-seed")?.parse().map_err(|e| format!("--trace-seed: {e}"))?;
            }
            "--hw" => cfg.hw_counters = true,
            "--no-profiler" => cfg.profiler.enabled = false,
            "--profile-hz" => {
                cfg.profiler.sample_hz =
                    value("--profile-hz")?.parse().map_err(|e| format!("--profile-hz: {e}"))?;
            }
            "--exemplar-threshold-ns" => {
                cfg.exemplar_threshold_ns = value("--exemplar-threshold-ns")?
                    .parse()
                    .map_err(|e| format!("--exemplar-threshold-ns: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: aon-serve [--addr HOST:PORT] [--threads N] [--for SECS] [--no-obs] \
                     [--parse-mode fast|scalar] [--no-governor] [--fr-only] \
                     [--p99-budget-ms N] [--queue-budget N] \
                     [--no-trace] [--trace-capacity N] [--trace-sample-ppm N] [--trace-seed N] \
                     [--hw] [--no-profiler] [--profile-hz N] [--exemplar-threshold-ns N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }

    let server = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!("aon-serve listening on {}", server.addr());

    match run_for {
        Some(d) => std::thread::sleep(d),
        None => loop {
            // No signal handling in this hermetic workspace: run until
            // killed. Periodic heartbeat keeps the process observable.
            std::thread::sleep(Duration::from_secs(60));
            let s = server.stats();
            println!(
                "aon-serve: {} requests served, {} protocol errors",
                s.requests_total(),
                s.protocol_errors()
            );
        },
    }

    let stats = server.shutdown();
    println!(
        "aon-serve: done — accepted {}, served {} ({} ok, {} routed-reject, {} shed), \
         {} bad requests, {} too large, {} timeouts, {} dropped at backlog",
        stats.accepted,
        stats.requests_total(),
        stats.requests_ok,
        stats.requests_rejected,
        stats.requests_shed,
        stats.bad_request,
        stats.too_large,
        stats.timeouts,
        stats.dropped_backlog,
    );
    Ok(())
}
