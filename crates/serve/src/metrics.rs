//! Live-benchmark metrics: latency summaries and the `BENCH_live.json`
//! report.
//!
//! All counter arithmetic here goes through lossless conversions
//! ([`aon_trace::num`]) — this file is on the `aon-audit` cast-enforced
//! list, like every other file that feeds numbers into reports.

use crate::server::ServeStatsSnapshot;
use aon_trace::num::exact_f64;

/// Latency percentiles over one run, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: u64,
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

/// Summarize raw nanosecond samples (sorts in place).
pub fn summarize_latencies(samples_ns: &mut [u64]) -> LatencySummary {
    if samples_ns.is_empty() {
        return LatencySummary::default();
    }
    samples_ns.sort_unstable();
    let count = u64::try_from(samples_ns.len()).expect("sample count fits u64");
    let sum: u64 = samples_ns.iter().sum();
    let to_us = |ns: u64| exact_f64(ns) / 1000.0;
    LatencySummary {
        count,
        p50_us: to_us(percentile(samples_ns, 50)),
        p99_us: to_us(percentile(samples_ns, 99)),
        max_us: to_us(*samples_ns.last().expect("non-empty")),
        mean_us: exact_f64(sum) / exact_f64(count) / 1000.0,
    }
}

/// Nearest-rank percentile of a sorted slice (`pct` in 0..=100).
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    debug_assert!(!sorted.is_empty() && pct <= 100);
    let idx = ((sorted.len() - 1) * pct + 50) / 100;
    sorted[idx.min(sorted.len() - 1)]
}

/// Client-side failure breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadgenErrors {
    /// Responses whose status did not match the expected routing outcome.
    pub status_mismatch: u64,
    /// Wire-level failures (framing, timeouts, mid-message EOF).
    pub wire: u64,
    /// Socket-level failures (connect/write errors).
    pub io: u64,
    /// Reconnects after the server's keep-alive cap (not failures).
    pub reconnects: u64,
}

impl LoadgenErrors {
    /// Failures that count against the run (reconnects do not).
    pub fn failed(&self) -> u64 {
        self.status_mismatch + self.wire + self.io
    }
}

/// The netperf-style closed-loop result — serialized as `BENCH_live.json`.
#[derive(Debug, Clone)]
pub struct LiveBenchReport {
    /// Wall-clock measurement window in seconds.
    pub duration_secs: f64,
    /// Concurrent closed-loop connections.
    pub connections: u64,
    /// Use-case labels driven (request mix).
    pub use_cases: Vec<String>,
    /// Requests completed with the expected status.
    pub requests_ok: u64,
    /// Requests that failed (see [`LoadgenErrors`]).
    pub requests_failed: u64,
    /// Client-side failure breakdown.
    pub errors: LoadgenErrors,
    /// Request payload bytes pushed through the server.
    pub payload_bytes: u64,
    /// End-to-end request latency percentiles.
    pub latency: LatencySummary,
    /// Server counters at the end of the run (when the server was
    /// in-process; `None` against a remote server).
    pub server: Option<ServeStatsSnapshot>,
}

impl LiveBenchReport {
    /// Completed requests per wall second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.duration_secs > 0.0 {
            exact_f64(self.requests_ok) / self.duration_secs
        } else {
            0.0
        }
    }

    /// Request payload megabits per wall second (the paper's Mbps axis).
    pub fn payload_mbps(&self) -> f64 {
        if self.duration_secs > 0.0 {
            exact_f64(self.payload_bytes) * 8.0 / self.duration_secs / 1_000_000.0
        } else {
            0.0
        }
    }

    /// Render as a JSON object (hand-rolled: the workspace is hermetic, no
    /// serde). All values are finite by construction.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"duration_secs\": {:.3},\n", self.duration_secs));
        s.push_str(&format!("  \"connections\": {},\n", self.connections));
        let cases: Vec<String> = self.use_cases.iter().map(|u| format!("\"{u}\"")).collect();
        s.push_str(&format!("  \"use_cases\": [{}],\n", cases.join(", ")));
        s.push_str(&format!("  \"requests_ok\": {},\n", self.requests_ok));
        s.push_str(&format!("  \"requests_failed\": {},\n", self.requests_failed));
        s.push_str(&format!("  \"requests_per_sec\": {:.2},\n", self.requests_per_sec()));
        s.push_str(&format!("  \"payload_mbps\": {:.3},\n", self.payload_mbps()));
        s.push_str("  \"latency_us\": {\n");
        s.push_str(&format!("    \"count\": {},\n", self.latency.count));
        s.push_str(&format!("    \"p50\": {:.1},\n", self.latency.p50_us));
        s.push_str(&format!("    \"p99\": {:.1},\n", self.latency.p99_us));
        s.push_str(&format!("    \"max\": {:.1},\n", self.latency.max_us));
        s.push_str(&format!("    \"mean\": {:.1}\n", self.latency.mean_us));
        s.push_str("  },\n");
        s.push_str("  \"errors\": {\n");
        s.push_str(&format!("    \"status_mismatch\": {},\n", self.errors.status_mismatch));
        s.push_str(&format!("    \"wire\": {},\n", self.errors.wire));
        s.push_str(&format!("    \"io\": {},\n", self.errors.io));
        s.push_str(&format!("    \"reconnects\": {}\n", self.errors.reconnects));
        s.push_str("  }");
        if let Some(srv) = &self.server {
            s.push_str(",\n  \"server\": {\n");
            s.push_str(&format!("    \"accepted\": {},\n", srv.accepted));
            s.push_str(&format!("    \"dropped_backlog\": {},\n", srv.dropped_backlog));
            s.push_str(&format!("    \"requests_ok\": {},\n", srv.requests_ok));
            s.push_str(&format!("    \"requests_rejected\": {},\n", srv.requests_rejected));
            s.push_str(&format!("    \"not_found\": {},\n", srv.not_found));
            s.push_str(&format!("    \"bad_request\": {},\n", srv.bad_request));
            s.push_str(&format!("    \"too_large\": {},\n", srv.too_large));
            s.push_str(&format!("    \"timeouts\": {},\n", srv.timeouts));
            s.push_str(&format!("    \"io_errors\": {},\n", srv.io_errors));
            s.push_str(&format!("    \"protocol_errors\": {}\n", srv.protocol_errors()));
            s.push_str("  }\n");
        } else {
            s.push('\n');
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_distribution() {
        let mut ns: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        let s = summarize_latencies(&mut ns);
        assert_eq!(s.count, 100);
        assert!((s.p50_us - 50.0).abs() <= 1.0, "p50 {}", s.p50_us);
        assert!((s.p99_us - 99.0).abs() <= 1.0, "p99 {}", s.p99_us);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 0.01);
    }

    #[test]
    fn empty_samples_summarize_to_zero() {
        let s = summarize_latencies(&mut Vec::new());
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = summarize_latencies(&mut [7_000]);
        assert_eq!((s.p50_us, s.p99_us, s.max_us), (7.0, 7.0, 7.0));
    }

    #[test]
    fn rates_derive_from_duration() {
        let r = report_fixture();
        assert!((r.requests_per_sec() - 500.0).abs() < 0.01);
        // 1 MB over 2 s = 4 Mbps.
        assert!((r.payload_mbps() - 4.0).abs() < 0.01);
    }

    #[test]
    fn json_is_python_parseable_shape() {
        let mut r = report_fixture();
        r.server =
            Some(ServeStatsSnapshot { requests_ok: 1000, accepted: 4, ..Default::default() });
        let j = r.to_json();
        assert!(j.contains("\"requests_per_sec\": 500.00"));
        assert!(j.contains("\"protocol_errors\": 0"));
        assert!(j.contains("\"use_cases\": [\"FR\", \"CBR\"]"));
        // Balanced braces, no trailing commas before closers.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"));
        assert!(!j.contains(",\n  }"));
    }

    fn report_fixture() -> LiveBenchReport {
        LiveBenchReport {
            duration_secs: 2.0,
            connections: 4,
            use_cases: vec!["FR".to_string(), "CBR".to_string()],
            requests_ok: 1000,
            requests_failed: 0,
            errors: LoadgenErrors::default(),
            payload_bytes: 1_000_000,
            latency: LatencySummary {
                count: 1000,
                p50_us: 100.0,
                p99_us: 900.0,
                max_us: 1000.0,
                mean_us: 150.0,
            },
            server: None,
        }
    }
}
