//! Live-benchmark metrics: latency summaries and the `BENCH_live.json`
//! report.
//!
//! Latency summarization itself lives in [`aon_obs::latency`] (one
//! implementation shared between this load generator and the server's
//! histogram layer) and is re-exported here for compatibility.
//!
//! All counter arithmetic here goes through lossless conversions
//! ([`aon_trace::num`]) — this file is on the `aon-audit` cast-enforced
//! list, like every other file that feeds numbers into reports.

use crate::server::ServeStatsSnapshot;
use aon_trace::num::exact_f64;

pub use aon_obs::latency::{percentile, summarize_latencies, LatencySummary};

/// Client-side failure breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadgenErrors {
    /// Responses whose status did not match the expected routing outcome.
    pub status_mismatch: u64,
    /// Wire-level failures (framing, timeouts, mid-message EOF).
    pub wire: u64,
    /// Socket-level failures (connect/write errors).
    pub io: u64,
    /// Reconnects after the server's keep-alive cap (not failures).
    pub reconnects: u64,
    /// `503` responses from the capacity governor. Tracked apart from
    /// `status_mismatch` because a shed is the server *working as
    /// designed* under overload — and the smoke gate asserts it is zero
    /// under nominal load, which a lumped mismatch count couldn't.
    pub shed: u64,
}

impl LoadgenErrors {
    /// Failures that count against the run (reconnects and governor
    /// sheds do not — a shed is an answered, well-formed refusal).
    pub fn failed(&self) -> u64 {
        self.status_mismatch + self.wire + self.io
    }
}

/// One (use case × pipeline stage) aggregate from the server's stage
/// histograms — the paper-style service-time decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCell {
    /// Use-case label (`"FR"`, `"CBR"`, …).
    pub use_case: &'static str,
    /// Stage label (`"parse"`, `"xpath"`, …).
    pub stage: &'static str,
    /// Requests that recorded time in this stage.
    pub count: u64,
    /// Total nanoseconds across those requests.
    pub total_ns: u64,
}

/// The observability-overhead comparison: the same closed loop run with
/// the software counters off and on, so the probe cost is a recorded
/// number instead of folklore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsOverhead {
    /// Loadgen p50 with observability disabled (no-op probe run), µs.
    pub p50_us_obs_off: f64,
    /// Loadgen p50 with observability enabled, µs.
    pub p50_us_obs_on: f64,
}

impl ObsOverhead {
    /// Relative p50 change from enabling observability, in percent
    /// (positive = slower with observability).
    pub fn delta_pct(&self) -> f64 {
        if self.p50_us_obs_off > 0.0 {
            (self.p50_us_obs_on - self.p50_us_obs_off) / self.p50_us_obs_off * 100.0
        } else {
            0.0
        }
    }
}

/// The profiler-overhead comparison: the same closed loop run with the
/// continuous worker-state profiler off and on (observability on in
/// both), so the sampler's cost is a recorded number next to
/// [`ObsOverhead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileOverhead {
    /// Loadgen p50 with the profiler disabled, µs.
    pub p50_us_profile_off: f64,
    /// Loadgen p50 with the profiler enabled, µs.
    pub p50_us_profile_on: f64,
}

impl ProfileOverhead {
    /// Relative p50 change from enabling the profiler, in percent
    /// (positive = slower with the profiler).
    pub fn delta_pct(&self) -> f64 {
        if self.p50_us_profile_off > 0.0 {
            (self.p50_us_profile_on - self.p50_us_profile_off) / self.p50_us_profile_off * 100.0
        } else {
            0.0
        }
    }
}

/// One offered-load step of the overload sweep: open-loop arrivals at
/// `multiplier ×` the measured closed-loop capacity, classified by what
/// came back.
#[derive(Debug, Clone)]
pub struct OverloadPoint {
    /// Offered load as a multiple of the measured capacity.
    pub multiplier: f64,
    /// Target arrival rate for this step (requests/second).
    pub offered_per_sec: f64,
    /// Arrivals attempted (connects initiated on schedule).
    pub sent: u64,
    /// Responses with the expected routing status — the goodput numerator.
    pub good: u64,
    /// `503` refusals from the capacity governor (graceful shed).
    pub shed: u64,
    /// Responses with any other unexpected status.
    pub wrong_status: u64,
    /// Arrivals that got no response: connect/write/read failures —
    /// including connections dropped at the full accept queue.
    pub dropped: u64,
    /// Scheduled arrivals skipped because the generator fell behind its
    /// own schedule (reported, never silently compressed into a lower
    /// offered rate).
    pub missed_slots: u64,
    /// Wall-clock length of this step's window, seconds.
    pub duration_secs: f64,
    /// Latency percentiles of the `good` responses only.
    pub latency: LatencySummary,
}

impl OverloadPoint {
    /// Good responses per wall second — the goodput axis of the curve.
    /// Zero for a degenerate window (all-shed, or zero elapsed time);
    /// never a division by zero.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.duration_secs > 0.0 {
            exact_f64(self.good) / self.duration_secs
        } else {
            0.0
        }
    }
}

/// The goodput-vs-offered-load curve: capacity measured closed-loop,
/// then one [`OverloadPoint`] per multiplier.
#[derive(Debug, Clone, Default)]
pub struct OverloadReport {
    /// Closed-loop capacity baseline (requests/second).
    pub capacity_per_sec: f64,
    /// Whether the server under test had its governor enabled.
    pub governor_enabled: bool,
    /// One step per offered-load multiplier. Empty when the capacity
    /// phase completed zero requests (a sweep relative to zero capacity
    /// is meaningless).
    pub points: Vec<OverloadPoint>,
}

impl OverloadReport {
    /// Render as a JSON value (an object), lines indented by `indent`.
    pub fn to_json_value(&self, indent: &str) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("{indent}  \"capacity_per_sec\": {:.2},\n", self.capacity_per_sec));
        s.push_str(&format!("{indent}  \"governor_enabled\": {},\n", self.governor_enabled));
        if self.points.is_empty() {
            s.push_str(&format!("{indent}  \"points\": []\n"));
        } else {
            s.push_str(&format!("{indent}  \"points\": [\n"));
            let rows: Vec<String> = self
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{indent}    {{\"multiplier\": {:.1}, \"offered_per_sec\": {:.2}, \
                         \"sent\": {}, \"good\": {}, \"shed\": {}, \"wrong_status\": {}, \
                         \"dropped\": {}, \"missed_slots\": {}, \"duration_secs\": {:.3}, \
                         \"goodput_per_sec\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
                        p.multiplier,
                        p.offered_per_sec,
                        p.sent,
                        p.good,
                        p.shed,
                        p.wrong_status,
                        p.dropped,
                        p.missed_slots,
                        p.duration_secs,
                        p.goodput_per_sec(),
                        p.latency.p50_us,
                        p.latency.p99_us,
                    )
                })
                .collect();
            s.push_str(&rows.join(",\n"));
            s.push_str(&format!("\n{indent}  ]\n"));
        }
        s.push_str(&format!("{indent}}}"));
        s
    }
}

/// One per-use-case row of the live hardware-counter characterization —
/// the live analogue of the paper's Table 4 (CPI) and Figures 4/5
/// (misses per workload), measured by `hw-report` from the `aon_hw_*`
/// metric families.
#[derive(Debug, Clone, PartialEq)]
pub struct HwRow {
    /// Use-case label (`"FR"`, `"CBR"`, …).
    pub use_case: &'static str,
    /// Requests the counted events are attributed to.
    pub requests: u64,
    /// CPU cycles across all pipeline stages.
    pub cycles: u64,
    /// Instructions retired across all pipeline stages.
    pub instructions: u64,
    /// L1 data-cache read misses.
    pub l1d_miss: u64,
    /// Last-level cache misses (the paper's L2 miss axis).
    pub llc_miss: u64,
    /// Branch mispredictions.
    pub branch_miss: u64,
    /// The simulator/paper CPI prediction for this use case, when one
    /// exists (Table 4's single-processor Pentium M column).
    pub predicted_cpi: Option<f64>,
}

impl HwRow {
    /// Measured cycles per instruction (0.0 before any instruction
    /// retires — e.g. the noop backend).
    pub fn cpi(&self) -> f64 {
        aon_trace::num::ratio(self.cycles, self.instructions)
    }

    /// Measured LLC misses per request (0.0 with no requests).
    pub fn llc_miss_per_request(&self) -> f64 {
        aon_trace::num::ratio(self.llc_miss, self.requests)
    }

    /// Measured branch misses per request (0.0 with no requests).
    pub fn branch_miss_per_request(&self) -> f64 {
        aon_trace::num::ratio(self.branch_miss, self.requests)
    }
}

/// The `"hw"` section of `BENCH_live.json`: backend identification plus
/// the per-use-case counter table. Present even when the PMU is
/// unavailable — the `backend`/`reason` pair *is* the degrade report.
#[derive(Debug, Clone, PartialEq)]
pub struct HwSection {
    /// `"perf_event"` or `"noop"`.
    pub backend: String,
    /// Why the backend degraded (empty for a fully live PMU).
    pub reason: String,
    /// One row per use case driven (empty on the noop backend).
    pub rows: Vec<HwRow>,
}

impl HwSection {
    /// Render as a JSON value (an object), lines indented by `indent`.
    pub fn to_json_value(&self, indent: &str) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        s.push_str(&format!("{indent}  \"backend\": \"{}\",\n", self.backend));
        s.push_str(&format!("{indent}  \"reason\": \"{}\",\n", self.reason.replace('"', "'")));
        if self.rows.is_empty() {
            s.push_str(&format!("{indent}  \"rows\": []\n"));
        } else {
            s.push_str(&format!("{indent}  \"rows\": [\n"));
            let rows: Vec<String> = self
                .rows
                .iter()
                .map(|r| {
                    let predicted =
                        r.predicted_cpi.map_or("null".to_string(), |v| format!("{v:.3}"));
                    format!(
                        "{indent}    {{\"use_case\": \"{}\", \"requests\": {}, \
                         \"cycles\": {}, \"instructions\": {}, \"cpi\": {:.3}, \
                         \"l1d_miss\": {}, \"llc_miss\": {}, \"branch_miss\": {}, \
                         \"llc_miss_per_request\": {:.2}, \"branch_miss_per_request\": {:.2}, \
                         \"predicted_cpi\": {predicted}}}",
                        r.use_case,
                        r.requests,
                        r.cycles,
                        r.instructions,
                        r.cpi(),
                        r.l1d_miss,
                        r.llc_miss,
                        r.branch_miss,
                        r.llc_miss_per_request(),
                        r.branch_miss_per_request(),
                    )
                })
                .collect();
            s.push_str(&rows.join(",\n"));
            s.push_str(&format!("\n{indent}  ]\n"));
        }
        s.push_str(&format!("{indent}}}"));
        s
    }
}

/// The netperf-style closed-loop result — serialized as `BENCH_live.json`.
#[derive(Debug, Clone)]
pub struct LiveBenchReport {
    /// Wall-clock measurement window in seconds.
    pub duration_secs: f64,
    /// Concurrent closed-loop connections.
    pub connections: u64,
    /// Use-case labels driven (request mix).
    pub use_cases: Vec<String>,
    /// Parser implementation the server ran (`"scalar"` | `"fast"`);
    /// `None` against an external server whose mode is unknown.
    pub parse_mode: Option<String>,
    /// Requests completed with the expected status.
    pub requests_ok: u64,
    /// Requests that failed (see [`LoadgenErrors`]).
    pub requests_failed: u64,
    /// Client-side failure breakdown.
    pub errors: LoadgenErrors,
    /// Request payload bytes pushed through the server.
    pub payload_bytes: u64,
    /// End-to-end request latency percentiles.
    pub latency: LatencySummary,
    /// Per-stage service-time breakdown from the server's observability
    /// layer (empty against a remote server or with observability off).
    pub stages: Vec<StageCell>,
    /// Observability probe-overhead comparison (present only when the
    /// run measured both modes, e.g. `loadgen --obs-overhead`).
    pub obs_overhead: Option<ObsOverhead>,
    /// Continuous-profiler overhead comparison (present only when the
    /// run measured both modes, e.g. `loadgen --profile-overhead`).
    pub profile_overhead: Option<ProfileOverhead>,
    /// Goodput-vs-offered-load curve (present only when the run included
    /// the overload scenario, e.g. `loadgen --overload`).
    pub overload: Option<OverloadReport>,
    /// Live hardware-counter characterization (present only when the
    /// run collected it, e.g. `hw-report`).
    pub hw: Option<HwSection>,
    /// Server counters at the end of the run (when the server was
    /// in-process; `None` against a remote server).
    pub server: Option<ServeStatsSnapshot>,
}

impl LiveBenchReport {
    /// Completed requests per wall second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.duration_secs > 0.0 {
            exact_f64(self.requests_ok) / self.duration_secs
        } else {
            0.0
        }
    }

    /// Request payload megabits per wall second (the paper's Mbps axis).
    pub fn payload_mbps(&self) -> f64 {
        if self.duration_secs > 0.0 {
            exact_f64(self.payload_bytes) * 8.0 / self.duration_secs / 1_000_000.0
        } else {
            0.0
        }
    }

    /// Render as a JSON object (hand-rolled: the workspace is hermetic, no
    /// serde). All values are finite by construction.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str(&format!("  \"duration_secs\": {:.3},\n", self.duration_secs));
        s.push_str(&format!("  \"connections\": {},\n", self.connections));
        let cases: Vec<String> = self.use_cases.iter().map(|u| format!("\"{u}\"")).collect();
        s.push_str(&format!("  \"use_cases\": [{}],\n", cases.join(", ")));
        if let Some(pm) = &self.parse_mode {
            s.push_str(&format!("  \"parse_mode\": \"{pm}\",\n"));
        }
        s.push_str(&format!("  \"requests_ok\": {},\n", self.requests_ok));
        s.push_str(&format!("  \"requests_failed\": {},\n", self.requests_failed));
        s.push_str(&format!("  \"requests_per_sec\": {:.2},\n", self.requests_per_sec()));
        s.push_str(&format!("  \"payload_mbps\": {:.3},\n", self.payload_mbps()));
        s.push_str("  \"latency_us\": {\n");
        s.push_str(&format!("    \"count\": {},\n", self.latency.count));
        s.push_str(&format!("    \"p50\": {:.1},\n", self.latency.p50_us));
        s.push_str(&format!("    \"p99\": {:.1},\n", self.latency.p99_us));
        s.push_str(&format!("    \"p999\": {:.1},\n", self.latency.p999_us));
        s.push_str(&format!("    \"max\": {:.1},\n", self.latency.max_us));
        s.push_str(&format!("    \"mean\": {:.1}\n", self.latency.mean_us));
        s.push_str("  },\n");
        s.push_str("  \"errors\": {\n");
        s.push_str(&format!("    \"status_mismatch\": {},\n", self.errors.status_mismatch));
        s.push_str(&format!("    \"wire\": {},\n", self.errors.wire));
        s.push_str(&format!("    \"io\": {},\n", self.errors.io));
        s.push_str(&format!("    \"reconnects\": {},\n", self.errors.reconnects));
        s.push_str(&format!("    \"shed\": {}\n", self.errors.shed));
        s.push_str("  },\n");
        let cells: Vec<String> = self
            .stages
            .iter()
            .map(|c| {
                format!(
                    "    {{\"use_case\": \"{}\", \"stage\": \"{}\", \"count\": {}, \"total_ns\": {}}}",
                    c.use_case, c.stage, c.count, c.total_ns
                )
            })
            .collect();
        if cells.is_empty() {
            s.push_str("  \"stages\": []");
        } else {
            s.push_str(&format!("  \"stages\": [\n{}\n  ]", cells.join(",\n")));
        }
        if let Some(o) = &self.obs_overhead {
            s.push_str(",\n  \"obs_overhead\": {\n");
            s.push_str(&format!("    \"p50_us_obs_off\": {:.1},\n", o.p50_us_obs_off));
            s.push_str(&format!("    \"p50_us_obs_on\": {:.1},\n", o.p50_us_obs_on));
            s.push_str(&format!("    \"delta_pct\": {:.2}\n", o.delta_pct()));
            s.push_str("  }");
        }
        if let Some(p) = &self.profile_overhead {
            s.push_str(",\n  \"profile_overhead\": {\n");
            s.push_str(&format!("    \"p50_us_profile_off\": {:.1},\n", p.p50_us_profile_off));
            s.push_str(&format!("    \"p50_us_profile_on\": {:.1},\n", p.p50_us_profile_on));
            s.push_str(&format!("    \"delta_pct\": {:.2}\n", p.delta_pct()));
            s.push_str("  }");
        }
        if let Some(ov) = &self.overload {
            s.push_str(",\n  \"overload\": ");
            s.push_str(&ov.to_json_value("  "));
        }
        if let Some(hw) = &self.hw {
            s.push_str(",\n  \"hw\": ");
            s.push_str(&hw.to_json_value("  "));
        }
        if let Some(srv) = &self.server {
            s.push_str(",\n  \"server\": ");
            s.push_str(&srv.to_json_object("  "));
            s.push('\n');
        } else {
            s.push('\n');
        }
        s.push_str("}\n");
        s
    }
}

impl ServeStatsSnapshot {
    /// Render as a JSON object with lines indented by `indent` (the
    /// same object serves as the `"server"` section of
    /// `BENCH_live.json` and as the body of `GET /stats.json`).
    pub fn to_json_object(&self, indent: &str) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        let mut field = |name: &str, value: u64, last: bool| {
            s.push_str(&format!("{indent}  \"{name}\": {value}{}\n", if last { "" } else { "," }));
        };
        field("accepted", self.accepted, false);
        field("dropped_backlog", self.dropped_backlog, false);
        field("rejected_closed", self.rejected_closed, false);
        field("queue_depth_hwm", self.queue_depth_hwm, false);
        field("requests_ok", self.requests_ok, false);
        field("requests_rejected", self.requests_rejected, false);
        field("requests_shed", self.requests_shed, false);
        field("not_found", self.not_found, false);
        field("bad_request", self.bad_request, false);
        field("too_large", self.too_large, false);
        field("timeouts", self.timeouts, false);
        field("io_errors", self.io_errors, false);
        field("admin_requests", self.admin_requests, false);
        field("protocol_errors", self.protocol_errors(), true);
        s.push_str(&format!("{indent}}}"));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_derive_from_duration() {
        let r = report_fixture();
        assert!((r.requests_per_sec() - 500.0).abs() < 0.01);
        // 1 MB over 2 s = 4 Mbps.
        assert!((r.payload_mbps() - 4.0).abs() < 0.01);
    }

    #[test]
    fn json_is_python_parseable_shape() {
        let mut r = report_fixture();
        r.server =
            Some(ServeStatsSnapshot { requests_ok: 1000, accepted: 4, ..Default::default() });
        let j = r.to_json();
        assert!(j.contains("\"requests_per_sec\": 500.00"));
        assert!(j.contains("\"protocol_errors\": 0"));
        assert!(j.contains("\"use_cases\": [\"FR\", \"CBR\"]"));
        assert!(j.contains("\"parse_mode\": \"fast\""));
        // The extended snapshot fields must be present in the report.
        assert!(j.contains("\"queue_depth_hwm\": 0"));
        assert!(j.contains("\"rejected_closed\": 0"));
        assert!(j.contains("\"admin_requests\": 0"));
        assert!(j.contains("\"stages\": []"));
        // Balanced braces, no trailing commas before closers.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"));
        assert!(!j.contains(",\n  }"));
    }

    #[test]
    fn json_carries_stage_cells_and_overhead_when_present() {
        let mut r = report_fixture();
        r.stages = vec![
            StageCell { use_case: "CBR", stage: "parse", count: 10, total_ns: 12345 },
            StageCell { use_case: "CBR", stage: "xpath", count: 10, total_ns: 2345 },
        ];
        r.obs_overhead = Some(ObsOverhead { p50_us_obs_off: 100.0, p50_us_obs_on: 103.0 });
        let j = r.to_json();
        assert!(j.contains("\"use_case\": \"CBR\", \"stage\": \"parse\", \"count\": 10"), "{j}");
        assert!(j.contains("\"p50_us_obs_off\": 100.0"));
        assert!(j.contains("\"delta_pct\": 3.00"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"));
    }

    #[test]
    fn json_carries_overload_curve_when_present() {
        let mut r = report_fixture();
        r.errors.shed = 3;
        r.overload = Some(OverloadReport {
            capacity_per_sec: 1000.0,
            governor_enabled: true,
            points: vec![OverloadPoint {
                multiplier: 2.0,
                offered_per_sec: 2000.0,
                sent: 900,
                good: 700,
                shed: 150,
                wrong_status: 0,
                dropped: 50,
                missed_slots: 20,
                duration_secs: 0.5,
                latency: LatencySummary::default(),
            }],
        });
        let j = r.to_json();
        assert!(j.contains("\"shed\": 3"), "{j}");
        assert!(j.contains("\"capacity_per_sec\": 1000.00"), "{j}");
        assert!(j.contains("\"governor_enabled\": true"));
        assert!(j.contains("\"goodput_per_sec\": 1400.00"));
        assert!(j.contains("\"missed_slots\": 20"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"));
        assert!(!j.contains(",\n  }"));
    }

    #[test]
    fn degenerate_overload_points_never_divide_by_zero() {
        // All-shed window: zero good responses, empty latency set.
        let p = OverloadPoint {
            multiplier: 4.0,
            offered_per_sec: 100.0,
            sent: 50,
            good: 0,
            shed: 50,
            wrong_status: 0,
            dropped: 0,
            missed_slots: 0,
            duration_secs: 0.5,
            latency: LatencySummary::default(),
        };
        assert_eq!(p.goodput_per_sec(), 0.0);
        // Zero-length window (clock went nowhere): still finite.
        let z = OverloadPoint { duration_secs: 0.0, ..p.clone() };
        assert_eq!(z.goodput_per_sec(), 0.0);
        // An empty report (capacity phase served nothing) serializes.
        let empty = OverloadReport::default();
        let j = empty.to_json_value("");
        assert!(j.contains("\"points\": []"), "{j}");
        assert!(j.contains("\"capacity_per_sec\": 0.00"));
    }

    #[test]
    fn overhead_delta_is_relative() {
        let o = ObsOverhead { p50_us_obs_off: 200.0, p50_us_obs_on: 190.0 };
        assert!((o.delta_pct() + 5.0).abs() < 0.001, "faster-with-obs is negative");
        let zero = ObsOverhead { p50_us_obs_off: 0.0, p50_us_obs_on: 5.0 };
        assert_eq!(zero.delta_pct(), 0.0);
        let p = ProfileOverhead { p50_us_profile_off: 200.0, p50_us_profile_on: 202.0 };
        assert!((p.delta_pct() - 1.0).abs() < 0.001);
        let zero = ProfileOverhead { p50_us_profile_off: 0.0, p50_us_profile_on: 5.0 };
        assert_eq!(zero.delta_pct(), 0.0);
    }

    #[test]
    fn json_carries_profile_overhead_next_to_obs_overhead() {
        let mut r = report_fixture();
        r.obs_overhead = Some(ObsOverhead { p50_us_obs_off: 100.0, p50_us_obs_on: 101.0 });
        r.profile_overhead =
            Some(ProfileOverhead { p50_us_profile_off: 101.0, p50_us_profile_on: 102.0 });
        let j = r.to_json();
        assert!(j.contains("\"obs_overhead\""), "{j}");
        assert!(j.contains("\"profile_overhead\""), "{j}");
        assert!(j.contains("\"p50_us_profile_off\": 101.0"), "{j}");
        assert!(j.contains("\"p50_us_profile_on\": 102.0"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"));
        assert!(!j.contains(",\n  }"));
    }

    fn report_fixture() -> LiveBenchReport {
        LiveBenchReport {
            duration_secs: 2.0,
            connections: 4,
            use_cases: vec!["FR".to_string(), "CBR".to_string()],
            parse_mode: Some("fast".to_string()),
            requests_ok: 1000,
            requests_failed: 0,
            errors: LoadgenErrors::default(),
            payload_bytes: 1_000_000,
            latency: LatencySummary {
                count: 1000,
                p50_us: 100.0,
                p99_us: 900.0,
                p999_us: 980.0,
                max_us: 1000.0,
                mean_us: 150.0,
            },
            stages: Vec::new(),
            obs_overhead: None,
            profile_overhead: None,
            overload: None,
            hw: None,
            server: None,
        }
    }

    #[test]
    fn json_carries_hw_section_and_p999() {
        let mut r = report_fixture();
        r.hw = Some(HwSection {
            backend: "perf_event".to_string(),
            reason: String::new(),
            rows: vec![HwRow {
                use_case: "SV",
                requests: 100,
                cycles: 2_000_000,
                instructions: 1_000_000,
                l1d_miss: 5_000,
                llc_miss: 1_000,
                branch_miss: 700,
                predicted_cpi: Some(1.23),
            }],
        });
        let j = r.to_json();
        assert!(j.contains("\"p999\": 980.0"), "{j}");
        assert!(j.contains("\"backend\": \"perf_event\""));
        assert!(j.contains("\"cpi\": 2.000"), "{j}");
        assert!(j.contains("\"llc_miss_per_request\": 10.00"), "{j}");
        assert!(j.contains("\"predicted_cpi\": 1.230"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"));
        // The noop degrade report serializes with empty rows and null
        // prediction handling intact.
        r.hw = Some(HwSection {
            backend: "noop".to_string(),
            reason: "cycles: ENOENT".to_string(),
            rows: Vec::new(),
        });
        let j = r.to_json();
        assert!(j.contains("\"backend\": \"noop\""));
        assert!(j.contains("\"rows\": []"));
    }
}
