//! The live server's observability core: every metric series the server
//! exposes, pre-registered at startup so the data path only touches
//! `Arc`'d atomic instruments — never the registry lock.
//!
//! Families (all prefixed `aon_`):
//!
//! * `aon_requests_total{use_case,outcome}` — engine-processed requests
//!   by routing outcome (`ok` = 200, `rejected` = 422);
//! * `aon_payload_bytes_total{use_case}` — request payload bytes;
//! * `aon_request_duration_ns{use_case}` — end-to-end service-time
//!   histogram (frame complete → response written);
//! * `aon_stage_duration_ns{use_case,stage}` — per-pipeline-phase
//!   histograms (parse / xpath / validate / dpi / crypto / write);
//! * `aon_http_responses_total{status}` — every non-admin response by
//!   status code;
//! * `aon_connections_accepted_total`,
//!   `aon_connections_dropped_total{reason}` — edge admission;
//! * `aon_accept_queue_depth_hwm` — accept-queue depth high-water mark;
//! * `aon_admin_requests_total` — `/metrics`, `/stats.json`,
//!   `/flight.jsonl` hits, counted **separately** so scraping never
//!   perturbs the request totals it reports.
//!
//! This file is on the `aon-audit` cast-enforced list.

use crate::metrics::StageCell;
use aon_obs::flight::{FlightRecorder, RequestEvent};
use aon_obs::metric::{Counter, Gauge, Histogram};
use aon_obs::registry::Registry;
use aon_obs::stage::{Stage, WallStages, STAGE_COUNT};
use aon_server::usecase::UseCase;
use std::sync::Arc;

/// Response statuses the server can produce (one counter series each).
pub const STATUSES: [u16; 6] = [200, 400, 404, 408, 413, 422];

/// Per-use-case instrument handles.
#[derive(Debug)]
struct UseCaseObs {
    ok: Arc<Counter>,
    rejected: Arc<Counter>,
    payload_bytes: Arc<Counter>,
    service_ns: Arc<Histogram>,
    stage_ns: [Arc<Histogram>; STAGE_COUNT],
}

/// All observability state for one [`crate::server::Server`].
#[derive(Debug)]
pub struct ServerObs {
    /// The metric catalogue behind `GET /metrics`.
    pub registry: Registry,
    /// Ring buffer of recent request events behind `GET /flight.jsonl`.
    pub flight: FlightRecorder,
    per_use: [UseCaseObs; 5],
    responses: [Arc<Counter>; 6],
    conns_accepted: Arc<Counter>,
    conns_dropped_backlog: Arc<Counter>,
    conns_rejected_closed: Arc<Counter>,
    queue_depth_hwm: Arc<Gauge>,
    admin_requests: Arc<Counter>,
}

fn use_case_index(uc: UseCase) -> usize {
    match uc {
        UseCase::Fr => 0,
        UseCase::Cbr => 1,
        UseCase::Sv => 2,
        UseCase::Dpi => 3,
        UseCase::Crypto => 4,
    }
}

impl ServerObs {
    /// Register every series the server will ever touch.
    pub fn new(flight_capacity: usize) -> ServerObs {
        let registry = Registry::new();
        let per_use = std::array::from_fn(|i| {
            let uc = UseCase::EXTENDED[i];
            let label = uc.label();
            UseCaseObs {
                ok: registry.counter(
                    "aon_requests_total",
                    "Engine-processed requests by routing outcome",
                    &[("use_case", label), ("outcome", "ok")],
                ),
                rejected: registry.counter(
                    "aon_requests_total",
                    "Engine-processed requests by routing outcome",
                    &[("use_case", label), ("outcome", "rejected")],
                ),
                payload_bytes: registry.counter(
                    "aon_payload_bytes_total",
                    "Request payload bytes by use case",
                    &[("use_case", label)],
                ),
                service_ns: registry.histogram(
                    "aon_request_duration_ns",
                    "End-to-end service time (frame complete to response written)",
                    &[("use_case", label)],
                ),
                stage_ns: std::array::from_fn(|s| {
                    registry.histogram(
                        "aon_stage_duration_ns",
                        "Pipeline phase time by use case and stage",
                        &[("use_case", label), ("stage", Stage::ALL[s].label())],
                    )
                }),
            }
        });
        let responses = std::array::from_fn(|i| {
            let status = STATUSES[i].to_string();
            registry.counter(
                "aon_http_responses_total",
                "Non-admin responses by HTTP status",
                &[("status", status.as_str())],
            )
        });
        ServerObs {
            conns_accepted: registry.counter(
                "aon_connections_accepted_total",
                "Connections accepted off the listener",
                &[],
            ),
            conns_dropped_backlog: registry.counter(
                "aon_connections_dropped_total",
                "Connections refused at the accept queue",
                &[("reason", "backlog")],
            ),
            conns_rejected_closed: registry.counter(
                "aon_connections_dropped_total",
                "Connections refused at the accept queue",
                &[("reason", "closed")],
            ),
            queue_depth_hwm: registry.gauge(
                "aon_accept_queue_depth_hwm",
                "Accept-queue depth high-water mark",
                &[],
            ),
            admin_requests: registry.counter(
                "aon_admin_requests_total",
                "Admin endpoint hits (excluded from request totals)",
                &[],
            ),
            flight: FlightRecorder::new(flight_capacity),
            per_use,
            responses,
            registry,
        }
    }

    /// A connection was accepted.
    pub fn connection_accepted(&self) {
        self.conns_accepted.inc();
    }

    /// A connection was refused because the accept queue was full.
    pub fn connection_dropped_backlog(&self) {
        self.conns_dropped_backlog.inc();
    }

    /// A connection was refused because the queue was closed (shutdown).
    pub fn connection_rejected_closed(&self) {
        self.conns_rejected_closed.inc();
    }

    /// Raise the accept-queue depth high-water mark.
    pub fn queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.record_max(depth);
    }

    /// An admin endpoint was served.
    pub fn admin_request(&self) {
        self.admin_requests.inc();
    }

    /// Record one completed (non-admin) request: status counter, per-use
    /// case outcome + payload + service/stage histograms, and a flight
    /// recorder event.
    pub fn record_request(
        &self,
        use_case: Option<UseCase>,
        status: u16,
        bytes: u64,
        total_ns: u64,
        stages: &WallStages,
    ) {
        if let Some(i) = STATUSES.iter().position(|&s| s == status) {
            self.responses[i].inc();
        }
        let label = match use_case {
            Some(uc) => {
                let u = &self.per_use[use_case_index(uc)];
                match status {
                    200 => u.ok.inc(),
                    422 => u.rejected.inc(),
                    _ => {}
                }
                u.payload_bytes.add(bytes);
                u.service_ns.record(total_ns);
                for stage in Stage::ALL {
                    let ns = stages.get(stage);
                    if ns > 0 {
                        u.stage_ns[stage.index()].record(ns);
                    }
                }
                uc.label()
            }
            None => "-",
        };
        self.flight.record(RequestEvent {
            seq: 0,
            status,
            use_case: label,
            bytes,
            total_ns,
            stage_ns: stages.ns,
        });
    }

    /// Per-(use case × stage) totals for the `BENCH_live.json` stage
    /// breakdown; cells that never recorded are omitted.
    pub fn stage_cells(&self) -> Vec<StageCell> {
        let mut out = Vec::new();
        for (i, u) in self.per_use.iter().enumerate() {
            let label = UseCase::EXTENDED[i].label();
            for stage in Stage::ALL {
                let h = &u.stage_ns[stage.index()];
                if h.count() > 0 {
                    out.push(StageCell {
                        use_case: label,
                        stage: stage.label(),
                        count: h.count(),
                        total_ns: h.sum(),
                    });
                }
            }
        }
        out
    }

    /// Total engine-processed requests (ok + rejected) across use cases
    /// — must equal the load generator's completed-request count.
    pub fn requests_processed(&self) -> u64 {
        self.per_use.iter().map(|u| u.ok.get() + u.rejected.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_request_updates_outcome_payload_and_stages() {
        let obs = ServerObs::new(16);
        let mut stages = WallStages::new();
        stages.add(Stage::Parse, 1000);
        stages.add(Stage::XPath, 500);
        obs.record_request(Some(UseCase::Cbr), 200, 240, 2000, &stages);
        obs.record_request(Some(UseCase::Cbr), 422, 240, 1500, &stages);
        obs.record_request(None, 400, 0, 100, &WallStages::new());

        assert_eq!(obs.requests_processed(), 2);
        let cells = obs.stage_cells();
        let parse = cells
            .iter()
            .find(|c| c.use_case == "CBR" && c.stage == "parse")
            .expect("parse cell exists");
        assert_eq!(parse.count, 2);
        assert_eq!(parse.total_ns, 2000);
        assert!(cells.iter().all(|c| c.use_case != "FR"), "FR never recorded");
        assert_eq!(obs.flight.len(), 3, "flight records every request, even 400s");

        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_requests_total{use_case=\"CBR\",outcome=\"ok\"} 1"), "{text}");
        assert!(text.contains("aon_requests_total{use_case=\"CBR\",outcome=\"rejected\"} 1"));
        assert!(text.contains("aon_http_responses_total{status=\"400\"} 1"));
        assert!(text.contains("aon_payload_bytes_total{use_case=\"CBR\"} 480"));
    }

    #[test]
    fn admin_and_connection_counters_are_separate() {
        let obs = ServerObs::new(4);
        obs.connection_accepted();
        obs.connection_dropped_backlog();
        obs.connection_rejected_closed();
        obs.queue_depth(7);
        obs.queue_depth(3);
        obs.admin_request();
        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_connections_accepted_total 1"));
        assert!(text.contains("aon_connections_dropped_total{reason=\"backlog\"} 1"));
        assert!(text.contains("aon_connections_dropped_total{reason=\"closed\"} 1"));
        assert!(text.contains("aon_accept_queue_depth_hwm 7"));
        assert!(text.contains("aon_admin_requests_total 1"));
    }
}
