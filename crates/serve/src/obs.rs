//! The live server's observability core: every metric series the server
//! exposes, pre-registered at startup so the data path only touches
//! `Arc`'d atomic instruments — never the registry lock.
//!
//! Families (all prefixed `aon_`):
//!
//! * `aon_requests_total{use_case,outcome}` — engine-processed requests
//!   by routing outcome (`ok` = 200, `rejected` = 422);
//! * `aon_payload_bytes_total{use_case}` — request payload bytes;
//! * `aon_request_duration_ns{use_case}` — end-to-end service-time
//!   histogram (frame complete → response written); when tracing is on
//!   its buckets carry OpenMetrics exemplars (`# {trace_id="..."} ns`)
//!   linking a bucket to a kept trace in `/trace.jsonl`;
//! * `aon_stage_duration_ns{use_case,stage}` — per-pipeline-phase
//!   histograms (parse / xpath / validate / dpi / crypto / write);
//! * `aon_http_responses_total{status}` — every non-admin response by
//!   status code;
//! * `aon_connections_accepted_total`,
//!   `aon_connections_dropped_total{reason}` — edge admission;
//! * `aon_accept_queue_depth_hwm` — accept-queue depth high-water mark;
//! * `aon_governor_shed_level`, `aon_governor_window_p99_ns`,
//!   `aon_governor_window_queue_peak` — the capacity governor's
//!   published level and the signals of its most recent sample window;
//! * `aon_governor_breaches_total{signal}`,
//!   `aon_governor_transitions_total{direction}` — budget breaches by
//!   signal (`p99` / `queue`) and level transitions (`up` = more
//!   shedding, `down` = recovery);
//! * `aon_admin_requests_total` — `/metrics`, `/stats.json`,
//!   `/flight.jsonl`, `/trace.jsonl` hits, counted **separately** so
//!   scraping never perturbs the request totals it reports;
//! * `aon_flight_dropped_total` — events evicted from the flight ring
//!   (capacity overflow), so a scraper can tell how much history the
//!   ring has already lost;
//! * `aon_queue_wait_ns` — time connections spent in the accept queue
//!   before a worker picked them up (attributed to the first request);
//! * `aon_trace_kept_total{class}`, `aon_trace_dropped_total{kind}` —
//!   tail-sampler outcomes when tracing is on: traces retained by class
//!   (`slow` / `shed` / `error` / `sampled`) and ring evictions by kind
//!   (`sampled` is expected under pressure, `keep` must stay 0 for the
//!   100%-tail-retention claim);
//! * `aon_hw_events_total{use_case,stage,event}` and
//!   `aon_hw_backend_active` — hardware-counter deltas attributed to
//!   pipeline stages when the perf backend opened (the live analogue of
//!   the paper's PMU characterization), plus a gauge saying whether any
//!   worker thread actually has counters;
//! * the continuous-profiler families (`aon_worker_state_samples_total`,
//!   `aon_worker_utilization_permille`, `aon_pool_saturation_permille`,
//!   `aon_profiler_*`) are registered into this registry by
//!   [`aon_obs::Profiler`] when the server builds one — see
//!   `crate::server`.
//!
//! This file is on the `aon-audit` cast-enforced list.

use crate::governor::ShedLevel;
use crate::metrics::{HwRow, StageCell};
use aon_hw::{HwEvent, EVENT_COUNT};
use aon_obs::flight::{FlightRecorder, RequestEvent};
use aon_obs::hwcounters::HwStageSet;
use aon_obs::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use aon_obs::registry::Registry;
use aon_obs::reqtrace::{StoreOutcome, TraceClass};
use aon_obs::stage::{Stage, WallStages, STAGE_COUNT};
use aon_server::usecase::UseCase;
use std::sync::Arc;

/// Response statuses the server can produce (one counter series each).
pub const STATUSES: [u16; 7] = [200, 400, 404, 408, 413, 422, 503];

/// Per-use-case instrument handles.
#[derive(Debug)]
struct UseCaseObs {
    ok: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    payload_bytes: Arc<Counter>,
    service_ns: Arc<Histogram>,
    stage_ns: [Arc<Histogram>; STAGE_COUNT],
}

/// Tail-sampler outcome counters, registered only when tracing is on so
/// a tracing-off server exposes no dead series.
#[derive(Debug)]
struct TraceObs {
    kept: [Arc<Counter>; 4],
    dropped_sampled: Arc<Counter>,
    dropped_keep: Arc<Counter>,
}

/// Hardware-counter series, registered only when the HW plane is
/// enabled (5 use cases × 6 stages × 5 events = 150 counter series —
/// too many to pay for when nobody asked for them).
#[derive(Debug)]
struct HwObs {
    backend_active: Arc<Gauge>,
    /// `events[use_case][stage][event]`.
    events: [[[Arc<Counter>; EVENT_COUNT]; STAGE_COUNT]; 5],
}

/// All observability state for one [`crate::server::Server`].
#[derive(Debug)]
pub struct ServerObs {
    /// The metric catalogue behind `GET /metrics`.
    pub registry: Registry,
    /// Ring buffer of recent request events behind `GET /flight.jsonl`.
    pub flight: FlightRecorder,
    per_use: [UseCaseObs; 5],
    responses: [Arc<Counter>; 7],
    flight_dropped: Arc<Counter>,
    queue_wait_ns: Arc<Histogram>,
    trace: Option<TraceObs>,
    hw: Option<HwObs>,
    conns_accepted: Arc<Counter>,
    conns_dropped_backlog: Arc<Counter>,
    conns_rejected_closed: Arc<Counter>,
    queue_depth_hwm: Arc<Gauge>,
    admin_requests: Arc<Counter>,
    governor_level: Arc<Gauge>,
    governor_window_p99_ns: Arc<Gauge>,
    governor_window_queue_peak: Arc<Gauge>,
    governor_breach_p99: Arc<Counter>,
    governor_breach_queue: Arc<Counter>,
    governor_up: Arc<Counter>,
    governor_down: Arc<Counter>,
}

pub(crate) fn use_case_index(uc: UseCase) -> usize {
    match uc {
        UseCase::Fr => 0,
        UseCase::Cbr => 1,
        UseCase::Sv => 2,
        UseCase::Dpi => 3,
        UseCase::Crypto => 4,
    }
}

impl ServerObs {
    /// Register every series the server will ever touch. The optional
    /// planes (`hw_enabled`, `trace_enabled`) decide at construction
    /// whether their families exist at all — the data path then only
    /// ever checks an `Option`, never the registry.
    pub fn new(flight_capacity: usize, hw_enabled: bool, trace_enabled: bool) -> ServerObs {
        let registry = Registry::new();
        let trace = trace_enabled.then(|| TraceObs {
            kept: std::array::from_fn(|i| {
                registry.counter(
                    "aon_trace_kept_total",
                    "Traces retained by the tail sampler, by retention class",
                    &[("class", TraceClass::ALL[i].label())],
                )
            }),
            dropped_sampled: registry.counter(
                "aon_trace_dropped_total",
                "Traces evicted from the trace ring, by kind",
                &[("kind", "sampled")],
            ),
            dropped_keep: registry.counter(
                "aon_trace_dropped_total",
                "Traces evicted from the trace ring, by kind",
                &[("kind", "keep")],
            ),
        });
        let hw = hw_enabled.then(|| HwObs {
            backend_active: registry.gauge(
                "aon_hw_backend_active",
                "1 when at least one worker thread opened a perf counter group",
                &[],
            ),
            events: std::array::from_fn(|u| {
                let label = UseCase::EXTENDED[u].label();
                std::array::from_fn(|s| {
                    std::array::from_fn(|e| {
                        registry.counter(
                            "aon_hw_events_total",
                            "Hardware counter deltas by use case, stage, and event",
                            &[
                                ("use_case", label),
                                ("stage", Stage::ALL[s].label()),
                                ("event", HwEvent::ALL[e].label()),
                            ],
                        )
                    })
                })
            }),
        });
        let per_use = std::array::from_fn(|i| {
            let uc = UseCase::EXTENDED[i];
            let label = uc.label();
            UseCaseObs {
                ok: registry.counter(
                    "aon_requests_total",
                    "Engine-processed requests by routing outcome",
                    &[("use_case", label), ("outcome", "ok")],
                ),
                rejected: registry.counter(
                    "aon_requests_total",
                    "Engine-processed requests by routing outcome",
                    &[("use_case", label), ("outcome", "rejected")],
                ),
                shed: registry.counter(
                    "aon_requests_total",
                    "Engine-processed requests by routing outcome",
                    &[("use_case", label), ("outcome", "shed")],
                ),
                payload_bytes: registry.counter(
                    "aon_payload_bytes_total",
                    "Request payload bytes by use case",
                    &[("use_case", label)],
                ),
                // With tracing on, service buckets carry exemplars so a
                // p99 bucket links to a kept trace in /trace.jsonl.
                service_ns: if trace_enabled {
                    registry.histogram_with_exemplars(
                        "aon_request_duration_ns",
                        "End-to-end service time (frame complete to response written)",
                        &[("use_case", label)],
                    )
                } else {
                    registry.histogram(
                        "aon_request_duration_ns",
                        "End-to-end service time (frame complete to response written)",
                        &[("use_case", label)],
                    )
                },
                stage_ns: std::array::from_fn(|s| {
                    registry.histogram(
                        "aon_stage_duration_ns",
                        "Pipeline phase time by use case and stage",
                        &[("use_case", label), ("stage", Stage::ALL[s].label())],
                    )
                }),
            }
        });
        let responses = std::array::from_fn(|i| {
            let status = STATUSES[i].to_string();
            registry.counter(
                "aon_http_responses_total",
                "Non-admin responses by HTTP status",
                &[("status", status.as_str())],
            )
        });
        ServerObs {
            conns_accepted: registry.counter(
                "aon_connections_accepted_total",
                "Connections accepted off the listener",
                &[],
            ),
            conns_dropped_backlog: registry.counter(
                "aon_connections_dropped_total",
                "Connections refused at the accept queue",
                &[("reason", "backlog")],
            ),
            conns_rejected_closed: registry.counter(
                "aon_connections_dropped_total",
                "Connections refused at the accept queue",
                &[("reason", "closed")],
            ),
            queue_depth_hwm: registry.gauge(
                "aon_accept_queue_depth_hwm",
                "Accept-queue depth high-water mark",
                &[],
            ),
            admin_requests: registry.counter(
                "aon_admin_requests_total",
                "Admin endpoint hits (excluded from request totals)",
                &[],
            ),
            governor_level: registry.gauge(
                "aon_governor_shed_level",
                "Capacity-governor shed level (0 none, 1 sv, 2 sv+cbr, 3 fr-only)",
                &[],
            ),
            governor_window_p99_ns: registry.gauge(
                "aon_governor_window_p99_ns",
                "Windowed p99 of end-to-end service time at the last governor sample",
                &[],
            ),
            governor_window_queue_peak: registry.gauge(
                "aon_governor_window_queue_peak",
                "Accept-queue depth peak within the last governor sample window",
                &[],
            ),
            governor_breach_p99: registry.counter(
                "aon_governor_breaches_total",
                "Governor budget breaches by signal",
                &[("signal", "p99")],
            ),
            governor_breach_queue: registry.counter(
                "aon_governor_breaches_total",
                "Governor budget breaches by signal",
                &[("signal", "queue")],
            ),
            governor_up: registry.counter(
                "aon_governor_transitions_total",
                "Governor level transitions (up = more shedding, down = recovery)",
                &[("direction", "up")],
            ),
            governor_down: registry.counter(
                "aon_governor_transitions_total",
                "Governor level transitions (up = more shedding, down = recovery)",
                &[("direction", "down")],
            ),
            flight_dropped: registry.counter(
                "aon_flight_dropped_total",
                "Events evicted from the flight-recorder ring (capacity overflow)",
                &[],
            ),
            queue_wait_ns: registry.histogram(
                "aon_queue_wait_ns",
                "Accept-queue wait before a worker picked the connection up",
                &[],
            ),
            trace,
            hw,
            flight: FlightRecorder::new(flight_capacity),
            per_use,
            responses,
            registry,
        }
    }

    /// A connection was accepted.
    pub fn connection_accepted(&self) {
        self.conns_accepted.inc();
    }

    /// A connection was refused because the accept queue was full.
    pub fn connection_dropped_backlog(&self) {
        self.conns_dropped_backlog.inc();
    }

    /// A connection was refused because the queue was closed (shutdown).
    pub fn connection_rejected_closed(&self) {
        self.conns_rejected_closed.inc();
    }

    /// Raise the accept-queue depth high-water mark.
    pub fn queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.record_max(depth);
    }

    /// An admin endpoint was served.
    pub fn admin_request(&self) {
        self.admin_requests.inc();
    }

    /// Record one completed (non-admin) request: status counter, per-use
    /// case outcome + payload + service/stage histograms, and a flight
    /// recorder event.
    pub fn record_request(
        &self,
        use_case: Option<UseCase>,
        status: u16,
        bytes: u64,
        total_ns: u64,
        stages: &WallStages,
    ) {
        if let Some(i) = STATUSES.iter().position(|&s| s == status) {
            self.responses[i].inc();
        }
        let label = match use_case {
            Some(uc) => {
                let u = &self.per_use[use_case_index(uc)];
                match status {
                    200 => u.ok.inc(),
                    422 => u.rejected.inc(),
                    503 => u.shed.inc(),
                    _ => {}
                }
                u.payload_bytes.add(bytes);
                u.service_ns.record(total_ns);
                for stage in Stage::ALL {
                    let ns = stages.get(stage);
                    if ns > 0 {
                        u.stage_ns[stage.index()].record(ns);
                    }
                }
                uc.label()
            }
            None => "-",
        };
        let recorded = self.flight.record(RequestEvent {
            seq: 0,
            status,
            use_case: label,
            bytes,
            total_ns,
            stage_ns: stages.ns,
        });
        if recorded.evicted > 0 {
            self.flight_dropped.add(recorded.evicted);
        }
    }

    /// Record one connection's accept-queue wait (first request only —
    /// later keep-alive requests never sat in the accept queue).
    pub fn record_queue_wait(&self, wait_ns: u64) {
        self.queue_wait_ns.record(wait_ns);
    }

    /// Attach an exemplar (a kept trace's id) to the service-time bucket
    /// `total_ns` falls in. A no-op when the histograms were registered
    /// without exemplar cells (tracing off).
    pub fn attach_service_exemplar(&self, use_case: UseCase, total_ns: u64, trace_id: u64) {
        self.per_use[use_case_index(use_case)].service_ns.attach_exemplar(total_ns, trace_id);
    }

    /// Publish one tail-sampler store outcome. A no-op when tracing
    /// families were not registered (tracing off).
    pub fn trace_outcome(&self, outcome: &StoreOutcome) {
        let Some(t) = &self.trace else { return };
        if let Some(class) = outcome.kept {
            t.kept[class.index()].inc();
        }
        if outcome.evicted_sampled > 0 {
            t.dropped_sampled.add(outcome.evicted_sampled);
        }
        if outcome.evicted_keep > 0 {
            t.dropped_keep.add(outcome.evicted_keep);
        }
    }

    /// Publish whether this worker's perf group actually opened. Workers
    /// race to set the gauge; `record_max` keeps it 1 if *any* did.
    pub fn hw_backend(&self, active: bool) {
        if let Some(h) = &self.hw {
            h.backend_active.record_max(u64::from(active));
        }
    }

    /// Accumulate one request's per-stage hardware-counter deltas. A
    /// no-op when the HW plane is off or the snapshot is empty (the
    /// noop backend reads all-zero).
    pub fn record_hw(&self, use_case: UseCase, hw: &HwStageSet) {
        let Some(h) = &self.hw else { return };
        let per_stage = &h.events[use_case_index(use_case)];
        for stage in Stage::ALL {
            let snap = hw.get(stage);
            if snap.is_zero() {
                continue;
            }
            for event in HwEvent::ALL {
                let v = snap.get(event);
                if v > 0 {
                    per_stage[stage.index()][event.index()].add(v);
                }
            }
        }
    }

    /// Per-use-case hardware-counter totals (events summed across
    /// stages) for the `hw-report` characterization table. Requests are
    /// everything the counters could have been attributed to (ok +
    /// rejected + shed). Use cases with zero counted events are omitted,
    /// so the noop backend yields an empty table rather than zero rows
    /// pretending to be measurements. Predictions are left for the
    /// caller to fill in ([`HwRow::predicted_cpi`] starts `None`).
    pub fn hw_rows(&self) -> Vec<HwRow> {
        let Some(h) = &self.hw else { return Vec::new() };
        let mut out = Vec::new();
        for (i, per_stage) in h.events.iter().enumerate() {
            let mut totals = [0u64; EVENT_COUNT];
            for stage in per_stage {
                for (slot, counter) in totals.iter_mut().zip(stage.iter()) {
                    *slot = slot.saturating_add(counter.get());
                }
            }
            if totals.iter().all(|&v| v == 0) {
                continue;
            }
            let u = &self.per_use[i];
            out.push(HwRow {
                use_case: UseCase::EXTENDED[i].label(),
                requests: u.ok.get() + u.rejected.get() + u.shed.get(),
                cycles: totals[HwEvent::Cycles.index()],
                instructions: totals[HwEvent::Instructions.index()],
                l1d_miss: totals[HwEvent::L1dMiss.index()],
                llc_miss: totals[HwEvent::LlcMiss.index()],
                branch_miss: totals[HwEvent::BranchMiss.index()],
                predicted_cpi: None,
            });
        }
        out
    }

    /// Per-(use case × stage) totals for the `BENCH_live.json` stage
    /// breakdown; cells that never recorded are omitted.
    pub fn stage_cells(&self) -> Vec<StageCell> {
        let mut out = Vec::new();
        for (i, u) in self.per_use.iter().enumerate() {
            let label = UseCase::EXTENDED[i].label();
            for stage in Stage::ALL {
                let h = &u.stage_ns[stage.index()];
                if h.count() > 0 {
                    out.push(StageCell {
                        use_case: label,
                        stage: stage.label(),
                        count: h.count(),
                        total_ns: h.sum(),
                    });
                }
            }
        }
        out
    }

    /// Total engine-processed requests (ok + rejected) across use cases
    /// — must equal the load generator's completed-request count.
    pub fn requests_processed(&self) -> u64 {
        self.per_use.iter().map(|u| u.ok.get() + u.rejected.get()).sum()
    }

    /// Requests refused by the capacity governor (503s) across use cases.
    pub fn requests_shed(&self) -> u64 {
        self.per_use.iter().map(|u| u.shed.get()).sum()
    }

    /// One merged snapshot of `aon_request_duration_ns` across every use
    /// case — the governor diffs consecutive merges ([`HistogramSnapshot::
    /// delta_since`]) to get a windowed service-time p99.
    pub fn service_histogram_merged(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for u in &self.per_use {
            merged.merge(&u.service_ns.snapshot());
        }
        merged
    }

    /// Publish one governor sample window: the level in force and the
    /// window's two signals, as gauges a scraper can plot directly.
    pub fn governor_sample(&self, level: ShedLevel, p99_ns: u64, queue_peak: u64) {
        self.governor_level.set(level.as_u64());
        self.governor_window_p99_ns.set(p99_ns);
        self.governor_window_queue_peak.set(queue_peak);
    }

    /// Count which budget(s) a breached window tripped.
    pub fn governor_breach(&self, p99: bool, queue: bool) {
        if p99 {
            self.governor_breach_p99.inc();
        }
        if queue {
            self.governor_breach_queue.inc();
        }
    }

    /// Count a governor level transition (`up` = escalation).
    pub fn governor_transition(&self, up: bool) {
        if up {
            self.governor_up.inc();
        } else {
            self.governor_down.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_request_updates_outcome_payload_and_stages() {
        let obs = ServerObs::new(16, false, false);
        let mut stages = WallStages::new();
        stages.add(Stage::Parse, 1000);
        stages.add(Stage::XPath, 500);
        obs.record_request(Some(UseCase::Cbr), 200, 240, 2000, &stages);
        obs.record_request(Some(UseCase::Cbr), 422, 240, 1500, &stages);
        obs.record_request(None, 400, 0, 100, &WallStages::new());

        assert_eq!(obs.requests_processed(), 2);
        let cells = obs.stage_cells();
        let parse = cells
            .iter()
            .find(|c| c.use_case == "CBR" && c.stage == "parse")
            .expect("parse cell exists");
        assert_eq!(parse.count, 2);
        assert_eq!(parse.total_ns, 2000);
        assert!(cells.iter().all(|c| c.use_case != "FR"), "FR never recorded");
        assert_eq!(obs.flight.len(), 3, "flight records every request, even 400s");

        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_requests_total{use_case=\"CBR\",outcome=\"ok\"} 1"), "{text}");
        assert!(text.contains("aon_requests_total{use_case=\"CBR\",outcome=\"rejected\"} 1"));
        assert!(text.contains("aon_http_responses_total{status=\"400\"} 1"));
        assert!(text.contains("aon_payload_bytes_total{use_case=\"CBR\"} 480"));
    }

    #[test]
    fn shed_outcome_is_a_distinct_series_excluded_from_processed() {
        let obs = ServerObs::new(8, false, false);
        let stages = WallStages::new();
        obs.record_request(Some(UseCase::Sv), 200, 100, 900, &stages);
        obs.record_request(Some(UseCase::Sv), 503, 0, 40, &stages);
        obs.record_request(Some(UseCase::Sv), 503, 0, 35, &stages);

        assert_eq!(obs.requests_processed(), 1, "shed requests never reached the engine");
        assert_eq!(obs.requests_shed(), 2);
        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_requests_total{use_case=\"SV\",outcome=\"shed\"} 2"), "{text}");
        assert!(text.contains("aon_http_responses_total{status=\"503\"} 2"));
    }

    #[test]
    fn governor_series_publish_level_signals_and_transitions() {
        let obs = ServerObs::new(4, false, false);
        obs.governor_sample(ShedLevel::SvCbr, 7_000_000, 42);
        obs.governor_breach(true, false);
        obs.governor_breach(true, true);
        obs.governor_transition(true);
        obs.governor_transition(false);
        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_governor_shed_level 2"), "{text}");
        assert!(text.contains("aon_governor_window_p99_ns 7000000"));
        assert!(text.contains("aon_governor_window_queue_peak 42"));
        assert!(text.contains("aon_governor_breaches_total{signal=\"p99\"} 2"));
        assert!(text.contains("aon_governor_breaches_total{signal=\"queue\"} 1"));
        assert!(text.contains("aon_governor_transitions_total{direction=\"up\"} 1"));
        assert!(text.contains("aon_governor_transitions_total{direction=\"down\"} 1"));
    }

    #[test]
    fn merged_service_histogram_folds_every_use_case() {
        let obs = ServerObs::new(4, false, false);
        let stages = WallStages::new();
        obs.record_request(Some(UseCase::Fr), 200, 10, 1_000, &stages);
        obs.record_request(Some(UseCase::Dpi), 200, 10, 4_000, &stages);
        let merged = obs.service_histogram_merged();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 5_000);
    }

    #[test]
    fn flight_overfill_is_visible_as_a_metric() {
        let obs = ServerObs::new(2, false, false);
        let stages = WallStages::new();
        for _ in 0..5 {
            obs.record_request(Some(UseCase::Fr), 200, 10, 1_000, &stages);
        }
        assert_eq!(obs.flight.len(), 2);
        assert_eq!(obs.flight.dropped(), 3);
        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_flight_dropped_total 3"), "{text}");
    }

    #[test]
    fn queue_wait_histogram_records_independently_of_requests() {
        let obs = ServerObs::new(4, false, false);
        obs.record_queue_wait(1_500);
        obs.record_queue_wait(3_000);
        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_queue_wait_ns_count 2"), "{text}");
        assert!(text.contains("aon_queue_wait_ns_sum 4500"), "{text}");
    }

    #[test]
    fn trace_families_exist_only_when_tracing_enabled() {
        let off = ServerObs::new(4, false, false);
        off.trace_outcome(&StoreOutcome {
            kept: Some(TraceClass::Slow),
            evicted_sampled: 1,
            evicted_keep: 0,
        });
        assert!(!off.registry.render_prometheus().contains("aon_trace_"));

        let on = ServerObs::new(4, false, true);
        on.trace_outcome(&StoreOutcome {
            kept: Some(TraceClass::Slow),
            evicted_sampled: 0,
            evicted_keep: 0,
        });
        on.trace_outcome(&StoreOutcome {
            kept: Some(TraceClass::Sampled),
            evicted_sampled: 1,
            evicted_keep: 0,
        });
        on.trace_outcome(&StoreOutcome { kept: None, evicted_sampled: 0, evicted_keep: 0 });
        let text = on.registry.render_prometheus();
        assert!(text.contains("aon_trace_kept_total{class=\"slow\"} 1"), "{text}");
        assert!(text.contains("aon_trace_kept_total{class=\"sampled\"} 1"));
        assert!(text.contains("aon_trace_kept_total{class=\"shed\"} 0"));
        assert!(text.contains("aon_trace_dropped_total{kind=\"sampled\"} 1"));
        assert!(text.contains("aon_trace_dropped_total{kind=\"keep\"} 0"));
    }

    #[test]
    fn hw_families_attribute_deltas_by_use_case_stage_and_event() {
        let off = ServerObs::new(4, false, false);
        off.hw_backend(true);
        off.record_hw(UseCase::Fr, &HwStageSet::new());
        assert!(!off.registry.render_prometheus().contains("aon_hw_"));

        let on = ServerObs::new(4, true, false);
        on.hw_backend(false);
        on.hw_backend(true);
        on.hw_backend(false); // a later noop worker must not clear the gauge
        let mut set = HwStageSet::new();
        let mut delta = aon_hw::HwSnapshot::default();
        delta.values[HwEvent::Cycles.index()] = 1_000;
        delta.values[HwEvent::Instructions.index()] = 2_500;
        set.add(Stage::Parse, &delta);
        set.add(Stage::Parse, &delta);
        on.record_hw(UseCase::Cbr, &set);
        let text = on.registry.render_prometheus();
        assert!(text.contains("aon_hw_backend_active 1"), "{text}");
        assert!(
            text.contains(
                "aon_hw_events_total{use_case=\"CBR\",stage=\"parse\",event=\"cycles\"} 2000"
            ),
            "{text}"
        );
        assert!(text.contains(
            "aon_hw_events_total{use_case=\"CBR\",stage=\"parse\",event=\"instructions\"} 5000"
        ));
        assert!(text
            .contains("aon_hw_events_total{use_case=\"CBR\",stage=\"xpath\",event=\"cycles\"} 0"));
    }

    #[test]
    fn new_families_roundtrip_through_the_scrape_parser() {
        // Render → parse_prometheus → sum_samples must reproduce every
        // value the new plane wrote — this is the exact path obs-report
        // and hw-report consume, so a label-escaping or formatting
        // regression in any new family fails here, not in a live run.
        let obs = ServerObs::new(2, true, true);
        obs.hw_backend(true);
        let mut set = HwStageSet::new();
        let mut delta = aon_hw::HwSnapshot::default();
        delta.values[HwEvent::LlcMiss.index()] = 77;
        set.add(Stage::Validate, &delta);
        obs.record_hw(UseCase::Sv, &set);
        obs.record_queue_wait(2_000);
        obs.trace_outcome(&StoreOutcome {
            kept: Some(TraceClass::Error),
            evicted_sampled: 2,
            evicted_keep: 1,
        });
        let stages = WallStages::new();
        for _ in 0..3 {
            obs.record_request(Some(UseCase::Sv), 200, 10, 1_000, &stages);
        }
        obs.attach_service_exemplar(UseCase::Sv, 1_000, 42);

        let samples = aon_obs::scrape::parse_prometheus(&obs.registry.render_prometheus());
        let sum =
            |name, labels: &[(&str, &str)]| aon_obs::scrape::sum_samples(&samples, name, labels);
        let exemplar = samples
            .iter()
            .filter(|s| s.name == "aon_request_duration_ns_bucket")
            .find_map(|s| s.exemplar.as_ref())
            .expect("one service bucket carries the exemplar");
        assert_eq!(exemplar.label("trace_id"), Some("42"));
        assert_eq!(exemplar.value, 1000.0);
        assert_eq!(
            sum("aon_request_duration_ns_count", &[("use_case", "SV")]),
            3.0,
            "exemplar decoration must not perturb bucket parsing"
        );
        assert_eq!(sum("aon_hw_backend_active", &[]), 1.0);
        assert_eq!(sum("aon_hw_events_total", &[("use_case", "SV"), ("event", "llc_miss")]), 77.0);
        assert_eq!(sum("aon_hw_events_total", &[("stage", "validate")]), 77.0);
        assert_eq!(sum("aon_queue_wait_ns_count", &[]), 1.0);
        assert_eq!(sum("aon_queue_wait_ns_sum", &[]), 2000.0);
        assert_eq!(sum("aon_trace_kept_total", &[("class", "error")]), 1.0);
        assert_eq!(sum("aon_trace_dropped_total", &[("kind", "sampled")]), 2.0);
        assert_eq!(sum("aon_trace_dropped_total", &[("kind", "keep")]), 1.0);
        assert_eq!(sum("aon_flight_dropped_total", &[]), 1.0, "3 events into a 2-ring");
    }

    #[test]
    fn exemplars_exist_only_when_tracing_enabled() {
        let stages = WallStages::new();
        let off = ServerObs::new(4, false, false);
        off.record_request(Some(UseCase::Fr), 200, 10, 1_000, &stages);
        off.attach_service_exemplar(UseCase::Fr, 1_000, 7);
        assert!(
            !off.registry.render_prometheus().contains("# {trace_id="),
            "tracing off must not render exemplars"
        );

        let on = ServerObs::new(4, false, true);
        on.record_request(Some(UseCase::Fr), 200, 10, 1_000, &stages);
        on.attach_service_exemplar(UseCase::Fr, 1_000, 7);
        let text = on.registry.render_prometheus();
        assert!(text.contains("# {trace_id=\"7\"} 1000"), "{text}");
    }

    #[test]
    fn hw_rows_aggregate_events_across_stages_per_use_case() {
        let obs = ServerObs::new(4, true, false);
        assert!(obs.hw_rows().is_empty(), "no counted events, no rows");
        let mut set = HwStageSet::new();
        let mut delta = aon_hw::HwSnapshot::default();
        delta.values[HwEvent::Cycles.index()] = 300;
        delta.values[HwEvent::Instructions.index()] = 150;
        set.add(Stage::Parse, &delta);
        set.add(Stage::Write, &delta);
        obs.record_hw(UseCase::Dpi, &set);
        let stages = WallStages::new();
        obs.record_request(Some(UseCase::Dpi), 200, 10, 1_000, &stages);
        obs.record_request(Some(UseCase::Dpi), 422, 10, 1_000, &stages);
        let rows = obs.hw_rows();
        assert_eq!(rows.len(), 1, "only the use case with events gets a row");
        assert_eq!(rows[0].use_case, "DPI");
        assert_eq!(rows[0].requests, 2, "ok + rejected both attribute");
        assert_eq!(rows[0].cycles, 600, "parse + write stages sum");
        assert_eq!(rows[0].instructions, 300);
        assert!((rows[0].cpi() - 2.0).abs() < 1e-9);
        assert_eq!(rows[0].predicted_cpi, None, "prediction is the caller's to fill");
    }

    #[test]
    fn admin_and_connection_counters_are_separate() {
        let obs = ServerObs::new(4, false, false);
        obs.connection_accepted();
        obs.connection_dropped_backlog();
        obs.connection_rejected_closed();
        obs.queue_depth(7);
        obs.queue_depth(3);
        obs.admin_request();
        let text = obs.registry.render_prometheus();
        assert!(text.contains("aon_connections_accepted_total 1"));
        assert!(text.contains("aon_connections_dropped_total{reason=\"backlog\"} 1"));
        assert!(text.contains("aon_connections_dropped_total{reason=\"closed\"} 1"));
        assert!(text.contains("aon_accept_queue_depth_hwm 7"));
        assert!(text.contains("aon_admin_requests_total 1"));
    }
}
