//! The live HTTP/1.1 server: listener, bounded accept queue, worker pool,
//! keep-alive request loop, robustness limits, graceful shutdown — and a
//! software performance-counter layer ([`crate::obs`]) exposed over admin
//! endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition (counters, gauges,
//!   per-stage latency histograms);
//! * `GET /stats.json` — the [`ServeStatsSnapshot`] as JSON;
//! * `GET /flight.jsonl` — the flight-recorder ring buffer as JSONL;
//! * `GET /trace.jsonl` — the tail-sampled per-request span traces
//!   ([`aon_obs::reqtrace`]) as JSONL;
//! * `GET /profile.folded` — the continuous worker-state profiler's
//!   folded-stack dump ([`aon_obs::profiler`]), directly consumable by
//!   `flamegraph.pl`.
//!
//! Admin hits are counted in a separate counter (never in the request
//! totals), so scraping `/metrics` mid-run cannot perturb the numbers it
//! reports — the CI cross-check relies on exact equality with the load
//! generator.
//!
//! When tracing or hardware counters are on, the request path swaps its
//! per-stage recorder from [`aon_obs::stage::WallStages`] to
//! [`RichStages`], which additionally emits trace spans and snapshots
//! the worker's perf counter group at stage boundaries. With everything
//! off, the engine still runs the untimed `NoopStages` instantiation —
//! zero clock reads.

use crate::governor::{Governor, GovernorConfig, GovernorCore};
use crate::obs::ServerObs;
use aon_hw::HwGroup;
use aon_net::acceptq::{AcceptQueue, Pop, PushError, Timed};
use aon_net::wire::{write_all, FrameBuf, WireError, WireLimits};
use aon_obs::hwcounters::RichStages;
use aon_obs::profiler::{Profiler, ProfilerConfig, WorkerSlots, WorkerState};
use aon_obs::reqtrace::{TraceClass, TraceConfig, TraceRecord, Tracer};
use aon_obs::stage::{Stage, StageRecorder, WallStages};
use aon_server::engine::{Engine, ParseMode};
use aon_server::http::{self, Method};
use aon_server::usecase::UseCase;
use aon_trace::NullProbe;
use aon_xml::input::TBuf;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server deployment parameters for the live path.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means one per logical CPU (the paper's sizing).
    pub workers: usize,
    /// Bounded accept-queue depth; a full queue drops the connection.
    pub accept_backlog: usize,
    /// Per-request read deadline (head + body must arrive within it).
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Requests served per connection before the server closes it.
    pub keepalive_max_requests: u32,
    /// Head/body size limits.
    pub limits: WireLimits,
    /// Use case served at the legacy `/aon/process` path.
    pub default_use_case: UseCase,
    /// Enable the software performance counters ([`crate::obs`]): per-use
    /// case/stage histograms, the flight recorder, and the `/metrics`,
    /// `/flight.jsonl` admin endpoints. Off = no clock reads on the
    /// pipeline (the engine runs the untimed instantiation).
    pub observe: bool,
    /// Flight-recorder capacity (most recent request events retained).
    pub flight_capacity: usize,
    /// Which parser implementation the pipeline runs: `Fast` (SWAR lazy
    /// parse + compiled automata, the default) or `Scalar` (the
    /// byte-at-a-time counter-reference engines). Verdicts are identical;
    /// only host instructions differ.
    pub parse_mode: ParseMode,
    /// SLO-aware admission control ([`crate::governor`]): budgets, sample
    /// cadence, hysteresis, and the FR-only bypass switch.
    pub governor: GovernorConfig,
    /// Per-thread hardware performance counters ([`aon_hw`]): each worker
    /// opens a perf event group and the stage recorder attributes counter
    /// deltas to pipeline stages. Off by default — the perf backend costs
    /// two group reads per stage; when on but unavailable (no PMU, locked
    /// down `perf_event_paranoid`) it degrades to the no-op backend.
    pub hw_counters: bool,
    /// Tail-sampled per-request tracing ([`aon_obs::reqtrace`]): slow,
    /// shed, and errored requests always keep their span trees, the rest
    /// are reservoir-sampled; dumped at `GET /trace.jsonl`. A `None`
    /// slow budget adopts [`GovernorConfig::p99_budget`] at startup.
    pub trace: TraceConfig,
    /// Continuous worker-state profiling ([`aon_obs::profiler`]): the
    /// workers publish their state into per-worker atomic slots and a
    /// sampler thread accumulates the statistical profile behind
    /// `GET /profile.folded`. Requires [`ServeConfig::observe`] (the
    /// families live in the same registry).
    pub profiler: ProfilerConfig,
    /// Minimum service time (ns) for a kept trace's id to be attached as
    /// an OpenMetrics exemplar on its latency bucket. 0 = every kept
    /// trace; the exemplar is only ever a trace that `/trace.jsonl` can
    /// actually resolve.
    pub exemplar_threshold_ns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            accept_backlog: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keepalive_max_requests: 10_000,
            limits: WireLimits::default(),
            default_use_case: UseCase::Fr,
            observe: true,
            flight_capacity: 1024,
            parse_mode: ParseMode::Fast,
            governor: GovernorConfig::default(),
            hw_counters: false,
            trace: TraceConfig::default(),
            profiler: ProfilerConfig::default(),
            exemplar_threshold_ns: 0,
        }
    }
}

/// Monotonic serving counters (lock-free; read with [`ServeStats::snapshot`]).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted off the listener.
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub accepted: AtomicU64,
    /// Connections dropped because the accept queue was full.
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub dropped_backlog: AtomicU64,
    /// Connections refused because the queue was already closed (shutdown).
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub rejected_closed: AtomicU64,
    /// Accept-queue depth high-water mark (updated with `fetch_max`).
    // audit:role(hwm): fetch_max race resolves to the true max; Relaxed
    pub queue_depth_hwm: AtomicU64,
    /// Requests answered 200.
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub requests_ok: AtomicU64,
    /// Requests answered 422 (content did not route/validate).
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub requests_rejected: AtomicU64,
    /// Requests answered 503 (refused by the capacity governor).
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub requests_shed: AtomicU64,
    /// Requests answered 404.
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub not_found: AtomicU64,
    /// Requests answered 400 (malformed HTTP).
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub bad_request: AtomicU64,
    /// Requests answered 413 (head or body over limit).
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub too_large: AtomicU64,
    /// Requests answered 408 (deadline passed mid-request).
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub timeouts: AtomicU64,
    /// Connections torn down on socket errors or mid-message EOF.
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub io_errors: AtomicU64,
    /// Admin endpoint hits (`/metrics`, `/stats.json`, `/flight.jsonl`) —
    /// counted here and **nowhere else**, so scrapes don't move totals.
    // audit:role(counter): monotonic; Relaxed, exact once threads join
    pub admin: AtomicU64,
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStatsSnapshot {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Connections dropped because the accept queue was full.
    pub dropped_backlog: u64,
    /// Connections refused because the queue was already closed.
    pub rejected_closed: u64,
    /// Accept-queue depth high-water mark.
    pub queue_depth_hwm: u64,
    /// Requests answered 200.
    pub requests_ok: u64,
    /// Requests answered 422.
    pub requests_rejected: u64,
    /// Requests answered 503 (shed by the capacity governor).
    pub requests_shed: u64,
    /// Requests answered 404.
    pub not_found: u64,
    /// Requests answered 400.
    pub bad_request: u64,
    /// Requests answered 413.
    pub too_large: u64,
    /// Requests answered 408.
    pub timeouts: u64,
    /// Connections torn down on socket errors.
    pub io_errors: u64,
    /// Admin endpoint hits (excluded from every request total).
    pub admin_requests: u64,
}

impl ServeStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            dropped_backlog: self.dropped_backlog.load(Ordering::Relaxed),
            rejected_closed: self.rejected_closed.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_rejected: self.requests_rejected.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            too_large: self.too_large.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            admin_requests: self.admin.load(Ordering::Relaxed),
        }
    }
}

impl ServeStatsSnapshot {
    /// Requests the server answered with a protocol-level error
    /// (400 + 413 + 408) — the live smoke gate asserts this is zero under
    /// well-formed load.
    pub fn protocol_errors(&self) -> u64 {
        self.bad_request + self.too_large + self.timeouts
    }

    /// All non-admin requests answered, any status (shed 503s included:
    /// a graceful refusal is still an answered request).
    pub fn requests_total(&self) -> u64 {
        self.requests_ok
            + self.requests_rejected
            + self.requests_shed
            + self.not_found
            + self.bad_request
            + self.too_large
            + self.timeouts
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: AcceptQueue<Timed<TcpStream>>,
    // audit:role(flag): stop edge; Release store in shutdown()/Drop
    // happens-before the Acquire loads in the listener and worker polls,
    // so everything written before the signal is visible to exiting threads
    shutdown: AtomicBool,
    stats: ServeStats,
    engine: Engine,
    obs: Option<ServerObs>,
    governor: Governor,
    tracer: Option<Tracer>,
    profiler: Option<Arc<Profiler>>,
    /// Resolved worker-pool size (0-in-config already expanded).
    workers: usize,
}

/// A running live server. Create with [`Server::start`], stop with
/// [`Server::shutdown`] (graceful: drains queued connections and finishes
/// in-flight requests).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
    profiler_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and spawn the listener and worker threads.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            std::thread::available_parallelism().map(usize::from).unwrap_or(2)
        };
        let obs = cfg
            .observe
            .then(|| ServerObs::new(cfg.flight_capacity, cfg.hw_counters, cfg.trace.enabled));
        let governor = Governor::new(cfg.governor.clone());
        // The tracer's "slow" threshold defaults to the governor's p99
        // budget, so a kept-slow trace is precisely a budget violation.
        let budget_ns = u64::try_from(cfg.governor.p99_budget.as_nanos()).unwrap_or(u64::MAX);
        let tracer = cfg.trace.enabled.then(|| Tracer::new(cfg.trace.clone(), budget_ns));
        // The profiler's families live in the obs registry, so it needs
        // observability on; context 0 is "no use case", the rest map the
        // engine's use cases (`use_case_index + 1`).
        let profiler = obs.as_ref().filter(|_| cfg.profiler.enabled).map(|o| {
            let mut ctx_labels = vec!["-"];
            ctx_labels.extend(UseCase::EXTENDED.iter().map(|uc| uc.label()));
            Arc::new(Profiler::new(cfg.profiler.clone(), workers, ctx_labels, &o.registry))
        });
        let shared = Arc::new(Shared {
            queue: AcceptQueue::new(cfg.accept_backlog),
            cfg,
            shutdown: AtomicBool::new(false),
            stats: ServeStats::default(),
            engine: Engine::new(),
            obs,
            governor,
            tracer,
            profiler,
            workers,
        });

        let listener_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("aon-accept".to_string())
                .spawn(move || listener_loop(&listener, &shared))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aon-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
            })
            .collect::<io::Result<Vec<_>>>()?;
        // FR-only bypass mode needs no sampler: the level is pinned.
        let sampler = if shared.cfg.governor.enabled && !shared.cfg.governor.fr_only {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("aon-governor".to_string())
                    .spawn(move || sampler_loop(&shared))?,
            )
        } else {
            None
        };
        let profiler_thread = match &shared.profiler {
            Some(p) => {
                let p = Arc::clone(p);
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("aon-profiler".to_string())
                        .spawn(move || profiler_loop(&shared, &p))?,
                )
            }
            None => None,
        };

        Ok(Server {
            addr,
            shared,
            listener: Some(listener_handle),
            workers: worker_handles,
            sampler,
            profiler_thread,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The observability layer, when [`ServeConfig::observe`] is on.
    pub fn obs(&self) -> Option<&ServerObs> {
        self.shared.obs.as_ref()
    }

    /// The capacity governor (always present; inert when disabled).
    pub fn governor(&self) -> &Governor {
        &self.shared.governor
    }

    /// The Prometheus exposition `GET /metrics` would return right now
    /// (`None` with observability off).
    pub fn metrics_text(&self) -> Option<String> {
        self.shared.obs.as_ref().map(|o| o.registry.render_prometheus())
    }

    /// The flight-recorder dump `GET /flight.jsonl` would return right
    /// now (`None` with observability off).
    pub fn flight_jsonl(&self) -> Option<String> {
        self.shared.obs.as_ref().map(|o| o.flight.dump_jsonl())
    }

    /// The trace dump `GET /trace.jsonl` would return right now (`None`
    /// with tracing off).
    pub fn trace_jsonl(&self) -> Option<String> {
        self.shared.tracer.as_ref().map(Tracer::dump_jsonl)
    }

    /// The tail-sampling tracer, when [`TraceConfig::enabled`] is on.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.shared.tracer.as_ref()
    }

    /// The continuous worker-state profiler, when observability and
    /// [`ProfilerConfig::enabled`] are both on.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.shared.profiler.as_deref()
    }

    /// The folded-stack dump `GET /profile.folded` would return right
    /// now (`None` with the profiler off).
    pub fn profile_folded(&self) -> Option<String> {
        self.shared.profiler.as_ref().map(|p| p.folded())
    }

    /// Resolved worker-pool size (a zero in [`ServeConfig::workers`]
    /// already expanded to the machine's parallelism).
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }

    /// Per-(use case × stage) totals for the live-bench stage breakdown
    /// (empty with observability off).
    pub fn stage_cells(&self) -> Vec<crate::metrics::StageCell> {
        self.shared.obs.as_ref().map(ServerObs::stage_cells).unwrap_or_default()
    }

    /// Per-use-case hardware-counter totals for the `hw-report` table
    /// (empty with observability or the HW plane off, and on the noop
    /// backend — no counted events, no rows).
    pub fn hw_rows(&self) -> Vec<crate::metrics::HwRow> {
        self.shared.obs.as_ref().map(ServerObs::hw_rows).unwrap_or_default()
    }

    /// Graceful shutdown: stop accepting, drain the accept queue, finish
    /// in-flight requests, join every thread; returns the final counters.
    pub fn shutdown(mut self) -> ServeStatsSnapshot {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
        if let Some(h) = self.profiler_thread.take() {
            let _ = h.join();
        }
        self.shared.stats.snapshot()
    }
}

impl Drop for Server {
    /// Best-effort stop signal for servers dropped without
    /// [`Server::shutdown`]; threads exit on their next poll.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue.close();
    }
}

/// Accept until shutdown, then close the queue so workers drain and exit.
fn listener_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &shared.obs {
                    obs.connection_accepted();
                }
                match shared.queue.push(Timed::now(stream)) {
                    Ok(depth) => {
                        note_queue_depth(shared, u64::try_from(depth).unwrap_or(u64::MAX));
                    }
                    Err(PushError::Full(_)) => {
                        // Bounded backlog: shed at the edge, like listen(2).
                        // A Full refusal means the queue stood at exactly
                        // its capacity, so record that depth too — without
                        // it, a window in which *every* push was refused
                        // (queue pinned full) would report a zero depth
                        // peak and the governor would read a saturated
                        // queue as healthy.
                        shared.stats.dropped_backlog.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = &shared.obs {
                            obs.connection_dropped_backlog();
                        }
                        let cap = u64::try_from(shared.queue.capacity()).unwrap_or(u64::MAX);
                        note_queue_depth(shared, cap);
                    }
                    Err(PushError::Closed(_)) => {
                        shared.stats.rejected_closed.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = &shared.obs {
                            obs.connection_rejected_closed();
                        }
                        let len = u64::try_from(shared.queue.len()).unwrap_or(u64::MAX);
                        note_queue_depth(shared, len);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(300));
            }
            Err(_) => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    shared.queue.close();
}

/// Record one observed accept-queue depth everywhere it matters: the
/// all-time high-water mark (stats + gauge) and the governor's
/// per-window peak. Called on every push outcome — see the `Full` arm in
/// [`listener_loop`] for why refused pushes must be counted too.
fn note_queue_depth(shared: &Shared, depth: u64) {
    shared.stats.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    if let Some(obs) = &shared.obs {
        obs.queue_depth(depth);
    }
    shared.governor.note_queue_depth(depth);
}

/// The governor's sample loop: every [`GovernorConfig::sample_interval`],
/// read the window's signals (queue-depth peak, and — when observability
/// is on — the windowed service-time p99 from consecutive histogram
/// snapshot deltas), judge them against the budgets, feed the verdict to
/// the [`GovernorCore`], and publish the resulting level for the request
/// path to read.
fn sampler_loop(shared: &Shared) {
    let mut core = GovernorCore::new(shared.governor.level());
    let mut prev = shared.obs.as_ref().map(|o| o.service_histogram_merged()).unwrap_or_default();
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(shared.governor.cfg.sample_interval);
        let queue_peak = shared.governor.take_window_queue_peak();
        let (p99_ns, samples) = match &shared.obs {
            Some(obs) => {
                let now = obs.service_histogram_merged();
                let window = now.delta_since(&prev);
                prev = now;
                (window.percentile(99), window.count)
            }
            // Observability off: no latency signal; the queue signal
            // still protects the server.
            None => (0, 0),
        };
        let verdict = shared.governor.judge(p99_ns, samples, queue_peak);
        if let Some((from, to)) = core.observe(verdict, shared.governor.cfg.recover_after) {
            shared.governor.publish(to);
            if let Some(obs) = &shared.obs {
                obs.governor_transition(to > from);
            }
        }
        if let Some(obs) = &shared.obs {
            if verdict.breached() {
                obs.governor_breach(verdict.p99_breach, verdict.queue_breach);
            }
            obs.governor_sample(core.level(), p99_ns, queue_peak);
        }
    }
}

/// The continuous profiler's sample loop: every
/// [`ProfilerConfig::interval`], take one pass over the worker slots.
/// Probe-and-degrade like the hardware plane: if passes persistently
/// overrun the sampling period (the pool is so large or the host so
/// loaded that sampling itself distorts the workload), the sampler marks
/// itself inactive and stops rather than keep perturbing what it
/// measures.
fn profiler_loop(shared: &Shared, profiler: &Profiler) {
    profiler.set_active(true);
    let interval = profiler.config().interval();
    let max_overruns = profiler.config().max_consecutive_overruns;
    let mut consecutive = 0u32;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        let pass_start = Instant::now();
        profiler.sample_once();
        if pass_start.elapsed() > interval {
            profiler.note_overrun();
            consecutive += 1;
            if consecutive >= max_overruns {
                profiler.set_active(false);
                return;
            }
        } else {
            consecutive = 0;
        }
    }
    profiler.set_active(false);
}

/// Publish one worker's current state into its profiler slot: a single
/// relaxed store, and nothing at all with the profiler off.
fn publish_state(shared: &Shared, worker: usize, ctx: usize, state: WorkerState) {
    if let Some(p) = &shared.profiler {
        p.slots().publish(worker, ctx, state);
    }
}

/// The profiler context index for a routed use case (0 = none).
fn profile_ctx(use_case: Option<UseCase>) -> usize {
    use_case.map_or(0, |uc| 1 + crate::obs::use_case_index(uc))
}

/// Pull connections until the queue is closed *and* drained. Each worker
/// owns one perf counter group (when [`ServeConfig::hw_counters`] is on):
/// the fds are thread-bound, so the group lives exactly as long as the
/// worker and never needs locking.
fn worker_loop(shared: &Shared, worker: usize) {
    let hw_group = shared.cfg.hw_counters.then(HwGroup::open_for_thread);
    if let (Some(obs), Some(g)) = (&shared.obs, &hw_group) {
        obs.hw_backend(g.active());
    }
    loop {
        publish_state(shared, worker, 0, WorkerState::AcceptWait);
        match shared.queue.pop(Duration::from_millis(25)) {
            Pop::Item(timed) => handle_connection(shared, timed, hw_group.as_ref(), worker),
            Pop::Empty => {}
            Pop::Closed => break,
        }
    }
    publish_state(shared, worker, 0, WorkerState::Idle);
}

/// What one request resolves to.
struct Reply {
    status: u16,
    body: String,
    close: bool,
    content_type: &'static str,
    /// Admin endpoints count in [`ServeStats::admin`] only.
    admin: bool,
    /// `Retry-After` seconds advertised on governor-shed 503s.
    retry_after: Option<u64>,
    /// Engine use case, when the request reached the pipeline.
    use_case: Option<UseCase>,
    /// Request payload bytes handed to the engine.
    payload_bytes: u64,
    /// True when the request failed (malformed HTTP or an engine error)
    /// — the tail sampler's `error` retention class. A negative routing
    /// verdict (`422 routed="false"`) is a valid answer, not an error.
    errored: bool,
}

impl Reply {
    fn new(status: u16, body: String, close: bool) -> Reply {
        Reply {
            status,
            body,
            close,
            content_type: "text/xml",
            admin: false,
            retry_after: None,
            use_case: None,
            payload_bytes: 0,
            errored: false,
        }
    }
}

/// Serve one connection's keep-alive loop. The accept-queue wait carried
/// by `timed` is attributed to the connection's *first* request only —
/// later keep-alive requests never sat in the accept queue.
fn handle_connection(
    shared: &Shared,
    timed: Timed<TcpStream>,
    hw: Option<&HwGroup>,
    worker: usize,
) {
    let queue_wait = timed.wait_ns();
    let mut stream = timed.item;
    let cfg = &shared.cfg;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let mut fb = FrameBuf::new();
    let mut served: u32 = 0;
    let mut first_request = true;
    // The rich recorder exists whenever anyone consumes what it produces:
    // wall stages (obs), spans (tracer), or HW deltas (an active group).
    let rich = shared.obs.is_some() || shared.tracer.is_some() || hw.is_some_and(HwGroup::active);

    loop {
        // Keep-alive pinning is occupancy: the blocked read holds this
        // worker even though no request exists yet.
        publish_state(shared, worker, 0, WorkerState::ReadWait);
        let deadline = Instant::now() + cfg.read_timeout;
        let frame = match fb.read_frame(&mut stream, &cfg.limits, deadline) {
            Ok(f) => f,
            Err(WireError::Closed) => break,
            Err(WireError::TimedOut) => {
                // Mid-request stall → 408; an idle keep-alive connection
                // that never started a request is closed silently.
                if !fb.is_empty() {
                    shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    record_wire_error(shared, 408);
                    let _ = send(
                        &mut stream,
                        408,
                        "<aon error=\"request timeout\"/>",
                        true,
                        "text/xml",
                        None,
                    );
                }
                break;
            }
            Err(WireError::HeadTooLarge | WireError::BodyTooLarge) => {
                shared.stats.too_large.fetch_add(1, Ordering::Relaxed);
                record_wire_error(shared, 413);
                let _ = send(
                    &mut stream,
                    413,
                    "<aon error=\"message too large\"/>",
                    true,
                    "text/xml",
                    None,
                );
                break;
            }
            Err(WireError::BadFrame) => {
                shared.stats.bad_request.fetch_add(1, Ordering::Relaxed);
                record_wire_error(shared, 400);
                let _ =
                    send(&mut stream, 400, "<aon error=\"bad request\"/>", true, "text/xml", None);
                break;
            }
            Err(WireError::UnexpectedEof | WireError::Io(_)) => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };

        let total = frame.total();
        served += 1;
        // Close after this response when the cap is reached or the server
        // is draining for shutdown.
        let server_close =
            served >= cfg.keepalive_max_requests || shared.shutdown.load(Ordering::Acquire);
        // The recorder's construction instant is the service-time origin
        // (frame complete → response written), exactly where the old
        // `service_start` stopwatch stood. The profiler's in-service span
        // must open at the same instant, or Little's law reads a skewed
        // `L`: head parsing, routing, and admission all run on the
        // service clock, so attribute them to Parse now (admin and shed
        // paths immediately re-publish their own states inside
        // `handle_request`).
        publish_state(shared, worker, 0, WorkerState::Parse);
        let mut rec = rich.then(|| RichStages::new(hw, shared.tracer.is_some()));
        if first_request {
            first_request = false;
            if let Some(r) = rec.as_mut() {
                r.note_queue_wait(queue_wait);
            }
            if let Some(obs) = &shared.obs {
                obs.record_queue_wait(queue_wait);
            }
        }
        let mut reply =
            handle_request(shared, &fb.bytes()[..total], frame.body_len, rec.as_mut(), worker);
        reply.close |= server_close;

        if reply.admin {
            shared.stats.admin.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &shared.obs {
                obs.admin_request();
            }
        } else {
            match reply.status {
                200 => shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed),
                422 => shared.stats.requests_rejected.fetch_add(1, Ordering::Relaxed),
                503 => shared.stats.requests_shed.fetch_add(1, Ordering::Relaxed),
                404 => shared.stats.not_found.fetch_add(1, Ordering::Relaxed),
                _ => shared.stats.bad_request.fetch_add(1, Ordering::Relaxed),
            };
        }
        let do_send = |stream: &mut TcpStream| {
            send(
                stream,
                reply.status,
                &reply.body,
                reply.close,
                reply.content_type,
                reply.retry_after,
            )
        };
        // Admin replies are never recorded — not even their write time —
        // so a scrape cannot perturb the totals it reports. The profiler
        // attributes the response write to Write (or keeps the Shed
        // attribution for a governor refusal's header-only write).
        if !reply.admin {
            let state =
                if reply.retry_after.is_some() { WorkerState::Shed } else { WorkerState::Write };
            publish_state(shared, worker, profile_ctx(reply.use_case), state);
        }
        let sent = match rec.as_mut() {
            Some(r) if !reply.admin => r.time(Stage::Write, || do_send(&mut stream)),
            _ => do_send(&mut stream),
        };
        if !reply.admin {
            // The response is written and the service clock stops here;
            // the observability epilogue below (histogram, flight ring,
            // span assembly) runs off the clock, so take this worker out
            // of the in-service states before it — otherwise the sampler
            // counts epilogue time in `L` that `W` never saw.
            publish_state(shared, worker, 0, WorkerState::ReadWait);
            if let Some(r) = rec.as_mut() {
                let total_ns = r.offset_ns();
                if let Some(obs) = &shared.obs {
                    obs.record_request(
                        reply.use_case,
                        reply.status,
                        reply.payload_bytes,
                        total_ns,
                        r.wall(),
                    );
                    if r.hw_active() {
                        if let Some(uc) = reply.use_case {
                            obs.record_hw(uc, r.hw());
                        }
                    }
                }
                if let Some(tracer) = &shared.tracer {
                    if let Some(spans) = r.finish_trace(total_ns) {
                        let trace_id = tracer.next_id();
                        let record = TraceRecord {
                            id: trace_id,
                            use_case: reply.use_case.map_or("-", |uc| uc.label()),
                            status: reply.status,
                            // Placeholder: `Tracer::finish` reclassifies.
                            class: TraceClass::Sampled,
                            total_ns,
                            spans,
                        };
                        let outcome = tracer.finish(record, reply.errored);
                        if let Some(obs) = &shared.obs {
                            obs.trace_outcome(&outcome);
                            // Exemplars link a latency bucket to a trace
                            // — only *kept* traces qualify, so every
                            // rendered exemplar resolves in /trace.jsonl
                            // by construction.
                            if outcome.kept.is_some()
                                && total_ns >= shared.cfg.exemplar_threshold_ns
                            {
                                if let Some(uc) = reply.use_case {
                                    obs.attach_service_exemplar(uc, total_ns, trace_id);
                                }
                            }
                        }
                    }
                }
            }
        }
        if sent.is_err() {
            shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        fb.consume(total);
        if reply.close {
            break;
        }
    }
}

/// Record a wire-level error response (408/413/400 sent straight from the
/// connection loop) into the observability layer, so the HTTP status
/// counters agree with [`ServeStats`] exactly. Wire errors are *not*
/// traced: the failure happened before a request frame existed, so there
/// is no span tree to retain — the status counters carry them.
fn record_wire_error(shared: &Shared, status: u16) {
    if let Some(obs) = &shared.obs {
        obs.record_request(None, status, 0, 0, &WallStages::new());
    }
}

/// A [`StageRecorder`] that publishes each stage into the worker's
/// profiler slot before delegating to the rich recorder — the engine's
/// pipeline stages become visible worker states for the price of one
/// relaxed store per stage transition.
struct ProfiledRec<'a, 'g> {
    inner: &'a mut RichStages<'g>,
    slots: &'a WorkerSlots,
    worker: usize,
    ctx: usize,
}

impl StageRecorder for ProfiledRec<'_, '_> {
    fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        self.slots.publish(self.worker, self.ctx, WorkerState::from_stage(stage));
        self.inner.time(stage, f)
    }
}

/// Parse, route, and process one framed request. `rec`, when present, is
/// the rich per-request recorder the engine times its stages into (and
/// that collects trace spans / HW deltas as a side effect). `worker` is
/// the serving worker's profiler slot index.
fn handle_request(
    shared: &Shared,
    msg: &[u8],
    framed_body_len: usize,
    rec: Option<&mut RichStages>,
    worker: usize,
) -> Reply {
    let req = match http::parse_request(TBuf::msg(msg), &mut NullProbe) {
        Ok(r) => r,
        Err(_) => return bad_request("malformed request"),
    };
    // Defense in depth: the instrumented parser and the wire framer must
    // agree on the body boundary, or we refuse to serve the request.
    if req.content_length.unwrap_or(0) != framed_body_len {
        return bad_request("body length disagreement");
    }
    let Ok(body_span) = req.body_span(msg.len()) else {
        return bad_request("truncated body");
    };
    let body = &msg[body_span.start..body_span.end];
    let path = &msg[req.path.start..req.path.end];
    let close = req
        .find_header(msg, b"connection")
        .is_some_and(|v| v.trim_ascii().eq_ignore_ascii_case(b"close"));

    match (req.method, path) {
        (Method::Get | Method::Head, b"/health") => {
            Reply::new(200, "<aon health=\"ok\"/>".to_string(), close)
        }
        (Method::Get | Method::Head, b"/metrics") => match &shared.obs {
            Some(obs) => {
                publish_state(shared, worker, 0, WorkerState::Admin);
                let mut r = Reply::new(200, obs.registry.render_prometheus(), close);
                r.content_type = "text/plain; version=0.0.4";
                r.admin = true;
                r
            }
            None => not_found(close),
        },
        (Method::Get | Method::Head, b"/stats.json") => {
            publish_state(shared, worker, 0, WorkerState::Admin);
            let mut body = shared.stats.snapshot().to_json_object("");
            // With observability on, append the service-time percentiles
            // (bucket-derived, interpolated p99.9 included) so a scraper
            // gets latency without parsing the Prometheus exposition.
            if let Some(obs) = &shared.obs {
                let h = obs.service_histogram_merged();
                let trimmed = body.trim_end_matches('}').trim_end().to_string();
                body = format!(
                    "{},\n  \"service_latency_ns\": {{ \"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {} }}\n}}",
                    trimmed.trim_end_matches(','),
                    h.count,
                    h.percentile(50),
                    h.percentile(99),
                    h.percentile_per_mille(999)
                );
            }
            // Always surface the pool shape: a reporter must not have to
            // infer worker count from configuration. With the profiler
            // on, the pool's live saturation and per-worker busy
            // fractions ride along.
            let pool = match &shared.profiler {
                Some(p) => {
                    let busy = p
                        .worker_utilization_permille()
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{{ \"workers\": {}, \"saturation_permille\": {}, \"busy_permille\": [{busy}] }}",
                        shared.workers,
                        p.saturation_permille()
                    )
                }
                None => format!("{{ \"workers\": {} }}", shared.workers),
            };
            let trimmed = body.trim_end_matches('}').trim_end().to_string();
            body = format!("{},\n  \"worker_pool\": {pool}\n}}", trimmed.trim_end_matches(','));
            body.push('\n');
            let mut r = Reply::new(200, body, close);
            r.content_type = "application/json";
            r.admin = true;
            r
        }
        (Method::Get | Method::Head, b"/flight.jsonl") => match &shared.obs {
            Some(obs) => {
                publish_state(shared, worker, 0, WorkerState::Admin);
                let mut r = Reply::new(200, obs.flight.dump_jsonl(), close);
                r.content_type = "application/x-ndjson";
                r.admin = true;
                r
            }
            None => not_found(close),
        },
        (Method::Get | Method::Head, b"/trace.jsonl") => match &shared.tracer {
            Some(tracer) => {
                publish_state(shared, worker, 0, WorkerState::Admin);
                let mut r = Reply::new(200, tracer.dump_jsonl(), close);
                r.content_type = "application/x-ndjson";
                r.admin = true;
                r
            }
            None => not_found(close),
        },
        (Method::Get | Method::Head, b"/profile.folded") => match &shared.profiler {
            Some(p) => {
                publish_state(shared, worker, 0, WorkerState::Admin);
                let mut r = Reply::new(200, p.folded(), close);
                r.content_type = "text/plain";
                r.admin = true;
                r
            }
            None => not_found(close),
        },
        (Method::Post, _) => match route_use_case(shared, path) {
            // Admission control happens after routing (so the refusal is
            // attributed to a cost class) but before the engine touches
            // the payload — a shed request costs the server one header
            // write and nothing else.
            Some(uc) if shared.governor.should_shed(uc) => {
                publish_state(shared, worker, profile_ctx(Some(uc)), WorkerState::Shed);
                if let Some(r) = rec {
                    // A zero-duration marker: the trace shows *where* in
                    // the request's life the governor refused it.
                    r.note_point("governor_shed");
                }
                let level = shared.governor.level();
                let mut r = Reply::new(
                    503,
                    format!("<aon shed=\"true\" level=\"{}\"/>", level.label()),
                    // Close so the refused client's keep-alive slot frees
                    // a worker for admitted traffic.
                    true,
                );
                r.retry_after = Some(shared.cfg.governor.retry_after_secs);
                r.use_case = Some(uc);
                r
            }
            Some(uc) => {
                let mode = shared.cfg.parse_mode;
                let outcome = match (rec, &shared.profiler) {
                    // With the profiler on, wrap the rich recorder so
                    // each engine stage also publishes the worker state.
                    (Some(r), Some(p)) => {
                        let mut pr = ProfiledRec {
                            inner: r,
                            slots: p.slots().as_ref(),
                            worker,
                            ctx: profile_ctx(Some(uc)),
                        };
                        shared.engine.process_mode_staged(mode, uc, body, &mut pr)
                    }
                    (Some(r), None) => shared.engine.process_mode_staged(mode, uc, body, r),
                    (None, _) => shared.engine.process_mode_staged(
                        mode,
                        uc,
                        body,
                        &mut aon_obs::stage::NoopStages,
                    ),
                };
                let mut r = match outcome {
                    Ok(true) => Reply::new(200, "<aon routed=\"true\"/>".to_string(), close),
                    Ok(false) => Reply::new(422, "<aon routed=\"false\"/>".to_string(), close),
                    Err(e) => {
                        let mut r = Reply::new(422, format!("<aon error=\"{e}\"/>"), close);
                        r.errored = true;
                        r
                    }
                };
                r.use_case = Some(uc);
                r.payload_bytes = u64::try_from(body.len()).unwrap_or(u64::MAX);
                r
            }
            None => not_found(close),
        },
        _ => not_found(close),
    }
}

fn bad_request(why: &str) -> Reply {
    let mut r = Reply::new(400, format!("<aon error=\"{why}\"/>"), true);
    r.errored = true;
    r
}

fn not_found(close: bool) -> Reply {
    Reply::new(404, "<aon error=\"no such endpoint\"/>".to_string(), close)
}

/// Map a request path onto a use case.
fn route_use_case(shared: &Shared, path: &[u8]) -> Option<UseCase> {
    match path {
        b"/aon/fr" => Some(UseCase::Fr),
        b"/aon/cbr" => Some(UseCase::Cbr),
        b"/aon/sv" => Some(UseCase::Sv),
        b"/aon/dpi" => Some(UseCase::Dpi),
        b"/aon/crypto" => Some(UseCase::Crypto),
        b"/aon/process" => Some(shared.cfg.default_use_case),
        _ => None,
    }
}

/// Serialize and write one response. `retry_after` adds a `Retry-After`
/// header (governor-shed 503s only).
fn send(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
    content_type: &str,
    retry_after: Option<u64>,
) -> Result<(), WireError> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if close { "close" } else { "keep-alive" };
    let retry = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
        body.len()
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    write_all(stream, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::ShedLevel;
    use std::io::{Read, Write};

    fn tiny_server() -> Server {
        Server::start(ServeConfig {
            workers: 2,
            read_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        })
        .expect("bind ephemeral")
    }

    fn roundtrip(addr: SocketAddr, req: &[u8]) -> Vec<u8> {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(req).unwrap();
        // Half-close so read_to_end terminates even on keep-alive replies.
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        out
    }

    fn post(path: &[u8], body: &[u8]) -> Vec<u8> {
        let mut req = Vec::new();
        req.extend_from_slice(b"POST ");
        req.extend_from_slice(path);
        req.extend_from_slice(
            format!(" HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n", body.len())
                .as_bytes(),
        );
        req.extend_from_slice(body);
        req
    }

    #[test]
    fn serves_health_and_routes_use_cases() {
        let server = tiny_server();
        let addr = server.addr();
        let got = roundtrip(addr, b"GET /health HTTP/1.1\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 200"), "{}", String::from_utf8_lossy(&got));

        let corpus = aon_server::Corpus::generate(42, 4);
        let v = &corpus.variants[0]; // cbr_match = true, sv_valid = true
        let body = &v.http[v.body_start..];
        for (path, expect) in [
            (&b"/aon/fr"[..], &b"HTTP/1.1 200"[..]),
            (b"/aon/cbr", b"HTTP/1.1 200"),
            (b"/aon/sv", b"HTTP/1.1 200"),
        ] {
            let got = roundtrip(addr, &post(path, body));
            assert!(
                got.starts_with(expect),
                "{}: {}",
                String::from_utf8_lossy(path),
                String::from_utf8_lossy(&got[..40.min(got.len())])
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests_ok, 4);
        assert_eq!(stats.protocol_errors(), 0);
    }

    #[test]
    fn scalar_and_fast_modes_serve_identical_outcomes() {
        let corpus = aon_server::Corpus::generate(99, 6);
        let mut outcomes: Vec<Vec<u16>> = Vec::new();
        for mode in [ParseMode::Scalar, ParseMode::Fast] {
            let server = Server::start(ServeConfig {
                workers: 2,
                parse_mode: mode,
                ..ServeConfig::default()
            })
            .expect("bind");
            let addr = server.addr();
            let mut statuses = Vec::new();
            for v in &corpus.variants {
                let body = &v.http[v.body_start..];
                for path in [&b"/aon/cbr"[..], b"/aon/sv"] {
                    let got = roundtrip(addr, &post(path, body));
                    let status: u16 = String::from_utf8_lossy(&got[9..12]).parse().unwrap();
                    statuses.push(status);
                }
            }
            // Garbage bodies must be rejected identically, not differently.
            for bad in [&b"\xff\xfe"[..], b"<unclosed", b"<notsoap/>"] {
                for path in [&b"/aon/cbr"[..], b"/aon/sv"] {
                    let got = roundtrip(addr, &post(path, bad));
                    let status: u16 = String::from_utf8_lossy(&got[9..12]).parse().unwrap();
                    statuses.push(status);
                }
            }
            server.shutdown();
            outcomes.push(statuses);
        }
        assert_eq!(outcomes[0], outcomes[1], "parse modes must agree on every request");
    }

    #[test]
    fn malformed_requests_get_400_and_unknown_paths_404() {
        let server = tiny_server();
        let addr = server.addr();
        let got = roundtrip(addr, b"POST / HTTP/1.1\r\nX: a\nEvil: b\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 400"), "{}", String::from_utf8_lossy(&got));
        let got = roundtrip(addr, b"POST /nope HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 404"), "{}", String::from_utf8_lossy(&got));
        let stats = server.shutdown();
        assert_eq!(stats.bad_request, 1);
        assert_eq!(stats.not_found, 1);
    }

    #[test]
    fn oversized_body_gets_413() {
        let server = Server::start(ServeConfig {
            workers: 1,
            limits: WireLimits { max_head: 1024, max_body: 64 },
            ..ServeConfig::default()
        })
        .expect("bind");
        let got =
            roundtrip(server.addr(), b"POST /aon/fr HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 413"), "{}", String::from_utf8_lossy(&got));
        assert_eq!(server.shutdown().too_large, 1);
    }

    #[test]
    fn stalled_request_gets_408() {
        let server = Server::start(ServeConfig {
            workers: 1,
            read_timeout: Duration::from_millis(60),
            ..ServeConfig::default()
        })
        .expect("bind");
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Send half a head, then stall past the deadline.
        s.write_all(b"POST /aon/fr HTTP/1.1\r\nContent-").unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert!(out.starts_with(b"HTTP/1.1 408"), "{}", String::from_utf8_lossy(&out));
        assert_eq!(server.shutdown().timeouts, 1);
    }

    #[test]
    fn keepalive_serves_multiple_requests_then_caps() {
        let server = Server::start(ServeConfig {
            workers: 1,
            keepalive_max_requests: 3,
            ..ServeConfig::default()
        })
        .expect("bind");
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let req = b"GET /health HTTP/1.1\r\n\r\n";
        let mut served = 0u32;
        let mut buf = [0u8; 4096];
        for i in 0..3 {
            s.write_all(req).unwrap();
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0);
            let text = String::from_utf8_lossy(&buf[..n]);
            assert!(text.starts_with("HTTP/1.1 200"));
            served += 1;
            let expect_close = i == 2;
            assert_eq!(text.contains("Connection: close"), expect_close, "request {i}: {text}");
        }
        assert_eq!(served, 3);
        // The capped connection is now closed by the server.
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server must close after the keep-alive cap");
        assert_eq!(server.shutdown().requests_ok, 3);
    }

    #[test]
    fn fr_only_mode_sheds_expensive_classes_with_retry_after() {
        let server = Server::start(ServeConfig {
            workers: 1,
            governor: GovernorConfig {
                fr_only: true,
                retry_after_secs: 7,
                ..GovernorConfig::default()
            },
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        assert_eq!(server.governor().level(), ShedLevel::FrOnly);
        let corpus = aon_server::Corpus::generate(42, 2);
        let v = &corpus.variants[0];
        let body = &v.http[v.body_start..];

        let got = roundtrip(addr, &post(b"/aon/sv", body));
        let text = String::from_utf8_lossy(&got);
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable"), "{text}");
        assert!(text.contains("Retry-After: 7"), "{text}");
        assert!(text.contains("Connection: close"), "shed responses free the worker: {text}");
        assert!(text.contains("shed=\"true\""), "{text}");

        let got = roundtrip(addr, &post(b"/aon/fr", body));
        assert!(got.starts_with(b"HTTP/1.1 200"), "FR stays admitted in bypass mode");

        let metrics = server.metrics_text().expect("observability on");
        assert!(
            metrics.contains("aon_requests_total{use_case=\"SV\",outcome=\"shed\"} 1"),
            "{metrics}"
        );
        assert!(metrics.contains("aon_http_responses_total{status=\"503\"} 1"));

        let stats = server.shutdown();
        assert_eq!(stats.requests_shed, 1);
        assert_eq!(stats.requests_ok, 1);
        assert_eq!(stats.requests_total(), 2, "a shed request is still an answered request");
        assert_eq!(stats.protocol_errors(), 0);
    }

    #[test]
    fn refused_pushes_record_queue_depth_at_capacity() {
        let server = Server::start(ServeConfig {
            workers: 1,
            accept_backlog: 1,
            read_timeout: Duration::from_millis(400),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        // Occupy the only worker with a stalled request...
        let mut stall = TcpStream::connect(addr).unwrap();
        stall.write_all(b"POST /aon/fr HTTP/1.1\r\nContent-").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // ...fill the one-slot queue...
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // ...then overflow it: the refused push must still record that the
        // queue stood at capacity (the depth signal on the shed path).
        let _dropped = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().dropped_backlog == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = server.shutdown();
        assert!(stats.dropped_backlog >= 1, "third connection must be shed at the edge");
        assert_eq!(stats.queue_depth_hwm, 1, "hwm records the capacity the Full refusal saw");
        drop(stall);
    }

    #[test]
    fn graceful_shutdown_reports_consistent_totals() {
        let server = tiny_server();
        let addr = server.addr();
        for _ in 0..5 {
            let got = roundtrip(addr, b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
            assert!(got.starts_with(b"HTTP/1.1 200"));
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests_ok, 5);
        assert_eq!(stats.accepted, 5);
        assert_eq!(stats.requests_total(), 5);
    }

    #[test]
    fn metrics_endpoint_reports_exact_request_totals() {
        let server = tiny_server();
        let addr = server.addr();
        let corpus = aon_server::Corpus::generate(42, 6);
        let mut expect_ok = 0u64;
        let mut expect_rejected = 0u64;
        for v in &corpus.variants {
            let body = &v.http[v.body_start..];
            let got = roundtrip(addr, &post(b"/aon/cbr", body));
            if v.cbr_match {
                expect_ok += 1;
                assert!(got.starts_with(b"HTTP/1.1 200"));
            } else {
                expect_rejected += 1;
                assert!(got.starts_with(b"HTTP/1.1 422"));
            }
        }
        assert!(expect_ok > 0 && expect_rejected > 0, "corpus must mix outcomes");

        // Scrape twice: the scrape itself must not move any request total.
        let first = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text1 = String::from_utf8_lossy(&first).to_string();
        assert!(text1.starts_with("HTTP/1.1 200"), "{text1}");
        assert!(text1.contains("Content-Type: text/plain; version=0.0.4"), "{text1}");
        let second = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text2 = String::from_utf8_lossy(&second).to_string();

        for text in [&text1, &text2] {
            assert!(
                text.contains(&format!(
                    "aon_requests_total{{use_case=\"CBR\",outcome=\"ok\"}} {expect_ok}"
                )),
                "{text}"
            );
            assert!(text.contains(&format!(
                "aon_requests_total{{use_case=\"CBR\",outcome=\"rejected\"}} {expect_rejected}"
            )));
            assert!(text.contains("aon_stage_duration_ns_bucket{use_case=\"CBR\",stage=\"parse\""));
            assert!(text.contains("aon_stage_duration_ns_bucket{use_case=\"CBR\",stage=\"write\""));
        }
        // The second scrape sees the first only in the admin counter.
        assert!(text1.contains("aon_admin_requests_total 0"), "{text1}");
        assert!(text2.contains("aon_admin_requests_total 1"), "{text2}");

        let stats = server.shutdown();
        assert_eq!(stats.requests_ok, expect_ok);
        assert_eq!(stats.requests_rejected, expect_rejected);
        assert_eq!(stats.admin_requests, 2);
    }

    #[test]
    fn stats_json_and_flight_endpoints_serve_observability_state() {
        let server = tiny_server();
        let addr = server.addr();
        let corpus = aon_server::Corpus::generate(7, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];
        let got = roundtrip(addr, &post(b"/aon/sv", body));
        assert!(got.starts_with(b"HTTP/1.1 200"), "{}", String::from_utf8_lossy(&got));

        let got = roundtrip(addr, b"GET /stats.json HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&got);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.contains("\"requests_ok\": 1"), "{text}");
        assert!(text.contains("\"queue_depth_hwm\": 1"), "{text}");
        assert!(text.contains("\"admin_requests\": 0"), "{text}");

        let got = roundtrip(addr, b"GET /flight.jsonl HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&got);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("\"use_case\":\"SV\""), "{text}");
        assert!(text.contains("\"parse\":"), "flight events carry stage spans: {text}");

        let cells = server.stage_cells();
        assert!(cells.iter().any(|c| c.use_case == "SV" && c.stage == "validate"));
        assert!(cells.iter().any(|c| c.use_case == "SV" && c.stage == "write"));
        let stats = server.shutdown();
        assert_eq!(stats.admin_requests, 2);
        assert_eq!(stats.requests_total(), 1, "admin hits are not requests");
    }

    #[test]
    fn trace_endpoint_serves_complete_span_trees_without_perturbing_totals() {
        use aon_obs::reqtrace::ParsedTrace;
        let server = Server::start(ServeConfig {
            workers: 1,
            // Sample everything so the one request is provably retained
            // regardless of its latency class.
            trace: TraceConfig { sample_per_million: 1_000_000, ..TraceConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let corpus = aon_server::Corpus::generate(7, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];
        let got = roundtrip(addr, &post(b"/aon/sv", body));
        assert!(got.starts_with(b"HTTP/1.1 200"), "{}", String::from_utf8_lossy(&got));

        let got = roundtrip(addr, b"GET /trace.jsonl HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&got);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Content-Type: application/x-ndjson"), "{text}");
        let body_start = text.find("\r\n\r\n").expect("has body") + 4;
        let traces = ParsedTrace::parse_jsonl(&text[body_start..]).expect("valid trace JSONL");
        assert_eq!(traces.len(), 1, "exactly the one POST is traced — never the admin GETs");
        let t = &traces[0];
        t.tree_complete().expect("span tree complete");
        assert_eq!(t.use_case, "SV");
        assert_eq!(t.status, 200);
        assert!(t.span_ns("queue_wait") > 0, "first request carries its accept-queue wait");
        assert!(t.span_ns("validate") > 0, "SV runs the validate stage: {:?}", t.spans);
        assert!(t.span_ns("write") > 0, "response write is a span");

        let stats = server.shutdown();
        assert_eq!(stats.requests_total(), 1, "trace reads never perturb request totals");
        assert_eq!(stats.admin_requests, 1);
    }

    #[test]
    fn tail_sampler_always_keeps_shed_requests_even_with_sampling_off() {
        let server = Server::start(ServeConfig {
            workers: 1,
            governor: GovernorConfig { fr_only: true, ..GovernorConfig::default() },
            // Reservoir rate zero: only the always-keep classes survive.
            trace: TraceConfig { sample_per_million: 0, ..TraceConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let corpus = aon_server::Corpus::generate(42, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];

        let got = roundtrip(addr, &post(b"/aon/fr", body));
        assert!(got.starts_with(b"HTTP/1.1 200"), "admitted FR is fast, not sampled, discarded");
        let got = roundtrip(addr, &post(b"/aon/sv", body));
        assert!(got.starts_with(b"HTTP/1.1 503"), "SV shed in FR-only mode");

        let tracer = server.tracer().expect("tracing on by default");
        assert_eq!(tracer.dropped_keep(), 0, "no always-keep trace may ever be evicted");
        let dump = server.trace_jsonl().expect("tracing on");
        let traces = aon_obs::reqtrace::ParsedTrace::parse_jsonl(&dump).expect("valid");
        assert_eq!(traces.len(), 1, "only the shed request is retained: {dump}");
        assert_eq!(traces[0].class, TraceClass::Shed);
        assert_eq!(traces[0].status, 503);
        assert!(
            traces[0].spans.iter().any(|s| s.label == "governor_shed"),
            "shed traces carry the refusal marker: {dump}"
        );

        let metrics = server.metrics_text().expect("observability on");
        assert!(metrics.contains("aon_trace_kept_total{class=\"shed\"} 1"), "{metrics}");
        assert!(metrics.contains("aon_trace_dropped_total{kind=\"keep\"} 0"));
        assert!(
            metrics.contains("aon_queue_wait_ns_count 2"),
            "both connections waited: {metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn tracing_off_disables_trace_endpoint_and_families() {
        let server = Server::start(ServeConfig {
            workers: 1,
            trace: TraceConfig { enabled: false, ..TraceConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        assert!(server.trace_jsonl().is_none());
        assert!(server.tracer().is_none());
        let got = roundtrip(addr, b"GET /trace.jsonl HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 404"), "{}", String::from_utf8_lossy(&got));
        let metrics = server.metrics_text().expect("observability on");
        assert!(!metrics.contains("aon_trace_"), "no dead trace series: {metrics}");
        server.shutdown();
    }

    #[test]
    fn stats_json_carries_bucket_derived_latency_percentiles() {
        let server = tiny_server();
        let addr = server.addr();
        let corpus = aon_server::Corpus::generate(42, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];
        let got = roundtrip(addr, &post(b"/aon/fr", body));
        assert!(got.starts_with(b"HTTP/1.1 200"));
        let got = roundtrip(addr, b"GET /stats.json HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&got);
        assert!(text.contains("\"service_latency_ns\""), "{text}");
        assert!(text.contains("\"p999\":"), "{text}");
        assert!(
            text.contains("\"count\": 1"),
            "the FR request is in the service histogram: {text}"
        );
        server.shutdown();
    }

    #[test]
    fn profiler_off_disables_endpoint_and_families() {
        let server = Server::start(ServeConfig {
            workers: 1,
            profiler: ProfilerConfig { enabled: false, ..ProfilerConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        assert!(server.profiler().is_none());
        assert!(server.profile_folded().is_none());
        let got = roundtrip(addr, b"GET /profile.folded HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 404"), "{}", String::from_utf8_lossy(&got));
        let metrics = server.metrics_text().expect("observability on");
        assert!(!metrics.contains("aon_worker_"), "no dead profiler series: {metrics}");
        assert!(!metrics.contains("aon_pool_"), "{metrics}");
        assert!(!metrics.contains("aon_profiler_"), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn profile_folded_serves_worker_states_without_perturbing_totals() {
        let server = tiny_server();
        let addr = server.addr();
        let corpus = aon_server::Corpus::generate(7, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];
        let got = roundtrip(addr, &post(b"/aon/sv", body));
        assert!(got.starts_with(b"HTTP/1.1 200"), "{}", String::from_utf8_lossy(&got));

        // Drive sampling passes deterministically rather than waiting on
        // the sampler thread's cadence (its passes interleave harmlessly).
        let p = server.profiler().expect("profiler on by default");
        for _ in 0..5 {
            p.sample_once();
        }
        let got = roundtrip(addr, b"GET /profile.folded HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&got);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Content-Type: text/plain"), "{text}");
        let folded_start = text.find("\r\n\r\n").expect("has body") + 4;
        for line in text[folded_start..].lines() {
            let (frames, count) = line.rsplit_once(' ').expect("folded grammar");
            assert!(count.parse::<u64>().is_ok(), "{line}");
            assert_eq!(frames.split(';').count(), 2, "{line}");
        }
        assert!(p.passes() >= 5);
        // The pool went through accept-wait at least once per pass, so
        // the aggregate state samples are visible in /metrics too.
        let metrics = server.metrics_text().expect("observability on");
        assert!(metrics.contains("aon_profiler_passes_total"), "{metrics}");
        assert!(metrics.contains("aon_worker_state_samples_total{state=\"accept_wait\"}"));

        let stats = server.shutdown();
        assert_eq!(stats.requests_total(), 1, "profile reads never perturb request totals");
        assert_eq!(stats.admin_requests, 1);
    }

    #[test]
    fn stats_json_reports_worker_pool_shape() {
        let server = tiny_server();
        let addr = server.addr();
        assert_eq!(server.worker_count(), 2);
        let got = roundtrip(addr, b"GET /stats.json HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&got);
        assert!(text.contains("\"worker_pool\""), "{text}");
        assert!(text.contains("\"workers\": 2"), "{text}");
        assert!(text.contains("\"saturation_permille\":"), "{text}");
        assert!(text.contains("\"busy_permille\": ["), "{text}");
        server.shutdown();

        // Profiler off: the pool size still surfaces (no more inferring
        // worker count from configuration), just without live saturation.
        let server = Server::start(ServeConfig {
            workers: 3,
            profiler: ProfilerConfig { enabled: false, ..ProfilerConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind");
        let got =
            roundtrip(server.addr(), b"GET /stats.json HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&got);
        assert!(text.contains("\"workers\": 3"), "{text}");
        assert!(!text.contains("saturation_permille"), "{text}");
        server.shutdown();
    }

    #[test]
    fn exemplars_link_latency_buckets_to_kept_traces() {
        use aon_obs::reqtrace::ParsedTrace;
        let server = Server::start(ServeConfig {
            workers: 1,
            // Sample everything: the request is provably kept, so its id
            // must appear both as an exemplar and in /trace.jsonl.
            trace: TraceConfig { sample_per_million: 1_000_000, ..TraceConfig::default() },
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let corpus = aon_server::Corpus::generate(7, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];
        let got = roundtrip(addr, &post(b"/aon/sv", body));
        assert!(got.starts_with(b"HTTP/1.1 200"), "{}", String::from_utf8_lossy(&got));

        let metrics = server.metrics_text().expect("observability on");
        let samples = aon_obs::scrape::parse_prometheus(&metrics);
        let exemplar = samples
            .iter()
            .filter(|s| s.name == "aon_request_duration_ns_bucket")
            .find_map(|s| s.exemplar.as_ref())
            .expect("a service bucket carries an exemplar");
        let id: u64 = exemplar.label("trace_id").expect("trace_id label").parse().expect("id");
        assert!(exemplar.value > 0.0, "exemplar value is the observed service time");

        let dump = server.trace_jsonl().expect("tracing on");
        let traces = ParsedTrace::parse_jsonl(&dump).expect("valid trace JSONL");
        assert!(
            traces.iter().any(|t| t.id == id),
            "exemplar trace id {id} must resolve in /trace.jsonl: {dump}"
        );
        server.shutdown();
    }

    #[test]
    fn observability_off_disables_admin_metrics_and_flight() {
        let server =
            Server::start(ServeConfig { workers: 1, observe: false, ..ServeConfig::default() })
                .expect("bind");
        let addr = server.addr();
        assert!(server.metrics_text().is_none());
        assert!(server.flight_jsonl().is_none());
        assert!(server.stage_cells().is_empty());
        let got = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 404"), "{}", String::from_utf8_lossy(&got));
        // /stats.json works regardless: it reads ServeStats, not the registry.
        let got = roundtrip(addr, b"GET /stats.json HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(got.starts_with(b"HTTP/1.1 200"), "{}", String::from_utf8_lossy(&got));
        let stats = server.shutdown();
        assert_eq!(stats.not_found, 1);
        assert_eq!(stats.admin_requests, 1);
    }
}
