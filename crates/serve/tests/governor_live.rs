//! End-to-end tests of the capacity governor against a live server:
//! breach → escalate → shed-by-cost-class → hysteretic recovery, the
//! FR-only bypass, and the scrape==client accounting equality with a
//! shed outcome in play.

use aon_obs::scrape::{parse_prometheus, sum_samples};
use aon_serve::governor::{GovernorConfig, ShedLevel};
use aon_serve::loadgen::{run, scrape, LoadgenConfig};
use aon_serve::server::{ServeConfig, Server};
use aon_server::usecase::UseCase;
use aon_server::Corpus;
use aon_trace::num::exact_f64;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn post(path: &str, body: &[u8]) -> Vec<u8> {
    let mut req = Vec::new();
    req.extend_from_slice(
        format!(
            "POST {path} HTTP/1.1\r\nHost: aon.local\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    req.extend_from_slice(body);
    req
}

fn roundtrip(addr: SocketAddr, req: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    s.write_all(req).expect("send");
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

/// Poll until `pred` holds or the deadline passes; returns whether it held.
fn wait_for(mut pred: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

#[test]
fn p99_breach_sheds_sv_then_recovers_hysteretically() {
    // A p99 budget of 1ns means any sampled window with traffic breaches:
    // the escalation and recovery mechanics become deterministic without
    // having to genuinely saturate the host.
    let server = Server::start(ServeConfig {
        workers: 2,
        governor: GovernorConfig {
            p99_budget: Duration::from_nanos(1),
            queue_depth_budget: 1_000_000,
            sample_interval: Duration::from_millis(20),
            min_window_samples: 1,
            recover_after: 2,
            ..GovernorConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let corpus = Corpus::generate(42, 2);
    let v = &corpus.variants[0];
    let body = &v.http[v.body_start..];

    // Drive traffic until the sampler has escalated at least one level.
    let escalated = wait_for(
        || {
            let _ = roundtrip(addr, &post("/aon/fr", body));
            server.governor().level() >= ShedLevel::Sv
        },
        Duration::from_secs(10),
    );
    assert!(escalated, "sampled breaches must escalate the shed level");

    // At level >= Sv the costliest class is refused while FR is served.
    let sv = roundtrip(addr, &post("/aon/sv", body));
    assert!(sv.starts_with("HTTP/1.1 503"), "SV must be shed: {sv}");
    assert!(sv.contains("Retry-After: "), "shed responses advertise backoff: {sv}");
    let fr = roundtrip(addr, &post("/aon/fr", body));
    assert!(fr.starts_with("HTTP/1.1 200"), "FR is never shed: {fr}");

    // Stop offering load: quiet windows (no samples) are healthy, so
    // after recover_after consecutive windows per level the governor
    // steps back down to None.
    let recovered =
        wait_for(|| server.governor().level() == ShedLevel::None, Duration::from_secs(10));
    assert!(recovered, "quiet windows must recover the level hysteretically");

    let sv = roundtrip(addr, &post("/aon/sv", body));
    assert!(sv.starts_with("HTTP/1.1 200"), "recovered server admits SV again: {sv}");

    // The metrics trail agrees: breaches and both transition directions.
    let text = server.metrics_text().expect("observability on");
    let samples = parse_prometheus(&text);
    assert!(sum_samples(&samples, "aon_governor_breaches_total", &[("signal", "p99")]) >= 1.0);
    assert!(sum_samples(&samples, "aon_governor_transitions_total", &[("direction", "up")]) >= 1.0);
    assert!(
        sum_samples(&samples, "aon_governor_transitions_total", &[("direction", "down")]) >= 1.0
    );
    let stats = server.shutdown();
    assert!(stats.requests_shed >= 1);
    assert_eq!(stats.protocol_errors(), 0);
}

#[test]
fn queue_depth_breach_escalates_without_latency_signal() {
    // Budget of zero: the first observed queue depth (>= 1) breaches.
    // Observability is off, so the p99 signal is absent — the queue
    // signal alone must drive the escalation.
    let server = Server::start(ServeConfig {
        workers: 1,
        observe: false,
        governor: GovernorConfig {
            p99_budget: Duration::from_secs(3600),
            queue_depth_budget: 0,
            sample_interval: Duration::from_millis(20),
            recover_after: 1_000_000, // pin: no recovery during the test
            ..GovernorConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let escalated = wait_for(
        || {
            let _ = roundtrip(addr, "GET /health HTTP/1.1\r\n\r\n".as_bytes());
            server.governor().level() >= ShedLevel::Sv
        },
        Duration::from_secs(10),
    );
    assert!(escalated, "queue-depth breaches must escalate even with observability off");
    server.shutdown();
}

#[test]
fn fr_only_bypass_survives_quiet_windows() {
    // The bypass mode is an operator pin, not a governor decision: no
    // sampler runs, so quiet windows must NOT relax it.
    let server = Server::start(ServeConfig {
        workers: 1,
        governor: GovernorConfig {
            fr_only: true,
            sample_interval: Duration::from_millis(10),
            recover_after: 1,
            ..GovernorConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    std::thread::sleep(Duration::from_millis(120)); // many would-be windows
    assert_eq!(server.governor().level(), ShedLevel::FrOnly, "bypass mode never relaxes");
    let corpus = Corpus::generate(7, 2);
    let v = &corpus.variants[0];
    let body = &v.http[v.body_start..];
    let sv = roundtrip(server.addr(), &post("/aon/cbr", body));
    assert!(sv.starts_with("HTTP/1.1 503"), "{sv}");
    server.shutdown();
}

#[test]
fn scrape_equality_holds_with_sheds_in_play() {
    // FR-only bypass + a mixed closed loop: ok, rejected, and shed all
    // move, and the scraped totals must equal the client's counts
    // exactly, outcome by outcome.
    let server = Server::start(ServeConfig {
        workers: 2,
        governor: GovernorConfig { fr_only: true, ..GovernorConfig::default() },
        ..ServeConfig::default()
    })
    .expect("bind");
    let cfg = LoadgenConfig {
        addr: server.addr(),
        connections: 2,
        duration: Duration::from_millis(300),
        use_cases: vec![UseCase::Fr, UseCase::Sv],
        ..LoadgenConfig::default()
    };
    let report = run(&cfg);
    assert!(report.requests_ok > 0, "FR traffic must flow");
    assert!(report.errors.shed > 0, "SV traffic must be shed");
    assert_eq!(report.requests_failed, 0, "sheds are not failures: {:?}", report.errors);

    // The server records a request just after writing its response, so
    // allow the final events to land before scraping.
    let expect_processed = exact_f64(report.requests_ok);
    let expect_shed = exact_f64(report.errors.shed);
    let settled = wait_for(
        || {
            let text =
                scrape(server.addr(), "/metrics", Duration::from_secs(5)).unwrap_or_default();
            let samples = parse_prometheus(&text);
            let ok = sum_samples(&samples, "aon_requests_total", &[("outcome", "ok")]);
            let rejected = sum_samples(&samples, "aon_requests_total", &[("outcome", "rejected")]);
            let shed = sum_samples(&samples, "aon_requests_total", &[("outcome", "shed")]);
            ok + rejected == expect_processed && shed == expect_shed
        },
        Duration::from_secs(5),
    );
    assert!(settled, "scrape totals must settle to the client's exact counts");

    let stats = server.shutdown();
    assert_eq!(stats.requests_ok + stats.requests_rejected, report.requests_ok);
    assert_eq!(stats.requests_shed, report.errors.shed);
    assert_eq!(stats.requests_total(), report.requests_ok + report.errors.shed);
}
