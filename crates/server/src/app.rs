//! The multithreaded XML server on a simulated machine.
//!
//! The paper's server "uses POSIX threads ... kept equal to the number of
//! (logical) CPUs that the operating system can detect" (§3.2.1). We wire
//! the same structure: one worker thread per logical CPU, all pulling from
//! a shared listen queue fed by the ingress link, processing messages with
//! pre-recorded use-case traces, and forwarding onto a shared egress NIC
//! queue drained at wire rate.
//!
//! Address map per message (replay-time slot bindings):
//!
//! * `MSG`    → the message's RX-ring buffer (cold: the NIC DMA'd it);
//! * `IN2`    → the same RX buffer (softirq header reads);
//! * `WORK`   → the worker's private arena (recycled per message — warm);
//! * `OUT`    → the egress ring slot (streaming writes);
//! * `KERNEL` → a rotating 256 KiB connection-state slab;
//! * `STATIC` → the shared device configuration (schema, XPath, policy).

use crate::corpus::Corpus;
use crate::usecase::{record_all_variant_segments, UseCase};
use aon_net::link::gige_per_kcycle;
use aon_sim::machine::Machine;
use aon_sim::sync::{ChannelConfig, ChannelId, FillConfig, Msg};
use aon_sim::thread::{Step, Workload, WorkloadCtx};
use aon_trace::trace::{Binding, Trace};
use aon_trace::{RegionSlot, VAddr};
use std::sync::Arc;

use crate::overhead::{
    KERNEL2_SLOTS, KERNEL2_WINDOW, KERNEL3_SLOTS, KERNEL3_WINDOW, KERNEL_SLOTS, KERNEL_WINDOW,
};

/// Base of the RX ring the NIC writes arriving messages into.
const RX_RING_BASE: VAddr = VAddr(0x5000_0000);
/// Base of the egress (TX) ring.
const TX_RING_BASE: VAddr = VAddr(0x5800_0000);
/// Base of the kernel connection-state slabs.
const KERNEL_BASE: VAddr = VAddr(0x6000_0000);
/// Base of the global kernel tables (`KERNEL2`) — shared by all workers
/// (conntrack, dentry and route caches are machine-global, read-mostly).
const KERNEL2_BASE: VAddr = VAddr(0x6800_0000);
/// Base of the cold kernel expanse (`KERNEL3`) — also machine-global.
const KERNEL3_BASE: VAddr = VAddr(0x9000_0000);
/// Base of the per-worker arenas.
const WORK_BASE: VAddr = VAddr(0x7000_0000);
/// Spacing between worker arenas.
const WORK_SPACING: u64 = 4 << 20;
/// Address-rotation window for message buffers. Real payload buffers come
/// from the page/slab allocators, which cycle far more memory than the
/// byte capacity of any queue — so consecutive messages land in fresh
/// lines and payload traffic streams through the caches (the no-temporal-
/// reuse behaviour of §5.3).
const RING_ADDR_WINDOW: u64 = 8 << 20;

/// Server deployment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Listen-queue capacity in bytes.
    pub listen_capacity: u32,
    /// Egress NIC queue capacity in bytes.
    pub egress_capacity: u32,
    /// Offered load as a fraction of the ingress gigabit link (100 =
    /// saturation).
    pub offered_load_pct: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen_capacity: 256 * 1024,
            egress_capacity: 256 * 1024,
            offered_load_pct: 100,
        }
    }
}

/// Handles returned by [`build_server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerHandles {
    /// The ingress listen queue (externally filled).
    pub listen: ChannelId,
    /// The egress NIC queue (drained at wire rate).
    pub egress: ChannelId,
    /// Number of worker threads spawned.
    pub workers: u32,
}

enum WorkerState {
    Accept,
    Dma(Msg),
    /// Executing phase `usize` of the message's segment list.
    Process(Msg, usize),
    Forward,
}

/// One server worker thread.
struct ServerWorker {
    listen: ChannelId,
    egress: ChannelId,
    /// Per variant: the labelled phase traces of one message.
    traces: Arc<Vec<Vec<Arc<Trace>>>>,
    msg_len: u32,
    work_base: VAddr,
    /// Worker-local egress cursor estimate. Workers share the egress ring;
    /// exact mirroring is impossible (interleaving), so each worker strides
    /// its own region of the ring — the streaming-store behaviour is
    /// identical.
    egress_cursor: u64,
    /// This worker's index (selects its kernel slab range).
    worker_id: u32,
    /// Connections this worker has handled (drives its slab rotation).
    conn_count: u64,
    state: WorkerState,
}

impl ServerWorker {
    fn rx_addr(&self, arrival: u64) -> VAddr {
        let window = RING_ADDR_WINDOW.max(self.msg_len as u64);
        let off = (arrival * self.msg_len as u64) % window;
        let off = if off + self.msg_len as u64 > window { 0 } else { off };
        RX_RING_BASE.offset(off)
    }

    fn tx_addr(&self) -> VAddr {
        let window = RING_ADDR_WINDOW.max(self.msg_len as u64);
        let off = (self.egress_cursor * self.msg_len as u64) % window;
        let off = if off + self.msg_len as u64 > window { 0 } else { off };
        TX_RING_BASE.offset(off + self.worker_id as u64 * RING_ADDR_WINDOW)
    }

    /// Connection slabs are allocated from per-worker (per-CPU, in kernel
    /// terms) pools: each worker cycles its own `KERNEL_SLOTS` windows in
    /// order, driven by its local connection count (a global index would
    /// alias across workers and shrink the per-core working set).
    fn kernel_addr(&self) -> VAddr {
        let slot =
            self.worker_id as u64 * KERNEL_SLOTS as u64 + self.conn_count % KERNEL_SLOTS as u64;
        KERNEL_BASE.offset(slot * KERNEL_WINDOW as u64)
    }
}

impl Workload for ServerWorker {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        match std::mem::replace(&mut self.state, WorkerState::Accept) {
            WorkerState::Accept => {
                if let Some(m) = ctx.last_recv {
                    self.state = WorkerState::Dma(m);
                    // The NIC wrote the arriving message into the RX ring:
                    // account the DMA (bus + invalidations) before touching
                    // the bytes.
                    return Step::Dma { write: true, addr: self.rx_addr(m.tag), len: m.bytes };
                }
                self.state = WorkerState::Accept;
                Step::Recv { chan: self.listen }
            }
            WorkerState::Dma(m) => {
                self.conn_count += 1;
                self.state = WorkerState::Process(m, 0);
                self.next(ctx)
            }
            WorkerState::Process(m, phase) => {
                let n = u64::try_from(self.traces.len()).expect("trace count fits u64");
                let variant = usize::try_from(m.tag % n).expect("index below len");
                let segments = &self.traces[variant];
                if phase < segments.len() {
                    let rx = self.rx_addr(m.tag);
                    let mut b = Binding::new();
                    b.bind(RegionSlot::MSG, rx);
                    b.bind(RegionSlot::IN2, rx);
                    b.bind(RegionSlot::WORK, self.work_base);
                    b.bind(RegionSlot::OUT, self.tx_addr());
                    b.bind(RegionSlot::KERNEL, self.kernel_addr());
                    // Global-table tiers rotate with the *arrival* index:
                    // all workers walk the same shared structures
                    // (read-mostly, so copies sit in Shared state in every
                    // cache that wants them).
                    b.bind(
                        RegionSlot::KERNEL2,
                        KERNEL2_BASE.offset((m.tag % KERNEL2_SLOTS as u64) * KERNEL2_WINDOW as u64),
                    );
                    b.bind(
                        RegionSlot::KERNEL3,
                        KERNEL3_BASE.offset((m.tag % KERNEL3_SLOTS as u64) * KERNEL3_WINDOW as u64),
                    );
                    let trace = Arc::clone(&segments[phase]);
                    self.state = WorkerState::Process(m, phase + 1);
                    return Step::Run { trace, binding: b };
                }
                self.state = WorkerState::Forward;
                self.egress_cursor += 1;
                ctx.complete_units = 1;
                ctx.complete_bytes = m.bytes as u64;
                Step::Send { chan: self.egress, msg: m }
            }
            WorkerState::Forward => {
                self.state = WorkerState::Accept;
                Step::Recv { chan: self.listen }
            }
        }
    }

    fn label(&self) -> &str {
        "aon-worker"
    }
}

/// Record the per-variant phase traces [`build_server`] replays, in the
/// shared (`Arc`) shape the workers consume.
///
/// The recording depends only on the use case and the corpus — never on
/// the platform — which is what makes it memoizable: a sweep records each
/// (use case, corpus) once and replays the same immutable traces on every
/// platform configuration.
pub fn record_server_traces(use_case: UseCase, corpus: &Corpus) -> Arc<Vec<Vec<Arc<Trace>>>> {
    Arc::new(
        record_all_variant_segments(use_case, corpus)
            .into_iter()
            .map(|segs| segs.into_iter().map(Arc::new).collect())
            .collect(),
    )
}

/// Wire an XML server for `use_case` onto `machine`: one worker per
/// logical CPU, ingress fill at the offered load, egress drained at wire
/// rate. Records the use-case traces inline; sweeps that reuse a corpus
/// should record once with [`record_server_traces`] and call
/// [`build_server_with_traces`].
pub fn build_server(
    machine: &mut Machine,
    use_case: UseCase,
    corpus: &Corpus,
    cfg: &ServerConfig,
) -> ServerHandles {
    let traces = record_server_traces(use_case, corpus);
    let msg_len = u32::try_from(corpus.max_http_len()).expect("HTTP messages are KiB-sized");
    build_server_with_traces(machine, traces, msg_len, cfg)
}

/// [`build_server`] with pre-recorded traces: the machine-wiring half.
///
/// `msg_len` must be the corpus's [`Corpus::max_http_len`] (messages are
/// padded to the same HTTP length by construction — close enough that a
/// single length serves the ring arithmetic). Byte-identical to
/// [`build_server`] given the same recording: the traces are replayed, not
/// re-derived, so where they came from cannot be observed.
pub fn build_server_with_traces(
    machine: &mut Machine,
    traces: Arc<Vec<Vec<Arc<Trace>>>>,
    msg_len: u32,
    cfg: &ServerConfig,
) -> ServerHandles {
    let mhz = machine.config().cpu_mhz;
    let gige = u64::from(gige_per_kcycle(mhz));
    let ingress_rate = u32::try_from(((gige * u64::from(cfg.offered_load_pct)) / 100).max(1))
        .expect("scaled-down link rate fits u32");

    let listen = machine.add_channel(ChannelConfig {
        capacity: cfg.listen_capacity,
        drain_per_kcycle: 0,
        buf_base: RX_RING_BASE,
        fill: Some(FillConfig { msg_bytes: msg_len, bytes_per_kcycle: ingress_rate }),
    });
    let egress = machine.add_channel(ChannelConfig {
        capacity: cfg.egress_capacity,
        drain_per_kcycle: u32::try_from(gige).expect("per-kilocycle rates are small"),
        buf_base: TX_RING_BASE,
        fill: None,
    });

    let workers = machine.config().logical_cpus();
    for w in 0..workers {
        machine.spawn(Box::new(ServerWorker {
            listen,
            egress,
            traces: Arc::clone(&traces),
            msg_len,
            work_base: WORK_BASE.offset(w as u64 * WORK_SPACING),
            egress_cursor: w as u64 * 7, // stagger workers in the ring
            worker_id: w,
            conn_count: 0,
            state: WorkerState::Accept,
        }));
    }

    ServerHandles { listen, egress, workers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_sim::config::Platform;
    use aon_sim::stats::MachineStats;

    fn run(p: Platform, u: UseCase, cycles: u64) -> MachineStats {
        let corpus = Corpus::generate(42, 4);
        let mut m = Machine::new(p.config());
        build_server(&mut m, u, &corpus, &ServerConfig::default());
        m.run(cycles / 4);
        m.reset_counters();
        let out = m.run(cycles / 4 + cycles);
        MachineStats::collect(&m, &out)
    }

    #[test]
    fn server_processes_messages() {
        let s = run(Platform::OneCorePentiumM, UseCase::Fr, 12_000_000);
        assert!(s.completed_units > 10, "worker must complete messages: {}", s.completed_units);
        assert!(s.total.inst_retired() > 0.0);
    }

    #[test]
    fn throughput_falls_from_fr_to_sv() {
        let fr = run(Platform::OneCorePentiumM, UseCase::Fr, 12_000_000).units_per_sec();
        let cbr = run(Platform::OneCorePentiumM, UseCase::Cbr, 12_000_000).units_per_sec();
        let sv = run(Platform::OneCorePentiumM, UseCase::Sv, 12_000_000).units_per_sec();
        assert!(fr > cbr, "FR outruns CBR: {fr:.0} vs {cbr:.0}");
        assert!(cbr > sv, "CBR outruns SV: {cbr:.0} vs {sv:.0}");
    }

    #[test]
    fn two_cores_scale_throughput() {
        let one = run(Platform::OneCorePentiumM, UseCase::Sv, 12_000_000).units_per_sec();
        let two = run(Platform::TwoCorePentiumM, UseCase::Sv, 12_000_000).units_per_sec();
        let scaling = two / one;
        assert!(scaling > 1.4 && scaling < 2.1, "SV dual-core scaling out of range: {scaling:.2}");
    }

    #[test]
    fn both_workers_participate() {
        let corpus = Corpus::generate(42, 4);
        let mut m = Machine::new(Platform::TwoCorePentiumM.config());
        build_server(&mut m, UseCase::Cbr, &corpus, &ServerConfig::default());
        m.run(12_000_000);
        assert!(m.counters()[0].abstract_ops > 0);
        assert!(m.counters()[1].abstract_ops > 0);
    }

    #[test]
    fn deterministic() {
        let a = run(Platform::TwoLogicalXeon, UseCase::Cbr, 6_000_000);
        let b = run(Platform::TwoLogicalXeon, UseCase::Cbr, 6_000_000);
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn prerecorded_traces_match_inline_recording() {
        // The split builder is the memoization seam: replaying a recording
        // made once up front must be indistinguishable from recording
        // inline, on a platform the recording never saw.
        let corpus = Corpus::generate(42, 4);
        let fresh = run(Platform::TwoCorePentiumM, UseCase::Sv, 6_000_000);
        let traces = record_server_traces(UseCase::Sv, &corpus);
        let msg_len = u32::try_from(corpus.max_http_len()).expect("KiB-sized");
        let mut m = Machine::new(Platform::TwoCorePentiumM.config());
        build_server_with_traces(&mut m, traces, msg_len, &ServerConfig::default());
        m.run(1_500_000);
        m.reset_counters();
        let out = m.run(1_500_000 + 6_000_000);
        let replayed = MachineStats::collect(&m, &out);
        assert_eq!(fresh.total, replayed.total, "recording provenance must be unobservable");
    }
}
