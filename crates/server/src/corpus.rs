//! Message corpus generation.
//!
//! Builds the AONBench-style workload the paper describes (§3.2.1): 5 KB
//! SOAP messages with a purchase-order body containing a `<quantity>`
//! element, padded with filler text elements to the target size, delivered
//! as HTTP POSTs. Generation is seeded and deterministic; a corpus holds
//! several *variants* so consecutive requests differ in content (and
//! therefore in trace), like real traffic.

use crate::rng::CorpusRng;
use aon_xml::schema::Schema;

/// The AONBench message size target (body, pre-HTTP).
pub const MESSAGE_SIZE: usize = 5 * 1024;

/// The XSD the SV use case validates against: the SOAP-wrapped purchase
/// order (the envelope itself is stripped by the server before validation;
/// the schema covers the payload).
pub const CORPUS_XSD: &[u8] = br#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="skuType">
    <xs:restriction base="xs:string">
      <xs:pattern value="[A-Z]{2}[0-9]{3,6}"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:simpleType name="qtyType">
    <xs:restriction base="xs:positiveInteger">
      <xs:maxInclusive value="10000"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:simpleType name="moneyType">
    <xs:restriction base="xs:decimal">
      <xs:pattern value="[0-9]+\.[0-9][0-9]"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:complexType name="itemType">
    <xs:sequence>
      <xs:element name="sku" type="skuType"/>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="quantity" type="qtyType"/>
      <xs:element name="price" type="moneyType"/>
    </xs:sequence>
    <xs:attribute name="line" type="xs:positiveInteger" use="required"/>
  </xs:complexType>
  <xs:element name="purchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="customer" type="xs:string"/>
        <xs:element name="date" type="xs:date"/>
        <xs:element name="item" type="itemType" minOccurs="1" maxOccurs="unbounded"/>
        <xs:element name="fill" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:positiveInteger" use="required"/>
      <xs:attribute name="currency">
        <xs:simpleType>
          <xs:restriction base="xs:string">
            <xs:enumeration value="USD"/>
            <xs:enumeration value="EUR"/>
            <xs:enumeration value="JPY"/>
          </xs:restriction>
        </xs:simpleType>
      </xs:attribute>
    </xs:complexType>
  </xs:element>
</xs:schema>
"#;

/// One prepared message variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// The complete HTTP POST request bytes.
    pub http: Vec<u8>,
    /// Offset of the SOAP body within `http`.
    pub body_start: usize,
    /// Whether `//quantity/text() = '1'` holds (CBR routes to the
    /// destination endpoint).
    pub cbr_match: bool,
    /// Whether the payload validates against [`CORPUS_XSD`].
    pub sv_valid: bool,
}

/// A deterministic set of message variants plus the compiled schema.
#[derive(Debug)]
pub struct Corpus {
    /// Message variants, cycled by arrival index.
    pub variants: Vec<Variant>,
    /// The pre-compiled validation schema.
    pub schema: Schema,
}

impl Corpus {
    /// Generate `n` variants with the given seed at the AONBench default
    /// message size. Variants alternate CBR match/mismatch and are all
    /// schema-valid except every fourth one (the paper's modified-message
    /// check that SV actually executes).
    pub fn generate(seed: u64, n: usize) -> Corpus {
        Self::generate_sized(seed, n, MESSAGE_SIZE)
    }

    /// Generate with an explicit target body size (the AONBench message-
    /// size axis; the paper fixes 5 KB, its companion benchmark sweeps).
    pub fn generate_sized(seed: u64, n: usize, body_size: usize) -> Corpus {
        assert!(n > 0);
        assert!(body_size >= 1024, "need room for the envelope and one item");
        let mut rng = CorpusRng::seed_from_u64(seed);
        let schema = Schema::compile(CORPUS_XSD).expect("corpus schema compiles");
        let variants = (0..n)
            .map(|i| {
                let cbr_match = i % 2 == 0;
                let sv_valid = i % 4 != 3;
                make_variant(&mut rng, cbr_match, sv_valid, body_size)
            })
            .collect();
        Corpus { variants, schema }
    }

    /// The variant for an arrival index.
    pub fn variant(&self, arrival: u64) -> &Variant {
        let n = u64::try_from(self.variants.len()).expect("variant count fits u64");
        &self.variants[usize::try_from(arrival % n).expect("index below len")]
    }

    /// Number of variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Always false (a corpus has at least one variant).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Size of the largest HTTP message (listen-queue sizing).
    pub fn max_http_len(&self) -> usize {
        self.variants.iter().map(|v| v.http.len()).max().unwrap_or(0)
    }
}

fn make_variant(rng: &mut CorpusRng, cbr_match: bool, sv_valid: bool, body_size: usize) -> Variant {
    let payload = make_payload(rng, cbr_match, sv_valid, body_size);
    let body = wrap_soap(&payload);
    let http = wrap_http(&body);
    let body_start = http.len() - body.len();
    Variant { http, body_start, cbr_match, sv_valid }
}

fn rand_word(rng: &mut CorpusRng, len: usize) -> String {
    (0..len).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect()
}

fn make_payload(rng: &mut CorpusRng, cbr_match: bool, sv_valid: bool, body_size: usize) -> Vec<u8> {
    let id = rng.gen_range(1..100_000u32);
    let currency = ["USD", "EUR", "JPY"][rng.gen_range(0..3usize)];
    let mut xml = format!(
        "<purchaseOrder id=\"{id}\" currency=\"{currency}\">\n  <customer>{}</customer>\n  <date>200{}-0{}-1{}</date>\n",
        rand_word(rng, 12),
        rng.gen_range(5..8u8),
        rng.gen_range(1..10u8),
        rng.gen_range(0..10u8),
    );

    // First item carries the routed quantity.
    let qty = if cbr_match { 1 } else { rng.gen_range(2..500u32) };
    let sku = if sv_valid {
        format!(
            "{}{}{}",
            (b'A' + rng.gen_range(0..26u8)) as char,
            (b'A' + rng.gen_range(0..26u8)) as char,
            rng.gen_range(100..999_999u32)
        )
    } else {
        // Violates the sku pattern (lowercase prefix).
        format!("xx{}", rng.gen_range(100..999u32))
    };
    xml.push_str(&format!(
        "  <item line=\"1\">\n    <sku>{sku}</sku>\n    <name>{}</name>\n    <quantity>{qty}</quantity>\n    <price>{}.{}{}</price>\n  </item>\n",
        rand_word(rng, 16),
        rng.gen_range(1..5000u32),
        rng.gen_range(0..10u8),
        rng.gen_range(0..10u8),
    ));

    // More items.
    for line in 2..=rng.gen_range(3..7u32) {
        xml.push_str(&format!(
            "  <item line=\"{line}\">\n    <sku>{}{}{}</sku>\n    <name>{}</name>\n    <quantity>{}</quantity>\n    <price>{}.{}{}</price>\n  </item>\n",
            (b'A' + rng.gen_range(0..26u8)) as char,
            (b'A' + rng.gen_range(0..26u8)) as char,
            rng.gen_range(100..999_999u32),
            rand_word(rng, 14),
            rng.gen_range(2..1000u32),
            rng.gen_range(1..900u32),
            rng.gen_range(0..10u8),
            rng.gen_range(0..10u8),
        ));
    }

    // Filler text elements up to the target size (paper: "filler text
    // elements to increase the overall message size ... 5 Kbytes").
    const CLOSE: &str = "</purchaseOrder>\n";
    while xml.len() + CLOSE.len() + 64 < body_size {
        let fill_len = (body_size - CLOSE.len() - xml.len() - 16).min(120);
        xml.push_str(&format!(
            "  <fill>{}</fill>\n",
            rand_word(rng, fill_len.saturating_sub(17).max(4))
        ));
    }
    xml.push_str(CLOSE);
    xml.into_bytes()
}

fn wrap_soap(payload: &[u8]) -> Vec<u8> {
    aon_xml::soap::wrap_envelope(payload)
}

fn wrap_http(body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "POST /aon/process HTTP/1.1\r\nHost: sut:8080\r\nContent-Type: text/xml\r\nSOAPAction: \"process\"\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::NullProbe;
    use aon_xml::input::TBuf;
    use aon_xml::parser::parse_document;
    use aon_xml::xpath::XPath;

    fn corpus() -> Corpus {
        Corpus::generate(42, 8)
    }

    #[test]
    fn messages_are_about_5kb() {
        let c = corpus();
        for v in &c.variants {
            let body = &v.http[v.body_start..];
            assert!(
                (4 * 1024..=6 * 1024).contains(&body.len()),
                "body size {} outside AONBench envelope",
                body.len()
            );
        }
    }

    #[test]
    fn http_wrapper_parses() {
        let c = corpus();
        for v in &c.variants {
            let req = crate::http::parse_request(TBuf::msg(&v.http), &mut NullProbe).unwrap();
            assert_eq!(req.method, crate::http::Method::Post);
            assert_eq!(req.body_start, v.body_start);
            assert_eq!(req.content_length, Some(v.http.len() - v.body_start));
        }
    }

    #[test]
    fn soap_bodies_parse_as_xml() {
        let c = corpus();
        for v in &c.variants {
            let body = &v.http[v.body_start..];
            parse_document(TBuf::msg(body), &mut NullProbe).expect("body parses");
        }
    }

    #[test]
    fn cbr_flag_matches_xpath_result() {
        let c = corpus();
        let xp = XPath::compile("//quantity/text()").unwrap();
        for v in &c.variants {
            let body = &v.http[v.body_start..];
            let doc = parse_document(TBuf::msg(body), &mut NullProbe).unwrap();
            let matched = xp.string_equals(&doc, b"1", &mut NullProbe).unwrap();
            assert_eq!(matched, v.cbr_match, "variant flag must match evaluation");
        }
    }

    #[test]
    fn sv_flag_matches_validation_result() {
        let c = corpus();
        for v in &c.variants {
            let body = &v.http[v.body_start..];
            let doc = parse_document(TBuf::msg(body), &mut NullProbe).unwrap();
            let payload = aon_xml::soap::payload_root(&doc, &mut NullProbe).unwrap();
            // Validate the payload subtree by re-serializing it is overkill;
            // the use-case code validates the payload root directly. Here we
            // check via the schema against the payload element name.
            let decl = c.schema.find_element(b"purchaseOrder");
            assert!(decl.is_some());
            let _ = payload;
        }
        // Full validation agreement is covered in usecase tests.
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(7, 4);
        let b = Corpus::generate(7, 4);
        for (x, y) in a.variants.iter().zip(&b.variants) {
            assert_eq!(x.http, y.http);
        }
        let c = Corpus::generate(8, 4);
        assert_ne!(a.variants[0].http, c.variants[0].http);
    }

    #[test]
    fn variant_cycling() {
        let c = corpus();
        assert_eq!(c.variant(0).http, c.variants[0].http);
        assert_eq!(c.variant(8).http, c.variants[0].http);
        assert_eq!(c.variant(9).http, c.variants[1].http);
    }
}
