//! Instrumented SHA-1 — the crypto function of the paper's future work
//! (§6: "crucial AON operations such as deep packet inspection, XML
//! parsing, and crypto functions").
//!
//! A real, test-vector-correct SHA-1 implementation whose per-block work
//! is traced: the message words are loads from the message buffer, the 80
//! rounds are ALU work, and the schedule expansion adds its shifts/xors.
//! 2006-era WS-Security gateways authenticated messages exactly this way
//! (HMAC-SHA1 over the SOAP body).

use aon_trace::{Addr, Probe, RegionSlot};

/// SHA-1 digest output.
pub type Sha1Digest = [u8; 20];

/// Compute SHA-1 of `data`, tracing the work on `p`. The data notionally
/// lives at `base` within `slot` (use the message slot for payloads).
pub fn sha1_traced<P: Probe>(
    data: &[u8],
    slot: aon_trace::RegionSlot,
    base: u32,
    p: &mut P,
) -> Sha1Digest {
    let mut h: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

    // Padding per FIPS 180: message + 0x80 + zeros + 64-bit bit length.
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&((data.len() as u64) * 8).to_be_bytes());
    p.alu(8); // length math + padding setup

    for (blk_idx, block) in padded.chunks_exact(64).enumerate() {
        // Message schedule: 16 word loads from the buffer...
        let mut w = [0u32; 80];
        for (i, word) in block.chunks_exact(4).enumerate() {
            let off = u32::try_from(blk_idx * 64 + i * 4).expect("digest input is KiB-sized");
            p.load(Addr::new(slot, base + off), 4);
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        // ...then 64 expansion steps (3 xors + rotate each).
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        p.alu(64 * 4);

        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        // 80 rounds ≈ 8 ALU ops each on a 2006 core.
        p.alu(80 * 8);

        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        p.alu(5);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// HMAC-SHA1 (RFC 2104) over `data` with `key`, traced. The WS-Security
/// authentication primitive.
pub fn hmac_sha1_traced<P: Probe>(key: &[u8], data: &[u8], base: u32, p: &mut P) -> Sha1Digest {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        let kd = sha1_traced(key, RegionSlot::STATIC, 0x1000, p);
        k[..20].copy_from_slice(&kd);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    p.alu(32);
    let mut inner = Vec::with_capacity(64 + data.len());
    inner.extend(k.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(data);
    let inner_hash = sha1_traced(&inner, RegionSlot::MSG, base, p);
    let mut outer = Vec::with_capacity(84);
    outer.extend(k.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_hash);
    sha1_traced(&outer, RegionSlot::WORK, 0x8000, p)
}

fn hex(d: &Sha1Digest) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

/// Hex rendering of a digest (diagnostics / examples).
pub fn digest_hex(d: &Sha1Digest) -> String {
    hex(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::{NullProbe, Tracer};

    fn sha1(data: &[u8]) -> String {
        hex(&sha1_traced(data, RegionSlot::MSG, 0, &mut NullProbe))
    }

    #[test]
    fn fips_test_vectors() {
        // FIPS 180-1 / RFC 3174 known answers.
        assert_eq!(sha1(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(sha1(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(sha1(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn hmac_rfc2202_vectors() {
        // RFC 2202 test case 1.
        let d = hmac_sha1_traced(&[0x0b; 20], b"Hi There", 0, &mut NullProbe);
        assert_eq!(hex(&d), "b617318655057264e28bc0b6fb378c8ef146be00");
        // Test case 2.
        let d = hmac_sha1_traced(b"Jefe", b"what do ya want for nothing?", 0, &mut NullProbe);
        assert_eq!(hex(&d), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn hashing_is_traced_per_block() {
        let data = vec![0x42u8; 640]; // 10 blocks + padding block
        let mut t = Tracer::new();
        sha1_traced(&data, RegionSlot::MSG, 0, &mut t);
        let s = t.finish().stats();
        assert!(s.loads >= 11 * 16, "16 word loads per block: {}", s.loads);
        assert!(s.alus > 10 * 800, "rounds dominate: {}", s.alus);
    }
}
