//! Deep packet inspection — the paper's future work (§6).
//!
//! A signature rule set compiled to NFAs (the `aon-xml` pattern engine)
//! and scanned unanchored across the raw message bytes, the way a
//! 2006-era IDS/AON content filter worked. Scanning cost is linear in
//! `bytes × active NFA states` and is fully traced: input loads stream
//! through the message buffer, rule-automaton reads hit warm `STATIC`
//! records.

use aon_trace::{Probe, ProbeExt};
use aon_xml::input::TBuf;
use aon_xml::schema::pattern::Pattern;
use aon_xml::XmlResult;

/// One inspection rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Diagnostic name.
    pub name: &'static str,
    /// Compiled signature.
    pub pattern: Pattern,
}

/// A compiled rule set.
#[derive(Debug, Clone)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Compile a rule set from (name, pattern) pairs.
    pub fn compile(defs: &[(&'static str, &str)]) -> XmlResult<RuleSet> {
        let rules = defs
            .iter()
            .map(|(name, src)| Ok(Rule { name, pattern: Pattern::compile(src)? }))
            .collect::<XmlResult<Vec<_>>>()?;
        Ok(RuleSet { rules })
    }

    /// The default signature set: a 2006-flavoured mix of injection,
    /// traversal, entity-bomb and malformed-envelope signatures.
    pub fn default_rules() -> RuleSet {
        Self::compile(&[
            ("sql-injection", "('|%27)( |%20)*(or|OR)( |%20)"),
            ("path-traversal", "\\.\\./\\.\\./"),
            ("xml-bomb-entity", "<!ENTITY( )+[a-z]+( )+\"&"),
            ("oversize-depth", "(<x>){8,}"),
            ("script-inject", "<(script|SCRIPT)( |>)"),
            ("cmd-exec", "(;|\\|)( )*(rm|cat|wget)( )"),
            ("null-byte", "%00"),
            ("unicode-evasion", "%c0%af"),
            ("soap-action-spoof", "SOAPAction( )*:( )*\"\""),
            ("b64-shellcode", "(TVqQ|f0VM)[A-Za-z0-9+/]{16,}"),
            ("external-dtd", "SYSTEM( )+\"(http|ftp)"),
            ("xpath-inject", "(\\[|%5[bB])( )*(1=1|true\\(\\))"),
        ])
        .expect("default rules compile")
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Scan `buf` against every rule (traced); returns names of matching
    /// rules. Every rule streams the payload once — the multi-pass
    /// behaviour of signature engines without a combined automaton.
    pub fn scan<P: Probe>(&self, buf: TBuf<'_>, p: &mut P) -> Vec<&'static str> {
        let mut hits = Vec::new();
        for rule in &self.rules {
            // The engine's input fetch: one load per 8 scanned bytes.
            p.stream_read(
                buf.addr(0),
                u32::try_from(buf.len()).expect("scanned messages are KiB-sized"),
            );
            if rule.pattern.find(buf.raw(), p).is_some() {
                hits.push(rule.name);
            }
        }
        hits
    }
}

/// Convenience: scan with the default rules.
pub fn inspect<P: Probe>(buf: TBuf<'_>, p: &mut P) -> Vec<&'static str> {
    RuleSet::default_rules().scan(buf, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::{NullProbe, RegionSlot, Tracer};

    fn scan(bytes: &[u8]) -> Vec<&'static str> {
        RuleSet::default_rules().scan(TBuf::new(bytes, RegionSlot::MSG), &mut NullProbe)
    }

    #[test]
    fn clean_messages_pass() {
        let corpus = crate::corpus::Corpus::generate(42, 4);
        for v in &corpus.variants {
            assert!(scan(&v.http).is_empty(), "corpus traffic is benign");
        }
    }

    #[test]
    fn signatures_fire() {
        assert_eq!(scan(b"x' or 1=1"), vec!["sql-injection"]);
        assert_eq!(scan(b"GET /../../etc/passwd"), vec!["path-traversal"]);
        assert_eq!(scan(b"<script>alert(1)</script>"), vec!["script-inject"]);
        assert_eq!(scan(b"a=b%00c"), vec!["null-byte"]);
        assert_eq!(scan(b"<!DOCTYPE a SYSTEM \"http://evil/dtd\">"), vec!["external-dtd"]);
        assert_eq!(scan(b"<x><x><x><x><x><x><x><x>deep"), vec!["oversize-depth"]);
    }

    #[test]
    fn multiple_hits_reported() {
        let hits = scan(b"'%20or%20x ; rm -rf %00");
        assert!(hits.contains(&"null-byte"));
        assert!(hits.len() >= 2, "{hits:?}");
    }

    #[test]
    fn scanning_is_traced() {
        let rules = RuleSet::default_rules();
        let mut t = Tracer::new();
        let body = vec![b'a'; 2048];
        rules.scan(TBuf::new(&body, RegionSlot::MSG), &mut t);
        let s = t.finish().stats();
        // One input pass per rule at minimum.
        assert!(
            usize::try_from(s.loads).expect("load count fits usize") >= rules.len() * (2048 / 8)
        );
        assert!(s.ops > 10_000, "NFA simulation is the work: {}", s.ops);
    }
}
