//! Native use-case engine: the AON content-processing pipeline as an
//! ordinary library call, reusable **without a tracer**.
//!
//! [`crate::usecase`] records the paper's workloads by running the engines
//! under a [`aon_trace::Tracer`] and `expect`ing success — correct there,
//! because the corpus is valid by construction. The live serving path
//! ([`aon-serve`](https://docs.rs/aon-serve)) faces arbitrary network
//! input, so it needs the same engines behind fallible entry points: a
//! malformed body is a routing outcome (HTTP 422), never a panic.
//!
//! The [`Engine`] pre-compiles everything a deployment compiles once — the
//! validation schema, the CBR XPath, the DPI rule set — and exposes
//! [`Engine::process`], generic over [`Probe`] so the identical code path
//! serves natively (with [`NullProbe`], zero tracing overhead) or traced.

use crate::corpus::CORPUS_XSD;
use crate::dpi::RuleSet;
use crate::usecase::{UseCase, CBR_EXPECT, CBR_XPATH};
use aon_obs::stage::{NoopStages, Stage, StageRecorder};
use aon_trace::{NullProbe, Probe};
use aon_xml::input::TBuf;
use aon_xml::lazy::parse_document_lazy;
use aon_xml::parser::parse_document;
use aon_xml::schema::{Schema, SchemaAutomaton};
use aon_xml::soap::{payload_root, payload_root_lazy};
use aon_xml::xpath::{CompiledPath, XPath};
use std::sync::Arc;

/// Which parser implementation the live serving path runs.
///
/// Both modes produce identical routing verdicts (the differential suites
/// in `aon-xml` pin this); they differ only in how many instructions the
/// host spends getting there. The traced simulation path always uses the
/// scalar engines — this knob exists so live throughput can be A/B
/// measured against the same server build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseMode {
    /// Byte-at-a-time engines: eager DOM, interpreted XPath, interpreted
    /// content models. The counter-reference twin of the traced path.
    Scalar,
    /// SWAR-scanned lazy DOM, compiled XPath pattern, compiled content-
    /// model DFAs. Falls back to `Scalar` engines per-component when a
    /// rule is outside the compilable subset.
    #[default]
    Fast,
}

impl ParseMode {
    /// Parse a CLI/config token (`"scalar"` | `"fast"`).
    pub fn from_str_opt(s: &str) -> Option<ParseMode> {
        match s {
            "scalar" => Some(ParseMode::Scalar),
            "fast" => Some(ParseMode::Fast),
            _ => None,
        }
    }

    /// Stable label for reports and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ParseMode::Scalar => "scalar",
            ParseMode::Fast => "fast",
        }
    }
}

/// Why a message body could not be processed (all map to HTTP 422 at the
/// serving layer: the HTTP envelope was fine, the content was not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The body is not well-formed UTF-8.
    BadUtf8,
    /// The body is not well-formed XML.
    BadXml,
    /// The body parses but is not a SOAP envelope with a payload.
    NotSoap,
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            EngineError::BadUtf8 => "body is not valid UTF-8",
            EngineError::BadXml => "body is not well-formed XML",
            EngineError::NotSoap => "body is not a SOAP envelope",
        })
    }
}

/// The pre-compiled per-deployment state: schema, XPath, DPI signatures,
/// authentication key. One per server; shared read-only across workers.
#[derive(Debug)]
pub struct Engine {
    schema: Schema,
    cbr: XPath,
    dpi: RuleSet,
    key: &'static [u8],
    /// CBR expression compiled to a streaming byte pattern; `None` when
    /// the expression is outside the streamable subset (DOM fallback).
    cbr_fast: Option<Arc<CompiledPath>>,
    /// Content models of the schema compiled to DFAs (with per-model
    /// greedy fallback inside), shared read-only across workers.
    schema_fast: Arc<SchemaAutomaton>,
}

impl Engine {
    /// Compile the device configuration (the corpus XSD, the paper's CBR
    /// expression, the default DPI rules). Inputs are static, so
    /// compilation cannot fail. The fast-path automata are compiled here
    /// too — once per rule table, never per message.
    pub fn new() -> Engine {
        let schema = Schema::compile(CORPUS_XSD).expect("corpus schema is static and compiles");
        let cbr = XPath::compile(CBR_XPATH).expect("CBR expression is static and compiles");
        let cbr_fast = CompiledPath::compile(&cbr).map(Arc::new);
        let schema_fast = Arc::new(SchemaAutomaton::compile(&schema));
        Engine {
            schema,
            cbr,
            dpi: RuleSet::default_rules(),
            key: b"aon-device-shared-key",
            cbr_fast,
            schema_fast,
        }
    }

    /// Is the CBR expression running as a compiled pattern (vs. DOM
    /// fallback)? Reported in live bench metadata.
    pub fn cbr_compiled(&self) -> bool {
        self.cbr_fast.is_some()
    }

    /// How many content models compiled to DFAs (the rest use the greedy
    /// interpreter). Reported in live bench metadata.
    pub fn schema_dfa_count(&self) -> usize {
        self.schema_fast.dfa_count()
    }

    /// Process one message body under `use_case`, emitting work onto `p`.
    ///
    /// `Ok(true)` — the message routes to the destination endpoint
    /// (HTTP 200); `Ok(false)` — it routes to the error/default endpoint
    /// (HTTP 422); `Err` — the content could not be processed at all
    /// (also HTTP 422, with the reason counted separately).
    pub fn process<P: Probe>(
        &self,
        use_case: UseCase,
        body: TBuf<'_>,
        p: &mut P,
    ) -> Result<bool, EngineError> {
        self.process_staged(use_case, body, p, &mut NoopStages)
    }

    /// [`Engine::process`] with per-stage span timing: each pipeline
    /// phase (parse, XPath, validate, DPI, crypto) runs inside a
    /// [`StageRecorder::time`] span, so the live server can aggregate
    /// per-(use case × stage) cost the way the paper decomposes service
    /// time by phase. With [`NoopStages`] this *is* the untimed
    /// pipeline — the recorder monomorphizes away, no clock is read.
    pub fn process_staged<P: Probe, R: StageRecorder>(
        &self,
        use_case: UseCase,
        body: TBuf<'_>,
        p: &mut P,
        rec: &mut R,
    ) -> Result<bool, EngineError> {
        match use_case {
            UseCase::Fr => Ok(true),
            UseCase::Cbr => {
                let doc = rec.time(Stage::Parse, || {
                    aon_xml::utf8::validate_utf8(body, p).ok_or(EngineError::BadUtf8)?;
                    parse_document(body, p).map_err(|_| EngineError::BadXml)
                })?;
                rec.time(Stage::XPath, || {
                    self.cbr.string_equals(&doc, CBR_EXPECT, p).map_err(|_| EngineError::BadXml)
                })
            }
            UseCase::Sv => {
                let doc = rec.time(Stage::Parse, || {
                    aon_xml::utf8::validate_utf8(body, p).ok_or(EngineError::BadUtf8)?;
                    parse_document(body, p).map_err(|_| EngineError::BadXml)
                })?;
                rec.time(Stage::Validate, || {
                    let payload = payload_root(&doc, p).map_err(|_| EngineError::NotSoap)?;
                    Ok(self.schema.validate_node(&doc, payload, p).is_valid())
                })
            }
            UseCase::Dpi => rec.time(Stage::Dpi, || Ok(self.dpi.scan(body, p).is_empty())),
            UseCase::Crypto => rec.time(Stage::Crypto, || {
                let digest = crate::crypto::hmac_sha1_traced(self.key, body.raw(), 0, p);
                p.alu(20);
                Ok(digest[0] != 0xFF)
            }),
        }
    }

    /// [`Engine::process`] with no tracing — the live serving fast path.
    pub fn process_native(&self, use_case: UseCase, body: &[u8]) -> Result<bool, EngineError> {
        self.process(use_case, TBuf::msg(body), &mut NullProbe)
    }

    /// [`Engine::process_native`] with wall-clock stage timing — the
    /// live serving path when observability is enabled.
    pub fn process_native_staged<R: StageRecorder>(
        &self,
        use_case: UseCase,
        body: &[u8],
        rec: &mut R,
    ) -> Result<bool, EngineError> {
        self.process_staged(use_case, TBuf::msg(body), &mut NullProbe, rec)
    }

    /// Dispatch on [`ParseMode`]: the live worker's single entry point.
    pub fn process_mode_staged<R: StageRecorder>(
        &self,
        mode: ParseMode,
        use_case: UseCase,
        body: &[u8],
        rec: &mut R,
    ) -> Result<bool, EngineError> {
        match mode {
            ParseMode::Scalar => self.process_native_staged(use_case, body, rec),
            ParseMode::Fast => self.process_fast_staged(use_case, body, rec),
        }
    }

    /// The fast serving path: SWAR-scanned lazy parse, compiled XPath /
    /// content-model automata. Untraced by construction — the traced
    /// counter tables only ever see the scalar engines.
    ///
    /// Verdicts and [`EngineError`] classifications are identical to
    /// [`Engine::process_native_staged`]:
    /// * UTF-8 — `std::str::from_utf8` agrees with the traced validator
    ///   (pinned by `aon_xml::utf8::tests::agrees_with_std`);
    /// * well-formedness — the lazy parser reuses the fast lexer, whose
    ///   tokens and errors are differentially pinned against the traced
    ///   lexer;
    /// * XPath / validation — [`CompiledPath`] and [`SchemaAutomaton`]
    ///   only compile rules they can prove equivalent, and fall back to
    ///   the scalar engines otherwise.
    pub fn process_fast_staged<R: StageRecorder>(
        &self,
        use_case: UseCase,
        body: &[u8],
        rec: &mut R,
    ) -> Result<bool, EngineError> {
        match use_case {
            UseCase::Cbr => {
                let Some(cbr_fast) = &self.cbr_fast else {
                    // Expression outside the streamable subset: whole-path
                    // DOM fallback.
                    return self.process_native_staged(use_case, body, rec);
                };
                let doc = rec.time(Stage::Parse, || {
                    if std::str::from_utf8(body).is_err() {
                        return Err(EngineError::BadUtf8);
                    }
                    parse_document_lazy(body).map_err(|_| EngineError::BadXml)
                })?;
                rec.time(Stage::XPath, || Ok(cbr_fast.string_equals(&doc, CBR_EXPECT)))
            }
            UseCase::Sv => {
                let doc = rec.time(Stage::Parse, || {
                    if std::str::from_utf8(body).is_err() {
                        return Err(EngineError::BadUtf8);
                    }
                    parse_document_lazy(body).map_err(|_| EngineError::BadXml)
                })?;
                rec.time(Stage::Validate, || {
                    let payload = payload_root_lazy(&doc).map_err(|_| EngineError::NotSoap)?;
                    Ok(self.schema_fast.validate(&doc, payload))
                })
            }
            // FR touches no content; DPI and crypto are not parse-bound
            // and share one implementation with the scalar path.
            UseCase::Fr | UseCase::Dpi | UseCase::Crypto => {
                self.process_native_staged(use_case, body, rec)
            }
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    #[test]
    fn engine_agrees_with_corpus_flags() {
        let engine = Engine::new();
        let corpus = Corpus::generate(42, 8);
        for v in &corpus.variants {
            let body = &v.http[v.body_start..];
            assert_eq!(engine.process_native(UseCase::Fr, body), Ok(true));
            assert_eq!(engine.process_native(UseCase::Cbr, body), Ok(v.cbr_match));
            assert_eq!(engine.process_native(UseCase::Sv, body), Ok(v.sv_valid));
        }
    }

    #[test]
    fn engine_rejects_garbage_instead_of_panicking() {
        let engine = Engine::new();
        for bad in [&b"\xff\xfe\x00"[..], b"<unclosed", b"not xml at all", b""] {
            assert!(engine.process_native(UseCase::Cbr, bad).is_err(), "CBR must error");
            assert!(engine.process_native(UseCase::Sv, bad).is_err(), "SV must error");
            // FR never looks at the body.
            assert_eq!(engine.process_native(UseCase::Fr, bad), Ok(true));
        }
    }

    #[test]
    fn non_soap_xml_is_rejected_by_sv() {
        let engine = Engine::new();
        assert_eq!(engine.process_native(UseCase::Sv, b"<notsoap/>"), Err(EngineError::NotSoap));
    }

    #[test]
    fn staged_processing_times_the_right_stages() {
        use aon_obs::stage::WallStages;
        let engine = Engine::new();
        let corpus = Corpus::generate(42, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];

        let mut fr = WallStages::new();
        assert_eq!(engine.process_native_staged(UseCase::Fr, body, &mut fr), Ok(true));
        assert_eq!(fr.total(), 0, "FR touches no pipeline stage");

        let mut cbr = WallStages::new();
        engine.process_native_staged(UseCase::Cbr, body, &mut cbr).expect("corpus body");
        assert!(cbr.get(Stage::Parse) > 0, "CBR must record parse time");
        assert!(cbr.get(Stage::XPath) > 0, "CBR must record xpath time");
        assert_eq!(cbr.get(Stage::Validate), 0);

        let mut sv = WallStages::new();
        engine.process_native_staged(UseCase::Sv, body, &mut sv).expect("corpus body");
        assert!(sv.get(Stage::Parse) > 0 && sv.get(Stage::Validate) > 0);
        assert_eq!(sv.get(Stage::XPath), 0);

        let mut dpi = WallStages::new();
        engine.process_native_staged(UseCase::Dpi, body, &mut dpi).expect("corpus body");
        assert!(dpi.get(Stage::Dpi) > 0);

        let mut crypto = WallStages::new();
        engine.process_native_staged(UseCase::Crypto, body, &mut crypto).expect("corpus body");
        assert!(crypto.get(Stage::Crypto) > 0);
    }

    #[test]
    fn staged_and_plain_processing_agree() {
        use aon_obs::stage::WallStages;
        let engine = Engine::new();
        let corpus = Corpus::generate(11, 4);
        for v in &corpus.variants {
            let body = &v.http[v.body_start..];
            for uc in UseCase::EXTENDED {
                let mut w = WallStages::new();
                assert_eq!(
                    engine.process_native_staged(uc, body, &mut w),
                    engine.process_native(uc, body),
                    "{uc:?} staged result must match the untimed path"
                );
            }
        }
    }

    #[test]
    fn fast_path_compiles_for_the_corpus_rules() {
        let engine = Engine::new();
        assert!(engine.cbr_compiled(), "//quantity/text() is streamable");
        assert!(engine.schema_dfa_count() > 0, "corpus content models are 1-unambiguous");
    }

    #[test]
    fn fast_and_scalar_agree_on_corpus() {
        let engine = Engine::new();
        let corpus = Corpus::generate(1234, 16);
        for v in &corpus.variants {
            let body = &v.http[v.body_start..];
            for uc in UseCase::EXTENDED {
                let fast = engine.process_fast_staged(uc, body, &mut NoopStages);
                let scalar = engine.process_native(uc, body);
                assert_eq!(fast, scalar, "{uc:?} fast/scalar divergence");
            }
            assert_eq!(
                engine.process_fast_staged(UseCase::Cbr, body, &mut NoopStages),
                Ok(v.cbr_match)
            );
            assert_eq!(
                engine.process_fast_staged(UseCase::Sv, body, &mut NoopStages),
                Ok(v.sv_valid)
            );
        }
    }

    #[test]
    fn fast_and_scalar_agree_on_garbage() {
        let engine = Engine::new();
        let cases: &[&[u8]] = &[
            b"\xff\xfe\x00",
            b"<unclosed",
            b"not xml at all",
            b"",
            b"<notsoap/>",
            b"<soap:Envelope><soap:Header/></soap:Envelope>",
            b"<soap:Envelope><soap:Body></soap:Body></soap:Envelope>",
            b"<soap:Envelope><soap:Body><wrongroot/></soap:Body></soap:Envelope>",
            b"<a>\xc3\x28</a>",
            b"<a><b></a></b>",
        ];
        for bad in cases {
            for uc in UseCase::EXTENDED {
                assert_eq!(
                    engine.process_fast_staged(uc, bad, &mut NoopStages),
                    engine.process_native(uc, bad),
                    "{uc:?} fast/scalar divergence on {bad:?}"
                );
            }
        }
    }

    #[test]
    fn mode_dispatch_routes_to_both_paths() {
        use aon_obs::stage::WallStages;
        let engine = Engine::new();
        let corpus = Corpus::generate(5, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];
        for mode in [ParseMode::Scalar, ParseMode::Fast] {
            let mut w = WallStages::new();
            let got = engine.process_mode_staged(mode, UseCase::Sv, body, &mut w);
            assert_eq!(got, Ok(corpus.variants[0].sv_valid), "{mode:?}");
            assert!(w.get(Stage::Parse) > 0 && w.get(Stage::Validate) > 0, "{mode:?} stages");
        }
        assert_eq!(ParseMode::from_str_opt("fast"), Some(ParseMode::Fast));
        assert_eq!(ParseMode::from_str_opt("scalar"), Some(ParseMode::Scalar));
        assert_eq!(ParseMode::from_str_opt("turbo"), None);
        assert_eq!(ParseMode::default(), ParseMode::Fast);
    }

    #[test]
    fn extension_use_cases_run_natively() {
        let engine = Engine::new();
        let corpus = Corpus::generate(7, 2);
        let body = &corpus.variants[0].http[corpus.variants[0].body_start..];
        assert!(engine.process_native(UseCase::Dpi, body).is_ok());
        assert!(engine.process_native(UseCase::Crypto, body).is_ok());
    }
}
