//! Instrumented HTTP/1.1 subset.
//!
//! Enough of HTTP for an AON device's POST-proxying front end: request-line
//! and header parsing (byte-at-a-time, traced), `Content-Length` handling,
//! and response serialization. The parser is deliberately in the style of
//! a 2006 C server: linear scans, case-insensitive header compares, no
//! allocation beyond the header index.

use aon_trace::{br, site, Addr, Probe, RegionSlot};
use aon_xml::input::TBuf;

/// HTTP methods the server accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST` (the AON message path).
    Post,
    /// `HEAD`
    Head,
}

/// A byte range within the request buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start offset.
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

/// One parsed header.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Header name span.
    pub name: Span,
    /// Header value span (trimmed of leading spaces).
    pub value: Span,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (path).
    pub path: Span,
    /// Headers in order.
    pub headers: Vec<Header>,
    /// Offset where the body starts.
    pub body_start: usize,
    /// `Content-Length` value, if present.
    pub content_length: Option<usize>,
}

impl Request {
    /// The body span promised by `Content-Length`, checked against the
    /// bytes actually present (`buf_len` is the full request buffer
    /// length). Returns [`HttpError::Truncated`] when the declared length
    /// exceeds the bytes on hand, instead of letting the app layer read
    /// short. Requests without `Content-Length` have an empty body.
    pub fn body_span(&self, buf_len: usize) -> Result<Span, HttpError> {
        let declared = self.content_length.unwrap_or(0);
        let available = buf_len.checked_sub(self.body_start).ok_or(HttpError::Truncated)?;
        if declared > available {
            return Err(HttpError::Truncated);
        }
        Ok(Span { start: self.body_start, end: self.body_start + declared })
    }

    /// Native (untraced) case-insensitive header lookup; returns the raw
    /// value bytes of the first header named `name`. For the live serving
    /// path, where connection management reads `Connection:` without a
    /// probe.
    pub fn find_header<'a>(&self, buf: &'a [u8], name: &[u8]) -> Option<&'a [u8]> {
        self.headers.iter().find_map(|h| {
            let n = buf.get(h.name.start..h.name.end)?;
            if n.len() == name.len() && n.iter().zip(name).all(|(&a, &b)| lower(a) == lower(b)) {
                buf.get(h.value.start..h.value.end)
            } else {
                None
            }
        })
    }
}

/// Parse failure reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Ran out of bytes mid-construct.
    Truncated,
    /// Unknown or malformed method.
    BadMethod,
    /// Malformed request line.
    BadRequestLine,
    /// Malformed header.
    BadHeader,
    /// Content-Length does not parse.
    BadContentLength,
}

/// ASCII lowercase for header compares (one ALU per byte).
#[inline]
fn lower(b: u8) -> u8 {
    if b.is_ascii_uppercase() {
        b | 0x20
    } else {
        b
    }
}

/// Case-insensitive compare of a scanned header name against an expected
/// literal, traced.
fn header_name_is<P: Probe>(buf: TBuf<'_>, span: Span, expect: &[u8], p: &mut P) -> bool {
    p.alu(1);
    if span.end - span.start != expect.len() {
        p.branch(site!(), false);
        return false;
    }
    for (i, &e) in expect.iter().enumerate() {
        let b = buf.get(span.start + i, p);
        p.alu(2);
        if !br!(p, lower(b) == lower(e)) {
            return false;
        }
    }
    true
}

/// Parse a request from the start of `buf`.
pub fn parse_request<P: Probe>(buf: TBuf<'_>, p: &mut P) -> Result<Request, HttpError> {
    let mut pos = 0usize;

    // Method.
    let m0 = buf.try_get(pos, p).ok_or(HttpError::Truncated)?;
    p.alu(1);
    let method = if br!(p, m0 == b'P') {
        expect_bytes(buf, &mut pos, b"POST ", p)?;
        Method::Post
    } else if br!(p, m0 == b'G') {
        expect_bytes(buf, &mut pos, b"GET ", p)?;
        Method::Get
    } else if br!(p, m0 == b'H') {
        expect_bytes(buf, &mut pos, b"HEAD ", p)?;
        Method::Head
    } else {
        return Err(HttpError::BadMethod);
    };

    // Path up to space.
    let path_start = pos;
    loop {
        let b = buf.try_get(pos, p).ok_or(HttpError::Truncated)?;
        p.alu(1);
        if br!(p, b == b' ') {
            break;
        }
        if br!(p, b == b'\r' || b == b'\n') {
            return Err(HttpError::BadRequestLine);
        }
        pos += 1;
    }
    // An empty request target (`POST  HTTP/1.1`) is not a request line.
    p.alu(1);
    if !br!(p, pos > path_start) {
        return Err(HttpError::BadRequestLine);
    }
    let path = Span { start: path_start, end: pos };
    pos += 1;

    // Version to CRLF.
    expect_bytes(buf, &mut pos, b"HTTP/1.", p)?;
    let v = buf.try_get(pos, p).ok_or(HttpError::Truncated)?;
    p.alu(1);
    if !br!(p, v == b'0' || v == b'1') {
        return Err(HttpError::BadRequestLine);
    }
    pos += 1;
    expect_bytes(buf, &mut pos, b"\r\n", p)?;

    // Headers.
    let mut headers = Vec::with_capacity(12);
    let mut content_length = None;
    loop {
        let b = buf.try_get(pos, p).ok_or(HttpError::Truncated)?;
        p.alu(1);
        if br!(p, b == b'\r') {
            expect_bytes(buf, &mut pos, b"\r\n", p)?;
            break;
        }
        // Header name up to ':'.
        let name_start = pos;
        loop {
            let c = buf.try_get(pos, p).ok_or(HttpError::Truncated)?;
            p.alu(1);
            if br!(p, c == b':') {
                break;
            }
            if br!(p, c == b'\r' || c == b'\n') {
                return Err(HttpError::BadHeader);
            }
            pos += 1;
        }
        // `: value` is not a header — the field name must be non-empty.
        p.alu(1);
        if !br!(p, pos > name_start) {
            return Err(HttpError::BadHeader);
        }
        let name = Span { start: name_start, end: pos };
        pos += 1;
        // Skip spaces.
        while let Some(c) = buf.try_get(pos, p) {
            p.alu(1);
            if !br!(p, c == b' ' || c == b'\t') {
                break;
            }
            pos += 1;
        }
        // Value to CRLF. A bare LF (no preceding CR) or any other control
        // byte except HTAB inside the value is malformed — silently
        // swallowing it would let `X: a\nEvil: b` read as one header.
        let val_start = pos;
        loop {
            let c = buf.try_get(pos, p).ok_or(HttpError::Truncated)?;
            p.alu(1);
            if br!(p, c == b'\r') {
                break;
            }
            p.alu(2);
            if br!(p, (c < 0x20 && c != b'\t') || c == 0x7f) {
                return Err(HttpError::BadHeader);
            }
            pos += 1;
        }
        let value = Span { start: val_start, end: pos };
        expect_bytes(buf, &mut pos, b"\r\n", p)?;
        headers.push(Header { name, value });

        if header_name_is(buf, name, b"content-length", p) {
            let text = buf.span(value.start, value.end);
            p.alu(u32::try_from(text.len()).expect("header values are short"));
            let parsed: Option<usize> =
                std::str::from_utf8(text).ok().and_then(|s| s.trim().parse().ok());
            let parsed = parsed.ok_or(HttpError::BadContentLength)?;
            // Duplicate Content-Length is the request-smuggling bug class:
            // two frontends picking different values desynchronize on the
            // body boundary. Identical repeats are tolerated (RFC 7230
            // §3.3.2); conflicting ones are fatal.
            if let Some(prev) = content_length {
                p.alu(1);
                if !br!(p, prev == parsed) {
                    return Err(HttpError::BadContentLength);
                }
            }
            content_length = Some(parsed);
        }
    }

    Ok(Request { method, path, headers, body_start: pos, content_length })
}

fn expect_bytes<P: Probe>(
    buf: TBuf<'_>,
    pos: &mut usize,
    lit: &[u8],
    p: &mut P,
) -> Result<(), HttpError> {
    for &want in lit {
        let b = buf.try_get(*pos, p).ok_or(HttpError::Truncated)?;
        p.alu(1);
        if !br!(p, b == want) {
            return Err(HttpError::BadRequestLine);
        }
        *pos += 1;
    }
    Ok(())
}

/// Serialize a minimal response head into the `OUT` region (stores traced);
/// returns the bytes for native use.
pub fn build_response<P: Probe>(status: u16, body_len: usize, p: &mut P) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        502 => "Bad Gateway",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/xml\r\nContent-Length: {body_len}\r\nConnection: close\r\n\r\n"
    );
    // Formatting cost + header stores.
    let head_len = u32::try_from(head.len()).expect("response heads are short");
    p.alu(head_len * 2);
    let words = head_len.div_ceil(8);
    for w in 0..words {
        p.store(Addr::new(RegionSlot::OUT, w * 8), 8);
    }
    head.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::{NullProbe, Tracer};

    const REQ: &[u8] = b"POST /aon/route HTTP/1.1\r\nHost: sut:8080\r\nContent-Type: text/xml\r\nContent-Length: 11\r\n\r\n<order:ok/>";

    #[test]
    fn parses_post() {
        let r = parse_request(TBuf::msg(REQ), &mut NullProbe).unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(&REQ[r.path.start..r.path.end], b"/aon/route");
        assert_eq!(r.headers.len(), 3);
        assert_eq!(r.content_length, Some(11));
        assert_eq!(&REQ[r.body_start..], b"<order:ok/>");
    }

    #[test]
    fn parses_get_without_body() {
        let req = b"GET /health HTTP/1.0\r\n\r\n";
        let r = parse_request(TBuf::msg(req), &mut NullProbe).unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.content_length, None);
        assert_eq!(r.body_start, req.len());
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = b"POST / HTTP/1.1\r\nCONTENT-LENGTH: 5\r\n\r\nhello";
        let r = parse_request(TBuf::msg(req), &mut NullProbe).unwrap();
        assert_eq!(r.content_length, Some(5));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"PUT / HTTP/1.1\r\n\r\n"[..],
            b"POST / FTP/1.1\r\n\r\n",
            b"POST / HTTP/1.1\r\nBad Header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            b"POST / HTT",
            b"",
            // Bare LF inside a header value (no CR) must not be swallowed.
            b"POST / HTTP/1.1\r\nX: a\nEvil: b\r\n\r\n",
            // Other control bytes in values are equally malformed.
            b"POST / HTTP/1.1\r\nX: a\x00b\r\n\r\n",
            // Empty request target.
            b"POST  HTTP/1.1\r\n\r\n",
            // Empty header name.
            b"POST / HTTP/1.1\r\n: v\r\n\r\n",
            // Conflicting duplicate Content-Length (request smuggling).
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello",
        ] {
            assert!(
                parse_request(TBuf::msg(bad), &mut NullProbe).is_err(),
                "must reject {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn bare_lf_in_value_is_bad_header() {
        let bad = b"POST / HTTP/1.1\r\nX: a\nb\r\n\r\n";
        assert_eq!(
            parse_request(TBuf::msg(bad), &mut NullProbe).unwrap_err(),
            HttpError::BadHeader
        );
    }

    #[test]
    fn htab_in_value_is_allowed() {
        let req = b"POST / HTTP/1.1\r\nX: a\tb\r\nContent-Length: 0\r\n\r\n";
        let r = parse_request(TBuf::msg(req), &mut NullProbe).unwrap();
        assert_eq!(r.headers.len(), 2);
    }

    #[test]
    fn empty_path_and_empty_name_error_kinds() {
        assert_eq!(
            parse_request(TBuf::msg(b"POST  HTTP/1.1\r\n\r\n"), &mut NullProbe).unwrap_err(),
            HttpError::BadRequestLine
        );
        assert_eq!(
            parse_request(TBuf::msg(b"POST / HTTP/1.1\r\n: v\r\n\r\n"), &mut NullProbe)
                .unwrap_err(),
            HttpError::BadHeader
        );
    }

    #[test]
    fn duplicate_content_length_identical_ok_conflicting_rejected() {
        let same = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        let r = parse_request(TBuf::msg(same), &mut NullProbe).unwrap();
        assert_eq!(r.content_length, Some(5));
        let conflict = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!";
        assert_eq!(
            parse_request(TBuf::msg(conflict), &mut NullProbe).unwrap_err(),
            HttpError::BadContentLength
        );
    }

    #[test]
    fn body_span_checks_bounds() {
        let r = parse_request(TBuf::msg(REQ), &mut NullProbe).unwrap();
        let span = r.body_span(REQ.len()).unwrap();
        assert_eq!(&REQ[span.start..span.end], b"<order:ok/>");
        // A request whose declared length exceeds the bytes on hand must
        // surface Truncated, not read short.
        let short = b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\nhello";
        let r = parse_request(TBuf::msg(short), &mut NullProbe).unwrap();
        assert_eq!(r.body_span(short.len()), Err(HttpError::Truncated));
        // No Content-Length: empty body at body_start.
        let get = b"GET /health HTTP/1.0\r\n\r\n";
        let r = parse_request(TBuf::msg(get), &mut NullProbe).unwrap();
        let span = r.body_span(get.len()).unwrap();
        assert_eq!(span.start, span.end);
    }

    #[test]
    fn find_header_is_case_insensitive_and_untraced() {
        let r = parse_request(TBuf::msg(REQ), &mut NullProbe).unwrap();
        assert_eq!(r.find_header(REQ, b"HOST"), Some(&b"sut:8080"[..]));
        assert_eq!(r.find_header(REQ, b"connection"), None);
    }

    #[test]
    fn parsing_is_traced_per_byte() {
        let mut t = Tracer::new();
        parse_request(TBuf::msg(REQ), &mut t).unwrap();
        let s = t.finish().stats();
        // The head (everything before the body) is scanned byte-by-byte.
        assert!(usize::try_from(s.loads).expect("load count fits usize") >= REQ.len() - 11);
        assert!(usize::try_from(s.branches).expect("branch count fits usize") > REQ.len() / 2);
    }

    #[test]
    fn response_head_is_valid_http() {
        let head = build_response(200, 5120, &mut NullProbe);
        let text = String::from_utf8(head).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5120\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn response_stores_are_traced() {
        let mut t = Tracer::new();
        let head = build_response(502, 0, &mut t);
        let s = t.finish().stats();
        assert!(usize::try_from(s.stores).expect("store count fits usize") >= head.len() / 8);
    }
}
