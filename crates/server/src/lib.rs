//! # aon-server — the XML AON server application
//!
//! The paper's custom experimental server (§3.2.1): a multithreaded HTTP
//! proxy with two layers of functionality — base-level HTTP message
//! proxying, and XML functions (XPath evaluation, schema validation)
//! applied to message content arriving via HTTP POST. Three use cases:
//!
//! * **FR** (HTTP Forward Request) — proxy the message to the default
//!   endpoint; no content processing. Network-I/O-intensive extreme.
//! * **CBR** (Content Based Routing) — parse the SOAP message, evaluate
//!   `//quantity/text()`, route on the match. Mixed CPU/network.
//! * **SV** (Schema Validation) — validate against the pre-stored XSD,
//!   route valid messages to the destination, invalid ones to the error
//!   endpoint. CPU-intensive extreme.
//!
//! Modules:
//!
//! * [`http`] — instrumented HTTP/1.1 request parsing & response building;
//! * [`overhead`] — per-request kernel/connection work (TCP handshake,
//!   socket slab churn, fd table and endpoint lookups) whose scattered
//!   kernel-memory traffic gives the network-I/O-heavy use cases their
//!   measured cache profile;
//! * [`corpus`] — seeded generation of AONBench-style 5 KB SOAP
//!   purchase-order messages and the validation schema;
//! * [`usecase`] — records the per-message compute trace of each use case
//!   by running the real engines (HTTP parser, `aon-xml` parser/XPath/
//!   schema validator, TCP transmit path) under a tracer;
//! * [`engine`] — the same engines behind pre-compiled, fallible entry
//!   points usable **without a tracer** (the live `aon-serve` path);
//! * [`app`] — wires worker threads (one per logical CPU, as the paper's
//!   server sizes its POSIX thread pool), the ingress listen queue and the
//!   egress NIC queue onto a simulated machine;
//! * [`dpi`], [`crypto`] — the paper's §6 future work (deep packet
//!   inspection signatures and WS-Security-style HMAC-SHA1), implemented
//!   as two additional use cases beyond the paper's three.

pub mod app;
pub mod corpus;
pub mod crypto;
pub mod dpi;
pub mod engine;
pub mod http;
pub mod overhead;
pub mod rng;
pub mod usecase;

pub use app::{build_server, ServerConfig};
pub use corpus::Corpus;
pub use engine::{Engine, EngineError, ParseMode};
pub use usecase::UseCase;
