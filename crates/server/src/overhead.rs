//! Per-request kernel and connection work.
//!
//! The paper's server speaks HTTP without keep-alive (one TCP connection
//! per POSTed message — standard for 2006 AON traffic), so every request
//! drags the kernel through connection setup and teardown: handshake
//! packets, socket slab allocation, fd table updates, route/endpoint
//! lookups, timers, and the teardown mirror image. Three properties of
//! that work matter for reproducing the measurements:
//!
//! 1. it is *instruction-heavy* — tens of thousands of branchy kernel
//!    instructions per connection, which is what holds a mid-2000s proxy
//!    to O(10⁴) requests/second/core even when caches behave;
//! 2. it has a *per-core working set around the L2 size* — each worker's
//!    connection slabs cycle through ~1.4 MiB, which fits the Pentium M's
//!    2 MiB L2 for a single core but thrashes when two cores share it,
//!    and never fits the Xeon's 1 MiB — precisely the asymmetry behind
//!    the paper's FR scaling results (§5.1) and L2MPI ordering (§5.3);
//! 3. its misses ride the front-side bus, giving the network-I/O-heavy
//!    use cases their high BTPI (§5.4).
//!
//! [`emit_request_overhead`] reproduces all three: branchy table-walk
//! loops, a deterministic seeded scatter of loads/stores over a 64 KiB
//! per-connection window, and slab rotation driven by the worker's
//! [`RegionSlot::KERNEL`] binding.

use aon_trace::code::{site_hash, SiteId};
use aon_trace::{Addr, Probe, ProbeExt, RegionSlot, Trace, Tracer};

/// Size of one connection's kernel-state window.
pub const KERNEL_WINDOW: u32 = 64 << 10;
/// Slab windows *per worker* — the hot per-connection tier cycles through
/// `KERNEL_WINDOW * KERNEL_SLOTS` ≈ 1.2 MiB of slab memory.
pub const KERNEL_SLOTS: u32 = 6;
/// Per-request window of the lukewarm global-table tier (`KERNEL2`).
pub const KERNEL2_WINDOW: u32 = 128 << 10;
/// Rotation positions of the lukewarm tier: reuse distance ≈ 1.5 MiB of
/// intervening traffic — retained by a 2 MiB L2, evicted from 1 MiB.
pub const KERNEL2_SLOTS: u32 = 6;
/// Per-request window of the cold tier (`KERNEL3`).
pub const KERNEL3_WINDOW: u32 = 512 << 10;
/// Rotation positions of the cold tier: reuse distance far beyond any L2.
pub const KERNEL3_SLOTS: u32 = 64;

/// xorshift for deterministic scattered offsets.
fn xorshift(x: &mut u32) -> u32 {
    *x ^= *x << 13;
    *x ^= *x >> 17;
    *x ^= *x << 5;
    *x
}

/// Emit the kernel-side work of accepting, servicing and closing one
/// HTTP-over-TCP connection carrying a `msg_len`-byte request.
///
/// `seed` individualizes the scatter pattern (callers pass the message
/// variant id so traces differ between variants but stay deterministic).
pub fn emit_request_overhead<P: Probe>(msg_len: u32, seed: u32, p: &mut P) {
    let mut rng = seed.wrapping_mul(0x9e37_79b9) | 1;

    // --- Accept path: SYN / SYN-ACK / ACK softirq processing, PCB lookup,
    // sequence-number bookkeeping.
    for _ in 0..3 {
        p.counted_loop(220, 2);
        p.load(Addr::new(RegionSlot::KERNEL, xorshift(&mut rng) % KERNEL_WINDOW), 8);
        p.alu(60);
    }

    // --- Socket + fd allocation: initialize scattered slab objects.
    // A sock struct, a file struct, epoll items, timer entries.
    for _ in 0..6 {
        let base = xorshift(&mut rng) % (KERNEL_WINDOW - 2048);
        for w in 0..16 {
            p.store(Addr::new(RegionSlot::KERNEL, base + w * 64), 8);
            p.alu(3);
        }
        p.counted_loop(40, 2); // slab free-list manipulation
    }

    // --- Request-time table walks: fd table, epoll ready list, route
    // cache, conntrack, dentry/page structures, endpoint/policy state.
    // Pointer-chasing loads with a tiered reuse profile: most touches hit
    // the hot per-connection window, some hit the worker's lukewarm global
    // tables, and a steady fraction lands in the cold expanse of kernel
    // memory (page structs, far slabs) that no 2006-era L2 can hold. The
    // cold tier is what keeps an AON proxy's CPI high even on the larger
    // Pentium M L2 (paper Table 4: FR CPI 2.24).
    for _ in 0..1280 {
        let r = xorshift(&mut rng);
        let pick = r % 20;
        if pick < 11 {
            // Hot: this connection's slab window (rotates per message).
            p.load(Addr::new(RegionSlot::KERNEL, r % KERNEL_WINDOW), 8);
        } else if pick < 13 {
            // Lukewarm: global tables with a mid-range reuse distance.
            p.load(Addr::new(RegionSlot::KERNEL2, r % KERNEL2_WINDOW), 8);
        } else {
            // Cold: the wider kernel expanse.
            p.load(Addr::new(RegionSlot::KERNEL3, r % KERNEL3_WINDOW), 8);
        }
        p.counted_loop(5, 2); // field validation on the fetched structure
        p.alu(4);
        // Each table walk takes one of many kernel code paths; the branch
        // PC varies (256 synthetic sites) and each path has a strong,
        // site-determined bias — a big predictor learns all of them, a
        // small or SMT-shared one aliases.
        let path = (r >> 8) & 0xff;
        let site = SiteId(site_hash(file!(), line!(), column!()) ^ path.wrapping_mul(0x9e37_79b9));
        let taken = if path & 1 == 0 { r & 127 != 0 } else { r & 127 == 0 };
        p.branch(site, taken);
    }

    // --- Protocol state machine churn: timers, window bookkeeping,
    // congestion state, HTTP framing over the socket layer.
    for _ in 0..4 {
        p.counted_loop(1400, 2);
        p.load(Addr::new(RegionSlot::KERNEL, xorshift(&mut rng) % KERNEL_WINDOW), 8);
        p.alu(40);
    }

    // --- Epoll/timer-wheel scan: strided pass over a table region.
    let scan_base = xorshift(&mut rng) % (KERNEL_WINDOW / 2);
    for i in 0..128 {
        p.load(Addr::new(RegionSlot::KERNEL, scan_base + i * 128), 8);
        p.alu(3);
        p.branch(aon_trace::code::site_from(file!(), line!(), column!()), i < 127);
    }

    // --- Endpoint selection against the device's routing policy (warm
    // STATIC config — the policy table is shared device configuration).
    for i in 0..16 {
        p.load(Addr::new(RegionSlot::STATIC, 0x8000 + i * 32), 8);
        p.alu(4);
        p.branch(aon_trace::code::site_from(file!(), line!(), column!()), i < 15);
    }

    // --- Access log entry (~128 bytes formatted + stored).
    p.alu(256);
    let log_base = xorshift(&mut rng) % (KERNEL_WINDOW - 256);
    for w in 0..16 {
        p.store(Addr::new(RegionSlot::KERNEL, log_base + w * 8), 8);
    }

    // --- Teardown: FIN/ACK softirqs, timer cancellation, slab free.
    for _ in 0..2 {
        p.counted_loop(160, 2);
        p.load(Addr::new(RegionSlot::KERNEL, xorshift(&mut rng) % KERNEL_WINDOW), 8);
        p.alu(40);
    }
    // TIME_WAIT timer setup touches the timer wheel.
    p.load(Addr::new(RegionSlot::KERNEL, xorshift(&mut rng) % KERNEL_WINDOW), 8);
    p.store(Addr::new(RegionSlot::KERNEL, xorshift(&mut rng) % KERNEL_WINDOW), 8);
    p.alu(40);

    let _ = msg_len;
}

/// Record [`emit_request_overhead`] as a standalone trace.
pub fn overhead_trace(msg_len: u32, seed: u32) -> Trace {
    let mut t = Tracer::with_label(format!("conn-overhead:{seed}"));
    emit_request_overhead(msg_len, seed, &mut t);
    t.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::mix::Mix;

    #[test]
    fn overhead_is_substantial_and_scattered() {
        let t = overhead_trace(5120, 1);
        let s = t.stats();
        assert!(s.ops > 20_000, "connection churn is heavy: {} ops", s.ops);
        assert!(s.loads > 500, "table walks load scattered lines: {}", s.loads);
        assert!(s.stores > 40, "slab init stores: {}", s.stores);
    }

    #[test]
    fn seeds_give_different_scatter() {
        let a = overhead_trace(5120, 1);
        let b = overhead_trace(5120, 2);
        assert_ne!(a.ops(), b.ops(), "different seeds scatter differently");
        // Same structure though.
        assert_eq!(a.stats().loads, b.stats().loads);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = overhead_trace(5120, 7);
        let b = overhead_trace(5120, 7);
        assert_eq!(a.ops(), b.ops());
    }

    #[test]
    fn mix_is_branchy_kernel_code() {
        let m = Mix::of(&overhead_trace(5120, 3));
        assert!(m.branch > 0.2, "kernel code is branch-rich: {m}");
        assert!(m.alu > 0.5, "and ALU-heavy: {m}");
    }

    #[test]
    fn working_set_spans_the_window() {
        let t = overhead_trace(5120, 9);
        let mut lines = std::collections::HashSet::new();
        for op in t.ops() {
            if let aon_trace::Op::Load { addr, .. } | aon_trace::Op::Store { addr, .. } = op {
                if addr.slot == RegionSlot::KERNEL {
                    assert!(addr.offset < KERNEL_WINDOW);
                    lines.insert(addr.offset / 64);
                }
            }
        }
        // The scatter touches a large fraction of the window's lines.
        assert!(lines.len() > 300, "scatter coverage too small: {} lines", lines.len());
    }
}
