//! Small deterministic PRNG for corpus generation.
//!
//! The corpus only needs a seeded, reproducible stream of small integers
//! (letters, quantities, SKU digits). A SplitMix64 generator is more than
//! adequate, keeps the workspace dependency-free, and — unlike an external
//! crate — can never change its stream between versions, so corpora are
//! stable across toolchains.

use std::ops::Range;

/// SplitMix64: 64 bits of state, full-period, passes BigCrush. Used here
/// purely as a deterministic corpus stream; not for cryptography.
#[derive(Debug, Clone)]
pub struct CorpusRng {
    state: u64,
}

impl CorpusRng {
    /// Seeded constructor (same role as `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        CorpusRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `range` (half-open, like `rand::Rng::gen_range`).
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Types samplable from a half-open range with a [`CorpusRng`].
pub trait RangeSample: Sized {
    /// Draw a uniform value in `range`.
    fn sample(rng: &mut CorpusRng, range: Range<Self>) -> Self;
}

fn sample_u64(rng: &mut CorpusRng, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty range");
    // Multiply-shift bounded sampling; the tiny modulo bias of plain `%`
    // is irrelevant for corpus text but this is exact enough either way.
    let span = hi - lo;
    lo + rng.next_u64() % span
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut CorpusRng, range: Range<Self>) -> Self {
                let v = sample_u64(rng, u64::from(range.start), u64::from(range.end));
                // The sampled value is within the requested `$t` range by
                // construction, so the narrowing always succeeds.
                <$t>::try_from(v).expect("sample within range")
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32);

impl RangeSample for usize {
    fn sample(rng: &mut CorpusRng, range: Range<Self>) -> Self {
        let v = sample_u64(rng, range.start as u64, range.end as u64);
        usize::try_from(v).expect("sample within range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = CorpusRng::seed_from_u64(7);
        let mut b = CorpusRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = CorpusRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = CorpusRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0..26u8);
            assert!(w < 26);
            let z = r.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn spread_covers_range() {
        let mut r = CorpusRng::seed_from_u64(2);
        let mut seen = [false; 26];
        for _ in 0..2000 {
            seen[r.gen_range(0..26usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all letters reachable");
    }
}
