//! Per-message compute traces for the three use cases.
//!
//! Each function *runs the real engines* — HTTP parser, XML parser, XPath
//! evaluator, schema validator, TCP transmit path, connection overhead —
//! on the actual message bytes of a corpus variant, under a tracer. The
//! result is the exact abstract-op stream a worker replays per message of
//! that variant.
//!
//! Per-message pipeline (matching the paper's server):
//!
//! 1. softirq receive processing of the DMA'd message (headers);
//! 2. TCP receive copy into the worker's buffer;
//! 3. connection/kernel per-request work ([`crate::overhead`]);
//! 4. HTTP request parse;
//! 5. use-case content processing (none / XPath / validation);
//! 6. response-head build + TCP transmit of the forwarded message.

use crate::corpus::{Corpus, Variant};
use crate::http;
use crate::overhead::emit_request_overhead;
use aon_net::tcpcost::{emit_rx, emit_softirq_rx, emit_tx};
use aon_trace::{Probe, Trace, Tracer};
use aon_xml::input::TBuf;
use aon_xml::parser::parse_document;
use aon_xml::soap::payload_root;
use aon_xml::xpath::XPath;

/// The three workloads of the paper's Figure 3 / Tables 4–6, plus the two
/// future-work operations of §6 (deep packet inspection and crypto).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseCase {
    /// HTTP Forward Request — proxying only.
    Fr,
    /// Content Based Routing — XPath over the message.
    Cbr,
    /// Schema Validation.
    Sv,
    /// Deep packet inspection: signature scan over the raw message
    /// (extension; paper §6 future work).
    Dpi,
    /// Message authentication: HMAC-SHA1 over the SOAP body (extension;
    /// paper §6 future work).
    Crypto,
}

impl UseCase {
    /// The paper's three, in its network-I/O → CPU-intensive order.
    pub const ALL: [UseCase; 3] = [UseCase::Fr, UseCase::Cbr, UseCase::Sv];

    /// All five, including the future-work extensions.
    pub const EXTENDED: [UseCase; 5] =
        [UseCase::Fr, UseCase::Cbr, UseCase::Sv, UseCase::Dpi, UseCase::Crypto];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            UseCase::Fr => "FR",
            UseCase::Cbr => "CBR",
            UseCase::Sv => "SV",
            UseCase::Dpi => "DPI",
            UseCase::Crypto => "CRYPTO",
        }
    }
}

impl core::fmt::Display for UseCase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's CBR expression.
pub const CBR_XPATH: &str = "//quantity/text()";
/// The value CBR routes on.
pub const CBR_EXPECT: &[u8] = b"1";

/// Record the complete per-message trace of `use_case` for one variant.
///
/// `seed` individualizes the kernel-overhead scatter (pass the variant
/// index).
pub fn record_message_trace(
    use_case: UseCase,
    corpus: &Corpus,
    variant: &Variant,
    seed: u32,
) -> Trace {
    let mut t = Tracer::with_label(format!("{}:v{seed}", use_case.label()));
    emit_message_work(use_case, corpus, variant, seed, &mut t);
    t.finish()
}

/// Record the per-message work as separately labelled phase traces — the
/// unit the server workers replay, and the granularity of the machine's
/// sampling profile (softirq vs. TCP copies vs. connection overhead vs.
/// content processing).
pub fn record_message_segments(
    use_case: UseCase,
    corpus: &Corpus,
    variant: &Variant,
    seed: u32,
) -> Vec<Trace> {
    let msg_len = u32::try_from(variant.http.len()).expect("HTTP messages are KiB-sized");
    let mut segs = Vec::with_capacity(5);

    let mut t = Tracer::with_label("kernel:softirq-rx");
    emit_softirq_rx(msg_len, &mut t);
    segs.push(t.finish());

    let mut t = Tracer::with_label("kernel:tcp-rx");
    emit_rx(msg_len, &mut t);
    segs.push(t.finish());

    let mut t = Tracer::with_label("kernel:conn-overhead");
    emit_request_overhead(msg_len, seed, &mut t);
    segs.push(t.finish());

    let mut t = Tracer::with_label(format!("app:{}", use_case.label()));
    emit_content_phase(use_case, corpus, variant, &mut t);
    segs.push(t.finish());

    let mut t = Tracer::with_label("kernel:tcp-tx");
    emit_tx(msg_len, &mut t);
    segs.push(t.finish());

    segs
}

/// Emit the per-message work onto an arbitrary probe.
pub fn emit_message_work<P: Probe>(
    use_case: UseCase,
    corpus: &Corpus,
    variant: &Variant,
    seed: u32,
    p: &mut P,
) {
    let msg_len = u32::try_from(variant.http.len()).expect("HTTP messages are KiB-sized");

    // 1. softirq RX of the DMA'd request.
    emit_softirq_rx(msg_len, p);
    // 2. TCP receive copy kernel → worker buffer.
    emit_rx(msg_len, p);
    // 3. connection churn.
    emit_request_overhead(msg_len, seed, p);
    // 4-5. HTTP parse + content processing + response head.
    emit_content_phase(use_case, corpus, variant, p);
    // 6. forward the message to the selected endpoint.
    emit_tx(msg_len, p);
}

/// The application-level phase: HTTP parse, content processing, response
/// head. Returns whether the message routes to the destination endpoint.
pub fn emit_content_phase<P: Probe>(
    use_case: UseCase,
    corpus: &Corpus,
    variant: &Variant,
    p: &mut P,
) -> bool {
    // HTTP parse on the worker's message buffer (MSG slot). The body is
    // taken through the bounds-checked accessor: a Content-Length larger
    // than the bytes on hand is Truncated, never a short read.
    let buf = TBuf::msg(&variant.http);
    let req = http::parse_request(buf, p).expect("corpus messages are valid HTTP");
    let body_span = req.body_span(buf.len()).expect("corpus messages carry complete bodies");
    let body = buf.slice(body_span.start, body_span.end);

    // 5. content processing. CBR and SV start with the device's encoding
    // check (UTF-8 well-formedness) before handing bytes to the XML stack.
    let routed_ok = match use_case {
        UseCase::Fr => true,
        UseCase::Cbr => {
            aon_xml::utf8::validate_utf8(body, p).expect("corpus bodies are UTF-8");
            let doc = parse_document(body, p).expect("corpus bodies are well-formed");
            let xp = XPath::compile(CBR_XPATH).expect("static expression compiles");
            xp.string_equals(&doc, CBR_EXPECT, p).expect("document has a root")
        }
        UseCase::Dpi => {
            // Signature scan over the full raw message (headers included —
            // attacks hide in both layers).
            crate::dpi::RuleSet::default_rules().scan(buf, p).is_empty()
        }
        UseCase::Crypto => {
            // WS-Security-style authentication: HMAC-SHA1 over the SOAP
            // body with the device key.
            let digest = crate::crypto::hmac_sha1_traced(
                b"aon-device-shared-key",
                buf.span(body_span.start, body_span.end),
                u32::try_from(req.body_start).expect("bodies start within a KiB-sized head"),
                p,
            );
            // Constant-time-style tag compare against the (synthetic)
            // message tag.
            p.alu(20);
            digest[0] != 0xFF // effectively always authentic
        }
        UseCase::Sv => {
            aon_xml::utf8::validate_utf8(body, p).expect("corpus bodies are UTF-8");
            let doc = parse_document(body, p).expect("corpus bodies are well-formed");
            let payload = payload_root(&doc, p).expect("corpus bodies are SOAP");
            let valid = corpus.schema.validate_node(&doc, payload, p).is_valid();
            // Valid messages are re-emitted canonicalized with an integrity
            // digest (the device forwards its own serialization and stamps
            // it, not the raw input).
            if valid {
                let mut out = Vec::with_capacity(variant.http.len());
                aon_xml::serialize::serialize_node(&doc, payload, &mut out, p);
                digest_bytes(&out, p);
            }
            valid
        }
    };

    // Sanity: trace recording must agree with the corpus flags.
    match use_case {
        UseCase::Cbr => debug_assert_eq!(routed_ok, variant.cbr_match),
        UseCase::Sv => debug_assert_eq!(routed_ok, variant.sv_valid),
        _ => {}
    }

    // Response head.
    let _head = http::build_response(if routed_ok { 200 } else { 422 }, 0, p);
    routed_ok
}

/// Rolling integrity digest over the canonicalized output (an FNV-style
/// word-at-a-time mix — the real device stamps forwarded messages). The
/// returned value keeps the computation honest.
fn digest_bytes<P: Probe>(bytes: &[u8], p: &mut P) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        let end = (i + 8).min(bytes.len());
        let mut word = [0u8; 8];
        word[..end - i].copy_from_slice(&bytes[i..end]);
        // The canonical bytes were just stored to OUT; the digest re-reads
        // them (warm) and mixes.
        let off = u32::try_from(i).expect("canonical output is KiB-sized");
        p.load(aon_trace::Addr::new(aon_trace::RegionSlot::OUT, off), 8);
        p.alu(4);
        h ^= u64::from_le_bytes(word);
        h = h.wrapping_mul(0x1000_0000_01b3);
        i = end;
    }
    h
}

/// Per-variant seed: corpora hold a handful of variants, so the index
/// narrows exactly.
fn seed_of(i: usize) -> u32 {
    u32::try_from(i).expect("variant count fits u32")
}

/// Record traces for every variant of a corpus (single concatenated trace
/// per variant).
pub fn record_all_variants(use_case: UseCase, corpus: &Corpus) -> Vec<Trace> {
    corpus
        .variants
        .iter()
        .enumerate()
        .map(|(i, v)| record_message_trace(use_case, corpus, v, seed_of(i)))
        .collect()
}

/// Record phase segments for every variant of a corpus.
pub fn record_all_variant_segments(use_case: UseCase, corpus: &Corpus) -> Vec<Vec<Trace>> {
    corpus
        .variants
        .iter()
        .enumerate()
        .map(|(i, v)| record_message_segments(use_case, corpus, v, seed_of(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::mix::Mix;

    fn corpus() -> Corpus {
        Corpus::generate(42, 4)
    }

    #[test]
    fn work_grows_from_fr_to_sv() {
        let c = corpus();
        let v = &c.variants[0];
        let fr = record_message_trace(UseCase::Fr, &c, v, 0).stats().ops;
        let cbr = record_message_trace(UseCase::Cbr, &c, v, 0).stats().ops;
        let sv = record_message_trace(UseCase::Sv, &c, v, 0).stats().ops;
        assert!(cbr > fr + 5_000, "CBR adds XML parsing: {fr} -> {cbr}");
        assert!(sv > cbr, "SV adds validation: {cbr} -> {sv}");
    }

    #[test]
    fn traces_are_deterministic() {
        let c = corpus();
        let v = &c.variants[1];
        let a = record_message_trace(UseCase::Cbr, &c, v, 1);
        let b = record_message_trace(UseCase::Cbr, &c, v, 1);
        assert_eq!(a.ops(), b.ops());
    }

    #[test]
    fn variants_have_distinct_traces() {
        let c = corpus();
        let a = record_message_trace(UseCase::Sv, &c, &c.variants[0], 0);
        let b = record_message_trace(UseCase::Sv, &c, &c.variants[1], 1);
        assert_ne!(a.stats().ops, b.stats().ops);
    }

    #[test]
    fn mixes_match_workload_character() {
        let c = corpus();
        let v = &c.variants[0];
        let fr = Mix::of(&record_message_trace(UseCase::Fr, &c, v, 0));
        let sv = Mix::of(&record_message_trace(UseCase::Sv, &c, v, 0));
        // All use cases are branch-rich string/pointer code, no FP.
        assert!(fr.branch > 0.15, "FR mix: {fr}");
        assert!(sv.branch > 0.18, "SV mix: {sv}");
        // SV does proportionally more compute per byte moved.
        assert!(
            sv.total_ops > fr.total_ops,
            "SV must out-compute FR: {} vs {}",
            sv.total_ops,
            fr.total_ops
        );
    }

    #[test]
    fn record_all_variants_covers_corpus() {
        let c = corpus();
        let traces = record_all_variants(UseCase::Cbr, &c);
        assert_eq!(traces.len(), c.len());
    }

    #[test]
    fn cbr_and_sv_flags_agree_with_engines() {
        // The debug_asserts in emit_message_work run the real engines and
        // compare against the corpus flags; exercising all variants with a
        // tracer covers that agreement.
        let c = Corpus::generate(1234, 8);
        for u in UseCase::ALL {
            let _ = record_all_variants(u, &c);
        }
    }
}
