//! Property tests for the server substrate: corpus well-formedness across
//! seeds, and no-panic guarantees for the HTTP parser.

use aon_server::corpus::Corpus;
use aon_server::http::parse_request;
use aon_trace::NullProbe;
use aon_xml::input::TBuf;
use aon_xml::parser::parse_document;
use aon_xml::schema::Schema;
use aon_xml::soap::payload_root;
use aon_xml::xpath::XPath;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn corpus_is_well_formed_for_any_seed(seed in any::<u64>(), n in 1usize..6) {
        let corpus = Corpus::generate(seed, n);
        prop_assert_eq!(corpus.len(), n);
        let schema = Schema::compile(aon_server::corpus::CORPUS_XSD).unwrap();
        let xp = XPath::compile("//quantity/text()").unwrap();
        for v in &corpus.variants {
            let req = parse_request(TBuf::msg(&v.http), &mut NullProbe).expect("valid HTTP");
            let body = TBuf::msg(&v.http).slice(req.body_start, v.http.len());
            let doc = parse_document(body, &mut NullProbe).expect("well-formed body");
            let payload = payload_root(&doc, &mut NullProbe).expect("SOAP payload");
            prop_assert_eq!(
                xp.string_equals(&doc, b"1", &mut NullProbe).unwrap(),
                v.cbr_match
            );
            prop_assert_eq!(
                schema.validate_node(&doc, payload, &mut NullProbe).is_valid(),
                v.sv_valid
            );
            // AONBench size envelope.
            let body_len = v.http.len() - v.body_start;
            prop_assert!((4096..=6144).contains(&body_len), "body {} bytes", body_len);
        }
    }
}

proptest! {
    #[test]
    fn http_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = parse_request(TBuf::msg(&bytes), &mut NullProbe);
    }

    #[test]
    fn http_parser_never_panics_on_header_like_input(
        s in "(POST|GET|HEAD|PUT)? ?[/a-z]{0,10} ?(HTTP/1.[01])?(\r\n[a-zA-Z-]{0,12}:? ?[a-z0-9 ]{0,12}){0,4}(\r\n\r\n)?[a-z]{0,20}"
    ) {
        let _ = parse_request(TBuf::msg(s.as_bytes()), &mut NullProbe);
    }

    #[test]
    fn truncated_valid_requests_error_not_panic(cut in 0usize..100) {
        let corpus = Corpus::generate(1, 1);
        let full = &corpus.variants[0].http;
        let cut = cut.min(full.len());
        // Truncating the head must produce an error (never a bogus parse of
        // a complete head, never a panic).
        if cut < corpus.variants[0].body_start {
            prop_assert!(parse_request(TBuf::msg(&full[..cut]), &mut NullProbe).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Differential testing: the traced byte-at-a-time parser vs. a naive
// allocation-happy reference written in a completely different style.
// Divergence on *any* input is a bug in one of them; the four classes the
// hardening pass fixed (swallowed bare LF, empty path / empty header name,
// conflicting duplicate Content-Length, unchecked body bounds) were all
// of the kind this net catches.
// ---------------------------------------------------------------------------

/// What the reference considers a parsed request.
#[derive(Debug, PartialEq, Eq)]
struct RefRequest {
    method: &'static str,
    path: Vec<u8>,
    headers: Vec<(Vec<u8>, Vec<u8>)>,
    body_start: usize,
    content_length: Option<usize>,
}

/// Naive reference parser: same grammar as `parse_request`, written with
/// slices and explicit lookahead instead of a traced cursor.
fn reference_parse(b: &[u8]) -> Option<RefRequest> {
    let (method, mut pos) = if b.starts_with(b"POST ") {
        ("POST", 5)
    } else if b.starts_with(b"GET ") {
        ("GET", 4)
    } else if b.starts_with(b"HEAD ") {
        ("HEAD", 5)
    } else {
        return None;
    };

    // Non-empty path terminated by a single space.
    let path_start = pos;
    while *b.get(pos)? != b' ' {
        if matches!(b[pos], b'\r' | b'\n') {
            return None;
        }
        pos += 1;
    }
    if pos == path_start {
        return None;
    }
    let path = b[path_start..pos].to_vec();
    pos += 1;

    // Version: HTTP/1.0 or HTTP/1.1, then CRLF.
    let version = b.get(pos..pos + 7)?;
    if version != b"HTTP/1." || !matches!(*b.get(pos + 7)?, b'0' | b'1') {
        return None;
    }
    pos += 8;
    if b.get(pos..pos + 2)? != b"\r\n" {
        return None;
    }
    pos += 2;

    // Header fields until the blank line.
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        if *b.get(pos)? == b'\r' {
            if b.get(pos..pos + 2)? != b"\r\n" {
                return None;
            }
            pos += 2;
            break;
        }
        // Non-empty name up to ':'.
        let name_start = pos;
        while *b.get(pos)? != b':' {
            if matches!(b[pos], b'\r' | b'\n') {
                return None;
            }
            pos += 1;
        }
        if pos == name_start {
            return None;
        }
        let name = b[name_start..pos].to_vec();
        pos += 1;
        // Optional whitespace before the value.
        while matches!(b.get(pos), Some(b' ' | b'\t')) {
            pos += 1;
        }
        // Value up to CR; control bytes other than HTAB are malformed.
        let val_start = pos;
        loop {
            let c = *b.get(pos)?;
            if c == b'\r' {
                break;
            }
            if (c < 0x20 && c != b'\t') || c == 0x7f {
                return None;
            }
            pos += 1;
        }
        let value = b[val_start..pos].to_vec();
        if b.get(pos..pos + 2)? != b"\r\n" {
            return None;
        }
        pos += 2;

        if name.eq_ignore_ascii_case(b"content-length") {
            let parsed: usize =
                std::str::from_utf8(&value).ok().and_then(|s| s.trim().parse().ok())?;
            // Identical duplicates tolerated; conflicting ones fatal.
            if content_length.is_some_and(|prev| prev != parsed) {
                return None;
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }

    Some(RefRequest { method, path, headers, body_start: pos, content_length })
}

/// Assert the real parser and the reference agree on `bytes`: same
/// accept/reject verdict and, when both accept, identical structure
/// (including the checked body-bounds verdict).
fn assert_agreement(bytes: &[u8]) -> Result<(), proptest::test_runner::TestCaseError> {
    let real = parse_request(TBuf::msg(bytes), &mut NullProbe);
    let naive = reference_parse(bytes);
    match (&real, &naive) {
        (Ok(r), Some(n)) => {
            let method = match r.method {
                aon_server::http::Method::Get => "GET",
                aon_server::http::Method::Post => "POST",
                aon_server::http::Method::Head => "HEAD",
            };
            prop_assert_eq!(method, n.method);
            prop_assert_eq!(&bytes[r.path.start..r.path.end], &n.path[..]);
            prop_assert_eq!(r.headers.len(), n.headers.len());
            for (h, (name, value)) in r.headers.iter().zip(&n.headers) {
                prop_assert_eq!(&bytes[h.name.start..h.name.end], &name[..]);
                prop_assert_eq!(&bytes[h.value.start..h.value.end], &value[..]);
            }
            prop_assert_eq!(r.body_start, n.body_start);
            prop_assert_eq!(r.content_length, n.content_length);
            // The checked accessor agrees with first-principles arithmetic.
            let declared = n.content_length.unwrap_or(0);
            let fits = declared <= bytes.len() - n.body_start;
            prop_assert_eq!(r.body_span(bytes.len()).is_ok(), fits);
            if let Ok(span) = r.body_span(bytes.len()) {
                prop_assert_eq!(span.end - span.start, declared);
            }
        }
        (Err(_), None) => {}
        (real, naive) => {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "parsers disagree on {:?}: real={:?} naive={:?}",
                String::from_utf8_lossy(bytes),
                real,
                naive
            )));
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn parser_agrees_with_reference_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300)
    ) {
        assert_agreement(&bytes)?;
    }

    #[test]
    fn parser_agrees_with_reference_on_header_like_input(
        s in "(POST|GET|HEAD|PUT)? ?[/a-z]{0,10} ?(HTTP/1.[01])?(\r\n[a-zA-Z-]{0,12}:? ?[a-z0-9\t ]{0,12}){0,4}(\r\n\r\n)?[a-z]{0,20}"
    ) {
        assert_agreement(s.as_bytes())?;
    }

    /// The four hardened bug classes, built structurally so the dangerous
    /// shapes are dense rather than needle-in-a-haystack: header values
    /// with embedded control bytes, empty paths/names, duplicate
    /// Content-Length pairs, and bodies shorter than declared.
    #[test]
    fn parser_agrees_with_reference_on_adversarial_requests(
        path in "[/a-z]{0,6}",
        name in "[a-zA-Z-]{0,8}",
        value in "[a-z]{0,4}[\x00\x01\n\t\x7f ]?[a-z]{0,4}",
        cl_a in 0usize..12,
        cl_b in 0usize..12,
        dup in 0usize..3,
        body in "[a-z]{0,10}"
    ) {
        let mut msg = format!("POST {path} HTTP/1.1\r\n");
        if dup == 2 {
            // Possibly-conflicting duplicate Content-Length.
            msg.push_str(&format!("Content-Length: {cl_a}\r\nContent-Length: {cl_b}\r\n"));
        } else {
            msg.push_str(&format!("Content-Length: {cl_a}\r\n"));
        }
        msg.push_str(&format!("{name}: {value}\r\n\r\n{body}"));
        assert_agreement(msg.as_bytes())?;
    }

    /// Single-point corruptions of real corpus messages: byte flips and
    /// truncations anywhere in the head must never cause divergence (and
    /// in particular never let a corrupted message parse differently in
    /// the traced and native paths).
    #[test]
    fn parser_agrees_with_reference_on_corrupted_corpus(
        seed in any::<u64>(),
        kind in 0usize..2,
        at in 0usize..100_000,
        val in any::<u8>()
    ) {
        let corpus = Corpus::generate(seed, 1);
        let v = &corpus.variants[0];
        let mut msg = v.http.clone();
        // Corrupt the head only — body corruption is the XML layer's
        // problem, and head+body agreement is covered above.
        let head_len = v.body_start.max(1);
        match kind {
            0 => msg[at % head_len] = val,
            _ => msg.truncate(at % (head_len + 1)),
        }
        assert_agreement(&msg)?;
    }
}
