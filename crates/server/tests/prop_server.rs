//! Property tests for the server substrate: corpus well-formedness across
//! seeds, and no-panic guarantees for the HTTP parser.

use aon_server::corpus::Corpus;
use aon_server::http::parse_request;
use aon_trace::NullProbe;
use aon_xml::input::TBuf;
use aon_xml::parser::parse_document;
use aon_xml::schema::Schema;
use aon_xml::soap::payload_root;
use aon_xml::xpath::XPath;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn corpus_is_well_formed_for_any_seed(seed in any::<u64>(), n in 1usize..6) {
        let corpus = Corpus::generate(seed, n);
        prop_assert_eq!(corpus.len(), n);
        let schema = Schema::compile(aon_server::corpus::CORPUS_XSD).unwrap();
        let xp = XPath::compile("//quantity/text()").unwrap();
        for v in &corpus.variants {
            let req = parse_request(TBuf::msg(&v.http), &mut NullProbe).expect("valid HTTP");
            let body = TBuf::msg(&v.http).slice(req.body_start, v.http.len());
            let doc = parse_document(body, &mut NullProbe).expect("well-formed body");
            let payload = payload_root(&doc, &mut NullProbe).expect("SOAP payload");
            prop_assert_eq!(
                xp.string_equals(&doc, b"1", &mut NullProbe).unwrap(),
                v.cbr_match
            );
            prop_assert_eq!(
                schema.validate_node(&doc, payload, &mut NullProbe).is_valid(),
                v.sv_valid
            );
            // AONBench size envelope.
            let body_len = v.http.len() - v.body_start;
            prop_assert!((4096..=6144).contains(&body_len), "body {} bytes", body_len);
        }
    }
}

proptest! {
    #[test]
    fn http_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = parse_request(TBuf::msg(&bytes), &mut NullProbe);
    }

    #[test]
    fn http_parser_never_panics_on_header_like_input(
        s in "(POST|GET|HEAD|PUT)? ?[/a-z]{0,10} ?(HTTP/1.[01])?(\r\n[a-zA-Z-]{0,12}:? ?[a-z0-9 ]{0,12}){0,4}(\r\n\r\n)?[a-z]{0,20}"
    ) {
        let _ = parse_request(TBuf::msg(s.as_bytes()), &mut NullProbe);
    }

    #[test]
    fn truncated_valid_requests_error_not_panic(cut in 0usize..100) {
        let corpus = Corpus::generate(1, 1);
        let full = &corpus.variants[0].http;
        let cut = cut.min(full.len());
        // Truncating the head must produce an error (never a bogus parse of
        // a complete head, never a panic).
        if cut < corpus.variants[0].body_start {
            prop_assert!(parse_request(TBuf::msg(&full[..cut]), &mut NullProbe).is_err());
        }
    }
}
