//! Branch prediction.
//!
//! A gshare predictor (global history XOR PC indexing a table of 2-bit
//! saturating counters) per physical core. Under Hyperthreading the table
//! is *shared* between the two logical CPUs while each keeps a private
//! global-history register — the configuration Netburst used, and the
//! mechanism behind the paper's §5.5 observation that enabling HT inflates
//! the branch misprediction ratio by ≥25 %: the sibling's updates alias
//! into the same counters.

use crate::config::PredictorConfig;

/// Two-bit saturating counter states (weakly/strongly not-taken are 1/0).
const STRONG_NT: u8 = 0;
const WEAK_T: u8 = 2;
const STRONG_T: u8 = 3;

/// A gshare predictor (one per physical core).
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: u32,
    history_mask: u32,
    /// Per-logical-thread history registers (index: SMT sibling id).
    history: [u32; 2],
    /// Netburst Hyperthreading shares the global history buffer between
    /// the two logical CPUs: each thread's outcomes scramble the other's
    /// patterns whenever both are active — the paper's §5.5 observation
    /// that HT alone inflates BrMPR by ≥25 %.
    shared_history: bool,
}

impl Gshare {
    /// Build from a geometry description.
    pub fn new(cfg: PredictorConfig) -> Self {
        Self::with_sharing(cfg, false)
    }

    /// Build with or without an SMT-shared history register.
    pub fn with_sharing(cfg: PredictorConfig, shared_history: bool) -> Self {
        let entries = 1usize << cfg.table_bits;
        Gshare {
            table: vec![WEAK_T; entries],
            mask: u32::try_from(entries - 1).expect("table_bits is far below 32"),
            history_mask: if cfg.history_bits >= 32 {
                u32::MAX
            } else {
                (1u32 << cfg.history_bits) - 1
            },
            history: [0; 2],
            shared_history,
        }
    }

    #[inline]
    fn hist_slot(&self, sibling: usize) -> usize {
        if self.shared_history {
            0
        } else {
            sibling
        }
    }

    #[inline]
    // Keeping only the low PC bits is the gshare indexing scheme itself,
    // not an accident, so the truncating cast is allowed here.
    #[allow(clippy::cast_possible_truncation)]
    fn index(&self, pc: u64, sibling: usize) -> usize {
        // Classic gshare: PC (shifted past the instruction alignment) XOR
        // global history.
        ((((pc >> 2) as u32) ^ self.history[self.hist_slot(sibling)]) & self.mask) as usize
    }

    /// Predict the direction of the branch at `pc` for SMT sibling
    /// `sibling` (0 or 1).
    pub fn predict(&self, pc: u64, sibling: usize) -> bool {
        self.table[self.index(pc, sibling)] >= WEAK_T
    }

    /// Update with the actual outcome; returns whether the prediction was
    /// correct. Inlined: this runs once per replayed branch record.
    #[inline]
    pub fn update(&mut self, pc: u64, sibling: usize, taken: bool) -> bool {
        let idx = self.index(pc, sibling);
        let counter = &mut self.table[idx];
        let predicted = *counter >= WEAK_T;
        *counter = match (taken, *counter) {
            (true, STRONG_T) => STRONG_T,
            (true, c) => c + 1,
            (false, STRONG_NT) => STRONG_NT,
            (false, c) => c - 1,
        };
        let h = self.hist_slot(sibling);
        self.history[h] = ((self.history[h] << 1) | taken as u32) & self.history_mask;
        predicted == taken
    }

    /// Number of table entries (for tests / reporting).
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PredictorConfig {
        PredictorConfig { table_bits: 10, history_bits: 8 }
    }

    #[test]
    fn learns_a_bias() {
        let mut g = Gshare::new(cfg());
        let pc = 0x40_1000;
        let mut correct = 0;
        for _ in 0..100 {
            if g.update(pc, 0, true) {
                correct += 1;
            }
        }
        assert!(correct >= 95, "should learn an always-taken branch: {correct}/100");
    }

    #[test]
    fn learns_alternation_via_history() {
        let mut g = Gshare::new(cfg());
        let pc = 0x40_2000;
        // Warm up, then measure: with history bits, alternating patterns
        // become predictable.
        let mut outcome = false;
        for _ in 0..200 {
            g.update(pc, 0, outcome);
            outcome = !outcome;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if g.update(pc, 0, outcome) {
                correct += 1;
            }
            outcome = !outcome;
        }
        assert!(correct >= 90, "alternating branch should be predictable: {correct}/100");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut g = Gshare::new(cfg());
        // A deterministic pseudo-random bit sequence.
        let mut x: u32 = 0x1234_5678;
        let mut wrong = 0;
        for i in 0..1000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let taken = (x >> 16) & 1 == 1;
            if !g.update(0x40_3000 + (i % 7) * 4, 0, taken) {
                wrong += 1;
            }
        }
        assert!(wrong > 250, "random branches should hurt: {wrong}/1000 wrong");
    }

    #[test]
    fn sibling_sharing_causes_aliasing() {
        // Two threads with conflicting biases on the same PC and identical
        // table indices (history disabled so the index is purely the PC):
        // sharing the table must produce more mispredictions than one
        // thread alone. With history enabled the same effect appears
        // statistically through table pressure; this test pins down the
        // mechanism deterministically.
        let no_hist = PredictorConfig { table_bits: 10, history_bits: 0 };
        let run = |two_threads: bool| -> u32 {
            let mut g = Gshare::new(no_hist);
            let pc = 0x40_4000;
            let mut wrong = 0;
            for i in 0..2000 {
                if two_threads && i % 2 == 1 {
                    // Sibling thread: opposite bias, same table.
                    if !g.update(pc, 1, false) {
                        wrong += 1;
                    }
                } else if !g.update(pc, 0, true) {
                    wrong += 1;
                }
            }
            wrong
        };
        let solo = run(false);
        let shared = run(true);
        assert!(
            shared > solo + 100,
            "conflicting siblings should alias: solo={solo} shared={shared}"
        );
    }

    #[test]
    fn geometry_respected() {
        let g = Gshare::new(PredictorConfig { table_bits: 12, history_bits: 10 });
        assert_eq!(g.entries(), 4096);
    }
}
