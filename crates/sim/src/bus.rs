//! Bandwidth timelines — the contention primitive.
//!
//! Every shared resource in the machine (issue slots of a physical core,
//! the shared-L2 port, the front-side bus) is a server on which consumers
//! *book* occupancy. A booking at earliest-start `t` is granted at
//! `max(t, next_free)` and holds the resource for its busy time; the
//! granted start minus the requested start is queueing delay. Because the
//! machine always steps the logical CPU with the smallest local time,
//! bookings arrive in (approximately) nondecreasing time order and the
//! single-server FIFO model is accurate.
//!
//! Two flavours:
//!
//! * [`SlotTimeline`] — fractional slots per cycle (issue bandwidth).
//!   Internally it counts in slot units so a width of 1.35 ops/cycle is
//!   exact over time.
//! * [`BusyTimeline`] — occupancy in whole cycles (bus transactions, L2
//!   port).

/// Issue-slot timeline with fractional slots/cycle.
///
/// Width is given in hundredths of slots per cycle; internally time is kept
/// in "centislot" units: one cycle supplies `width_x100` centislots. The
/// next-free centislot time is stored decomposed as
/// `next_cycle * width_x100 + rem_cs` (with `rem_cs < width_x100`) so a
/// booking needs no 64-bit division — [`SlotTimeline::book`] runs once per
/// replayed op record, and on that path an integer divide is the single
/// most expensive instruction. The decomposition is exact: every quantity
/// below is the same integer the single-`next_free_cs` representation
/// would produce.
#[derive(Debug, Clone)]
pub struct SlotTimeline {
    width_x100: u64,
    /// Next free time, whole-cycle part (`next_free_cs / width_x100`).
    next_cycle: u64,
    /// Next free time, centislot remainder (`next_free_cs % width_x100`).
    rem_cs: u64,
}

impl SlotTimeline {
    /// A timeline providing `width_x100 / 100` slots per cycle.
    pub fn new(width_x100: u32) -> Self {
        assert!(width_x100 > 0);
        SlotTimeline { width_x100: width_x100 as u64, next_cycle: 0, rem_cs: 0 }
    }

    /// Book `slots` issue slots no earlier than `earliest` (cycles).
    /// Returns the cycle at which the last slot completes.
    pub fn book(&mut self, earliest: u64, slots: u32) -> u64 {
        // max(next_free_cs, earliest * width): since rem_cs < width, the
        // comparison reduces to the whole-cycle parts.
        if self.next_cycle < earliest {
            self.next_cycle = earliest;
            self.rem_cs = 0;
        }
        // One slot costs 100 centislots of this resource's capacity.
        let w = self.width_x100;
        let mut total = self.rem_cs + slots as u64 * 100;
        if total < w * 4 {
            // Single-slot bookings at realistic widths land here: at most
            // three subtractions replace the divide.
            while total >= w {
                total -= w;
                self.next_cycle += 1;
            }
        } else {
            self.next_cycle += total / w;
            total %= w;
        }
        self.rem_cs = total;
        self.next_cycle
    }

    /// The cycle at which the resource next becomes free.
    pub fn horizon(&self) -> u64 {
        self.next_cycle
    }
}

/// Whole-cycle occupancy timeline (bus, cache port).
#[derive(Debug, Clone, Default)]
pub struct BusyTimeline {
    next_free: u64,
    /// Total busy cycles booked (utilization accounting).
    busy_total: u64,
}

impl BusyTimeline {
    /// A fresh, idle timeline.
    pub fn new() -> Self {
        BusyTimeline::default()
    }

    /// Book `busy` cycles of occupancy no earlier than `earliest`.
    /// Returns `(start, end)` of the granted window.
    pub fn book(&mut self, earliest: u64, busy: u64) -> (u64, u64) {
        let start = self.next_free.max(earliest);
        let end = start + busy;
        self.next_free = end;
        self.busy_total += busy;
        (start, end)
    }

    /// The time at which the resource becomes free.
    pub fn horizon(&self) -> u64 {
        self.next_free
    }

    /// Total booked busy cycles.
    pub fn busy_total(&self) -> u64 {
        self.busy_total
    }

    /// Utilization over `elapsed` cycles (0.0 when `elapsed` is 0).
    pub fn utilization(&self, elapsed: u64) -> f64 {
        crate::convert::ratio(self.busy_total, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_timeline_rate() {
        // 1.35 ops/cycle: 135 ops should take ~100 cycles.
        let mut t = SlotTimeline::new(135);
        let mut end = 0;
        for _ in 0..135 {
            end = t.book(0, 1);
        }
        assert!((99..=101).contains(&end), "135 ops at 1.35/cyc took {end}");
    }

    #[test]
    fn slot_timeline_contention_pushes_later() {
        let mut t = SlotTimeline::new(100);
        // Two consumers interleave at the same earliest time: the second's
        // completions land strictly later.
        let a = t.book(0, 10);
        let b = t.book(0, 10);
        assert_eq!(a, 10);
        assert_eq!(b, 20);
    }

    #[test]
    fn slot_timeline_idle_gap_respected() {
        let mut t = SlotTimeline::new(100);
        t.book(0, 5);
        // A booking far in the future must not start earlier.
        let end = t.book(1000, 1);
        assert_eq!(end, 1001);
    }

    #[test]
    fn busy_timeline_fifo() {
        let mut t = BusyTimeline::new();
        let (s1, e1) = t.book(10, 24);
        let (s2, e2) = t.book(10, 24);
        assert_eq!((s1, e1), (10, 34));
        assert_eq!((s2, e2), (34, 58));
        assert_eq!(t.busy_total(), 48);
    }

    #[test]
    fn utilization() {
        let mut t = BusyTimeline::new();
        t.book(0, 50);
        assert!((t.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(0), 0.0);
    }
}
