//! Set-associative cache arrays with MESI line states.
//!
//! [`CacheArray`] is the building block for every level: true LRU within a
//! set, per-line MESI state and an owner-defined 8-bit presence mask (the
//! L2 uses it as a directory of which L1s above it hold the line). Timing
//! and coherence policy live in [`crate::hier`]; this module is pure state.

/// MESI coherence states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    /// Modified: exclusive and dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly other copies, clean.
    Shared,
    /// Invalid.
    Invalid,
}

/// Per-line metadata off the scan path: MESI state, presence mask, LRU
/// stamp. Only touched once a key compare has already identified the way.
#[derive(Debug, Clone, Copy)]
struct Meta {
    state: Mesi,
    /// Owner-defined presence mask (directory bits for inclusive L2s).
    presence: u8,
    /// LRU stamp (bigger = more recent).
    lru: u64,
}

const EMPTY_META: Meta = Meta { state: Mesi::Invalid, presence: 0, lru: 0 };

/// A key that matches no probe: its generation field is [`GEN_LIMIT`],
/// which the live generation never reaches.
const KEY_INVALID: u64 = u64::MAX;
/// Bits of a key holding the line address.
const KEY_TAG_BITS: u32 = 48;
const KEY_TAG_MASK: u64 = (1 << KEY_TAG_BITS) - 1;
/// Generations wrap (via an eager wipe) before colliding with the
/// invalid-key encoding.
const GEN_LIMIT: u32 = 0xFFFF;

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present with the given state.
    Hit(Mesi),
    /// Line absent.
    Miss,
}

/// A victim evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line address (address / line_size).
    pub line_addr: u64,
    /// Its state at eviction (Modified ⇒ write-back needed).
    pub state: Mesi,
    /// Its presence mask at eviction (inclusive caches must back-invalidate).
    pub presence: u8,
}

/// A set-associative array indexed by line address.
///
/// Structure-of-arrays layout: the scan path compares packed
/// `(generation, tag)` keys — one u64 per way, so an 8-way set scan
/// touches a single host cache line — while MESI state, presence and LRU
/// stamps live in a parallel metadata array that is only dereferenced once
/// a key compare has identified the way. Bulk invalidation stays O(1):
/// bumping the generation changes the probe key, so every older line stops
/// matching without being touched.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: u32,
    ways: u32,
    /// Packed `(generation << 48) | line_addr` per way; [`KEY_INVALID`] for
    /// empty ways.
    keys: Vec<u64>,
    meta: Vec<Meta>,
    stamp: u64,
    /// Per-set most-recently-used way: the first candidate a lookup checks.
    /// On the L1-hit common case this turns the set scan into one compare.
    mru: Vec<u32>,
    /// Current generation; lines keyed under an older one are invalid.
    generation: u32,
}

impl CacheArray {
    /// Build an array with `sets` sets of `ways` ways.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0);
        CacheArray {
            sets,
            ways,
            keys: vec![KEY_INVALID; (sets * ways) as usize],
            meta: vec![EMPTY_META; (sets * ways) as usize],
            stamp: 0,
            mru: vec![0; sets as usize],
            generation: 0,
        }
    }

    /// Build from a [`crate::config::CacheConfig`].
    pub fn from_config(cfg: &crate::config::CacheConfig) -> Self {
        Self::new(cfg.sets(), cfg.ways)
    }

    /// The probe key a line address matches under the current generation.
    #[inline]
    fn key(&self, line_addr: u64) -> u64 {
        debug_assert!(line_addr <= KEY_TAG_MASK, "line address exceeds key tag field");
        (u64::from(self.generation) << KEY_TAG_BITS) | line_addr
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> u32 {
        // Mask in u64 first; the result then converts exactly.
        u32::try_from(line_addr & u64::from(self.sets - 1)).expect("masked to set index range")
    }

    #[inline]
    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let base = (set * self.ways) as usize;
        base..base + self.ways as usize
    }

    /// A way counts only if its key carries the current generation (empty
    /// ways carry [`GEN_LIMIT`], which the live generation never reaches).
    #[inline]
    fn live(&self, i: usize) -> bool {
        self.keys[i] >> KEY_TAG_BITS == u64::from(self.generation)
    }

    fn find(&self, line_addr: u64) -> Option<usize> {
        let want = self.key(line_addr);
        let set = self.set_of(line_addr);
        self.set_range(set).find(|&i| self.keys[i] == want)
    }

    /// Look up a line, refreshing LRU on a hit.
    ///
    /// Fast path: check the set's MRU way first — on the common L1-hit case
    /// (the workload's warm static/working-set data) the lookup costs a
    /// single key compare instead of a scan over all ways. Inlined so the
    /// memory system's hit paths collapse into one compare at the call
    /// site; the set scan is outlined.
    #[inline]
    pub fn lookup(&mut self, line_addr: u64) -> Lookup {
        self.stamp += 1;
        let want = self.key(line_addr);
        let set = self.set_of(line_addr);
        let mru_idx = (set * self.ways + self.mru[set as usize]) as usize;
        if self.keys[mru_idx] == want {
            let m = &mut self.meta[mru_idx];
            m.lru = self.stamp;
            return Lookup::Hit(m.state);
        }
        self.lookup_scan(set, want)
    }

    /// The non-MRU half of [`CacheArray::lookup`]: scan the set, refresh
    /// LRU and retarget the MRU hint on a hit.
    fn lookup_scan(&mut self, set: u32, want: u64) -> Lookup {
        match self.set_range(set).find(|&i| self.keys[i] == want) {
            Some(i) => {
                self.meta[i].lru = self.stamp;
                self.mru[set as usize] =
                    u32::try_from(i).expect("line index fits u32") - set * self.ways;
                Lookup::Hit(self.meta[i].state)
            }
            None => Lookup::Miss,
        }
    }

    /// Invalidate every line in O(1) by advancing the generation. Lines
    /// keyed under older generations become invisible to every operation;
    /// LRU stamps keep advancing monotonically, so refilled sets behave
    /// exactly like a freshly constructed array.
    pub fn invalidate_all(&mut self) {
        self.generation += 1;
        if self.generation == GEN_LIMIT {
            // Generation field exhausted (needs 2^16 − 1 bulk resets): fall
            // back to the eager wipe once and restart the epoch counter.
            self.keys.fill(KEY_INVALID);
            self.generation = 0;
        }
    }

    /// Look up without touching LRU (snoops).
    pub fn probe(&self, line_addr: u64) -> Lookup {
        match self.find(line_addr) {
            Some(i) => Lookup::Hit(self.meta[i].state),
            None => Lookup::Miss,
        }
    }

    /// Change the state of a present line. No-op if absent.
    pub fn set_state(&mut self, line_addr: u64, state: Mesi) {
        if let Some(i) = self.find(line_addr) {
            self.meta[i].state = state;
        }
    }

    /// Invalidate a line; returns its pre-invalidation state (and presence)
    /// if it was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<(Mesi, u8)> {
        self.find(line_addr).map(|i| {
            let old = (self.meta[i].state, self.meta[i].presence);
            self.keys[i] = KEY_INVALID;
            self.meta[i] = EMPTY_META;
            old
        })
    }

    /// Insert a line with the given state, evicting LRU if needed.
    pub fn fill(&mut self, line_addr: u64, state: Mesi) -> Option<Victim> {
        self.stamp += 1;
        let set = self.set_of(line_addr);
        if let Some(i) = self.find(line_addr) {
            self.meta[i].state = state;
            self.meta[i].lru = self.stamp;
            self.mru[set as usize] =
                u32::try_from(i).expect("line index fits u32") - set * self.ways;
            return None;
        }
        // Prefer an invalid (or stale-generation) way, else LRU.
        let mut victim_idx = None;
        let mut oldest = u64::MAX;
        for i in self.set_range(set) {
            if !self.live(i) {
                victim_idx = Some(i);
                break;
            }
            if self.meta[i].lru < oldest {
                oldest = self.meta[i].lru;
                victim_idx = Some(i);
            }
        }
        let i = victim_idx.expect("ways > 0");
        let victim = if self.live(i) {
            Some(Victim {
                line_addr: self.keys[i] & KEY_TAG_MASK,
                state: self.meta[i].state,
                presence: self.meta[i].presence,
            })
        } else {
            None
        };
        self.keys[i] = self.key(line_addr);
        self.meta[i] = Meta { state, presence: 0, lru: self.stamp };
        self.mru[set as usize] = u32::try_from(i).expect("line index fits u32") - set * self.ways;
        victim
    }

    /// Read the presence mask of a present line (0 if absent).
    pub fn presence(&self, line_addr: u64) -> u8 {
        self.find(line_addr).map(|i| self.meta[i].presence).unwrap_or(0)
    }

    /// Update the presence mask of a present line.
    pub fn set_presence(&mut self, line_addr: u64, mask: u8) {
        if let Some(i) = self.find(line_addr) {
            self.meta[i].presence = mask;
        }
    }

    /// Or bits into the presence mask.
    pub fn add_presence(&mut self, line_addr: u64, bits: u8) {
        if let Some(i) = self.find(line_addr) {
            self.meta[i].presence |= bits;
        }
    }

    /// Number of valid lines (tests / occupancy reporting).
    pub fn valid_lines(&self) -> usize {
        (0..self.keys.len()).filter(|&i| self.live(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        CacheArray::new(4, 2)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(100), Lookup::Miss);
        assert_eq!(c.fill(100, Mesi::Exclusive), None);
        assert_eq!(c.lookup(100), Lookup::Hit(Mesi::Exclusive));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0, 4, 8 map to set 0 (4 sets). Two ways: filling three
        // evicts the least recently used.
        c.fill(0, Mesi::Exclusive);
        c.fill(4, Mesi::Exclusive);
        c.lookup(0); // refresh 0; 4 is now LRU
        let v = c.fill(8, Mesi::Exclusive).expect("eviction");
        assert_eq!(v.line_addr, 4);
        assert_eq!(c.probe(0), Lookup::Hit(Mesi::Exclusive));
        assert_eq!(c.probe(4), Lookup::Miss);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.fill(0, Mesi::Modified);
        c.fill(4, Mesi::Exclusive);
        c.lookup(4);
        c.lookup(4);
        // 0 is LRU.
        let v = c.fill(8, Mesi::Exclusive).unwrap();
        assert_eq!(v.state, Mesi::Modified);
        assert_eq!(v.line_addr, 0);
    }

    #[test]
    fn invalidate_returns_state() {
        let mut c = small();
        c.fill(3, Mesi::Modified);
        assert_eq!(c.invalidate(3), Some((Mesi::Modified, 0)));
        assert_eq!(c.invalidate(3), None);
        assert_eq!(c.probe(3), Lookup::Miss);
    }

    #[test]
    fn presence_mask_tracks_sharers() {
        let mut c = small();
        c.fill(7, Mesi::Shared);
        c.add_presence(7, 0b01);
        c.add_presence(7, 0b10);
        assert_eq!(c.presence(7), 0b11);
        c.set_presence(7, 0b10);
        assert_eq!(c.presence(7), 0b10);
        assert_eq!(c.presence(999), 0);
    }

    #[test]
    fn refill_same_line_updates_state_without_eviction() {
        let mut c = small();
        c.fill(5, Mesi::Shared);
        assert_eq!(c.fill(5, Mesi::Modified), None);
        assert_eq!(c.probe(5), Lookup::Hit(Mesi::Modified));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn mru_fast_path_agrees_with_scan() {
        // Alternate hits between two ways of the same set: every lookup must
        // hit regardless of which way is MRU, and LRU ordering must be
        // unchanged by the fast path (the later-touched line survives).
        let mut c = small();
        c.fill(0, Mesi::Exclusive);
        c.fill(4, Mesi::Shared);
        for _ in 0..10 {
            assert_eq!(c.lookup(0), Lookup::Hit(Mesi::Exclusive));
            assert_eq!(c.lookup(4), Lookup::Hit(Mesi::Shared));
        }
        c.lookup(0); // 4 is now LRU
        let v = c.fill(8, Mesi::Exclusive).expect("eviction");
        assert_eq!(v.line_addr, 4);
    }

    #[test]
    fn mru_survives_invalidation_of_the_mru_way() {
        let mut c = small();
        c.fill(0, Mesi::Exclusive);
        c.fill(4, Mesi::Exclusive);
        c.lookup(4); // MRU points at 4's way
        c.invalidate(4);
        // Fast path misses on the stale MRU way; scan still finds 0.
        assert_eq!(c.lookup(0), Lookup::Hit(Mesi::Exclusive));
        assert_eq!(c.lookup(4), Lookup::Miss);
    }

    #[test]
    fn invalidate_all_empties_in_bulk() {
        let mut c = small();
        for addr in 0..8u64 {
            c.fill(addr, Mesi::Modified);
        }
        assert_eq!(c.valid_lines(), 8);
        c.invalidate_all();
        assert_eq!(c.valid_lines(), 0);
        for addr in 0..8u64 {
            assert_eq!(c.lookup(addr), Lookup::Miss);
            assert_eq!(c.probe(addr), Lookup::Miss);
            assert_eq!(c.presence(addr), 0);
        }
        // Refilling behaves like a fresh array: no phantom victims from the
        // old generation.
        assert_eq!(c.fill(0, Mesi::Exclusive), None);
        assert_eq!(c.fill(4, Mesi::Exclusive), None);
        assert_eq!(c.valid_lines(), 2);
        c.lookup(0);
        let v = c.fill(8, Mesi::Exclusive).expect("two live ways full");
        assert_eq!(v.line_addr, 4);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small();
        for addr in 0..4u64 {
            c.fill(addr, Mesi::Exclusive);
        }
        assert_eq!(c.valid_lines(), 4);
        for addr in 0..4u64 {
            assert!(matches!(c.probe(addr), Lookup::Hit(_)));
        }
    }
}
