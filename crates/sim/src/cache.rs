//! Set-associative cache arrays with MESI line states.
//!
//! [`CacheArray`] is the building block for every level: true LRU within a
//! set, per-line MESI state and an owner-defined 8-bit presence mask (the
//! L2 uses it as a directory of which L1s above it hold the line). Timing
//! and coherence policy live in [`crate::hier`]; this module is pure state.

/// MESI coherence states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    /// Modified: exclusive and dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly other copies, clean.
    Shared,
    /// Invalid.
    Invalid,
}

/// One cache line's metadata.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: Mesi,
    /// LRU stamp (bigger = more recent).
    lru: u64,
    /// Owner-defined presence mask (directory bits for inclusive L2s).
    presence: u8,
}

const EMPTY: Line = Line { tag: 0, state: Mesi::Invalid, lru: 0, presence: 0 };

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present with the given state.
    Hit(Mesi),
    /// Line absent.
    Miss,
}

/// A victim evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line address (address / line_size).
    pub line_addr: u64,
    /// Its state at eviction (Modified ⇒ write-back needed).
    pub state: Mesi,
    /// Its presence mask at eviction (inclusive caches must back-invalidate).
    pub presence: u8,
}

/// A set-associative array indexed by line address.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: u32,
    ways: u32,
    lines: Vec<Line>,
    stamp: u64,
}

impl CacheArray {
    /// Build an array with `sets` sets of `ways` ways.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0);
        CacheArray { sets, ways, lines: vec![EMPTY; (sets * ways) as usize], stamp: 0 }
    }

    /// Build from a [`crate::config::CacheConfig`].
    pub fn from_config(cfg: &crate::config::CacheConfig) -> Self {
        Self::new(cfg.sets(), cfg.ways)
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> u32 {
        // Mask in u64 first; the result then converts exactly.
        u32::try_from(line_addr & u64::from(self.sets - 1)).expect("masked to set index range")
    }

    #[inline]
    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let base = (set * self.ways) as usize;
        base..base + self.ways as usize
    }

    fn find(&self, line_addr: u64) -> Option<usize> {
        let set = self.set_of(line_addr);
        self.set_range(set)
            .find(|&i| self.lines[i].state != Mesi::Invalid && self.lines[i].tag == line_addr)
    }

    /// Look up a line, refreshing LRU on a hit.
    pub fn lookup(&mut self, line_addr: u64) -> Lookup {
        self.stamp += 1;
        match self.find(line_addr) {
            Some(i) => {
                self.lines[i].lru = self.stamp;
                Lookup::Hit(self.lines[i].state)
            }
            None => Lookup::Miss,
        }
    }

    /// Look up without touching LRU (snoops).
    pub fn probe(&self, line_addr: u64) -> Lookup {
        match self.find(line_addr) {
            Some(i) => Lookup::Hit(self.lines[i].state),
            None => Lookup::Miss,
        }
    }

    /// Change the state of a present line. No-op if absent.
    pub fn set_state(&mut self, line_addr: u64, state: Mesi) {
        if let Some(i) = self.find(line_addr) {
            self.lines[i].state = state;
        }
    }

    /// Invalidate a line; returns its pre-invalidation state (and presence)
    /// if it was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<(Mesi, u8)> {
        self.find(line_addr).map(|i| {
            let old = (self.lines[i].state, self.lines[i].presence);
            self.lines[i] = EMPTY;
            old
        })
    }

    /// Insert a line with the given state, evicting LRU if needed.
    pub fn fill(&mut self, line_addr: u64, state: Mesi) -> Option<Victim> {
        self.stamp += 1;
        if let Some(i) = self.find(line_addr) {
            self.lines[i].state = state;
            self.lines[i].lru = self.stamp;
            return None;
        }
        let set = self.set_of(line_addr);
        // Prefer an invalid way, else LRU.
        let mut victim_idx = None;
        let mut oldest = u64::MAX;
        for i in self.set_range(set) {
            if self.lines[i].state == Mesi::Invalid {
                victim_idx = Some(i);
                break;
            }
            if self.lines[i].lru < oldest {
                oldest = self.lines[i].lru;
                victim_idx = Some(i);
            }
        }
        let i = victim_idx.expect("ways > 0");
        let victim = if self.lines[i].state != Mesi::Invalid {
            Some(Victim {
                line_addr: self.lines[i].tag,
                state: self.lines[i].state,
                presence: self.lines[i].presence,
            })
        } else {
            None
        };
        self.lines[i] = Line { tag: line_addr, state, lru: self.stamp, presence: 0 };
        victim
    }

    /// Read the presence mask of a present line (0 if absent).
    pub fn presence(&self, line_addr: u64) -> u8 {
        self.find(line_addr).map(|i| self.lines[i].presence).unwrap_or(0)
    }

    /// Update the presence mask of a present line.
    pub fn set_presence(&mut self, line_addr: u64, mask: u8) {
        if let Some(i) = self.find(line_addr) {
            self.lines[i].presence = mask;
        }
    }

    /// Or bits into the presence mask.
    pub fn add_presence(&mut self, line_addr: u64, bits: u8) {
        if let Some(i) = self.find(line_addr) {
            self.lines[i].presence |= bits;
        }
    }

    /// Number of valid lines (tests / occupancy reporting).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.state != Mesi::Invalid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        CacheArray::new(4, 2)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(100), Lookup::Miss);
        assert_eq!(c.fill(100, Mesi::Exclusive), None);
        assert_eq!(c.lookup(100), Lookup::Hit(Mesi::Exclusive));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0, 4, 8 map to set 0 (4 sets). Two ways: filling three
        // evicts the least recently used.
        c.fill(0, Mesi::Exclusive);
        c.fill(4, Mesi::Exclusive);
        c.lookup(0); // refresh 0; 4 is now LRU
        let v = c.fill(8, Mesi::Exclusive).expect("eviction");
        assert_eq!(v.line_addr, 4);
        assert_eq!(c.probe(0), Lookup::Hit(Mesi::Exclusive));
        assert_eq!(c.probe(4), Lookup::Miss);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.fill(0, Mesi::Modified);
        c.fill(4, Mesi::Exclusive);
        c.lookup(4);
        c.lookup(4);
        // 0 is LRU.
        let v = c.fill(8, Mesi::Exclusive).unwrap();
        assert_eq!(v.state, Mesi::Modified);
        assert_eq!(v.line_addr, 0);
    }

    #[test]
    fn invalidate_returns_state() {
        let mut c = small();
        c.fill(3, Mesi::Modified);
        assert_eq!(c.invalidate(3), Some((Mesi::Modified, 0)));
        assert_eq!(c.invalidate(3), None);
        assert_eq!(c.probe(3), Lookup::Miss);
    }

    #[test]
    fn presence_mask_tracks_sharers() {
        let mut c = small();
        c.fill(7, Mesi::Shared);
        c.add_presence(7, 0b01);
        c.add_presence(7, 0b10);
        assert_eq!(c.presence(7), 0b11);
        c.set_presence(7, 0b10);
        assert_eq!(c.presence(7), 0b10);
        assert_eq!(c.presence(999), 0);
    }

    #[test]
    fn refill_same_line_updates_state_without_eviction() {
        let mut c = small();
        c.fill(5, Mesi::Shared);
        assert_eq!(c.fill(5, Mesi::Modified), None);
        assert_eq!(c.probe(5), Lookup::Hit(Mesi::Modified));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small();
        for addr in 0..4u64 {
            c.fill(addr, Mesi::Exclusive);
        }
        assert_eq!(c.valid_lines(), 4);
        for addr in 0..4u64 {
            assert!(matches!(c.probe(addr), Lookup::Hit(_)));
        }
    }
}
