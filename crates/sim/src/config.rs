//! Machine descriptions — the paper's Table 1 and Table 2.
//!
//! [`CoreArch`] captures the per-microarchitecture parameters (fetch/issue
//! width, misprediction penalty, predictor geometry, cache latencies,
//! instruction cracking, prefetcher behaviour); [`MachineConfig`] composes
//! cores, sockets, SMT, the L2 sharing topology, front-side bus and DRAM.
//! [`Platform`] enumerates the five configurations under test and builds
//! the corresponding `MachineConfig`s.

use crate::isa::CrackModel;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u32,
    /// Associativity (ways).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Access latency in CPU cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / (self.ways * self.line)
    }
}

/// Branch predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the pattern-history-table entries.
    pub table_bits: u32,
    /// Global history length in bits.
    pub history_bits: u32,
}

/// Hardware prefetcher knobs (the Pentium M "Smart Memory Access" model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Stride prefetcher enabled (fills L2 ahead of detected streams).
    pub stride: bool,
    /// Lines fetched ahead on a detected stream.
    pub depth: u32,
    /// Memory-disambiguation speculative reloads: one extra bus transaction
    /// per this many committed loads (0 = off). Models the paper's §5.4
    /// observation that Smart Memory Access *raises* Pentium M bus traffic.
    pub disambiguation_reload_per: u32,
}

impl PrefetchConfig {
    /// No prefetching (Netburst model — it had prefetchers, but the paper
    /// attributes the extra bus traffic specifically to Pentium M's).
    pub const OFF: PrefetchConfig =
        PrefetchConfig { stride: false, depth: 0, disambiguation_reload_per: 0 };
}

/// Per-microarchitecture parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreArch {
    /// Human-readable name.
    pub name: &'static str,
    /// Issue bandwidth in *hundredths of abstract ops per cycle* (e.g. 140 =
    /// 1.4 ops/cycle). Shared by SMT siblings on the same physical core.
    pub issue_width_x100: u32,
    /// Branch misprediction penalty in cycles (pipeline depth proxy:
    /// Pentium M ~12, Netburst ~30).
    pub mispredict_penalty: u32,
    /// Branch predictor geometry.
    pub predictor: PredictorConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache (the Netburst trace cache is approximated as a
    /// small L1I; see DESIGN.md).
    pub l1i: CacheConfig,
    /// Abstract-op → retired-instruction cracking.
    pub crack: CrackModel,
    /// Prefetcher behaviour.
    pub prefetch: PrefetchConfig,
    /// Store-buffer drain cost charged to the core per store (stores do not
    /// block on misses; the bus/cache state still updates).
    pub store_cost: u32,
}

/// How L2 caches map onto cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Topology {
    /// One L2 shared by every core in the machine (dual-core Pentium M).
    SharedAll,
    /// One private L2 per physical package (dual-socket Xeon).
    PerPackage,
}

/// A complete platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Configuration label (`1CPm`, `2LPx`, …).
    pub name: &'static str,
    /// Core microarchitecture.
    pub arch: CoreArch,
    /// Physical packages (sockets or dies).
    pub packages: u32,
    /// Physical cores per package.
    pub cores_per_package: u32,
    /// Logical CPUs (SMT threads) per core.
    pub threads_per_core: u32,
    /// CPU clock in MHz.
    pub cpu_mhz: u32,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// L2 sharing topology.
    pub l2_topology: L2Topology,
    /// Front-side bus clock in MHz (effective transfer rate).
    pub bus_mhz: u32,
    /// Bus width in bytes per bus cycle.
    pub bus_bytes_per_cycle: u32,
    /// DRAM access latency in nanoseconds.
    pub dram_ns: u32,
    /// SMT threads share the branch predictor table (Netburst HT).
    pub smt_shared_predictor: bool,
}

impl MachineConfig {
    /// Total logical CPUs.
    pub fn logical_cpus(&self) -> u32 {
        self.packages * self.cores_per_package * self.threads_per_core
    }

    /// Total physical cores.
    pub fn physical_cores(&self) -> u32 {
        self.packages * self.cores_per_package
    }

    /// The physical core index of a logical CPU.
    pub fn core_of(&self, cpu: u32) -> u32 {
        cpu / self.threads_per_core
    }

    /// The package index of a logical CPU.
    pub fn package_of(&self, cpu: u32) -> u32 {
        self.core_of(cpu) / self.cores_per_package
    }

    /// The L2 domain index of a logical CPU.
    pub fn l2_domain_of(&self, cpu: u32) -> u32 {
        match self.l2_topology {
            L2Topology::SharedAll => 0,
            L2Topology::PerPackage => self.package_of(cpu),
        }
    }

    /// Number of L2 domains.
    pub fn l2_domains(&self) -> u32 {
        match self.l2_topology {
            L2Topology::SharedAll => 1,
            L2Topology::PerPackage => self.packages,
        }
    }

    /// One bus cycle expressed in CPU cycles (rounded).
    pub fn bus_cycle_in_cpu_cycles(&self) -> u64 {
        ((self.cpu_mhz + self.bus_mhz / 2) / self.bus_mhz).max(1) as u64
    }

    /// DRAM latency in CPU cycles.
    pub fn dram_cycles(&self) -> u64 {
        (self.dram_ns as u64 * self.cpu_mhz as u64) / 1000
    }

    /// CPU cycles to move one cache line over the bus.
    pub fn bus_line_cycles(&self) -> u64 {
        let bus_cycles = (self.l2.line / self.bus_bytes_per_cycle).max(1) as u64;
        bus_cycles * self.bus_cycle_in_cpu_cycles()
    }

    /// Convert a cycle count on this machine to seconds.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        crate::convert::exact_f64(cycles) / (f64::from(self.cpu_mhz) * 1e6)
    }
}

/// The Pentium M (dual-core, "wide dynamic execution") core model.
pub fn pentium_m_arch() -> CoreArch {
    CoreArch {
        name: "PentiumM",
        issue_width_x100: 160,
        mispredict_penalty: 12,
        predictor: PredictorConfig { table_bits: 14, history_bits: 8 },
        l1d: CacheConfig { size: 32 << 10, ways: 8, line: 64, latency: 3 },
        l1i: CacheConfig { size: 32 << 10, ways: 8, line: 64, latency: 1 },
        crack: CrackModel::pentium_m(),
        prefetch: PrefetchConfig { stride: true, depth: 2, disambiguation_reload_per: 24 },
        store_cost: 1,
    }
}

/// The Xeon (Netburst, Hyperthreading) core model.
pub fn xeon_arch() -> CoreArch {
    CoreArch {
        name: "Xeon",
        issue_width_x100: 50,
        mispredict_penalty: 30,
        predictor: PredictorConfig { table_bits: 10, history_bits: 8 },
        l1d: CacheConfig { size: 16 << 10, ways: 8, line: 64, latency: 2 },
        // The 12k-uop trace cache approximated as a 16 KB L1I.
        l1i: CacheConfig { size: 16 << 10, ways: 8, line: 64, latency: 1 },
        crack: CrackModel::netburst(),
        prefetch: PrefetchConfig::OFF,
        store_cost: 1,
    }
}

/// The five configurations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Pentium M, one of two cores enabled (`maxcpus=1`).
    OneCorePentiumM,
    /// Pentium M, both cores (shared 2 MB L2).
    TwoCorePentiumM,
    /// Xeon, one physical CPU, Hyperthreading disabled.
    OneLogicalXeon,
    /// Xeon, one physical CPU, Hyperthreading enabled (2 logical CPUs).
    TwoLogicalXeon,
    /// Xeon, two physical CPUs, Hyperthreading disabled.
    TwoPhysicalXeon,
}

impl Platform {
    /// All five, in the paper's reporting order.
    pub const ALL: [Platform; 5] = [
        Platform::OneCorePentiumM,
        Platform::TwoCorePentiumM,
        Platform::OneLogicalXeon,
        Platform::TwoLogicalXeon,
        Platform::TwoPhysicalXeon,
    ];

    /// The paper's notation for this configuration.
    pub fn notation(&self) -> &'static str {
        match self {
            Platform::OneCorePentiumM => "1CPm",
            Platform::TwoCorePentiumM => "2CPm",
            Platform::OneLogicalXeon => "1LPx",
            Platform::TwoLogicalXeon => "2LPx",
            Platform::TwoPhysicalXeon => "2PPx",
        }
    }

    /// Build the machine description.
    pub fn config(&self) -> MachineConfig {
        match self {
            Platform::OneCorePentiumM | Platform::TwoCorePentiumM => {
                let cores = if *self == Platform::OneCorePentiumM { 1 } else { 2 };
                MachineConfig {
                    name: self.notation(),
                    arch: pentium_m_arch(),
                    packages: 1,
                    cores_per_package: cores,
                    threads_per_core: 1,
                    cpu_mhz: 1830,
                    l2: CacheConfig { size: 2 << 20, ways: 8, line: 64, latency: 14 },
                    l2_topology: L2Topology::SharedAll,
                    bus_mhz: 667,
                    bus_bytes_per_cycle: 8,
                    dram_ns: 60,
                    smt_shared_predictor: false,
                }
            }
            Platform::OneLogicalXeon | Platform::TwoLogicalXeon | Platform::TwoPhysicalXeon => {
                let (packages, threads) = match self {
                    Platform::OneLogicalXeon => (1, 1),
                    Platform::TwoLogicalXeon => (1, 2),
                    Platform::TwoPhysicalXeon => (2, 1),
                    _ => unreachable!(),
                };
                MachineConfig {
                    name: self.notation(),
                    arch: xeon_arch(),
                    packages,
                    cores_per_package: 1,
                    threads_per_core: threads,
                    cpu_mhz: 3160,
                    l2: CacheConfig { size: 1 << 20, ways: 8, line: 64, latency: 18 },
                    l2_topology: L2Topology::PerPackage,
                    bus_mhz: 667,
                    bus_bytes_per_cycle: 8,
                    dram_ns: 60,
                    smt_shared_predictor: true,
                }
            }
        }
    }

    /// Number of logical CPUs in this configuration.
    pub fn logical_cpus(&self) -> u32 {
        self.config().logical_cpus()
    }
}

impl core::fmt::Display for Platform {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_topologies() {
        assert_eq!(Platform::OneCorePentiumM.logical_cpus(), 1);
        assert_eq!(Platform::TwoCorePentiumM.logical_cpus(), 2);
        assert_eq!(Platform::OneLogicalXeon.logical_cpus(), 1);
        assert_eq!(Platform::TwoLogicalXeon.logical_cpus(), 2);
        assert_eq!(Platform::TwoPhysicalXeon.logical_cpus(), 2);
    }

    #[test]
    fn l2_domains_match_paper() {
        // 2CPm: both cores share one L2; 2PPx: private L2 each; 2LPx: both
        // logical CPUs share the single package's L2.
        let c = Platform::TwoCorePentiumM.config();
        assert_eq!(c.l2_domains(), 1);
        assert_eq!(c.l2_domain_of(0), c.l2_domain_of(1));

        let c = Platform::TwoPhysicalXeon.config();
        assert_eq!(c.l2_domains(), 2);
        assert_ne!(c.l2_domain_of(0), c.l2_domain_of(1));

        let c = Platform::TwoLogicalXeon.config();
        assert_eq!(c.l2_domains(), 1);
        assert_eq!(c.core_of(0), c.core_of(1));
    }

    #[test]
    fn table1_cache_sizes() {
        let pm = Platform::TwoCorePentiumM.config();
        assert_eq!(pm.l2.size, 2 << 20);
        assert_eq!(pm.arch.l1d.size, 32 << 10);
        let xe = Platform::TwoPhysicalXeon.config();
        assert_eq!(xe.l2.size, 1 << 20);
        assert_eq!(xe.arch.l1d.size, 16 << 10);
    }

    #[test]
    fn bus_and_dram_timing() {
        let pm = Platform::OneCorePentiumM.config();
        // 1830/667 ≈ 3 CPU cycles per bus cycle; 64B line = 8 bus cycles.
        assert_eq!(pm.bus_cycle_in_cpu_cycles(), 3);
        assert_eq!(pm.bus_line_cycles(), 24);
        // 60 ns at 1.83 GHz ≈ 109 cycles.
        assert_eq!(pm.dram_cycles(), 109);

        let xe = Platform::OneLogicalXeon.config();
        assert_eq!(xe.bus_cycle_in_cpu_cycles(), 5);
        // Same wall-clock DRAM is more CPU cycles at 3.16 GHz.
        assert!(xe.dram_cycles() > pm.dram_cycles());
    }

    #[test]
    fn cache_sets() {
        let c = CacheConfig { size: 32 << 10, ways: 8, line: 64, latency: 3 };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn notation_roundtrip() {
        for p in Platform::ALL {
            assert_eq!(p.config().name, p.notation());
        }
    }
}
