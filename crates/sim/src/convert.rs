//! Checked numeric conversions for counter and metric arithmetic.
//!
//! Derived metrics divide 64-bit event counts, so counters must reach
//! `f64` without silent precision loss. The conversions live in
//! [`aon_trace::num`] (the workspace's base crate) so every layer shares
//! one implementation; this module re-exports them under the simulator's
//! established path. Simulated runs stay far below the 2^53 exactness
//! bound (a 2^53-cycle run at the paper's 3.2 GHz clock would model a
//! month of wall time), so the bound is debug-asserted rather than
//! handled.

pub use aon_trace::num::{exact_f64, ratio};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_across_the_u32_boundary() {
        assert_eq!(exact_f64(u64::from(u32::MAX)), 4_294_967_295.0);
        assert_eq!(exact_f64(u64::from(u32::MAX) + 1), 4_294_967_296.0);
        // 10^15 cycles ≈ 4 simulated days at 3.2 GHz — far past any run.
        assert_eq!(exact_f64(1_000_000_000_000_000), 1e15);
    }

    #[test]
    fn ratio_is_zero_on_empty_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert!((ratio(1, 4) - 0.25).abs() < 1e-12);
    }
}
