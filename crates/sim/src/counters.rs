//! On-chip performance counters (the VTune event set of §3.3).
//!
//! One [`PerfCounters`] per logical CPU. Retired instructions accumulate in
//! milli-instruction units because per-architecture cracking is fractional
//! (see [`crate::isa`]); everything else is exact event counts.

use crate::convert::{exact_f64, ratio};

/// Event counters for one logical CPU.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounters {
    /// Wall cycles this logical CPU was enabled (idle included — VTune's
    /// whole-system clocktick sampling counts idle loops too, which is why
    /// the paper's CPI doubles when a second, idle unit is enabled).
    pub clockticks: u64,
    /// Retired instructions in milli-instructions.
    pub inst_retired_milli: u64,
    /// Abstract ops executed (pre-cracking; for debugging and mixes).
    pub abstract_ops: u64,
    /// Retired branch instructions (conditional + unconditional).
    pub branches_retired: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L1I (instruction fetch) misses.
    pub l1i_misses: u64,
    /// L2 misses attributed to this CPU.
    pub l2_misses: u64,
    /// Front-side-bus transactions attributed to this CPU.
    pub bus_txns: u64,
    /// Data loads executed.
    pub loads: u64,
    /// Data stores executed.
    pub stores: u64,
    /// Cycles spent with no thread scheduled.
    pub idle_cycles: u64,
    /// Cycles lost to misprediction flushes.
    pub flush_cycles: u64,
    /// Cycles stalled waiting on memory.
    pub mem_stall_cycles: u64,
}

impl PerfCounters {
    /// Retired instructions as a float.
    pub fn inst_retired(&self) -> f64 {
        exact_f64(self.inst_retired_milli) / 1000.0
    }

    /// Cycles per retired instruction. Milli-instruction units cancel:
    /// `ticks / (milli / 1000)` equals `ticks * 1000 / milli`.
    pub fn cpi(&self) -> f64 {
        ratio(self.clockticks, self.inst_retired_milli) * 1000.0
    }

    /// L2 misses per retired instruction, as a percentage (the paper's
    /// L2MPI axis).
    pub fn l2mpi_pct(&self) -> f64 {
        self.per_kilo_inst(self.l2_misses) / 10.0
    }

    /// Bus transactions per retired instruction, as a percentage (BTPI).
    pub fn btpi_pct(&self) -> f64 {
        self.per_kilo_inst(self.bus_txns) / 10.0
    }

    /// Branch instructions retired per instruction retired, as a percentage
    /// (Table 5's branch frequency).
    pub fn branch_freq_pct(&self) -> f64 {
        self.per_kilo_inst(self.branches_retired) / 10.0
    }

    /// Branch misprediction ratio: mispredicts per retired branch, as a
    /// percentage (BrMPR).
    pub fn brmpr_pct(&self) -> f64 {
        ratio(self.branch_mispredicts, self.branches_retired) * 100.0
    }

    /// Events per 1000 retired instructions: `count / (milli / 1000) * 1000`
    /// equals `count * 10^6 / milli`.
    fn per_kilo_inst(&self, count: u64) -> f64 {
        ratio(count, self.inst_retired_milli) * 1_000_000.0
    }

    /// Merge another counter block (aggregating across CPUs).
    pub fn merge(&mut self, o: &PerfCounters) {
        self.clockticks += o.clockticks;
        self.inst_retired_milli += o.inst_retired_milli;
        self.abstract_ops += o.abstract_ops;
        self.branches_retired += o.branches_retired;
        self.branch_mispredicts += o.branch_mispredicts;
        self.l1d_misses += o.l1d_misses;
        self.l1i_misses += o.l1i_misses;
        self.l2_misses += o.l2_misses;
        self.bus_txns += o.bus_txns;
        self.loads += o.loads;
        self.stores += o.stores;
        self.idle_cycles += o.idle_cycles;
        self.flush_cycles += o.flush_cycles;
        self.mem_stall_cycles += o.mem_stall_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = PerfCounters {
            clockticks: 2_000,
            inst_retired_milli: 1_000_000, // 1000 instructions
            branches_retired: 200,
            branch_mispredicts: 10,
            l2_misses: 5,
            bus_txns: 20,
            ..Default::default()
        };
        assert!((c.cpi() - 2.0).abs() < 1e-9);
        assert!((c.l2mpi_pct() - 0.5).abs() < 1e-9);
        assert!((c.btpi_pct() - 2.0).abs() < 1e-9);
        assert!((c.branch_freq_pct() - 20.0).abs() < 1e-9);
        assert!((c.brmpr_pct() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counters_are_zero_not_nan() {
        let c = PerfCounters::default();
        assert_eq!(c.cpi(), 0.0);
        assert_eq!(c.brmpr_pct(), 0.0);
        assert_eq!(c.l2mpi_pct(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = PerfCounters { clockticks: 10, branches_retired: 1, ..Default::default() };
        let b = PerfCounters { clockticks: 5, branches_retired: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.clockticks, 15);
        assert_eq!(a.branches_retired, 3);
    }
}
