//! The memory system: L1s, L2 domains, MESI coherence, FSB, DRAM, DMA.
//!
//! Topology follows [`MachineConfig`]:
//!
//! * one L1I + L1D per **physical core** (SMT siblings share them);
//! * one L2 per **domain** — a single shared L2 for the dual-core
//!   Pentium M ([`L2Topology::SharedAll`]), a private L2 per Xeon package
//!   ([`L2Topology::PerPackage`]);
//! * one front-side bus connecting all L2 domains, the DMA agent (NIC) and
//!   DRAM.
//!
//! Coherence is MESI at L2 granularity with bus snooping between domains;
//! within a domain the (inclusive) L2 keeps presence bits of which L1s
//! hold each line, so cross-core writes inside a shared-L2 package
//! invalidate the sibling's L1 without a bus transaction — while the same
//! producer/consumer pattern *between* packages turns into bus-crossing
//! cache-to-cache transfers. That asymmetry is exactly why the paper's
//! netperf-loopback throughput collapses on 2PPx but not on 2CPm (§4).

use crate::bus::BusyTimeline;
use crate::cache::{CacheArray, Lookup, Mesi, Victim};
use crate::config::{L2Topology, MachineConfig};
use crate::prefetch::StridePrefetcher;

/// Cache line size in bytes (all modelled platforms use 64).
pub const LINE: u64 = 64;
const LINE_SHIFT: u32 = 6;

/// Per-access outcome, consumed by the execution engine and the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemEvent {
    /// Cycles until the data is available to the requesting core.
    pub latency: u64,
    /// The access missed L1.
    pub l1_miss: bool,
    /// The access missed L2.
    pub l2_miss: bool,
    /// Front-side-bus transactions this access caused (miss fetches,
    /// write-backs, upgrades, cache-to-cache transfers, prefetches,
    /// disambiguation reloads).
    pub bus_txns: u32,
}

/// The complete memory system of one simulated machine.
#[derive(Debug)]
pub struct MemorySystem {
    cores: u32,
    l2_topology: L2Topology,
    cores_per_package: u32,

    /// Physical core of each logical CPU, precomputed: [`core_of`] and
    /// [`domain_of`] run on every memory access, and the straightforward
    /// `cpu / threads_per_core` costs an integer divide on that hot path.
    ///
    /// [`core_of`]: MemorySystem::core_of
    /// [`domain_of`]: MemorySystem::domain_of
    core_lut: Vec<u32>,
    /// L2 domain of each logical CPU, precomputed (see `core_lut`).
    domain_lut: Vec<u32>,

    l1d: Vec<CacheArray>,
    l1i: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    l2_port: Vec<BusyTimeline>,
    fsb: BusyTimeline,

    l1d_latency: u64,
    l1i_latency: u64,
    l2_latency: u64,
    dram_latency: u64,
    line_bus_cycles: u64,

    prefetchers: Vec<StridePrefetcher>,
    prefetch_depth: u32,
    disamb_period: u32,
    disamb_count: Vec<u32>,

    /// Bus transactions issued by the DMA agent (NIC).
    pub dma_bus_txns: u64,
}

impl MemorySystem {
    /// Build the memory system for a machine description.
    pub fn new(cfg: &MachineConfig) -> Self {
        let cores = cfg.physical_cores();
        let domains = cfg.l2_domains();
        MemorySystem {
            cores,
            l2_topology: cfg.l2_topology,
            cores_per_package: cfg.cores_per_package,
            core_lut: (0..cfg.logical_cpus()).map(|c| cfg.core_of(c)).collect(),
            domain_lut: (0..cfg.logical_cpus()).map(|c| cfg.l2_domain_of(c)).collect(),
            l1d: (0..cores).map(|_| CacheArray::from_config(&cfg.arch.l1d)).collect(),
            l1i: (0..cores).map(|_| CacheArray::from_config(&cfg.arch.l1i)).collect(),
            l2: (0..domains).map(|_| CacheArray::from_config(&cfg.l2)).collect(),
            l2_port: (0..domains).map(|_| BusyTimeline::new()).collect(),
            fsb: BusyTimeline::new(),
            l1d_latency: cfg.arch.l1d.latency as u64,
            l1i_latency: cfg.arch.l1i.latency as u64,
            l2_latency: cfg.l2.latency as u64,
            dram_latency: cfg.dram_cycles(),
            line_bus_cycles: cfg.bus_line_cycles(),
            prefetchers: (0..cfg.logical_cpus())
                .map(|_| StridePrefetcher::new(cfg.arch.prefetch.stride))
                .collect(),
            prefetch_depth: cfg.arch.prefetch.depth,
            disamb_period: cfg.arch.prefetch.disambiguation_reload_per,
            disamb_count: vec![0; cfg.logical_cpus() as usize],
            dma_bus_txns: 0,
        }
    }

    #[inline]
    fn core_of(&self, cpu: u32) -> u32 {
        self.core_lut[cpu as usize]
    }

    #[inline]
    fn domain_of(&self, cpu: u32) -> u32 {
        self.domain_lut[cpu as usize]
    }

    /// Which presence bit a core occupies within its L2 domain.
    #[inline]
    fn presence_bit(&self, core: usize) -> u8 {
        match self.l2_topology {
            L2Topology::SharedAll => 1u8 << core,
            L2Topology::PerPackage => 1u8 << (core % self.cores_per_package as usize),
        }
    }

    /// Invalidate every cache array in the hierarchy — a cold restart, as
    /// between repetitions of a perf-harness measurement. Costs O(1) per
    /// array (generation bump, see [`CacheArray::invalidate_all`]) rather
    /// than a walk over every line. Dirty lines are dropped without
    /// write-back: this models starting a fresh measurement, not a flush,
    /// so it must never be called inside a measured window.
    pub fn invalidate_all_caches(&mut self) {
        for c in &mut self.l1d {
            c.invalidate_all();
        }
        for c in &mut self.l1i {
            c.invalidate_all();
        }
        for c in &mut self.l2 {
            c.invalidate_all();
        }
    }

    /// FSB utilization over `elapsed` cycles.
    pub fn fsb_utilization(&self, elapsed: u64) -> f64 {
        self.fsb.utilization(elapsed)
    }

    /// Total busy cycles booked on the FSB.
    pub fn fsb_busy(&self) -> u64 {
        self.fsb.busy_total()
    }

    /// A data access by logical CPU `cpu` at byte address `addr`, width
    /// `size`, at local time `now`.
    ///
    /// Inlined head: a single-line access that hits L1 needing no coherence
    /// work (any read, or a write to a line already Modified) resolves with
    /// one MRU tag compare and no [`MemEvent`] merging. Everything else
    /// takes the outlined general path. The fast path touches exactly the
    /// state the general path would (the L1 lookup's LRU refresh and the
    /// disambiguation counter), so the two are observationally identical.
    #[inline]
    pub fn access_data(
        &mut self,
        cpu: u32,
        addr: u64,
        size: u32,
        write: bool,
        now: u64,
    ) -> MemEvent {
        let first = addr >> LINE_SHIFT;
        let last = (addr + size.max(1) as u64 - 1) >> LINE_SHIFT;
        if first == last {
            let core = self.core_lut[cpu as usize] as usize;
            if let Lookup::Hit(state) = self.l1d[core].lookup(first) {
                if !write {
                    let mut ev = MemEvent { latency: self.l1d_latency, ..Default::default() };
                    self.disamb_tick(cpu, now, &mut ev);
                    return ev;
                }
                if state == Mesi::Modified {
                    return MemEvent { latency: self.l1d_latency, ..Default::default() };
                }
                // Write hit in Exclusive/Shared: coherence work — fall
                // through. The general path re-looks-up the line; the extra
                // LRU-stamp bump is harmless because eviction decisions
                // depend only on the relative order of stamps, which a
                // double refresh of the same line preserves.
            }
        }
        self.access_data_general(cpu, first, last, write, now)
    }

    /// The general multi-line / miss / coherence path of
    /// [`MemorySystem::access_data`].
    fn access_data_general(
        &mut self,
        cpu: u32,
        first: u64,
        last: u64,
        write: bool,
        now: u64,
    ) -> MemEvent {
        let mut ev = MemEvent { latency: self.l1d_latency, ..Default::default() };
        for line in first..=last {
            let sub = self.access_line(cpu, line, write, now);
            ev.latency = ev.latency.max(sub.latency);
            ev.l1_miss |= sub.l1_miss;
            ev.l2_miss |= sub.l2_miss;
            ev.bus_txns += sub.bus_txns;
        }
        if !write {
            self.disamb_tick(cpu, now, &mut ev);
        }
        ev
    }

    /// Memory-disambiguation speculative reloads (Pentium M Smart Memory
    /// Access): periodic extra bus transactions on the load stream.
    #[inline]
    fn disamb_tick(&mut self, cpu: u32, now: u64, ev: &mut MemEvent) {
        if self.disamb_period > 0 {
            let c = &mut self.disamb_count[cpu as usize];
            *c += 1;
            if *c >= self.disamb_period {
                *c = 0;
                self.fsb.book(now, self.line_bus_cycles / 2);
                ev.bus_txns += 1;
            }
        }
    }

    fn access_line(&mut self, cpu: u32, line: u64, write: bool, now: u64) -> MemEvent {
        let core = self.core_of(cpu) as usize;
        let dom = self.domain_of(cpu) as usize;
        let mut ev = MemEvent { latency: self.l1d_latency, ..Default::default() };

        match self.l1d[core].lookup(line) {
            Lookup::Hit(state) => {
                if write {
                    match state {
                        Mesi::Modified => {}
                        Mesi::Exclusive => {
                            self.l1d[core].set_state(line, Mesi::Modified);
                            self.l2[dom].set_state(line, Mesi::Modified);
                        }
                        Mesi::Shared => {
                            // Upgrade: invalidate other copies — cross-
                            // package via the bus, and any sibling L1 copy
                            // inside this package via the snoop machinery.
                            ev.latency += self.upgrade(core, dom, line, now, &mut ev);
                            let pres = self.l2[dom].presence(line);
                            let my_bit = self.presence_bit(core);
                            if pres & !my_bit != 0 {
                                self.invalidate_l1s_in_domain(dom, line, pres & !my_bit);
                                self.l2[dom].add_presence(line, my_bit);
                                let (_, end) = self.l2_port[dom].book(now, 120);
                                ev.latency += end - now;
                            }
                            self.l1d[core].set_state(line, Mesi::Modified);
                            self.l2[dom].set_state(line, Mesi::Modified);
                        }
                        Mesi::Invalid => unreachable!("hit cannot be invalid"),
                    }
                }
            }
            Lookup::Miss => {
                ev.l1_miss = true;
                ev.latency += self.l2_and_below(cpu, core, dom, line, write, now, &mut ev);
                // Fill L1 and record presence in the (inclusive) L2.
                let l1_state = if write { Mesi::Modified } else { Mesi::Shared };
                if let Some(v) = self.l1d[core].fill(line, l1_state) {
                    self.l1_victim(core, dom, v);
                }
                let bit = self.presence_bit(core);
                self.l2[dom].add_presence(line, bit);
                // Train the stride prefetcher on L1 misses.
                if !write && self.prefetch_depth > 0 {
                    if let Some(stride) = self.prefetchers[cpu as usize].observe(line) {
                        self.prefetch(dom, line, stride, now, &mut ev);
                    }
                }
            }
        }
        ev
    }

    /// Handle an L1 victim: dirty data goes back to L2; presence bit clears.
    fn l1_victim(&mut self, core: usize, dom: usize, v: Victim) {
        let bit = self.presence_bit(core);
        let pres = self.l2[dom].presence(v.line_addr);
        self.l2[dom].set_presence(v.line_addr, pres & !bit);
        if v.state == Mesi::Modified {
            // Write-back into L2 (same-package, no bus traffic).
            self.l2[dom].set_state(v.line_addr, Mesi::Modified);
        }
    }

    /// L2 lookup and, on a miss, the bus/snoop/DRAM path. Returns latency
    /// beyond the L1 latency already charged.
    #[allow(clippy::too_many_arguments)]
    fn l2_and_below(
        &mut self,
        cpu: u32,
        core: usize,
        dom: usize,
        line: u64,
        write: bool,
        now: u64,
        ev: &mut MemEvent,
    ) -> u64 {
        // The L2 port is a shared resource inside the package: queueing
        // delay under contention is real (2CPm, 2LPx).
        let (start, _end) = self.l2_port[dom].book(now, 2);
        let queue = start - now;

        match self.l2[dom].lookup(line) {
            Lookup::Hit(state) => {
                let mut lat = queue + self.l2_latency;
                // A write to a Shared line needs a bus upgrade.
                if write && state == Mesi::Shared {
                    lat += self.upgrade(core, dom, line, now + lat, ev);
                    self.l2[dom].set_state(line, Mesi::Modified);
                } else if write {
                    self.l2[dom].set_state(line, Mesi::Modified);
                }
                // Cross-core steal within the domain: another L1 in this
                // package holds the line. Writes invalidate it; reads of a
                // Modified line need an intervention (the dirty data sits
                // in the sibling's L1, not in the L2 array). Either way the
                // in-package snoop round-trip is tens of cycles — the cost
                // behind the paper's 1CPm -> 2CPm loopback degradation.
                let pres = self.l2[dom].presence(line);
                let my_bit = self.presence_bit(core);
                if pres & !my_bit != 0 {
                    let transfer = if write {
                        self.invalidate_l1s_in_domain(dom, line, pres & !my_bit);
                        true
                    } else if state == Mesi::Modified {
                        self.downgrade_l1s_in_domain(dom, line);
                        true
                    } else {
                        false
                    };
                    if transfer {
                        // The snoop round-trip occupies the shared L2/snoop
                        // machinery for the whole transfer — under
                        // producer/consumer ping-pong both cores serialize
                        // on it (the paper's "resource related stalls ...
                        // L2 (for 2CPm)", §4).
                        let (_, end) = self.l2_port[dom].book(now + lat, 120);
                        lat = end - now;
                    }
                }
                lat
            }
            Lookup::Miss => {
                ev.l2_miss = true;
                // One bus transaction for the line fetch.
                let (bus_start, bus_end) =
                    self.fsb.book(now + queue + self.l2_latency, self.line_bus_cycles);
                ev.bus_txns += 1;
                let _ = bus_start;

                // Snoop the other L2 domains.
                let mut supplied_by_cache = false;
                let mut shared_elsewhere = false;
                for other in 0..self.l2.len() {
                    if other == dom {
                        continue;
                    }
                    match self.l2[other].probe(line) {
                        Lookup::Hit(Mesi::Modified) => {
                            // Cache-to-cache transfer + implicit write-back.
                            supplied_by_cache = true;
                            ev.bus_txns += 1;
                            self.fsb.book(bus_end, self.line_bus_cycles);
                            if write {
                                let (_, pres) =
                                    self.l2[other].invalidate(line).expect("probed hit");
                                self.invalidate_l1s_in_domain(other, line, pres);
                            } else {
                                self.l2[other].set_state(line, Mesi::Shared);
                                // Downgrade the owning L1s too.
                                self.downgrade_l1s_in_domain(other, line);
                                shared_elsewhere = true;
                            }
                        }
                        Lookup::Hit(_) => {
                            if write {
                                let (_, pres) =
                                    self.l2[other].invalidate(line).expect("probed hit");
                                self.invalidate_l1s_in_domain(other, line, pres);
                            } else {
                                self.l2[other].set_state(line, Mesi::Shared);
                                shared_elsewhere = true;
                            }
                        }
                        Lookup::Miss => {}
                    }
                }

                let transfer = if supplied_by_cache {
                    // Dirty-hit intervention: the owning cache writes back
                    // through the bus and the requester re-reads — slower
                    // than a straight DRAM fetch on an FSB system, which is
                    // why producer/consumer loopback collapses across
                    // packages (paper Figure 2, 2PPx).
                    (bus_end - now) + self.dram_latency + 4 * self.line_bus_cycles
                } else {
                    (bus_end - now) + self.dram_latency
                };

                // Fill L2.
                let state = if write {
                    Mesi::Modified
                } else if shared_elsewhere {
                    Mesi::Shared
                } else {
                    Mesi::Exclusive
                };
                if let Some(v) = self.l2[dom].fill(line, state) {
                    self.l2_victim(dom, v, bus_end, ev);
                }
                let _ = cpu;
                queue + self.l2_latency + transfer
            }
        }
    }

    /// A bus upgrade (invalidate other domains' copies). Returns extra
    /// latency.
    fn upgrade(&mut self, _core: usize, dom: usize, line: u64, now: u64, ev: &mut MemEvent) -> u64 {
        let mut other_had = false;
        for other in 0..self.l2.len() {
            if other == dom {
                continue;
            }
            if let Some((_, pres)) = self.l2[other].invalidate(line) {
                self.invalidate_l1s_in_domain(other, line, pres);
                other_had = true;
            }
        }
        if other_had || self.l2.len() > 1 {
            // Invalidation broadcast occupies the address bus briefly.
            let (_, end) = self.fsb.book(now, self.line_bus_cycles / 4);
            ev.bus_txns += 1;
            end - now // queueing included
        } else {
            0
        }
    }

    /// Invalidate a line from the L1s of a domain per presence mask.
    fn invalidate_l1s_in_domain(&mut self, dom: usize, line: u64, pres: u8) {
        for c in self.domain_cores(dom) {
            let bit = self.presence_bit(c);
            if pres & bit != 0 {
                self.l1d[c].invalidate(line);
            }
        }
        self.l2[dom].set_presence(line, 0);
    }

    /// Downgrade Modified L1 copies to Shared.
    fn downgrade_l1s_in_domain(&mut self, dom: usize, line: u64) {
        for c in self.domain_cores(dom) {
            self.l1d[c].set_state(line, Mesi::Shared);
        }
    }

    fn domain_cores(&self, dom: usize) -> std::ops::Range<usize> {
        match self.l2_topology {
            L2Topology::SharedAll => 0..self.cores as usize,
            L2Topology::PerPackage => {
                let per = self.cores_per_package as usize;
                dom * per..(dom + 1) * per
            }
        }
    }

    /// Handle an L2 victim: back-invalidate L1s (inclusion), write back if
    /// dirty.
    fn l2_victim(&mut self, dom: usize, v: Victim, now: u64, ev: &mut MemEvent) {
        if v.presence != 0 {
            self.invalidate_l1s_in_domain_victim(dom, v.line_addr, v.presence);
        }
        if v.state == Mesi::Modified {
            self.fsb.book(now, self.line_bus_cycles);
            ev.bus_txns += 1;
        }
    }

    fn invalidate_l1s_in_domain_victim(&mut self, dom: usize, line: u64, pres: u8) {
        for c in self.domain_cores(dom) {
            let bit = self.presence_bit(c);
            if pres & bit != 0 {
                self.l1d[c].invalidate(line);
            }
        }
    }

    /// Issue stride prefetches into L2 (latency hidden from the core; bus
    /// occupancy and transaction counts are real).
    fn prefetch(&mut self, dom: usize, line: u64, stride: i64, now: u64, ev: &mut MemEvent) {
        for k in 1..=self.prefetch_depth as i64 {
            let target = line as i64 + stride * k;
            if target < 0 {
                break;
            }
            let target = target as u64;
            if matches!(self.l2[dom].probe(target), Lookup::Miss) {
                self.fsb.book(now, self.line_bus_cycles);
                ev.bus_txns += 1;
                if let Some(v) = self.l2[dom].fill(target, Mesi::Exclusive) {
                    let mut scratch = MemEvent::default();
                    self.l2_victim(dom, v, now, &mut scratch);
                    ev.bus_txns += scratch.bus_txns;
                }
            }
        }
    }

    /// An instruction fetch by `cpu` at synthetic PC `pc`. Inlined head for
    /// the L1I-hit case (every branch/jump record pays this); the miss walk
    /// is outlined.
    #[inline]
    pub fn access_inst(&mut self, cpu: u32, pc: u64, now: u64) -> MemEvent {
        let core = self.core_lut[cpu as usize] as usize;
        let line = pc >> LINE_SHIFT;
        match self.l1i[core].lookup(line) {
            Lookup::Hit(_) => MemEvent { latency: self.l1i_latency, ..Default::default() },
            Lookup::Miss => self.access_inst_miss(cpu, core, line, now),
        }
    }

    fn access_inst_miss(&mut self, cpu: u32, core: usize, line: u64, now: u64) -> MemEvent {
        let dom = self.domain_of(cpu) as usize;
        let mut ev = MemEvent { latency: self.l1i_latency, l1_miss: true, ..Default::default() };
        ev.latency += self.l2_and_below(cpu, core, dom, line, false, now, &mut ev);
        self.l1i[core].fill(line, Mesi::Shared);
        ev
    }

    /// DMA write of `len` bytes at `addr` (NIC receive into memory):
    /// invalidates cached copies everywhere and occupies the bus. Returns
    /// the completion time.
    ///
    /// DMA bursts interleave with demand traffic on a real FSB (the memory
    /// controller arbitrates per transaction), so the timeline booking per
    /// line is a quarter of a demand fetch — the transaction *count* stays
    /// exact, only head-of-line blocking behind multi-kilobyte bursts is
    /// avoided.
    pub fn dma_write(&mut self, addr: u64, len: u32, now: u64) -> u64 {
        let first = addr >> LINE_SHIFT;
        let last = (addr + len.max(1) as u64 - 1) >> LINE_SHIFT;
        let mut t = now;
        for line in first..=last {
            for dom in 0..self.l2.len() {
                if let Some((_, pres)) = self.l2[dom].invalidate(line) {
                    self.invalidate_l1s_in_domain_victim(dom, line, pres);
                }
            }
            let (_, end) = self.fsb.book(t, (self.line_bus_cycles / 4).max(1));
            self.dma_bus_txns += 1;
            t = end;
        }
        t
    }

    /// DMA read of `len` bytes at `addr` (NIC transmit from memory): dirty
    /// cached lines are snooped out first. Returns the completion time.
    pub fn dma_read(&mut self, addr: u64, len: u32, now: u64) -> u64 {
        let first = addr >> LINE_SHIFT;
        let last = (addr + len.max(1) as u64 - 1) >> LINE_SHIFT;
        let mut t = now;
        for line in first..=last {
            for dom in 0..self.l2.len() {
                if matches!(self.l2[dom].probe(line), Lookup::Hit(Mesi::Modified)) {
                    // Implicit write-back before the DMA read.
                    self.l2[dom].set_state(line, Mesi::Shared);
                    self.downgrade_l1s_in_domain(dom, line);
                    let (_, end) = self.fsb.book(t, (self.line_bus_cycles / 4).max(1));
                    self.dma_bus_txns += 1;
                    t = end;
                }
            }
            let (_, end) = self.fsb.book(t, (self.line_bus_cycles / 4).max(1));
            self.dma_bus_txns += 1;
            t = end;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Platform;

    fn mem(p: Platform) -> MemorySystem {
        MemorySystem::new(&p.config())
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = mem(Platform::OneCorePentiumM);
        let first = m.access_data(0, 0x1000, 8, false, 0);
        assert!(first.l1_miss && first.l2_miss);
        assert!(first.bus_txns >= 1);
        let second = m.access_data(0, 0x1008, 8, false, 100);
        assert!(!second.l1_miss);
        assert_eq!(second.latency, 3); // PM L1 latency
        assert_eq!(second.bus_txns, 0);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let mut m = mem(Platform::OneCorePentiumM);
        m.access_data(0, 0x2000, 8, false, 0);
        // Evict from L1 by touching many conflicting lines (L1 32KB/8w/64B:
        // 64 sets; lines 0x2000>>6=0x80 + k*64 alias into set 0).
        for k in 1..=9u64 {
            m.access_data(0, 0x2000 + k * 64 * 64, 8, false, 1000 + k * 200);
        }
        let again = m.access_data(0, 0x2000, 8, false, 100_000);
        assert!(again.l1_miss, "must have been evicted from tiny set");
        assert!(!again.l2_miss, "L2 (2MB) still holds it");
        assert!(again.latency < 40, "L2 hit latency, got {}", again.latency);
    }

    #[test]
    fn streaming_misses_in_both_levels() {
        let mut m = mem(Platform::OneLogicalXeon);
        let mut misses = 0;
        for i in 0..1000u64 {
            let ev = m.access_data(0, 0x10_0000 + i * 64, 8, false, i * 300);
            if ev.l2_miss {
                misses += 1;
            }
        }
        assert_eq!(misses, 1000, "streaming never reuses lines");
    }

    #[test]
    fn cross_package_write_sharing_ping_pongs() {
        // 2PPx: cpu0 and cpu1 in different packages; alternating writes to
        // the same line must generate continuous bus traffic.
        let mut m = mem(Platform::TwoPhysicalXeon);
        let mut txns = 0;
        let mut t = 0;
        for i in 0..100 {
            let cpu = i % 2;
            let ev = m.access_data(cpu, 0x5000, 8, true, t);
            txns += ev.bus_txns;
            t += 500;
        }
        assert!(txns > 90, "cross-package ping-pong must stay on the bus: {txns}");
    }

    #[test]
    fn same_package_write_sharing_stays_off_bus() {
        // 2CPm: both cores share the L2; after the first fetch the line
        // ping-pongs through L2, not the bus.
        let mut m = mem(Platform::TwoCorePentiumM);
        let mut txns = 0;
        let mut t = 0;
        for i in 0..100 {
            let cpu = i % 2;
            let ev = m.access_data(cpu, 0x5000, 8, true, t);
            txns += ev.bus_txns;
            t += 500;
        }
        assert!(txns <= 4, "shared-L2 ping-pong must stay in-package: {txns}");
    }

    #[test]
    fn read_sharing_is_cheap_everywhere() {
        let mut m = mem(Platform::TwoPhysicalXeon);
        m.access_data(0, 0x9000, 8, false, 0);
        m.access_data(1, 0x9000, 8, false, 1000);
        // Steady-state reads hit local caches.
        let a = m.access_data(0, 0x9000, 8, false, 2000);
        let b = m.access_data(1, 0x9000, 8, false, 2000);
        assert!(!a.l1_miss && !b.l1_miss);
        assert_eq!(a.bus_txns + b.bus_txns, 0);
    }

    #[test]
    fn prefetcher_generates_bus_traffic_and_hides_latency() {
        let mut m = mem(Platform::OneCorePentiumM); // prefetch on
        let mut total_txns = 0;
        let mut t = 0;
        // Sequential stream: after training, L2 misses turn into L2 hits.
        let mut l2_misses = 0;
        for i in 0..200u64 {
            let ev = m.access_data(0, 0x40_0000 + i * 64, 8, false, t);
            total_txns += ev.bus_txns;
            if ev.l2_miss {
                l2_misses += 1;
            }
            t += 400;
        }
        assert!(l2_misses < 150, "prefetcher should convert some L2 misses: {l2_misses}");
        assert!(total_txns >= 200, "prefetches still ride the bus: {total_txns}");
    }

    #[test]
    fn xeon_has_no_prefetch_traffic() {
        let mut m = mem(Platform::OneLogicalXeon);
        let mut t = 0;
        let mut txns = 0;
        for i in 0..100u64 {
            let ev = m.access_data(0, 0x40_0000 + i * 64, 8, false, t);
            txns += ev.bus_txns;
            t += 400;
        }
        // Exactly one transaction per streaming miss, nothing extra.
        assert_eq!(txns, 100);
    }

    #[test]
    fn dma_write_invalidates_caches() {
        let mut m = mem(Platform::OneCorePentiumM);
        m.access_data(0, 0x7000, 8, false, 0);
        let before = m.dma_bus_txns;
        m.dma_write(0x7000, 64, 1000);
        assert!(m.dma_bus_txns > before);
        let ev = m.access_data(0, 0x7000, 8, false, 5000);
        assert!(ev.l1_miss && ev.l2_miss, "DMA write must invalidate cached copies");
    }

    #[test]
    fn invalidate_all_caches_restores_cold_misses() {
        let mut m = mem(Platform::TwoCorePentiumM);
        m.access_data(0, 0x3000, 8, false, 0);
        m.access_inst(1, 0x40_0000, 0);
        assert!(!m.access_data(0, 0x3000, 8, false, 1000).l1_miss);
        m.invalidate_all_caches();
        let d = m.access_data(0, 0x3000, 8, false, 2000);
        assert!(d.l1_miss && d.l2_miss, "bulk invalidation must cold-start data caches");
        let i = m.access_inst(1, 0x40_0000, 3000);
        assert!(i.l1_miss, "bulk invalidation must cold-start instruction caches");
    }

    #[test]
    fn icache_hits_after_first_fetch() {
        let mut m = mem(Platform::OneLogicalXeon);
        let a = m.access_inst(0, 0x40_0000, 0);
        assert!(a.l1_miss);
        let b = m.access_inst(0, 0x40_0004, 100);
        assert!(!b.l1_miss);
        assert_eq!(b.latency, 1);
    }

    #[test]
    fn smt_siblings_share_l1() {
        let mut m = mem(Platform::TwoLogicalXeon);
        m.access_data(0, 0x8000, 8, false, 0);
        let ev = m.access_data(1, 0x8000, 8, false, 1000);
        assert!(!ev.l1_miss, "HT siblings share the L1D");
    }

    #[test]
    fn dirty_l2_eviction_writes_back() {
        let mut m = mem(Platform::OneLogicalXeon); // 1MB L2, 8 ways, 2048 sets
                                                   // Write a line, then stream enough conflicting lines through the
                                                   // same L2 set to evict it; the eviction must cost a write-back txn.
        m.access_data(0, 0, 8, true, 0);
        let set_stride = 2048u64 * 64; // lines that alias into set 0
        let mut txns = 0;
        for k in 1..=9u64 {
            let ev = m.access_data(0, k * set_stride, 8, false, k * 2000);
            txns += ev.bus_txns;
        }
        assert!(txns > 9, "one fetch each plus at least one write-back: {txns}");
    }
}
