//! Structural invariants over performance counters.
//!
//! The simulator's whole output is a handful of counter-derived numbers,
//! so a silently inconsistent counter block corrupts every reproduced
//! table downstream. This module states what a well-formed
//! [`PerfCounters`] block must satisfy and what "the counters only move
//! forward" means, so both `debug_assert!`s inside the machine and the
//! report pipeline (`aon-core`) can check the same predicate.
//!
//! The invariants, for any counter block the machine exposes:
//!
//! * **Hierarchy** — an L2 miss implies an L1 miss on the same access, so
//!   `l2_misses ≤ l1d_misses + l1i_misses`; likewise every bus
//!   transaction originates at the L2/bus layer.
//! * **Retirement** — mispredicted branches are a subset of retired
//!   branches; loads, stores, and branches are each a subset of the
//!   abstract ops that produced them; a core cannot retire more
//!   instructions than its issue bandwidth admits over the elapsed
//!   cycles.
//! * **Accounting** — idle/flush/stall cycle accounts never exceed the
//!   elapsed clockticks individually.
//! * **Derived metrics** — every metric the report prints (CPI, L2MPI,
//!   BTPI, branch frequency, BrMPR) is finite and non-negative.
//!
//! Monotonicity across time is checked with [`CounterSnapshot`]: counters
//! are event counts, so between two observations no field may decrease
//! (except across an explicit [`crate::machine::Machine::reset_counters`]).

use crate::counters::PerfCounters;

/// A violated invariant, described for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed (short name).
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Check one counter block.
///
/// `issue_width_x100` is the core's issue bandwidth in hundredths of
/// ops/cycle (from [`crate::config::CoreArch::issue_width_x100`]) and
/// `window` is the CPU's *true* counter-accrual span in cycles — from the
/// counter reset to wherever the CPU's clock actually stopped, which can
/// run past the measurement deadline (`clockticks` is clamped to the
/// deadline, so it under-states the span the events accrued over). Pass
/// `None` for either to skip the time-dependent bounds, e.g. for blocks
/// aggregated across CPUs where no single pipeline's span applies.
pub fn check_counters(
    c: &PerfCounters,
    issue_width_x100: Option<u32>,
    window: Option<u64>,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut require = |ok: bool, invariant: &'static str, detail: String| {
        if !ok {
            v.push(Violation { invariant, detail });
        }
    };

    require(
        c.l2_misses <= c.l1d_misses + c.l1i_misses,
        "cache-hierarchy",
        format!(
            "l2_misses ({}) exceeds l1d_misses + l1i_misses ({} + {})",
            c.l2_misses, c.l1d_misses, c.l1i_misses
        ),
    );
    require(
        c.branch_mispredicts <= c.branches_retired,
        "branch-retirement",
        format!(
            "branch_mispredicts ({}) exceeds branches_retired ({})",
            c.branch_mispredicts, c.branches_retired
        ),
    );
    for (name, count) in
        [("loads", c.loads), ("stores", c.stores), ("branches_retired", c.branches_retired)]
    {
        require(
            count <= c.abstract_ops,
            "op-accounting",
            format!("{name} ({count}) exceeds abstract_ops ({})", c.abstract_ops),
        );
    }
    if let (Some(width), Some(window)) = (issue_width_x100, window) {
        // ops ≤ window × width/100, in integers: ops × 100 ≤ window × width.
        // An op is booked on the issue timeline before it executes, so even
        // a batch that overshoots the deadline stays within the true span.
        require(
            c.abstract_ops.saturating_mul(100) <= window.saturating_mul(u64::from(width)),
            "issue-bandwidth",
            format!(
                "abstract_ops ({}) exceeds issue bandwidth over a {window}-cycle window \
                 at {width}/100 ops/cycle",
                c.abstract_ops
            ),
        );
    }
    if let Some(window) = window {
        for (name, cycles) in [
            ("idle_cycles", c.idle_cycles),
            ("flush_cycles", c.flush_cycles),
            ("mem_stall_cycles", c.mem_stall_cycles),
        ] {
            require(
                cycles <= window,
                "cycle-accounting",
                format!("{name} ({cycles}) exceeds the {window}-cycle window"),
            );
        }
    }
    for (name, value) in [
        ("cpi", c.cpi()),
        ("l2mpi_pct", c.l2mpi_pct()),
        ("btpi_pct", c.btpi_pct()),
        ("branch_freq_pct", c.branch_freq_pct()),
        ("brmpr_pct", c.brmpr_pct()),
        ("inst_retired", c.inst_retired()),
    ] {
        require(
            value.is_finite() && value >= 0.0,
            "derived-metrics",
            format!("{name} is {value}, expected finite and non-negative"),
        );
    }
    v
}

/// A point-in-time copy of one CPU's counters, for monotonicity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    counters: PerfCounters,
}

impl CounterSnapshot {
    /// Capture the current counter values.
    pub fn capture(c: &PerfCounters) -> Self {
        CounterSnapshot { counters: *c }
    }

    /// Check that `now` has not moved backward relative to this snapshot
    /// in any field. Event counters only ever accumulate, so a decrease
    /// means double-booked state or a missed reset.
    pub fn check_monotonic(&self, now: &PerfCounters) -> Vec<Violation> {
        let then = &self.counters;
        let fields: [(&'static str, u64, u64); 14] = [
            ("clockticks", then.clockticks, now.clockticks),
            ("inst_retired_milli", then.inst_retired_milli, now.inst_retired_milli),
            ("abstract_ops", then.abstract_ops, now.abstract_ops),
            ("branches_retired", then.branches_retired, now.branches_retired),
            ("branch_mispredicts", then.branch_mispredicts, now.branch_mispredicts),
            ("l1d_misses", then.l1d_misses, now.l1d_misses),
            ("l1i_misses", then.l1i_misses, now.l1i_misses),
            ("l2_misses", then.l2_misses, now.l2_misses),
            ("bus_txns", then.bus_txns, now.bus_txns),
            ("loads", then.loads, now.loads),
            ("stores", then.stores, now.stores),
            ("idle_cycles", then.idle_cycles, now.idle_cycles),
            ("flush_cycles", then.flush_cycles, now.flush_cycles),
            ("mem_stall_cycles", then.mem_stall_cycles, now.mem_stall_cycles),
        ];
        fields
            .into_iter()
            .filter(|(_, before, after)| after < before)
            .map(|(name, before, after)| Violation {
                invariant: "monotonicity",
                detail: format!("{name} moved backward: {before} -> {after}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> PerfCounters {
        PerfCounters {
            clockticks: 10_000,
            inst_retired_milli: 5_000_000, // 5000 instructions
            abstract_ops: 4_000,
            branches_retired: 800,
            branch_mispredicts: 40,
            l1d_misses: 120,
            l1i_misses: 15,
            l2_misses: 60,
            bus_txns: 90,
            loads: 1_500,
            stores: 700,
            idle_cycles: 2_000,
            flush_cycles: 300,
            mem_stall_cycles: 1_000,
        }
    }

    #[test]
    fn sane_counters_pass() {
        assert!(check_counters(&sane(), Some(160), Some(10_000)).is_empty());
        assert!(check_counters(&PerfCounters::default(), Some(160), Some(0)).is_empty());
    }

    #[test]
    fn l2_exceeding_l1_is_flagged() {
        let mut c = sane();
        c.l2_misses = c.l1d_misses + c.l1i_misses + 1;
        let v = check_counters(&c, None, None);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "cache-hierarchy");
    }

    #[test]
    fn mispredicts_exceeding_branches_is_flagged() {
        let mut c = sane();
        c.branch_mispredicts = c.branches_retired + 1;
        assert!(check_counters(&c, None, None).iter().any(|v| v.invariant == "branch-retirement"));
    }

    #[test]
    fn issue_bandwidth_bound_needs_width_and_window() {
        let mut c = sane();
        c.abstract_ops = 20_000; // needs 200/100 ops/cycle over a 10k window
        assert!(check_counters(&c, Some(160), Some(10_000))
            .iter()
            .any(|v| v.invariant == "issue-bandwidth"));
        assert!(check_counters(&c, Some(160), None).is_empty(), "no window, no bound");
        assert!(check_counters(&c, None, Some(10_000)).is_empty(), "no width, no bound");
        assert!(
            check_counters(&c, Some(160), Some(20_000)).is_empty(),
            "a wider true window admits the same ops"
        );
    }

    #[test]
    fn cycle_accounts_cannot_exceed_clockticks() {
        let mut c = sane();
        c.idle_cycles = 10_001;
        assert!(check_counters(&c, None, Some(10_000))
            .iter()
            .any(|v| v.invariant == "cycle-accounting"));
        assert!(check_counters(&c, None, None).is_empty(), "no window, no bound");
    }

    #[test]
    fn snapshot_detects_backward_motion() {
        let a = sane();
        let snap = CounterSnapshot::capture(&a);
        assert!(snap.check_monotonic(&a).is_empty());
        let mut b = a;
        b.loads += 10;
        b.clockticks += 500;
        assert!(snap.check_monotonic(&b).is_empty());
        b.l2_misses -= 1;
        let v = snap.check_monotonic(&b);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("l2_misses"));
    }

    #[test]
    fn violations_render_with_context() {
        let mut c = sane();
        c.branch_mispredicts = c.branches_retired + 5;
        let v = check_counters(&c, None, None);
        let text = v[0].to_string();
        assert!(text.contains("branch-retirement"));
        assert!(text.contains("805"));
    }
}
