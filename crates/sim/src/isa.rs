//! Per-architecture instruction cracking.
//!
//! The workload traces are architecture-neutral abstract ops; real machines
//! retire different instruction counts for the same source code. The paper's
//! Table 5 shows the consequence: Pentium M retires branch instructions at
//! ~2x the *fraction* Xeon does (27–36 % vs. 15–19 %) for identical
//! binaries, because Netburst cracks x86 operations into more uops (which
//! its counters report as instructions retired) while branches stay 1:1.
//!
//! [`CrackModel`] holds per-class expansion factors in hundredths; the
//! counters accumulate retired instructions in milli-instruction units so
//! integer arithmetic stays exact and deterministic.

use aon_trace::op::OpClass;

/// Retired-instruction expansion per abstract op class, in hundredths
/// (100 = one retired instruction per abstract op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrackModel {
    /// ALU expansion.
    pub alu_x100: u32,
    /// Load expansion.
    pub load_x100: u32,
    /// Store expansion.
    pub store_x100: u32,
    /// Conditional branch expansion.
    pub branch_x100: u32,
    /// Unconditional transfer expansion.
    pub jump_x100: u32,
}

impl CrackModel {
    /// Pentium M: close to 1:1 for this op mix (its "wide dynamic
    /// execution" fuses rather than cracks).
    pub fn pentium_m() -> CrackModel {
        CrackModel {
            alu_x100: 100,
            load_x100: 100,
            store_x100: 100,
            branch_x100: 100,
            jump_x100: 100,
        }
    }

    /// Netburst: loads/stores crack into address-generation + access uops,
    /// ALU ops average ~1.6 uops; branches stay single instructions.
    pub fn netburst() -> CrackModel {
        CrackModel {
            alu_x100: 160,
            load_x100: 200,
            store_x100: 300,
            branch_x100: 100,
            jump_x100: 100,
        }
    }

    /// Expansion factor for an op class (hundredths).
    pub fn factor_x100(&self, class: OpClass) -> u32 {
        match class {
            OpClass::Alu => self.alu_x100,
            OpClass::Load => self.load_x100,
            OpClass::Store => self.store_x100,
            OpClass::Branch => self.branch_x100,
            OpClass::Jump => self.jump_x100,
        }
    }

    /// Retired milli-instructions for `n` abstract ops of `class`.
    pub fn retired_milli(&self, class: OpClass, n: u64) -> u64 {
        n * self.factor_x100(class) as u64 * 10
    }

    /// The branch fraction this model yields for a given abstract mix
    /// (branches / total retired). Used by calibration tests against
    /// Table 5.
    pub fn branch_fraction(&self, alu: u64, load: u64, store: u64, branch: u64, jump: u64) -> f64 {
        let total = self.retired_milli(OpClass::Alu, alu)
            + self.retired_milli(OpClass::Load, load)
            + self.retired_milli(OpClass::Store, store)
            + self.retired_milli(OpClass::Branch, branch)
            + self.retired_milli(OpClass::Jump, jump);
        if total == 0 {
            return 0.0;
        }
        crate::convert::ratio(
            self.retired_milli(OpClass::Branch, branch) + self.retired_milli(OpClass::Jump, jump),
            total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_is_identity() {
        let c = CrackModel::pentium_m();
        assert_eq!(c.retired_milli(OpClass::Load, 10), 10_000);
        assert_eq!(c.retired_milli(OpClass::Branch, 7), 7_000);
    }

    #[test]
    fn netburst_expands_memory_ops() {
        let c = CrackModel::netburst();
        assert_eq!(c.retired_milli(OpClass::Load, 10), 20_000);
        assert_eq!(c.retired_milli(OpClass::Store, 10), 30_000);
        assert_eq!(c.retired_milli(OpClass::Branch, 10), 10_000);
    }

    #[test]
    fn branch_fraction_halves_on_netburst() {
        // A representative XML-parsing mix: 35% alu, 25% load, 10% store,
        // 28% branch, 2% jump.
        let (a, l, s, b, j) = (35, 25, 10, 28, 2);
        let pm = CrackModel::pentium_m().branch_fraction(a, l, s, b, j);
        let xe = CrackModel::netburst().branch_fraction(a, l, s, b, j);
        // Table 5: PM 27-28%, Xeon ~15%.
        assert!(pm > 0.26 && pm < 0.33, "pm fraction {pm}");
        assert!(xe > 0.13 && xe < 0.20, "xeon fraction {xe}");
        assert!(pm / xe > 1.6 && pm / xe < 2.4, "ratio {}", pm / xe);
    }
}
