//! # aon-sim — cycle-approximate dual-processor simulator
//!
//! The paper measures five hardware configurations (Table 2) of two Intel
//! platforms (Table 1) with on-chip performance counters. This crate is the
//! substitute for that hardware: a timeline-reservation simulator detailed
//! enough that every effect the paper explains — shared-L2 contention, SMT
//! resource sharing and predictor aliasing, MESI ping-pong over the
//! front-side bus, streaming vs. cache-resident working sets, pipeline-depth
//! misprediction costs — arises from simulated structure rather than from
//! fudge factors.
//!
//! ## Model overview
//!
//! * **Logical CPUs** execute abstract-op traces ([`aon_trace::Trace`])
//!   recorded from real workload code. Per-architecture *cracking*
//!   ([`isa`]) converts abstract ops into retired-instruction counts, which
//!   is how Pentium M and Xeon report different instruction totals (and
//!   hence branch fractions, Table 5) for identical source code.
//! * **Shared resources are bandwidth timelines** ([`bus`]): issue slots of
//!   a physical core (shared by SMT siblings), the shared-L2 port, and the
//!   front-side bus. Contention is emergent — concurrent consumers book
//!   slots on the same timeline and are pushed later in time.
//! * **The cache hierarchy** ([`cache`], [`hier`]) implements per-core L1s,
//!   per-domain L2s (shared by the two Pentium M cores; private per Xeon
//!   package), MESI coherence with bus snooping and cache-to-cache
//!   transfers, dirty write-backs, and hardware prefetch ([`prefetch`]).
//! * **Branch prediction** ([`branch`]) is a gshare predictor per physical
//!   core; SMT siblings share the table (cross-thread aliasing is the
//!   paper's §5.5 observation 3) while keeping private history registers.
//! * **Workloads** ([`thread`]) are schedulable threads that alternate
//!   compute segments (trace replays with per-iteration buffer bindings)
//!   and blocking synchronization ([`sync`]) on byte channels — enough to
//!   express netperf's producer/consumer pairs and the XML server's
//!   accept/process/respond loop.
//! * **Performance counters** ([`counters`]) accumulate clockticks,
//!   instructions retired, L2 misses, bus transactions, branches and
//!   mispredictions per logical CPU — the exact event set the paper reads
//!   via VTune (§3.3).

pub mod branch;
pub mod bus;
pub mod cache;
pub mod config;
pub mod convert;
pub mod counters;
pub mod hier;
pub mod invariants;
pub mod isa;
pub mod machine;
pub mod prefetch;
pub mod stats;
pub mod sync;
pub mod thread;

pub use config::{CacheConfig, CoreArch, MachineConfig, Platform};
pub use counters::PerfCounters;
pub use machine::{Machine, RunOutcome};
pub use stats::MachineStats;
pub use sync::ChannelId;
pub use thread::{Step, ThreadId, Workload, WorkloadCtx};
