//! The machine: composition and execution engine.
//!
//! A [`Machine`] owns the logical CPUs, the shared-resource timelines, the
//! memory system, the channels and the workload threads, and advances
//! simulated time with a *min-time-first* stepping loop: the runnable
//! logical CPU with the smallest local clock executes a small batch of
//! abstract ops (or one synchronization action), booking shared resources
//! as it goes. Because bookings are made in (approximately) nondecreasing
//! time order, FIFO timelines model contention faithfully.
//!
//! Scheduling mimics a 2.6-era Linux SMP kernel at the fidelity the paper
//! needs: sticky affinity (a thread prefers its previous CPU), idle CPUs
//! take any ready thread, blocking costs a syscall-ish overhead, and
//! wakeups carry a latency.

use crate::branch::Gshare;
use crate::bus::SlotTimeline;
use crate::config::MachineConfig;
use crate::counters::PerfCounters;
use crate::hier::MemorySystem;
use crate::invariants::{self, Violation};
use crate::sync::{ChannelConfig, ChannelId, Msg, SimChannel};
use crate::thread::{Step, ThreadId, Workload, WorkloadCtx};
use aon_trace::code::site_pc;
use aon_trace::op::Op;
use aon_trace::op::OpClass;
use aon_trace::trace::{Binding, Trace};
use std::sync::Arc;

/// Maximum op records executed per scheduling quantum of the stepping loop.
const BATCH: usize = 128;

/// Maximum cycles a CPU's local clock may advance within one quantum.
/// Shared-resource timelines assume bookings arrive in roughly
/// nondecreasing time order across CPUs; bounding per-quantum skew keeps
/// that true (otherwise a CPU that races ahead pushes the resource's
/// `next_free` into the future and the lagging CPU pays the divergence as
/// phantom queueing — a positive feedback loop).
const SKEW_LIMIT: u64 = 120;

/// Cycles charged for a channel operation (syscall + queue manipulation).
const SYNC_COST: u64 = 300;
/// Cycles between a wake event and the woken thread being runnable.
const WAKE_LATENCY: u64 = 800;
/// Cycles charged when a CPU switches to a different thread.
const CTX_SWITCH: u64 = 1_500;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Runnable, from the given time.
    Ready(u64),
    /// Executing on a CPU.
    Running(u32),
    /// Blocked sending into a full channel.
    BlockedSend(ChannelId),
    /// Blocked receiving from an empty channel.
    BlockedRecv(ChannelId),
    /// Sleeping until an absolute time.
    Waiting(u64),
    /// Finished.
    Done,
}

/// A retried-on-wake channel operation.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Send(ChannelId, Msg),
    Recv(ChannelId),
}

struct ExecState {
    trace: Arc<Trace>,
    binding: Binding,
    pos: usize,
    /// Cycles spent executing this trace so far (profiling).
    accum: u64,
}

struct ThreadState {
    workload: Box<dyn Workload>,
    status: Status,
    mailbox: Option<Msg>,
    pending: Option<Pending>,
    exec: Option<ExecState>,
    affinity: u32,
}

#[derive(Debug, Clone, Copy)]
struct CpuState {
    time: u64,
    thread: Option<u32>,
    last_thread: Option<u32>,
    idle_since: u64,
}

/// The order a scheduler selection loop visits `0..n` in.
///
/// The hot path (no scan permutation requested) iterates the natural range
/// without allocating; the permuted variant exists only so stress tests can
/// prove scan-order independence. Selection loops run on every scheduling
/// quantum — millions of times per experiment cell — so this being
/// allocation-free is a measured, load-bearing property.
enum ScanOrder {
    /// Natural `0..n` order (allocation-free).
    Natural(std::ops::Range<usize>),
    /// A Fisher–Yates shuffle of `0..n` (tests only).
    Permuted(std::vec::IntoIter<usize>),
}

impl Iterator for ScanOrder {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            ScanOrder::Natural(r) => r.next(),
            ScanOrder::Permuted(it) => it.next(),
        }
    }
}

/// Result of a [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Simulated end time in cycles.
    pub end_time: u64,
    /// Work units completed (as reported by workloads).
    pub completed_units: u64,
    /// Payload bytes completed.
    pub completed_bytes: u64,
    /// True if the run ended with threads blocked and nothing runnable.
    pub deadlocked: bool,
}

/// A complete simulated machine.
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    issue: Vec<SlotTimeline>,
    predictors: Vec<Gshare>,
    counters: Vec<PerfCounters>,
    cpus: Vec<CpuState>,
    threads: Vec<ThreadState>,
    channels: Vec<SimChannel>,
    completed_units: u64,
    completed_bytes: u64,
    measure_start: u64,
    end_time: u64,
    /// Per-CPU clock value at the last counter reset: the origin of each
    /// CPU's counter-accrual window (a lagging CPU's window starts behind
    /// `measure_start`, and its events accrue from there).
    window_start: Vec<u64>,
    /// When set, scheduler selection loops scan threads/CPUs in an order
    /// permuted by this seed (see [`Machine::set_scan_permutation`]). The
    /// selections themselves are (key, index)-lexicographic minima, so the
    /// outcome must not depend on this — it exists so tests can prove that.
    scan_seed: Option<u64>,
    /// When set, trace replay uses the straight-line scalar interpreter
    /// instead of the batched fast path (see
    /// [`Machine::set_reference_replay`]). Both must produce byte-identical
    /// counters; the knob exists so tests can prove it.
    reference_replay: bool,
    /// VTune-style sampling picture: cycles attributed per trace label
    /// (§3.3 — "sampling based VTune profiling to get a global picture of
    /// processor utilization for both system and application level
    /// activities").
    profile: std::collections::HashMap<String, u64>,
}

impl Machine {
    /// Build an empty machine for a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let cores = cfg.physical_cores();
        let cpus = cfg.logical_cpus();
        Machine {
            mem: MemorySystem::new(&cfg),
            issue: (0..cores).map(|_| SlotTimeline::new(cfg.arch.issue_width_x100)).collect(),
            predictors: (0..cores)
                .map(|_| {
                    Gshare::with_sharing(
                        cfg.arch.predictor,
                        cfg.smt_shared_predictor && cfg.threads_per_core > 1,
                    )
                })
                .collect(),
            counters: vec![PerfCounters::default(); cpus as usize],
            cpus: (0..cpus)
                .map(|_| CpuState { time: 0, thread: None, last_thread: None, idle_since: 0 })
                .collect(),
            threads: Vec::new(),
            channels: Vec::new(),
            completed_units: 0,
            completed_bytes: 0,
            measure_start: 0,
            end_time: 0,
            window_start: vec![0; cpus as usize],
            scan_seed: None,
            reference_replay: false,
            profile: std::collections::HashMap::new(),
            cfg,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Permute the order in which scheduler selection loops scan threads
    /// and CPUs, seeded deterministically.
    ///
    /// Every scheduling decision (which thread to place, which CPU to give
    /// it, which blocked thread a channel wakes) is defined as a
    /// (key, index)-lexicographic minimum, so it is independent of the
    /// order candidates are examined in. This knob shuffles that
    /// examination order so a stress test can assert the independence
    /// actually holds: any seed must produce byte-identical counters.
    pub fn set_scan_permutation(&mut self, seed: u64) {
        self.scan_seed = Some(seed);
    }

    /// Replay traces with the straight-line scalar interpreter instead of
    /// the batched fast path.
    ///
    /// The batched path hoists per-core resources out of the op loop and
    /// accrues counter deltas locally, merging once per quantum; the scalar
    /// path indexes everything through `self` per op. They are defined to
    /// be observationally identical — byte-identical [`PerfCounters`],
    /// timing, and profile — and the equivalence suite flips this knob to
    /// prove it. Production runs leave it off.
    pub fn set_reference_replay(&mut self, on: bool) {
        self.reference_replay = on;
    }

    /// The order in which a selection loop visits `0..n`: natural order
    /// (allocation-free), or a Fisher–Yates shuffle of it driven by the
    /// scan seed. The permutation is a pure function of `(seed, n)` —
    /// determinism of the simulation itself is never at stake, only the
    /// scan order.
    fn scan_order(&self, n: usize) -> ScanOrder {
        let Some(seed) = self.scan_seed else {
            return ScanOrder::Natural(0..n);
        };
        let mut idx: Vec<usize> = (0..n).collect();
        let mut s = seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            // SplitMix64 step.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j =
                usize::try_from(next() % (i as u64 + 1)).expect("shuffle index bounded by i < n");
            idx.swap(i, j);
        }
        ScanOrder::Permuted(idx.into_iter())
    }

    /// Create a channel.
    pub fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        let id = ChannelId(u32::try_from(self.channels.len()).expect("channel count fits u32"));
        self.channels.push(SimChannel::new(cfg));
        id
    }

    /// Read-only access to a channel.
    pub fn channel(&self, id: ChannelId) -> &SimChannel {
        &self.channels[id.0 as usize]
    }

    /// Spawn a workload thread (runnable at time 0, affine to a CPU chosen
    /// round-robin).
    pub fn spawn(&mut self, workload: Box<dyn Workload>) -> ThreadId {
        let id = ThreadId(u32::try_from(self.threads.len()).expect("thread count fits u32"));
        let affinity = id.0 % self.cfg.logical_cpus();
        self.threads.push(ThreadState {
            workload,
            status: Status::Ready(0),
            mailbox: None,
            pending: None,
            exec: None,
            affinity,
        });
        id
    }

    /// Per-CPU counters.
    pub fn counters(&self) -> &[PerfCounters] {
        &self.counters
    }

    /// Aggregate counters across all logical CPUs, including DMA bus
    /// transactions (system-level traffic shows up in whole-system VTune
    /// sampling too).
    pub fn counters_total(&self) -> PerfCounters {
        let mut total = PerfCounters::default();
        for c in &self.counters {
            total.merge(c);
        }
        total.bus_txns += self.mem.dma_bus_txns;
        total
    }

    /// Check every counter block against the structural invariants in
    /// [`crate::invariants`]: each per-CPU block with its core's issue
    /// bandwidth and true accrual window, plus the cross-CPU aggregate.
    /// Returns every violation found (empty means consistent); the report
    /// pipeline calls this before emitting tables, and debug builds assert
    /// it after every run.
    pub fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let width = self.cfg.arch.issue_width_x100;
        for (i, c) in self.counters.iter().enumerate() {
            // The window runs from this CPU's clock at the counter reset to
            // wherever its clock stopped — or to the run's end time if it
            // sat idle while the rest of the machine advanced.
            let end = self.end_time.max(self.cpus[i].time);
            let window = end.saturating_sub(self.window_start[i].min(self.measure_start));
            for v in invariants::check_counters(c, Some(width), Some(window)) {
                out.push(Violation {
                    invariant: v.invariant,
                    detail: format!("cpu{i}: {}", v.detail),
                });
            }
        }
        for v in invariants::check_counters(&self.counters_total(), None, None) {
            out.push(Violation {
                invariant: v.invariant,
                detail: format!("aggregate: {}", v.detail),
            });
        }
        out
    }

    /// Direct access to the memory system (the network substrate uses it
    /// for DMA).
    pub fn mem(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Cycles attributed per trace label — the sampling-profiler view of
    /// where processor time went (kernel TCP paths vs. XML processing vs.
    /// connection overhead), keyed by the labels workload code gave its
    /// traces.
    pub fn profile(&self) -> &std::collections::HashMap<String, u64> {
        &self.profile
    }

    /// Zero the counters and restart measurement from the current time
    /// (call after a warm-up run).
    pub fn reset_counters(&mut self) {
        let now = self.cpus.iter().map(|c| c.time).max().unwrap_or(0);
        self.measure_start = now;
        for (i, c) in self.counters.iter_mut().enumerate() {
            *c = PerfCounters::default();
            self.window_start[i] = self.cpus[i].time;
        }
        self.completed_units = 0;
        self.completed_bytes = 0;
        self.mem.dma_bus_txns = 0;
        self.profile.clear();
    }

    /// Run until every CPU's clock passes `deadline` (or nothing is left to
    /// run).
    pub fn run(&mut self, deadline: u64) -> RunOutcome {
        #[cfg(debug_assertions)]
        let snapshots: Vec<invariants::CounterSnapshot> =
            self.counters.iter().map(invariants::CounterSnapshot::capture).collect();
        let mut deadlocked = false;
        loop {
            // Promote timed waiters whose wake time the execution frontier
            // (the earliest busy CPU) has reached — they must be able to
            // run on idle CPUs even while other CPUs stay busy.
            let frontier = self.cpus.iter().filter(|c| c.thread.is_some()).map(|c| c.time).min();
            if let Some(f) = frontier {
                for t in &mut self.threads {
                    if let Status::Waiting(at) = t.status {
                        if at <= f {
                            t.status = Status::Ready(at);
                        }
                    }
                }
            }
            self.assign_ready_threads();
            // Busy CPU with the least (time, index) — scan-order-free.
            let mut pick: Option<(u64, usize)> = None;
            for i in self.scan_order(self.cpus.len()) {
                let c = &self.cpus[i];
                if c.thread.is_some() && pick.is_none_or(|p| (c.time, i) < p) {
                    pick = Some((c.time, i));
                }
            }
            let active = pick.map(|(_, i)| i);

            match active {
                Some(cpu) => {
                    if self.cpus[cpu].time >= deadline {
                        break;
                    }
                    self.step_cpu(u32::try_from(cpu).expect("cpu index fits u32"));
                }
                None => {
                    // Nothing on a CPU. Timed waiters can advance the clock.
                    let next_wake = self
                        .threads
                        .iter()
                        .filter_map(|t| match t.status {
                            Status::Waiting(at) => Some(at),
                            Status::Ready(at) => Some(at),
                            _ => None,
                        })
                        .min();
                    match next_wake {
                        Some(at) if at < deadline => {
                            for t in &mut self.threads {
                                if t.status == Status::Waiting(at) {
                                    t.status = Status::Ready(at);
                                }
                            }
                            // Ready threads are assigned on the next pass.
                            let any_ready =
                                self.threads.iter().any(|t| matches!(t.status, Status::Ready(_)));
                            if !any_ready {
                                deadlocked = true;
                                break;
                            }
                        }
                        Some(_) => break,
                        None => {
                            deadlocked =
                                self.threads.iter().any(|t| !matches!(t.status, Status::Done));
                            break;
                        }
                    }
                }
            }
        }
        self.finalize(deadline);
        #[cfg(debug_assertions)]
        {
            for (i, snap) in snapshots.iter().enumerate() {
                let v = snap.check_monotonic(&self.counters[i]);
                debug_assert!(v.is_empty(), "cpu{i} counters moved backward across run: {v:?}");
            }
            let violations = self.validate();
            debug_assert!(violations.is_empty(), "counter invariants violated: {violations:?}");
        }
        RunOutcome {
            end_time: self.end_time,
            completed_units: self.completed_units,
            completed_bytes: self.completed_bytes,
            deadlocked,
        }
    }

    fn finalize(&mut self, deadline: u64) {
        let max_time = self.cpus.iter().map(|c| c.time).max().unwrap_or(0).max(self.measure_start);
        let end = max_time.min(deadline.max(self.measure_start));
        self.end_time = end.max(self.measure_start);
        let elapsed = self.end_time - self.measure_start;
        for (i, cpu) in self.cpus.iter_mut().enumerate() {
            self.counters[i].clockticks = elapsed;
            if cpu.thread.is_none() && self.end_time > cpu.idle_since.max(self.measure_start) {
                self.counters[i].idle_cycles +=
                    self.end_time - cpu.idle_since.max(self.measure_start);
            }
        }
    }

    /// Give every idle CPU a ready thread (affinity first, then earliest
    /// ready time).
    fn assign_ready_threads(&mut self) {
        loop {
            // Ready thread with the least (ready time, id) — scan-order-free.
            let mut best: Option<(u64, usize)> = None;
            for i in self.scan_order(self.threads.len()) {
                if let Status::Ready(at) = self.threads[i].status {
                    if best.is_none_or(|b| (at, i) < b) {
                        best = Some((at, i));
                    }
                }
            }
            let Some((ready_at, tid)) = best else { return };

            // Prefer the thread's previous CPU if idle, else the idle CPU
            // with the least (idle-since time, index).
            let affinity = self.threads[tid].affinity as usize;
            let cpu = if self.cpus[affinity].thread.is_none() {
                Some(affinity)
            } else {
                let mut pick: Option<(u64, usize)> = None;
                for i in self.scan_order(self.cpus.len()) {
                    let c = &self.cpus[i];
                    if c.thread.is_none() && pick.is_none_or(|p| (c.time, i) < p) {
                        pick = Some((c.time, i));
                    }
                }
                pick.map(|(_, i)| i)
            };
            let Some(cpu) = cpu else { return };
            let tid32 = u32::try_from(tid).expect("thread index fits u32");
            let cpu32 = u32::try_from(cpu).expect("cpu index fits u32");

            let c = &mut self.cpus[cpu];
            let start = c.time.max(ready_at);
            if c.thread.is_none() && start > c.idle_since {
                self.counters[cpu].idle_cycles += start - c.idle_since;
            }
            let switch_cost = if c.last_thread == Some(tid32) { 0 } else { CTX_SWITCH };
            c.time = start + switch_cost;
            c.thread = Some(tid32);
            c.last_thread = Some(tid32);
            self.threads[tid].status = Status::Running(cpu32);
            self.threads[tid].affinity = cpu32;
        }
    }

    /// Remove the thread from its CPU.
    fn deschedule(&mut self, cpu: u32) {
        let c = &mut self.cpus[cpu as usize];
        c.thread = None;
        c.idle_since = c.time;
    }

    /// Wake the lowest-id thread blocked receiving on `chan`.
    fn wake_recv_waiter(&mut self, chan: ChannelId, now: u64) {
        self.wake_waiter(Status::BlockedRecv(chan), now);
    }

    /// Wake the lowest-id thread blocked sending on `chan`.
    fn wake_send_waiter(&mut self, chan: ChannelId, now: u64) {
        self.wake_waiter(Status::BlockedSend(chan), now);
    }

    /// Wake the lowest-id thread whose status matches — the minimum over
    /// ids, not the first hit, so the choice survives scan permutation.
    fn wake_waiter(&mut self, blocked: Status, now: u64) {
        let mut pick: Option<usize> = None;
        for i in self.scan_order(self.threads.len()) {
            if self.threads[i].status == blocked && pick.is_none_or(|p| i < p) {
                pick = Some(i);
            }
        }
        if let Some(i) = pick {
            self.threads[i].status = Status::Ready(now + WAKE_LATENCY);
        }
    }

    fn step_cpu(&mut self, cpu: u32) {
        let tid = self.cpus[cpu as usize].thread.expect("step_cpu on busy cpu") as usize;

        // 1. Continue an in-flight trace replay.
        if let Some(mut exec) = self.threads[tid].exec.take() {
            let finished = if self.reference_replay {
                self.exec_ops_scalar(cpu, &mut exec)
            } else {
                self.exec_ops_batched(cpu, &mut exec)
            };
            if finished {
                // Traces complete millions of times per cell; only a label
                // the profile has never seen pays for a String clone.
                if let Some(v) = self.profile.get_mut(&exec.trace.label) {
                    *v += exec.accum;
                } else {
                    self.profile.insert(exec.trace.label.clone(), exec.accum);
                }
            } else {
                self.threads[tid].exec = Some(exec);
            }
            return;
        }

        // 2. Retry a pending channel op.
        if let Some(pending) = self.threads[tid].pending.take() {
            match pending {
                Pending::Send(chan, msg) => self.do_send(cpu, tid, chan, msg),
                Pending::Recv(chan) => self.do_recv(cpu, tid, chan),
            }
            return;
        }

        // 3. Ask the workload for its next step.
        let mut ctx = WorkloadCtx {
            now: self.cpus[cpu as usize].time,
            last_recv: self.threads[tid].mailbox.take(),
            thread: ThreadId(u32::try_from(tid).expect("thread index fits u32")),
            complete_units: 0,
            complete_bytes: 0,
        };
        let step = self.threads[tid].workload.next(&mut ctx);
        self.completed_units += ctx.complete_units as u64;
        self.completed_bytes += ctx.complete_bytes;

        match step {
            Step::Run { trace, binding } => {
                if !trace.is_empty() {
                    self.threads[tid].exec = Some(ExecState { trace, binding, pos: 0, accum: 0 });
                }
            }
            Step::Send { chan, msg } => self.do_send(cpu, tid, chan, msg),
            Step::Recv { chan } => self.do_recv(cpu, tid, chan),
            Step::WaitUntil(at) => {
                let now = self.cpus[cpu as usize].time;
                if at > now {
                    self.threads[tid].status = Status::Waiting(at);
                    self.deschedule(cpu);
                }
            }
            Step::Dma { write, addr, len } => {
                let now = self.cpus[cpu as usize].time;
                if write {
                    self.mem.dma_write(addr.0, len, now);
                } else {
                    self.mem.dma_read(addr.0, len, now);
                }
                // Descriptor setup / doorbell; the transfer is asynchronous.
                self.cpus[cpu as usize].time += 200;
            }
            Step::Done => {
                self.threads[tid].status = Status::Done;
                self.deschedule(cpu);
            }
        }
    }

    fn do_send(&mut self, cpu: u32, tid: usize, chan: ChannelId, msg: Msg) {
        self.cpus[cpu as usize].time += SYNC_COST;
        let now = self.cpus[cpu as usize].time;
        if self.channels[chan.0 as usize].try_send(msg, now) {
            self.wake_recv_waiter(chan, now);
        } else {
            // Full: block. Draining channels give a timed retry.
            let eta = self.channels[chan.0 as usize].drain_eta(msg.bytes, now);
            self.threads[tid].pending = Some(Pending::Send(chan, msg));
            self.threads[tid].status = match eta {
                Some(at) => Status::Waiting(at.max(now + 1)),
                None => Status::BlockedSend(chan),
            };
            self.deschedule(cpu);
        }
    }

    fn do_recv(&mut self, cpu: u32, tid: usize, chan: ChannelId) {
        self.cpus[cpu as usize].time += SYNC_COST;
        let now = self.cpus[cpu as usize].time;
        match self.channels[chan.0 as usize].try_recv(now) {
            Some(m) => {
                self.threads[tid].mailbox = Some(m);
                self.wake_send_waiter(chan, now);
            }
            None => {
                // Channels with an external source give a timed retry.
                let eta = self.channels[chan.0 as usize].fill_eta(now);
                self.threads[tid].pending = Some(Pending::Recv(chan));
                self.threads[tid].status = match eta {
                    Some(at) => Status::Waiting(at.max(now + 1)),
                    None => Status::BlockedRecv(chan),
                };
                self.deschedule(cpu);
            }
        }
    }

    /// Execute up to [`BATCH`] op records, straight-line reference
    /// interpreter: every resource is re-indexed through `self` per op.
    /// Returns true when the trace is done. Kept verbatim as the semantic
    /// definition the batched path is checked against.
    fn exec_ops_scalar(&mut self, cpu: u32, exec: &mut ExecState) -> bool {
        let core = self.cfg.core_of(cpu) as usize;
        let sibling = (cpu % self.cfg.threads_per_core) as usize;
        let crack = self.cfg.arch.crack;
        let penalty = self.cfg.arch.mispredict_penalty as u64;
        let store_cost = self.cfg.arch.store_cost as u64;
        let l1d_lat = self.cfg.arch.l1d.latency as u64;

        let mut t = self.cpus[cpu as usize].time;
        let batch_start = t;
        let end_pos = (exec.pos + BATCH).min(exec.trace.len());
        let ops = exec.trace.ops();
        let mut executed = 0usize;

        for op in &ops[exec.pos..end_pos] {
            if t.saturating_sub(batch_start) > SKEW_LIMIT {
                break;
            }
            executed += 1;
            let ctr = &mut self.counters[cpu as usize];
            match *op {
                Op::Alu(n) => {
                    t = self.issue[core].book(t, n as u32);
                    ctr.inst_retired_milli += crack.retired_milli(OpClass::Alu, n as u64);
                    ctr.abstract_ops += n as u64;
                }
                Op::Load { addr, size } => {
                    t = self.issue[core].book(t, 1);
                    let a = exec.binding.resolve(addr);
                    let ev = self.mem.access_data(cpu, a.0, size as u32, false, t);
                    let ctr = &mut self.counters[cpu as usize];
                    if ev.l1_miss {
                        let stall = ev.latency.saturating_sub(l1d_lat);
                        t += ev.latency;
                        ctr.mem_stall_cycles += stall;
                        ctr.l1d_misses += 1;
                    }
                    if ev.l2_miss {
                        ctr.l2_misses += 1;
                    }
                    ctr.bus_txns += ev.bus_txns as u64;
                    ctr.loads += 1;
                    ctr.inst_retired_milli += crack.retired_milli(OpClass::Load, 1);
                    ctr.abstract_ops += 1;
                }
                Op::Store { addr, size } => {
                    t = self.issue[core].book(t, 1);
                    let a = exec.binding.resolve(addr);
                    let ev = self.mem.access_data(cpu, a.0, size as u32, true, t);
                    let ctr = &mut self.counters[cpu as usize];
                    // Stores retire through the store buffer: the core pays
                    // a small fixed cost, plus backpressure when the buffer
                    // drains slowly (a quarter of the miss latency models
                    // the queue filling under streaming writes).
                    t += store_cost;
                    if ev.l1_miss {
                        ctr.l1d_misses += 1;
                        let bp = ev.latency / 4;
                        t += bp;
                        ctr.mem_stall_cycles += bp;
                    }
                    if ev.l2_miss {
                        ctr.l2_misses += 1;
                    }
                    ctr.bus_txns += ev.bus_txns as u64;
                    ctr.stores += 1;
                    ctr.inst_retired_milli += crack.retired_milli(OpClass::Store, 1);
                    ctr.abstract_ops += 1;
                }
                Op::Branch { site, taken } => {
                    t = self.issue[core].book(t, 1);
                    let pc = site_pc(site);
                    let iev = self.mem.access_inst(cpu, pc.0, t);
                    let correct = self.predictors[core].update(pc.0, sibling, taken);
                    let ctr = &mut self.counters[cpu as usize];
                    if iev.l1_miss {
                        t += iev.latency;
                        ctr.l1i_misses += 1;
                    }
                    if iev.l2_miss {
                        ctr.l2_misses += 1;
                    }
                    ctr.bus_txns += iev.bus_txns as u64;
                    ctr.branches_retired += 1;
                    if !correct {
                        ctr.branch_mispredicts += 1;
                        ctr.flush_cycles += penalty;
                        t += penalty;
                    }
                    ctr.inst_retired_milli += crack.retired_milli(OpClass::Branch, 1);
                    ctr.abstract_ops += 1;
                }
                Op::Jump { site } => {
                    t = self.issue[core].book(t, 1);
                    let pc = site_pc(site);
                    let iev = self.mem.access_inst(cpu, pc.0, t);
                    let ctr = &mut self.counters[cpu as usize];
                    if iev.l1_miss {
                        t += iev.latency;
                        ctr.l1i_misses += 1;
                    }
                    if iev.l2_miss {
                        ctr.l2_misses += 1;
                    }
                    ctr.bus_txns += iev.bus_txns as u64;
                    ctr.branches_retired += 1;
                    ctr.inst_retired_milli += crack.retired_milli(OpClass::Jump, 1);
                    ctr.abstract_ops += 1;
                }
            }
        }
        exec.accum += t - self.cpus[cpu as usize].time;
        self.cpus[cpu as usize].time = t;
        exec.pos += executed;
        exec.pos == exec.trace.len()
    }

    /// Execute up to [`BATCH`] op records — the production fast path.
    ///
    /// Observationally identical to [`Machine::exec_ops_scalar`] (the
    /// equivalence suite proves byte-identical counters), but structured
    /// for throughput: the core's issue timeline and predictor are hoisted
    /// out of the op loop, and counter deltas accrue in a stack-local
    /// [`PerfCounters`] merged once per quantum instead of re-indexing
    /// `self.counters[cpu]` per op. The delta's `clockticks`/`idle_cycles`
    /// stay zero, so the purely additive merge is exact.
    fn exec_ops_batched(&mut self, cpu: u32, exec: &mut ExecState) -> bool {
        let Machine { cfg, mem, issue, predictors, counters, cpus, .. } = self;
        let core = cfg.core_of(cpu) as usize;
        let sibling = (cpu % cfg.threads_per_core) as usize;
        let crack = cfg.arch.crack;
        let penalty = cfg.arch.mispredict_penalty as u64;
        let store_cost = cfg.arch.store_cost as u64;
        let l1d_lat = cfg.arch.l1d.latency as u64;
        let issue = &mut issue[core];
        let pred = &mut predictors[core];

        let mut t = cpus[cpu as usize].time;
        let batch_start = t;
        let end_pos = (exec.pos + BATCH).min(exec.trace.len());
        let ops = exec.trace.ops();
        let mut executed = 0usize;
        let mut d = PerfCounters::default();

        for op in &ops[exec.pos..end_pos] {
            if t.saturating_sub(batch_start) > SKEW_LIMIT {
                break;
            }
            executed += 1;
            match *op {
                Op::Alu(n) => {
                    // A run-length-compressed ALU run retires in one
                    // timeline booking and one counter update, however long
                    // the run is.
                    t = issue.book(t, n as u32);
                    d.inst_retired_milli += crack.retired_milli(OpClass::Alu, n as u64);
                    d.abstract_ops += n as u64;
                }
                Op::Load { addr, size } => {
                    t = issue.book(t, 1);
                    let a = exec.binding.resolve(addr);
                    let ev = mem.access_data(cpu, a.0, size as u32, false, t);
                    // Branchless accounting: the hit/miss flags become 0/1
                    // multipliers so the mixed hit/miss pattern of a real
                    // trace costs no data-dependent host branches. On a hit
                    // every multiplied term is exactly zero, matching the
                    // scalar path's skipped additions.
                    let miss = ev.l1_miss as u64;
                    t += ev.latency * miss;
                    d.mem_stall_cycles += ev.latency.saturating_sub(l1d_lat) * miss;
                    d.l1d_misses += miss;
                    d.l2_misses += ev.l2_miss as u64;
                    d.bus_txns += ev.bus_txns as u64;
                    d.loads += 1;
                    d.inst_retired_milli += crack.retired_milli(OpClass::Load, 1);
                    d.abstract_ops += 1;
                }
                Op::Store { addr, size } => {
                    t = issue.book(t, 1);
                    let a = exec.binding.resolve(addr);
                    let ev = mem.access_data(cpu, a.0, size as u32, true, t);
                    // Stores retire through the store buffer: the core pays
                    // a small fixed cost, plus backpressure when the buffer
                    // drains slowly (a quarter of the miss latency models
                    // the queue filling under streaming writes).
                    t += store_cost;
                    let miss = ev.l1_miss as u64;
                    let bp = (ev.latency / 4) * miss;
                    t += bp;
                    d.mem_stall_cycles += bp;
                    d.l1d_misses += miss;
                    d.l2_misses += ev.l2_miss as u64;
                    d.bus_txns += ev.bus_txns as u64;
                    d.stores += 1;
                    d.inst_retired_milli += crack.retired_milli(OpClass::Store, 1);
                    d.abstract_ops += 1;
                }
                Op::Branch { site, taken } => {
                    t = issue.book(t, 1);
                    let pc = site_pc(site);
                    let iev = mem.access_inst(cpu, pc.0, t);
                    let correct = pred.update(pc.0, sibling, taken);
                    let imiss = iev.l1_miss as u64;
                    t += iev.latency * imiss;
                    d.l1i_misses += imiss;
                    d.l2_misses += iev.l2_miss as u64;
                    d.bus_txns += iev.bus_txns as u64;
                    d.branches_retired += 1;
                    let wrong = !correct as u64;
                    d.branch_mispredicts += wrong;
                    d.flush_cycles += penalty * wrong;
                    t += penalty * wrong;
                    d.inst_retired_milli += crack.retired_milli(OpClass::Branch, 1);
                    d.abstract_ops += 1;
                }
                Op::Jump { site } => {
                    t = issue.book(t, 1);
                    let pc = site_pc(site);
                    let iev = mem.access_inst(cpu, pc.0, t);
                    let imiss = iev.l1_miss as u64;
                    t += iev.latency * imiss;
                    d.l1i_misses += imiss;
                    d.l2_misses += iev.l2_miss as u64;
                    d.bus_txns += iev.bus_txns as u64;
                    d.branches_retired += 1;
                    d.inst_retired_milli += crack.retired_milli(OpClass::Jump, 1);
                    d.abstract_ops += 1;
                }
            }
        }
        counters[cpu as usize].merge(&d);
        exec.accum += t - cpus[cpu as usize].time;
        cpus[cpu as usize].time = t;
        exec.pos += executed;
        exec.pos == exec.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Platform;
    use crate::thread::LoopWorkload;
    use aon_trace::op::{Addr, RegionSlot};
    use aon_trace::VAddr;

    /// A compute-bound trace: tight ALU/branch loop over a small footprint.
    fn cpu_trace(iters: u32) -> Trace {
        let mut t = Trace::with_label("cpu");
        for i in 0..iters {
            t.push(Op::Alu(3));
            t.push(Op::Load { addr: Addr::new(RegionSlot::STATIC, (i % 64) * 8), size: 8 });
            t.push(Op::Branch { site: 77, taken: i + 1 < iters });
        }
        t
    }

    /// A streaming trace: touches fresh memory continuously.
    fn stream_trace(lines: u32) -> Trace {
        let mut t = Trace::with_label("stream");
        for i in 0..lines {
            t.push(Op::Load { addr: Addr::new(RegionSlot::MSG, i * 64), size: 8 });
            t.push(Op::Alu(1));
            t.push(Op::Branch { site: 99, taken: i + 1 < lines });
        }
        t
    }

    #[test]
    fn single_cpu_executes_and_counts() {
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        m.spawn(Box::new(LoopWorkload::new(cpu_trace(1000), Binding::new(), 1)));
        let out = m.run(10_000_000);
        assert!(!out.deadlocked);
        assert_eq!(out.completed_units, 1);
        let c = &m.counters()[0];
        assert_eq!(c.branches_retired, 1000);
        assert_eq!(c.loads, 1000);
        assert!(c.inst_retired() > 4900.0);
        assert!(c.clockticks > 0);
    }

    #[test]
    fn cpi_is_sane_for_cpu_bound_work() {
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        m.spawn(Box::new(LoopWorkload::new(cpu_trace(20_000), Binding::new(), 1)));
        m.run(100_000_000);
        let c = m.counters_total();
        let cpi = c.cpi();
        assert!(cpi > 0.4 && cpi < 3.0, "PM CPU-bound CPI should be near 1: {cpi}");
    }

    #[test]
    fn xeon_retires_more_instructions_for_same_trace() {
        let run = |p: Platform| -> f64 {
            let mut m = Machine::new(p.config());
            m.spawn(Box::new(LoopWorkload::new(cpu_trace(5_000), Binding::new(), 1)));
            m.run(100_000_000);
            m.counters_total().inst_retired()
        };
        let pm = run(Platform::OneCorePentiumM);
        let xe = run(Platform::OneLogicalXeon);
        assert!(xe / pm > 1.3, "Netburst cracking inflates retired count: {xe} vs {pm}");
    }

    #[test]
    fn branch_frequency_gap_matches_table5_shape() {
        let run = |p: Platform| -> f64 {
            let mut m = Machine::new(p.config());
            m.spawn(Box::new(LoopWorkload::new(cpu_trace(5_000), Binding::new(), 1)));
            m.run(100_000_000);
            m.counters_total().branch_freq_pct()
        };
        let pm = run(Platform::OneCorePentiumM);
        let xe = run(Platform::OneLogicalXeon);
        assert!(pm / xe > 1.5 && pm / xe < 2.6, "PM branch freq ~2x Xeon: {pm} vs {xe}");
    }

    #[test]
    fn streaming_work_produces_l2_misses_and_bus_traffic() {
        let mut m = Machine::new(Platform::OneLogicalXeon.config());
        // Rebind MSG each iteration to fresh addresses via a custom loop.
        struct Streamer {
            trace: Arc<Trace>,
            iter: u64,
        }
        impl Workload for Streamer {
            fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
                if self.iter >= 50 {
                    return Step::Done;
                }
                let mut b = Binding::new();
                b.bind(RegionSlot::MSG, VAddr(0x4000_0000 + self.iter * 0x10_0000));
                self.iter += 1;
                ctx.complete_units = 1;
                Step::Run { trace: Arc::clone(&self.trace), binding: b }
            }
        }
        m.spawn(Box::new(Streamer { trace: Arc::new(stream_trace(100)), iter: 0 }));
        m.run(100_000_000);
        let c = m.counters_total();
        assert!(c.l2_misses >= 5000 - 100, "every fresh line misses: {}", c.l2_misses);
        assert!(c.bus_txns >= c.l2_misses);
        assert!(c.l2mpi_pct() > 5.0);
    }

    #[test]
    fn two_cpus_split_work_and_both_count() {
        let mut m = Machine::new(Platform::TwoCorePentiumM.config());
        m.spawn(Box::new(LoopWorkload::new(cpu_trace(5_000), Binding::new(), 2)));
        m.spawn(Box::new(LoopWorkload::new(cpu_trace(5_000), Binding::new(), 2)));
        let out = m.run(100_000_000);
        assert_eq!(out.completed_units, 4);
        assert!(m.counters()[0].abstract_ops > 0);
        assert!(m.counters()[1].abstract_ops > 0);
        // Clockticks accumulate on both CPUs for the same wall time.
        assert_eq!(m.counters()[0].clockticks, m.counters()[1].clockticks);
    }

    #[test]
    fn dual_core_speeds_up_cpu_bound_work() {
        let elapsed = |p: Platform, threads: u32| -> u64 {
            let mut m = Machine::new(p.config());
            for _ in 0..threads {
                m.spawn(Box::new(LoopWorkload::new(cpu_trace(20_000), Binding::new(), 1)));
            }
            m.run(1_000_000_000).end_time
        };
        let one = elapsed(Platform::OneCorePentiumM, 2);
        let two = elapsed(Platform::TwoCorePentiumM, 2);
        let scaling = crate::convert::ratio(one, two);
        assert!(scaling > 1.6, "two cores should nearly halve wall time: {scaling}");
    }

    #[test]
    fn smt_scales_worse_than_physical_for_cpu_bound() {
        let elapsed = |p: Platform| -> u64 {
            let mut m = Machine::new(p.config());
            for _ in 0..2 {
                m.spawn(Box::new(LoopWorkload::new(cpu_trace(20_000), Binding::new(), 1)));
            }
            m.run(1_000_000_000).end_time
        };
        let one = {
            let mut m = Machine::new(Platform::OneLogicalXeon.config());
            for _ in 0..2 {
                m.spawn(Box::new(LoopWorkload::new(cpu_trace(20_000), Binding::new(), 1)));
            }
            m.run(1_000_000_000).end_time
        };
        let ht = elapsed(Platform::TwoLogicalXeon);
        let pp = elapsed(Platform::TwoPhysicalXeon);
        let ht_scaling = crate::convert::ratio(one, ht);
        let pp_scaling = crate::convert::ratio(one, pp);
        assert!(
            pp_scaling > ht_scaling + 0.3,
            "physical CPUs must beat HT for CPU-bound: HT {ht_scaling:.2} vs PP {pp_scaling:.2}"
        );
        assert!(pp_scaling > 1.6, "two packages scale well: {pp_scaling:.2}");
    }

    #[test]
    fn producer_consumer_channel_roundtrip() {
        struct Producer {
            chan: ChannelId,
            sent: u32,
        }
        impl Workload for Producer {
            fn next(&mut self, _ctx: &mut WorkloadCtx) -> Step {
                if self.sent >= 10 {
                    return Step::Done;
                }
                self.sent += 1;
                Step::Send { chan: self.chan, msg: Msg { bytes: 100, tag: self.sent as u64 } }
            }
        }
        struct Consumer {
            chan: ChannelId,
            got: u32,
            expect_next: u64,
        }
        impl Workload for Consumer {
            fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
                if let Some(m) = ctx.last_recv {
                    self.expect_next += 1;
                    assert_eq!(m.tag, self.expect_next, "FIFO order");
                    self.got += 1;
                    ctx.complete_units = 1;
                    ctx.complete_bytes = m.bytes as u64;
                }
                if self.got >= 10 {
                    return Step::Done;
                }
                Step::Recv { chan: self.chan }
            }
        }
        let mut m = Machine::new(Platform::TwoPhysicalXeon.config());
        let chan = m.add_channel(ChannelConfig::bounded(250, VAddr(0x6000_0000)));
        m.spawn(Box::new(Producer { chan, sent: 0 }));
        m.spawn(Box::new(Consumer { chan, got: 0, expect_next: 0 }));
        let out = m.run(100_000_000);
        assert!(!out.deadlocked, "producer/consumer must complete");
        assert_eq!(out.completed_units, 10);
        assert_eq!(out.completed_bytes, 1000);
    }

    #[test]
    fn draining_channel_unblocks_by_time() {
        struct Sender {
            chan: ChannelId,
            sent: u32,
        }
        impl Workload for Sender {
            fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
                if self.sent >= 5 {
                    return Step::Done;
                }
                self.sent += 1;
                ctx.complete_bytes = 1000;
                ctx.complete_units = 1;
                Step::Send { chan: self.chan, msg: Msg { bytes: 1000, tag: 0 } }
            }
        }
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        // Capacity one message; drains 1 byte/cycle.
        let chan = m.add_channel(ChannelConfig {
            capacity: 1000,
            drain_per_kcycle: 1024,
            buf_base: VAddr(0x7000_0000),
            fill: None,
        });
        let out = {
            m.spawn(Box::new(Sender { chan, sent: 0 }));
            m.run(100_000_000)
        };
        assert!(!out.deadlocked);
        assert_eq!(out.completed_units, 5);
        // 5000 bytes at 1 byte/cycle: at least ~4000 cycles of pacing.
        assert!(out.end_time > 3_000, "rate limiting must pace the sender: {}", out.end_time);
    }

    #[test]
    fn wait_until_advances_clock() {
        struct Sleeper {
            woke: bool,
        }
        impl Workload for Sleeper {
            fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
                if self.woke {
                    assert!(ctx.now >= 50_000);
                    return Step::Done;
                }
                self.woke = true;
                Step::WaitUntil(50_000)
            }
        }
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        m.spawn(Box::new(Sleeper { woke: false }));
        let out = m.run(10_000_000);
        assert!(!out.deadlocked);
        assert!(out.end_time >= 50_000);
    }

    #[test]
    fn deadlock_detected() {
        struct Stuck {
            chan: ChannelId,
        }
        impl Workload for Stuck {
            fn next(&mut self, _ctx: &mut WorkloadCtx) -> Step {
                Step::Recv { chan: self.chan }
            }
        }
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        let chan = m.add_channel(ChannelConfig::bounded(100, VAddr(0x8000_0000)));
        m.spawn(Box::new(Stuck { chan }));
        let out = m.run(1_000_000);
        assert!(out.deadlocked);
    }

    #[test]
    fn reset_counters_isolates_measurement() {
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        m.spawn(Box::new(LoopWorkload::new(cpu_trace(1000), Binding::new(), 1)));
        m.run(10_000_000);
        let warm = m.counters_total().abstract_ops;
        assert!(warm > 0);
        m.reset_counters();
        assert_eq!(m.counters_total().abstract_ops, 0);
        m.spawn(Box::new(LoopWorkload::new(cpu_trace(500), Binding::new(), 1)));
        m.run(20_000_000);
        let measured = m.counters_total().abstract_ops;
        assert!(measured >= 2500 && measured < warm, "only post-reset work counts: {measured}");
    }

    #[test]
    fn batched_replay_matches_scalar_reference() {
        // Mixed compute + streaming load on an SMT config exercises every
        // op kind, both replay paths on both siblings, misses, mispredicts
        // and store backpressure. The two interpreters must agree to the
        // byte — counters, end time, and profile.
        let run = |reference: bool| {
            let mut m = Machine::new(Platform::TwoLogicalXeon.config());
            m.set_reference_replay(reference);
            m.spawn(Box::new(LoopWorkload::new(cpu_trace(3_000), Binding::new(), 1)));
            m.spawn(Box::new(LoopWorkload::new(stream_trace(3_000), Binding::new(), 1)));
            let out = m.run(100_000_000);
            let mut profile: Vec<(String, u64)> =
                m.profile().iter().map(|(k, v)| (k.clone(), *v)).collect();
            profile.sort();
            (out, m.counters().to_vec(), profile)
        };
        let batched = run(false);
        let scalar = run(true);
        assert_eq!(batched.0, scalar.0, "run outcome must be identical");
        assert_eq!(batched.1, scalar.1, "per-CPU counters must be byte-identical");
        assert_eq!(batched.2, scalar.2, "profile attribution must be identical");
    }

    #[test]
    fn more_threads_than_cpus_timeshare() {
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        for _ in 0..4 {
            m.spawn(Box::new(LoopWorkload::new(cpu_trace(1000), Binding::new(), 1)));
        }
        let out = m.run(1_000_000_000);
        assert!(!out.deadlocked);
        assert_eq!(out.completed_units, 4);
    }
}
