//! Stride prefetcher (Pentium M "Smart Memory Access" model).
//!
//! A small table of stream trackers keyed by the 4 KiB region of the miss
//! address. When two consecutive misses in a region show the same line
//! stride, the tracker locks on and the memory system prefetches ahead of
//! the stream into L2. The *extra bus traffic* this (and the
//! memory-disambiguation reloads configured in
//! [`crate::config::PrefetchConfig`]) generates is the paper's explanation
//! for Pentium M's surprisingly high BTPI despite its larger L2 (§5.4).

/// One tracked stream.
#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    region: u64,
    last_line: u64,
    stride: i64,
    confirmed: bool,
    valid: bool,
    lru: u64,
}

/// Per-logical-CPU stride detector.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    streams: [Stream; 8],
    enabled: bool,
    stamp: u64,
}

impl StridePrefetcher {
    /// Create; `enabled = false` makes [`StridePrefetcher::observe`] a
    /// no-op (the Netburst configuration).
    pub fn new(enabled: bool) -> Self {
        StridePrefetcher { streams: [Stream::default(); 8], enabled, stamp: 0 }
    }

    /// Observe an L1 miss at `line`; returns a confirmed stride when the
    /// stream is locked on.
    pub fn observe(&mut self, line: u64) -> Option<i64> {
        if !self.enabled {
            return None;
        }
        self.stamp += 1;
        let region = line >> 6; // 64 lines = 4 KiB regions
                                // Find the stream for this region.
        let mut found: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if s.valid && s.region == region {
                found = Some(i);
                break;
            }
        }
        let idx = match found {
            Some(i) => i,
            None => {
                // Allocate LRU slot.
                let mut lru_idx = 0;
                let mut oldest = u64::MAX;
                for (i, s) in self.streams.iter().enumerate() {
                    if !s.valid {
                        lru_idx = i;
                        break;
                    }
                    if s.lru < oldest {
                        oldest = s.lru;
                        lru_idx = i;
                    }
                }
                self.streams[lru_idx] = Stream {
                    region,
                    last_line: line,
                    stride: 0,
                    confirmed: false,
                    valid: true,
                    lru: self.stamp,
                };
                return None;
            }
        };
        let s = &mut self.streams[idx];
        s.lru = self.stamp;
        let stride = line as i64 - s.last_line as i64;
        s.last_line = line;
        if stride == 0 {
            return None;
        }
        if s.stride == stride {
            s.confirmed = true;
            Some(stride)
        } else {
            s.stride = stride;
            s.confirmed = false;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_onto_unit_stride() {
        let mut p = StridePrefetcher::new(true);
        assert_eq!(p.observe(100), None); // allocate
        assert_eq!(p.observe(101), None); // learn stride
        assert_eq!(p.observe(102), Some(1)); // confirmed
        assert_eq!(p.observe(103), Some(1));
    }

    #[test]
    fn locks_onto_negative_stride() {
        let mut p = StridePrefetcher::new(true);
        p.observe(200);
        p.observe(198);
        assert_eq!(p.observe(196), Some(-2));
    }

    #[test]
    fn random_accesses_never_confirm() {
        let mut p = StridePrefetcher::new(true);
        // Same region, erratic strides.
        for line in [10u64, 14, 11, 30, 12, 55] {
            assert_eq!(p.observe(line), None);
        }
    }

    #[test]
    fn disabled_is_inert() {
        let mut p = StridePrefetcher::new(false);
        for i in 0..10 {
            assert_eq!(p.observe(i), None);
        }
    }

    #[test]
    fn distinct_regions_track_independently() {
        let mut p = StridePrefetcher::new(true);
        // Interleave two streams in different 4 KiB regions.
        let a0 = 0u64;
        let b0 = 1000u64;
        p.observe(a0);
        p.observe(b0);
        p.observe(a0 + 1);
        p.observe(b0 + 2);
        assert_eq!(p.observe(a0 + 2), Some(1));
        assert_eq!(p.observe(b0 + 4), Some(2));
    }
}
