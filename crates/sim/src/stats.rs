//! Run-level statistics derived from machine counters.

use crate::convert::{exact_f64, ratio};
use crate::counters::PerfCounters;
use crate::machine::{Machine, RunOutcome};

/// Everything an experiment reports about one machine run.
#[derive(Debug, Clone)]
pub struct MachineStats {
    /// Platform notation (`1CPm`, …).
    pub platform: String,
    /// CPU clock in MHz.
    pub cpu_mhz: u32,
    /// Simulated run length in cycles.
    pub cycles: u64,
    /// Completed work units (messages, transfers).
    pub completed_units: u64,
    /// Completed payload bytes.
    pub completed_bytes: u64,
    /// Aggregate counters across logical CPUs.
    pub total: PerfCounters,
    /// Per-logical-CPU counters.
    pub per_cpu: Vec<PerfCounters>,
}

impl MachineStats {
    /// Collect stats after a run. `cycles` is the *measured window* (from
    /// the last counter reset to the end of the run), which is also what
    /// each CPU's clocktick counter holds.
    pub fn collect(machine: &Machine, outcome: &RunOutcome) -> MachineStats {
        MachineStats {
            platform: machine.config().name.to_string(),
            cpu_mhz: machine.config().cpu_mhz,
            cycles: machine.counters().first().map(|c| c.clockticks).unwrap_or(outcome.end_time),
            completed_units: outcome.completed_units,
            completed_bytes: outcome.completed_bytes,
            total: machine.counters_total(),
            per_cpu: machine.counters().to_vec(),
        }
    }

    /// Wall-clock seconds of the simulated run.
    pub fn seconds(&self) -> f64 {
        exact_f64(self.cycles) / (f64::from(self.cpu_mhz) * 1e6)
    }

    /// Payload throughput in megabits per second.
    pub fn throughput_mbps(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            exact_f64(self.completed_bytes) * 8.0 / 1e6 / self.seconds()
        }
    }

    /// Completed units per second.
    pub fn units_per_sec(&self) -> f64 {
        // cycles / (mhz * 1e6) cancels to units * mhz * 1e6 / cycles.
        ratio(self.completed_units * u64::from(self.cpu_mhz), self.cycles) * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let s = MachineStats {
            platform: "1CPm".into(),
            cpu_mhz: 1000,
            cycles: 1_000_000_000, // 1 second at 1 GHz
            completed_units: 500,
            completed_bytes: 125_000_000, // 1 Gbit
            total: PerfCounters::default(),
            per_cpu: vec![],
        };
        assert!((s.seconds() - 1.0).abs() < 1e-9);
        assert!((s.throughput_mbps() - 1000.0).abs() < 1e-6);
        assert!((s.units_per_sec() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn zero_cycles_is_zero_not_nan() {
        let s = MachineStats {
            platform: "x".into(),
            cpu_mhz: 1000,
            cycles: 0,
            completed_units: 5,
            completed_bytes: 5,
            total: PerfCounters::default(),
            per_cpu: vec![],
        };
        assert_eq!(s.throughput_mbps(), 0.0);
        assert_eq!(s.units_per_sec(), 0.0);
    }
}
