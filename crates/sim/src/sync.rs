//! Simulated synchronization: bounded byte channels.
//!
//! A [`SimChannel`] models a kernel socket buffer / listen queue: a bounded
//! byte store carrying message records. Producers block when it is full,
//! consumers when it is empty — which is all the synchronization netperf's
//! producer/consumer pair and the XML server's accept loop need.
//!
//! Two extras make the network substrate expressible:
//!
//! * **Drain rate** — a channel can leak bytes at a fixed rate (bytes per
//!   1024 cycles), modelling a NIC transmit queue emptying onto a
//!   gigabit link. Senders blocked on a draining channel get *timed*
//!   wakeups computed from the drain rate.
//! * **Backing buffer address** — each channel owns a virtual-address ring
//!   (where its bytes notionally live), so workload copy traces into/out of
//!   the channel use addresses that collide in the cache hierarchy exactly
//!   like a real shared socket buffer. The ring window is the channel's
//!   capacity.

use aon_trace::VAddr;

/// Identifies a channel within a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub u32);

/// One queued message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Payload size in bytes.
    pub bytes: u32,
    /// Opaque tag (the workloads use it to identify message variants).
    pub tag: u64,
}

/// An external arrival source attached to a channel: messages of a fixed
/// size arriving at a fixed byte rate (an open-loop client population
/// pushing traffic through the ingress link).
#[derive(Debug, Clone, Copy)]
pub struct FillConfig {
    /// Size of each arriving message.
    pub msg_bytes: u32,
    /// Arrival rate in bytes per 1024 cycles (cap it at the ingress link
    /// rate).
    pub bytes_per_kcycle: u32,
}

/// Channel construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Capacity in bytes (like a socket buffer size).
    pub capacity: u32,
    /// Bytes drained per 1024 cycles by an external sink (0 = none).
    pub drain_per_kcycle: u32,
    /// Base address of the backing ring buffer.
    pub buf_base: VAddr,
    /// Optional external arrival source. Arriving messages carry their
    /// arrival index as `tag`.
    pub fill: Option<FillConfig>,
}

impl ChannelConfig {
    /// A plain bounded channel with no drain and no source.
    pub fn bounded(capacity: u32, buf_base: VAddr) -> Self {
        ChannelConfig { capacity, drain_per_kcycle: 0, buf_base, fill: None }
    }
}

/// A bounded byte channel.
#[derive(Debug)]
pub struct SimChannel {
    cfg: ChannelConfig,
    occupied: u64,
    msgs: std::collections::VecDeque<Msg>,
    /// Ring write cursor (for assigning buffer offsets to sends).
    write_cursor: u64,
    last_drain: u64,
    /// Fractional drain accumulator (bytes × 1024).
    drain_acc: u64,
    last_fill: u64,
    /// Fractional fill accumulator (bytes × 1024).
    fill_acc: u64,
    /// Arrival index of the next filled message.
    fill_index: u64,
    /// Arrivals dropped because the channel was full (ingress overrun).
    pub dropped_msgs: u64,
    /// Totals for reporting.
    pub total_bytes_in: u64,
    /// Total bytes consumed (recv + drain).
    pub total_bytes_out: u64,
    /// Total messages sent.
    pub total_msgs: u64,
}

impl SimChannel {
    /// Create from a config.
    pub fn new(cfg: ChannelConfig) -> Self {
        SimChannel {
            cfg,
            occupied: 0,
            msgs: std::collections::VecDeque::new(),
            write_cursor: 0,
            last_drain: 0,
            drain_acc: 0,
            last_fill: 0,
            fill_acc: 0,
            fill_index: 0,
            dropped_msgs: 0,
            total_bytes_in: 0,
            total_bytes_out: 0,
            total_msgs: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.cfg.capacity
    }

    /// Occupied bytes (after applying drain up to `now`).
    pub fn occupied(&mut self, now: u64) -> u64 {
        self.apply_drain(now);
        self.occupied
    }

    /// Messages currently queued.
    pub fn queued_msgs(&self) -> usize {
        self.msgs.len()
    }

    /// The buffer address a send of `bytes` at the current cursor would
    /// occupy (ring addressing within the capacity window).
    pub fn next_buf_addr(&self, bytes: u32) -> VAddr {
        let window = self.cfg.capacity.max(bytes) as u64;
        let off = self.write_cursor % window;
        // Keep the whole message inside the window.
        let off = if off + bytes as u64 > window { 0 } else { off };
        self.cfg.buf_base.offset(off)
    }

    /// Apply external drain up to `now`.
    fn apply_drain(&mut self, now: u64) {
        if self.cfg.drain_per_kcycle == 0 || now <= self.last_drain {
            return;
        }
        let elapsed = now - self.last_drain;
        self.last_drain = now;
        self.drain_acc += elapsed * self.cfg.drain_per_kcycle as u64;
        // Drain whole queued messages first, then raw bytes. Credit for a
        // partially-drained message is *kept* (the wire is mid-frame), so
        // large messages still leave at exactly the configured rate.
        loop {
            let drainable = self.drain_acc / 1024;
            if drainable == 0 || self.occupied == 0 {
                break;
            }
            match self.msgs.front() {
                Some(m) if (m.bytes as u64) <= drainable => {
                    let bytes = m.bytes as u64;
                    self.drain_acc -= bytes * 1024;
                    self.occupied -= bytes;
                    self.total_bytes_out += bytes;
                    self.msgs.pop_front();
                }
                Some(_) => break,
                None => {
                    let take = drainable.min(self.occupied);
                    self.drain_acc -= take * 1024;
                    self.occupied -= take;
                    self.total_bytes_out += take;
                    break;
                }
            }
        }
        // An empty queue means an idle wire: credit does not accrue ahead
        // of data.
        if self.occupied == 0 {
            self.drain_acc = 0;
        }
    }

    /// Apply external arrivals up to `now`.
    fn apply_fill(&mut self, now: u64) {
        let Some(fill) = self.cfg.fill else { return };
        if now <= self.last_fill {
            return;
        }
        let elapsed = now - self.last_fill;
        self.last_fill = now;
        self.fill_acc += elapsed * fill.bytes_per_kcycle as u64;
        while self.fill_acc / 1024 >= fill.msg_bytes as u64 {
            self.fill_acc -= fill.msg_bytes as u64 * 1024;
            if self.occupied + fill.msg_bytes as u64 > self.cfg.capacity as u64 {
                // Ingress overrun: the listen queue is full; drop (TCP would
                // back-pressure, but an open-loop saturation source keeps
                // pushing — either way the queue stays full).
                self.dropped_msgs += 1;
                continue;
            }
            let msg = Msg { bytes: fill.msg_bytes, tag: self.fill_index };
            self.fill_index += 1;
            self.occupied += msg.bytes as u64;
            self.write_cursor += msg.bytes as u64;
            self.total_bytes_in += msg.bytes as u64;
            self.total_msgs += 1;
            self.msgs.push_back(msg);
        }
    }

    /// Try to enqueue a message at `now`. Returns `true` on success.
    pub fn try_send(&mut self, msg: Msg, now: u64) -> bool {
        self.apply_fill(now);
        self.apply_drain(now);
        if self.occupied + msg.bytes as u64 > self.cfg.capacity as u64 {
            return false;
        }
        self.occupied += msg.bytes as u64;
        self.write_cursor += msg.bytes as u64;
        self.total_bytes_in += msg.bytes as u64;
        self.total_msgs += 1;
        self.msgs.push_back(msg);
        true
    }

    /// When will the next external arrival be available, given the fill
    /// rate? `None` if the channel has no source.
    pub fn fill_eta(&mut self, now: u64) -> Option<u64> {
        let fill = self.cfg.fill?;
        self.apply_fill(now);
        if !self.msgs.is_empty() {
            return Some(now);
        }
        let need = fill.msg_bytes as u64 * 1024 - self.fill_acc;
        Some(now + need / fill.bytes_per_kcycle as u64 + 1)
    }

    /// Try to dequeue a message at `now`.
    pub fn try_recv(&mut self, now: u64) -> Option<Msg> {
        self.apply_fill(now);
        self.apply_drain(now);
        let m = self.msgs.pop_front()?;
        self.occupied -= m.bytes as u64;
        self.total_bytes_out += m.bytes as u64;
        Some(m)
    }

    /// When (absolutely) will there be room for `bytes` more, given only
    /// external drain? `None` if the channel does not drain (a peer must
    /// make room).
    ///
    /// Exact under message-granular draining: walks the queue to find how
    /// many whole messages must leave, and credits the drain accumulator
    /// already earned — so a sender woken at the ETA finds space on the
    /// first retry.
    pub fn drain_eta(&mut self, bytes: u32, now: u64) -> Option<u64> {
        if self.cfg.drain_per_kcycle == 0 {
            return None;
        }
        self.apply_drain(now);
        let free = self.cfg.capacity as u64 - self.occupied.min(self.cfg.capacity as u64);
        if free >= bytes as u64 {
            return Some(now);
        }
        // Whole messages that must drain before `bytes` fit.
        let mut acc_free = free;
        let mut must_drain = 0u64;
        for m in &self.msgs {
            must_drain += m.bytes as u64;
            acc_free += m.bytes as u64;
            if acc_free >= bytes as u64 {
                break;
            }
        }
        if acc_free < bytes as u64 {
            // Raw bytes beyond queued messages (shouldn't happen in
            // practice, but stay safe).
            must_drain += bytes as u64 - acc_free;
        }
        let deficit = (must_drain * 1024).saturating_sub(self.drain_acc);
        let cycles = deficit.div_ceil(self.cfg.drain_per_kcycle as u64) + 1;
        Some(now + cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(capacity: u32, drain: u32) -> SimChannel {
        SimChannel::new(ChannelConfig {
            capacity,
            drain_per_kcycle: drain,
            buf_base: VAddr(0x10_0000),
            fill: None,
        })
    }

    #[test]
    fn bounded_send_recv() {
        let mut c = chan(100, 0);
        assert!(c.try_send(Msg { bytes: 60, tag: 1 }, 0));
        assert!(!c.try_send(Msg { bytes: 60, tag: 2 }, 0), "over capacity");
        let m = c.try_recv(0).unwrap();
        assert_eq!(m.tag, 1);
        assert!(c.try_send(Msg { bytes: 60, tag: 2 }, 0));
        assert_eq!(c.occupied(0), 60);
    }

    #[test]
    fn fifo_order() {
        let mut c = chan(1000, 0);
        for tag in 0..5 {
            assert!(c.try_send(Msg { bytes: 10, tag }, 0));
        }
        for tag in 0..5 {
            assert_eq!(c.try_recv(0).unwrap().tag, tag);
        }
        assert!(c.try_recv(0).is_none());
    }

    #[test]
    fn drain_frees_space_over_time() {
        // 1024 bytes/kcycle = 1 byte/cycle.
        let mut c = chan(100, 1024);
        assert!(c.try_send(Msg { bytes: 100, tag: 0 }, 0));
        assert!(
            !c.try_send(Msg { bytes: 50, tag: 1 }, 10),
            "only 10 bytes drained... message-granular"
        );
        // After enough time the whole first message has drained.
        assert_eq!(c.occupied(200), 0);
        assert!(c.try_send(Msg { bytes: 50, tag: 1 }, 200));
    }

    #[test]
    fn drain_eta_estimates() {
        let mut c = chan(100, 1024);
        c.try_send(Msg { bytes: 100, tag: 0 }, 0);
        let eta = c.drain_eta(100, 0).unwrap();
        assert!((100..=110).contains(&eta), "need full message drained: {eta}");
        // Without drain, no ETA.
        let mut c2 = chan(100, 0);
        c2.try_send(Msg { bytes: 100, tag: 0 }, 0);
        assert_eq!(c2.drain_eta(1, 0), None);
    }

    #[test]
    fn ring_addresses_stay_in_window() {
        let mut c = chan(256, 0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..20 {
            let a = c.next_buf_addr(64);
            assert!(a.0 >= 0x10_0000 && a.0 + 64 <= 0x10_0000 + 256);
            seen.insert(a.0);
            c.try_send(Msg { bytes: 64, tag: i }, 0);
            c.try_recv(0);
        }
        assert!(seen.len() > 1, "cursor must advance through the ring");
    }

    #[test]
    fn totals_account_everything() {
        let mut c = chan(1000, 0);
        c.try_send(Msg { bytes: 300, tag: 0 }, 0);
        c.try_send(Msg { bytes: 200, tag: 1 }, 0);
        c.try_recv(0);
        assert_eq!(c.total_bytes_in, 500);
        assert_eq!(c.total_bytes_out, 300);
        assert_eq!(c.total_msgs, 2);
    }
}
